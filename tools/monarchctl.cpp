// monarchctl — command-line front end for the MONARCH library.
//
//   monarchctl gen --dir DIR [--preset tiny|100g|200g] [--scale S]
//       Generate a synthetic TFRecord dataset into DIR.
//
//   monarchctl inspect --dir DIR [--subdir NAME]
//       Validate every TFRecord file under a dataset directory (CRC
//       framing) and print per-file record counts.
//
//   monarchctl run --config FILE.ini [--epochs N] [--model NAME]
//       Build a MONARCH hierarchy from an INI file (see core/config.h),
//       run a training simulation through it, and print per-epoch times
//       plus tier statistics.
//
//   monarchctl replay --dir DIR --trace FILE [--profile ssd|lustre]
//       Replay a captured I/O trace against a simulated device.
//
//   monarchctl metrics dump [--format text|json] [--workload demo|none]
//       Print every metric the process-wide MetricsRegistry exposes
//       (docs/OBSERVABILITY.md catalogue). The built-in demo workload —
//       a small in-memory MONARCH hierarchy read twice — populates the
//       registry so the dump shows live values.
//
//   monarchctl trace export FILE.json [--workload demo|none]
//       Record the demo workload with the EventTracer enabled and write
//       Chrome trace_event JSON to FILE.json (open in chrome://tracing
//       or https://ui.perfetto.dev).
//
//   monarchctl stage-status [--files N] [--lookahead N] [--read-fraction F]
//                           [--policy NAME] [--quota BYTES]
//       Drive the pipelined staging engine with a hinted demo workload
//       and print its status: the active placement policy and its
//       eviction counters (docs/PLACEMENT.md), per-lane queue depths,
//       in-flight bytes per tier, buffer-pool occupancy, and the
//       prefetch hit/waste counters (DESIGN.md "Staging pipeline").
//       --quota shrinks the demo tier so eviction-capable policies
//       actually evict.
//
//   monarchctl pack-status [--files N] [--codec none|lz] [--chunk-bytes N]
//       Small-file packing demo (ISSUE 9): pack a tiny-file dataset
//       into container extents, read it sparsely then fully through a
//       pack-enabled hierarchy, and print the pack index, chunk
//       residency, stage-in compression ratio, and chunk hit/miss
//       counters (DESIGN.md "Small-file packing & chunk staging").
//
//   monarchctl faults [--local-rate R] [--pfs-rate R] [--corrupt-rate R]
//                     [--epochs N] [--files N] [--outage-epoch E]
//       Degradation demo: run the built-in workload through a hierarchy
//       whose engines inject transient faults (and optionally silent
//       corruption or a mid-epoch local-tier outage), verify every byte
//       against the authoritative data, and dump the resilience metrics
//       (retries, degraded fallbacks, circuit-breaker state,
//       quarantines). Exit 0 iff training saw zero errors.
//
//   monarchctl peer-status [--nodes N] [--files N] [--epochs N]
//                          [--replication R]
//       Cooperative-peer-cache demo (DESIGN.md "Cooperative peer
//       cache"): N in-memory nodes share one cluster directory, each
//       stages its consistent-hash shard, and later epochs read the
//       other shards over the simulated interconnect. Prints per-node
//       owned/placed/remote-hit counts plus directory and interconnect
//       totals.
//
//   monarchctl read-ring [--files N] [--ops N] [--depth D] [--workers W]
//                        [--zero-copy true|false]
//       Async read-ring demo (DESIGN.md "Async read path & zero-copy
//       lane"): submit N lease-mode reads for a small in-memory dataset
//       through the submission ring, harvest the completions, and print
//       the ring status — configured depth, queued/in-flight ops,
//       submitted/completed/cancelled totals, and the zero-copy hit
//       rate. Exit 0 iff every completion succeeded byte-identical to
//       the authoritative data.
//
//   monarchctl ckpt-status [--saves N] [--bytes SIZE] [--keep K]
//                          [--drain-bandwidth RATE]
//       Write-back checkpoint demo (DESIGN.md "Checkpoint write-back"):
//       save N checkpoints through a CheckpointManager over an
//       in-memory two-level hierarchy, drain them to the demo PFS under
//       an optional bandwidth cap, then print the manifest table
//       (gen/name/bytes/crc/state/local) and the manager's counters.
//
//   monarchctl qos-status [--bandwidth RATE] [--capacity SIZE]
//       Multi-tenant QoS demo (DESIGN.md "Multi-tenant QoS"): an
//       interactive, a training, and a full-scan tenant share one
//       bandwidth broker; the scan tenant charges past its weighted
//       share and is throttled while the others are not. An admission
//       controller then sizes three job footprints against --capacity.
//       Prints the per-tenant usage table (class/weight/share/consumed/
//       throttle counters) and the admission tallies. Exit 0 iff the
//       scan tenant was throttled and the demand tenants were not.
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint_manager.h"
#include "cluster/peer_group.h"
#include "core/config.h"
#include "core/storage_hierarchy.h"
#include "core/monarch.h"
#include "dlsim/monarch_opener.h"
#include "dlsim/trainer.h"
#include "obs/event_tracer.h"
#include "obs/metrics_registry.h"
#include "qos/admission.h"
#include "qos/bandwidth_broker.h"
#include "qos/tenant.h"
#include "storage/engine_factory.h"
#include "storage/faulty_engine.h"
#include "storage/memory_engine.h"
#include "tfrecord/index.h"
#include "util/byte_units.h"
#include "util/table.h"
#include "workload/dataset_generator.h"
#include "workload/small_file_dataset.h"
#include "workload/trace.h"

namespace monarch::ctl {
namespace {

namespace fs = std::filesystem;

/// Minimal --flag value parser: flags are "--name value"; bare words are
/// positional (the subcommand plus, for `metrics`/`trace`, a verb and an
/// output path).
struct Args {
  std::string command;
  std::vector<std::string> positionals;  ///< bare words after the command
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const {
    auto it = flags.find(key);
    if (it == flags.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string GetOr(const std::string& key,
                                  std::string fallback) const {
    return Get(key).value_or(std::move(fallback));
  }
};

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    args.command = argv[i++];
  }
  while (i < argc) {
    std::string flag = argv[i];
    if (!flag.starts_with("--")) {
      args.positionals.push_back(std::move(flag));
      ++i;
      continue;
    }
    flag = flag.substr(2);
    if (i + 1 >= argc) {
      return InvalidArgumentError("flag --" + flag + " needs a value");
    }
    args.flags[flag] = argv[i + 1];
    i += 2;
  }
  return args;
}

void PrintUsage() {
  std::cout <<
      "monarchctl — MONARCH hierarchical storage management CLI\n\n"
      "  monarchctl gen     --dir DIR [--preset tiny|100g|200g] [--scale S]\n"
      "  monarchctl inspect --dir DIR [--subdir NAME]\n"
      "  monarchctl run     --config FILE.ini [--epochs N] [--model lenet|alexnet|resnet50]\n"
      "  monarchctl replay  --dir DIR --trace FILE [--profile ssd|lustre] [--threads N]\n"
      "  monarchctl metrics dump [--format text|json] [--workload demo|none]\n"
      "  monarchctl trace   export FILE.json [--workload demo|none]\n"
      "  monarchctl stage-status [--files N] [--lookahead N] [--read-fraction F]\n"
      "                     [--policy first-fit|round-robin|lru|hotspot|clairvoyant]\n"
      "                     [--quota BYTES]\n"
      "  monarchctl pack-status [--files N] [--codec none|lz] [--chunk-bytes N]\n"
      "  monarchctl faults  [--local-rate R] [--pfs-rate R] [--corrupt-rate R]\n"
      "                     [--epochs N] [--files N] [--outage-epoch E]\n"
      "  monarchctl peer-status [--nodes N] [--files N] [--epochs N] [--replication R]\n"
      "  monarchctl cluster-status [--nodes N] [--files N] [--replication R] [--kill NODE]\n"
      "  monarchctl read-ring [--files N] [--ops N] [--depth D] [--workers W] [--zero-copy true|false]\n"
      "  monarchctl ckpt-status [--saves N] [--bytes SIZE] [--keep K] [--drain-bandwidth RATE]\n"
      "  monarchctl qos-status [--bandwidth RATE] [--capacity SIZE]\n";
}

Result<workload::DatasetSpec> PresetSpec(const std::string& preset,
                                         double scale) {
  if (preset == "tiny") return workload::DatasetSpec::Tiny();
  if (preset == "100g") return workload::DatasetSpec::ImageNet100GiB(scale);
  if (preset == "200g") return workload::DatasetSpec::ImageNet200GiB(scale);
  return InvalidArgumentError("unknown preset '" + preset +
                              "' (tiny|100g|200g)");
}

int CmdGen(const Args& args) {
  const auto dir = args.Get("dir");
  if (!dir) {
    std::cerr << "gen: --dir is required\n";
    return 1;
  }
  const double scale = std::atof(args.GetOr("scale", "1.0").c_str());
  auto spec = PresetSpec(args.GetOr("preset", "tiny"),
                         scale > 0 ? scale : 1.0);
  if (!spec.ok()) {
    std::cerr << "gen: " << spec.status() << "\n";
    return 1;
  }
  auto engine = storage::MakeRawEngine(*dir);
  auto manifest = workload::GenerateDataset(*engine, spec.value());
  if (!manifest.ok()) {
    std::cerr << "gen: " << manifest.status() << "\n";
    return 2;
  }
  std::cout << "generated " << manifest->num_files() << " record files, "
            << FormatByteSize(manifest->total_bytes) << " under " << *dir
            << "/" << spec->directory << "\n";
  return 0;
}

int CmdInspect(const Args& args) {
  const auto dir = args.Get("dir");
  if (!dir) {
    std::cerr << "inspect: --dir is required\n";
    return 1;
  }
  auto engine = storage::MakeRawEngine(*dir);
  auto files = engine->ListFiles(args.GetOr("subdir", ""));
  if (!files.ok()) {
    std::cerr << "inspect: " << files.status() << "\n";
    return 2;
  }

  Table table({"file", "size", "records", "status"});
  std::uint64_t total_records = 0;
  std::uint64_t corrupt = 0;
  for (const auto& st : files.value()) {
    if (!st.path.ends_with(".tfrecord")) continue;
    tfrecord::EngineSource source(engine, st.path);
    auto index = tfrecord::BuildIndex(source);
    if (index.ok()) {
      total_records += index->size();
      table.AddRow({st.path, FormatByteSize(st.size),
                    std::to_string(index->size()), "ok"});
    } else {
      ++corrupt;
      table.AddRow({st.path, FormatByteSize(st.size), "-",
                    index.status().ToString()});
    }
  }
  table.PrintAscii(std::cout);
  std::cout << "total records: " << total_records
            << (corrupt > 0 ? "  CORRUPT FILES: " + std::to_string(corrupt)
                            : "")
            << "\n";
  return corrupt > 0 ? 2 : 0;
}

Result<dlsim::ModelProfile> ModelByName(const std::string& name) {
  if (name == "lenet") return dlsim::ModelProfile::LeNet();
  if (name == "alexnet") return dlsim::ModelProfile::AlexNet();
  if (name == "resnet50") return dlsim::ModelProfile::ResNet50();
  return InvalidArgumentError("unknown model '" + name +
                              "' (lenet|alexnet|resnet50)");
}

int CmdRun(const Args& args) {
  const auto config_path = args.Get("config");
  if (!config_path) {
    std::cerr << "run: --config is required\n";
    return 1;
  }
  std::ifstream in(*config_path);
  if (!in) {
    std::cerr << "run: cannot open '" << *config_path << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  auto monarch = core::MonarchFromIni(text.str());
  if (!monarch.ok()) {
    std::cerr << "run: " << monarch.status() << "\n";
    return 2;
  }
  std::cout << "indexed " << (*monarch)->Stats().files_indexed
            << " files in "
            << Table::Num((*monarch)->Stats().metadata_init_seconds, 3)
            << "s\n";

  // Collect the file list from the namespace.
  std::vector<std::string> files;
  for (const auto& entry : (*monarch)->metadata().Snapshot()) {
    files.push_back(entry.name);
  }
  if (files.empty()) {
    std::cerr << "run: dataset directory is empty\n";
    return 2;
  }

  auto model = ModelByName(args.GetOr("model", "lenet"));
  if (!model.ok()) {
    std::cerr << "run: " << model.status() << "\n";
    return 1;
  }
  dlsim::TrainerConfig tc;
  tc.model = model.value();
  tc.epochs = std::max(1, std::atoi(args.GetOr("epochs", "3").c_str()));

  dlsim::Trainer trainer(files,
                         std::make_unique<dlsim::MonarchOpener>(**monarch),
                         tc);
  std::cout << "training " << tc.model.name << " for " << tc.epochs
            << " epochs over " << files.size() << " files...\n";
  auto result = trainer.Train();
  if (!result.ok()) {
    std::cerr << "run: training failed: " << result.status() << "\n";
    return 2;
  }
  (*monarch)->DrainPlacements();

  Table epochs({"epoch", "seconds", "samples", "cpu_pct", "gpu_pct"});
  for (const auto& epoch : result->epochs) {
    epochs.AddRow({std::to_string(epoch.epoch),
                   Table::Num(epoch.wall_seconds, 2),
                   std::to_string(epoch.samples),
                   Table::Num(epoch.cpu_utilisation * 100, 1),
                   Table::Num(epoch.gpu_utilisation * 100, 1)});
  }
  epochs.PrintAscii(std::cout);

  const auto stats = (*monarch)->Stats();
  Table tiers({"level", "tier", "reads", "occupancy"});
  for (std::size_t i = 0; i < stats.levels.size(); ++i) {
    tiers.AddRow({std::to_string(i), stats.levels[i].tier_name,
                  std::to_string(stats.levels[i].reads),
                  FormatByteSize(stats.levels[i].occupancy_bytes)});
  }
  tiers.PrintAscii(std::cout);
  std::cout << "placed=" << stats.placement.completed
            << " unplaceable=" << stats.placement.rejected_no_space
            << " staged=" << FormatByteSize(stats.placement.bytes_staged)
            << "\n";
  return 0;
}

int CmdReplay(const Args& args) {
  const auto dir = args.Get("dir");
  const auto trace_path = args.Get("trace");
  if (!dir || !trace_path) {
    std::cerr << "replay: --dir and --trace are required\n";
    return 1;
  }
  std::ifstream in(*trace_path);
  if (!in) {
    std::cerr << "replay: cannot open '" << *trace_path << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto events = workload::ParseTrace(text.str());
  if (!events.ok()) {
    std::cerr << "replay: " << events.status() << "\n";
    return 2;
  }

  const std::string profile = args.GetOr("profile", "ssd");
  storage::StorageEnginePtr engine;
  if (profile == "ssd") {
    engine = storage::MakeLocalSsdEngine(*dir);
  } else if (profile == "lustre") {
    engine = storage::MakeLustreEngine(*dir, /*seed=*/1);
  } else {
    std::cerr << "replay: unknown profile '" << profile
              << "' (ssd|lustre)\n";
    return 1;
  }

  const int threads = std::max(1, std::atoi(args.GetOr("threads", "4").c_str()));
  auto stats = workload::ReplayTrace(events.value(), *engine, threads);
  if (!stats.ok()) {
    std::cerr << "replay: " << stats.status() << "\n";
    return 2;
  }
  std::cout << "replayed " << stats->ops << " reads, "
            << FormatByteSize(stats->bytes) << " in "
            << Table::Num(stats->elapsed_seconds, 2) << "s ("
            << Table::Num(static_cast<double>(stats->bytes) / 1e6 /
                              std::max(1e-9, stats->elapsed_seconds),
                          1)
            << " MB/s) on the " << profile << " profile\n";
  return 0;
}

/// The built-in observability demo: a two-tier in-memory hierarchy whose
/// dataset is read for two "epochs", so the first pass stages files and
/// the second serves them from the cache tier. Exercises the storage,
/// core, and trainer instrumentation without touching the host disk.
/// Returns the live instance so the caller can dump/export while its
/// pull sources (per-tier stats, engine IoStats) are still registered.
Result<std::unique_ptr<core::Monarch>> RunDemoWorkload() {
  auto pfs = std::make_shared<storage::MemoryEngine>("demo-pfs");
  const std::vector<std::byte> payload(4096);
  for (int i = 0; i < 8; ++i) {
    MONARCH_RETURN_IF_ERROR(
        pfs->Write("data/f" + std::to_string(i) + ".bin", payload));
  }

  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "demo-ssd", std::make_shared<storage::MemoryEngine>("demo-ssd"),
      /*quota_bytes=*/1ull << 20});
  config.pfs = core::TierSpec{"demo-pfs", std::move(pfs), 0};
  config.dataset_dir = "data";
  MONARCH_ASSIGN_OR_RETURN(auto monarch,
                           core::Monarch::Create(std::move(config)));

  std::vector<std::byte> buffer(4096);
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (const auto& entry : monarch->metadata().Snapshot()) {
      MONARCH_ASSIGN_OR_RETURN(std::size_t n,
                               monarch->Read(entry.name, 0, buffer));
      (void)n;
    }
    monarch->DrainPlacements();
  }
  return monarch;
}

int CmdMetrics(const Args& args) {
  if (args.positionals.empty() || args.positionals[0] != "dump") {
    std::cerr << "metrics: expected 'metrics dump'\n";
    return 1;
  }
  const std::string format = args.GetOr("format", "text");
  if (format != "text" && format != "json") {
    std::cerr << "metrics: unknown --format '" << format
              << "' (text|json)\n";
    return 1;
  }
  const std::string wl = args.GetOr("workload", "demo");
  if (wl != "demo" && wl != "none") {
    std::cerr << "metrics: unknown --workload '" << wl << "' (demo|none)\n";
    return 1;
  }
  std::unique_ptr<core::Monarch> demo;  // kept alive across the dump
  if (wl == "demo") {
    auto result = RunDemoWorkload();
    if (!result.ok()) {
      std::cerr << "metrics: demo workload failed: " << result.status()
                << "\n";
      return 2;
    }
    demo = std::move(result).value();
  }
  if (format == "json") {
    obs::MetricsRegistry::Global().PrintJson(std::cout);
    std::cout << "\n";
  } else {
    obs::MetricsRegistry::Global().PrintText(std::cout);
  }
  return 0;
}

/// Drive the pipelined staging engine with a hinted demo workload and
/// print its status: queue depths per lane, in-flight bytes per tier,
/// buffer-pool occupancy, and the prefetch hit/waste counters
/// (docs/OBSERVABILITY.md "Staging pipeline").
int CmdStageStatus(const Args& args) {
  const int files = std::max(1, std::atoi(args.GetOr("files", "12").c_str()));
  const int lookahead =
      std::max(1, std::atoi(args.GetOr("lookahead", "4").c_str()));
  const double read_fraction =
      std::atof(args.GetOr("read-fraction", "0.5").c_str());
  const std::string policy_name = args.GetOr("policy", "first-fit");
  const std::uint64_t quota = static_cast<std::uint64_t>(
      std::atoll(args.GetOr("quota", std::to_string(16ll << 20)).c_str()));

  auto pfs = std::make_shared<storage::MemoryEngine>("demo-pfs");
  const std::vector<std::byte> payload(16 * 1024);
  std::vector<std::string> order;
  for (int i = 0; i < files; ++i) {
    const std::string name = "data/f" + std::to_string(i) + ".bin";
    if (const Status status = pfs->Write(name, payload); !status.ok()) {
      std::cerr << "stage-status: " << status << "\n";
      return 2;
    }
    order.push_back(name);
  }

  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "demo-ssd", std::make_shared<storage::MemoryEngine>("demo-ssd"),
      /*quota_bytes=*/std::max<std::uint64_t>(quota, payload.size())});
  config.pfs = core::TierSpec{"demo-pfs", std::move(pfs), 0};
  config.dataset_dir = "data";
  config.placement.prefetch_lookahead = lookahead;
  config.placement.staging_buffer_bytes = 64 * 1024;
  config.placement.staging_chunk_bytes = 4 * 1024;
  {
    auto policy = core::MakePlacementPolicyByName(policy_name);
    if (!policy.ok()) {
      std::cerr << "stage-status: " << policy.status() << "\n";
      return 1;
    }
    config.policy = std::move(policy).value();
  }
  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    std::cerr << "stage-status: " << monarch.status() << "\n";
    return 2;
  }

  // Publish the epoch order (what a data loader does), then demand-read
  // the leading fraction of it so the cursor rolls and hits accrue; the
  // tail of the hint list stays speculative (staged but never read).
  monarch.value()->HintUpcoming(order);
  const int to_read = std::min(
      files, std::max(0, static_cast<int>(read_fraction * files + 0.5)));
  std::vector<std::byte> buffer(payload.size());
  for (int i = 0; i < to_read; ++i) {
    // Let the look-ahead window land before each read (a real loader's
    // compute time plays this role) so the demo reports deterministic
    // hit counts instead of racing demand against its own hints.
    monarch.value()->DrainPlacements();
    if (auto read = monarch.value()->Read(order[static_cast<std::size_t>(i)],
                                          0, buffer);
        !read.ok()) {
      std::cerr << "stage-status: read failed: " << read.status() << "\n";
      return 2;
    }
  }
  monarch.value()->DrainPlacements();

  const auto stats = monarch.value()->Stats();
  const auto& p = stats.placement;
  const std::uint64_t staged_unread =
      p.prefetch_completed > stats.prefetch_hits
          ? p.prefetch_completed - stats.prefetch_hits
          : 0;
  std::cout << "staging pipeline status (demo: " << files << " files, "
            << "lookahead " << lookahead << ", " << to_read
            << " demand reads)\n"
            << "  policy          name=" << monarch.value()->policy().Name()
            << " evicts_under_pressure="
            << (monarch.value()->policy().EvictsUnderPressure() ? "yes" : "no")
            << "\n"
            << "  evictions       count=" << p.evictions
            << " bytes=" << FormatByteSize(p.evicted_bytes)
            << " refused=" << p.eviction_refused
            << " pinned_skips=" << p.eviction_pinned_skips << "\n"
            << "  queue depth     demand=" << p.queue_depth_demand
            << " prefetch=" << p.queue_depth_prefetch << "\n"
            << "  buffer pool     used=" << FormatByteSize(
                   p.buffer_pool_used_bytes)
            << " / " << FormatByteSize(p.buffer_pool_capacity_bytes) << "\n"
            << "  in-flight       total="
            << FormatByteSize(p.inflight_bytes) << "\n";
  for (std::size_t i = 0; i < p.inflight_bytes_per_level.size(); ++i) {
    const std::string tier = i < stats.levels.size()
                                 ? stats.levels[i].tier_name
                                 : "level" + std::to_string(i);
    std::cout << "    " << tier << "  "
              << FormatByteSize(p.inflight_bytes_per_level[i]) << "\n";
  }
  std::cout << "  prefetch        scheduled=" << p.prefetch_scheduled
            << " completed=" << p.prefetch_completed
            << " promoted=" << p.prefetch_promoted
            << " cancelled=" << p.prefetch_cancelled << "\n"
            << "  hits/waste      hits=" << stats.prefetch_hits
            << " staged_unread=" << staged_unread << " hit_rate="
            << (p.prefetch_scheduled > 0
                    ? static_cast<double>(stats.prefetch_hits) /
                          static_cast<double>(p.prefetch_scheduled)
                    : 0.0)
            << "\n"
            << "  copy pipeline   chunks_copied=" << p.chunks_copied
            << " donated=" << FormatByteSize(p.donated_bytes)
            << " bytes_staged=" << FormatByteSize(p.bytes_staged) << "\n";
  return 0;
}

/// Small-file packing demo (ISSUE 9): pack a tiny-file dataset into
/// container extents on an in-memory PFS, read it through a pack-enabled
/// hierarchy — a sparse pass touching one chunk per file, then a full
/// pass — and print the pack index, chunk residency, compression ratio,
/// and chunk hit/miss counters.
int CmdPackStatus(const Args& args) {
  const int files = std::max(1, std::atoi(args.GetOr("files", "24").c_str()));
  const std::string codec = args.GetOr("codec", "lz");
  const std::uint64_t chunk_bytes = static_cast<std::uint64_t>(
      std::atoll(args.GetOr("chunk-bytes", "1024").c_str()));

  workload::SmallFileSpec spec;
  spec.directory = "data";
  spec.num_files = static_cast<std::uint64_t>(files);
  spec.num_classes = 4;
  spec.mean_file_bytes = 4 * 1024;
  spec.pack_extent_bytes = 32 * 1024;
  auto pfs = std::make_shared<storage::MemoryEngine>("demo-pfs");
  auto manifest = workload::GeneratePackedSmallFiles(*pfs, spec);
  if (!manifest.ok()) {
    std::cerr << "pack-status: " << manifest.status() << "\n";
    return 2;
  }
  auto local = std::make_shared<storage::MemoryEngine>("demo-ssd");

  core::MonarchConfig config;
  config.cache_tiers.push_back(
      core::TierSpec{"demo-ssd", local, /*quota_bytes=*/8 << 20});
  config.pfs = core::TierSpec{"demo-pfs", pfs, 0};
  config.dataset_dir = "data";
  config.placement.num_threads = 2;
  config.placement.pack.enabled = true;
  config.placement.pack.chunk_bytes = std::max<std::uint64_t>(1, chunk_bytes);
  config.placement.pack.codec = codec;
  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    std::cerr << "pack-status: " << monarch.status() << "\n";
    return 2;
  }

  // Sparse pass: one chunk-sized bite out of every file (cold — all
  // chunk misses), then let staging land, then a warm re-read of the
  // same slices (all chunk hits) and a full-file pass.
  std::vector<std::byte> buffer(16 * 1024);
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < files; ++i) {
      const std::string name =
          workload::SmallFilePath(spec, static_cast<std::uint64_t>(i));
      auto read = monarch.value()->Read(
          name, 0, std::span<std::byte>(buffer.data(), chunk_bytes));
      if (!read.ok()) {
        std::cerr << "pack-status: read failed: " << read.status() << "\n";
        return 2;
      }
    }
    monarch.value()->DrainPlacements();
  }
  for (int i = 0; i < files; ++i) {
    const std::string name =
        workload::SmallFilePath(spec, static_cast<std::uint64_t>(i));
    auto read = monarch.value()->Read(name, 0, buffer);
    if (!read.ok()) {
      std::cerr << "pack-status: read failed: " << read.status() << "\n";
      return 2;
    }
  }
  monarch.value()->DrainPlacements();

  const auto stats = monarch.value()->Stats();
  const auto& p = stats.placement;
  const double ratio =
      p.chunk_stored_bytes > 0
          ? static_cast<double>(p.bytes_staged) /
                static_cast<double>(p.chunk_stored_bytes)
          : 1.0;
  const double residency =
      stats.pack_logical_bytes > 0
          ? 100.0 * static_cast<double>(p.bytes_staged) /
                static_cast<double>(stats.pack_logical_bytes)
          : 0.0;
  std::cout << "pack status (demo: " << files << " small files, codec "
            << codec << ", chunk "
            << FormatByteSize(std::max<std::uint64_t>(1, chunk_bytes))
            << ")\n"
            << "  index           extents=" << stats.pack_extents
            << " logical_files=" << stats.pack_logical_files
            << " logical_bytes=" << FormatByteSize(stats.pack_logical_bytes)
            << "\n"
            << "  residency       chunks_staged=" << p.chunks_staged
            << " evicted=" << p.chunks_evicted
            << " staged_logical=" << FormatByteSize(p.bytes_staged)
            << " (" << Table::Num(std::min(residency, 100.0), 1)
            << "% of dataset)\n"
            << "  compression     stored=" << FormatByteSize(
                   p.chunk_stored_bytes)
            << " logical=" << FormatByteSize(p.bytes_staged)
            << " ratio=" << Table::Num(ratio, 2) << "x\n"
            << "  tier occupancy  " << FormatByteSize(
                   stats.levels[0].occupancy_bytes)
            << " of " << FormatByteSize(stats.levels[0].quota_bytes) << "\n"
            << "  reads           chunk_hits=" << stats.chunk_hits
            << " chunk_misses=" << stats.chunk_misses
            << " fallbacks=" << stats.degraded_fallbacks << "\n";
  return 0;
}

int CmdTraceExport(const Args& args) {
  if (args.positionals.size() < 2 || args.positionals[0] != "export") {
    std::cerr << "trace: expected 'trace export FILE.json'\n";
    return 1;
  }
  const std::string& out_path = args.positionals[1];
  const std::string wl = args.GetOr("workload", "demo");
  if (wl != "demo" && wl != "none") {
    std::cerr << "trace: unknown --workload '" << wl << "' (demo|none)\n";
    return 1;
  }
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (wl == "demo") {
    tracer.Enable();
    auto result = RunDemoWorkload();
    tracer.Disable();
    if (!result.ok()) {
      std::cerr << "trace: demo workload failed: " << result.status()
                << "\n";
      return 2;
    }
  }
  if (const Status status = tracer.ExportChromeJsonToFile(out_path);
      !status.ok()) {
    std::cerr << "trace: " << status << "\n";
    return 2;
  }
  std::cout << "wrote " << tracer.recorded_events() << " events ("
            << tracer.dropped_events() << " dropped) to " << out_path
            << "\n";
  return 0;
}

/// The ISSUE-2 degradation demo: train over an in-memory hierarchy whose
/// engines inject transient faults, verifying every read byte-for-byte
/// against the authoritative payloads. Exit 0 iff every read succeeded
/// with correct bytes — the resilience layer's whole contract.
int CmdFaults(const Args& args) {
  const double local_rate =
      std::atof(args.GetOr("local-rate", "0.05").c_str());
  const double pfs_rate = std::atof(args.GetOr("pfs-rate", "0.02").c_str());
  const double corrupt_rate =
      std::atof(args.GetOr("corrupt-rate", "0").c_str());
  const int epochs = std::max(1, std::atoi(args.GetOr("epochs", "3").c_str()));
  const int num_files =
      std::max(1, std::atoi(args.GetOr("files", "16").c_str()));
  // Epoch (0-based) during which the local tier goes hard-down halfway
  // through, then heals at the epoch boundary; -1 disables the outage.
  const int outage_epoch =
      std::atoi(args.GetOr("outage-epoch", "-1").c_str());

  constexpr std::size_t kFileBytes = 4096;
  auto pfs_inner = std::make_shared<storage::MemoryEngine>("pfs");
  std::vector<std::vector<std::byte>> golden(
      static_cast<std::size_t>(num_files));
  for (int i = 0; i < num_files; ++i) {
    auto& payload = golden[static_cast<std::size_t>(i)];
    payload.resize(kFileBytes);
    for (std::size_t b = 0; b < kFileBytes; ++b) {
      payload[b] = static_cast<std::byte>((b * 31 + i * 7) & 0xff);
    }
    if (auto s = pfs_inner->Write("data/f" + std::to_string(i) + ".bin",
                                  payload);
        !s.ok()) {
      std::cerr << "faults: seeding dataset failed: " << s << "\n";
      return 2;
    }
  }

  storage::FaultyEngine::FaultSpec local_spec;
  local_spec.read_failure_rate = local_rate;
  local_spec.write_failure_rate = local_rate;
  local_spec.read_corruption_rate = corrupt_rate;
  local_spec.seed = 7;
  auto local = std::make_shared<storage::FaultyEngine>(
      std::make_shared<storage::MemoryEngine>("local"), local_spec);

  storage::FaultyEngine::FaultSpec pfs_spec;
  pfs_spec.read_failure_rate = pfs_rate;
  pfs_spec.metadata_failure_rate = pfs_rate;
  pfs_spec.seed = 11;
  auto pfs = std::make_shared<storage::FaultyEngine>(pfs_inner, pfs_spec);

  core::MonarchConfig config;
  config.cache_tiers.push_back(
      core::TierSpec{"local", local, /*quota_bytes=*/1ull << 20});
  config.pfs = core::TierSpec{"pfs", pfs, 0};
  config.dataset_dir = "data";
  config.resilience.verify_on_read = corrupt_rate > 0;
  config.resilience.health.min_samples = 8;
  config.resilience.health.cooldown = Millis(20);
  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    std::cerr << "faults: " << monarch.status() << "\n";
    return 2;
  }

  std::vector<std::string> names;
  for (const auto& entry : (*monarch)->metadata().Snapshot()) {
    names.push_back(entry.name);
  }

  std::uint64_t read_errors = 0;
  std::uint64_t byte_mismatches = 0;
  std::vector<std::byte> buffer(kFileBytes);
  Table table({"epoch", "reads", "errors", "mismatches", "local_circuit",
               "circuit_opens"});
  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::uint64_t epoch_errors = 0;
    std::uint64_t epoch_mismatches = 0;
    for (std::size_t f = 0; f < names.size(); ++f) {
      if (epoch == outage_epoch && f == names.size() / 2) {
        local->FailUntilHealed();
        std::cout << "epoch " << epoch
                  << ": local tier hard-down injected mid-epoch\n";
      }
      auto read = (*monarch)->Read(names[f], 0, buffer);
      if (!read.ok() || read.value() != kFileBytes) {
        ++epoch_errors;
        continue;
      }
      // The dataset was written in namespace order, so golden[f] is the
      // authoritative payload of names[f] (Snapshot() sorts by name and
      // f0..f9-style names stay in write order for <10 files; compare by
      // content index parsed from the name to be safe).
      const std::size_t idx = static_cast<std::size_t>(
          std::atoi(names[f].substr(names[f].find('f') + 1).c_str()));
      if (!std::equal(buffer.begin(), buffer.end(), golden[idx].begin())) {
        ++epoch_mismatches;
      }
    }
    if (epoch == outage_epoch) {
      local->Heal();
      std::cout << "epoch " << epoch << ": local tier healed\n";
    }
    (*monarch)->DrainPlacements();
    // In-memory epochs are microseconds; pause past the breaker cooldown
    // so an opened circuit gets its half-open probe window and the table
    // shows the recovery, as a real epoch boundary would.
    PreciseSleep(Millis(25));
    read_errors += epoch_errors;
    byte_mismatches += epoch_mismatches;
    const auto stats = (*monarch)->Stats();
    table.AddRow({std::to_string(epoch), std::to_string(names.size()),
                  std::to_string(epoch_errors),
                  std::to_string(epoch_mismatches),
                  core::CircuitStateName(stats.levels[0].circuit_state),
                  std::to_string(stats.levels[0].circuit_opens)});
  }
  table.PrintAscii(std::cout);

  const auto stats = (*monarch)->Stats();
  std::uint64_t driver_retries = 0;
  for (const auto& level : stats.levels) driver_retries += level.retries;
  std::cout << "injected: local=" << local->injected_failures()
            << " pfs=" << pfs->injected_failures()
            << " corrupted=" << local->injected_corruptions() << "\n"
            << "absorbed: storage.retries=" << driver_retries
            << " degraded_fallbacks=" << stats.degraded_fallbacks
            << " (circuit_open=" << stats.fallbacks_circuit_open
            << " tier_error=" << stats.fallbacks_tier_error
            << " corruption=" << stats.fallbacks_corruption << ")\n"
            << "placement: retries=" << stats.placement.retries
            << " quarantined=" << stats.placement.quarantined
            << " abandoned=" << stats.placement.abandoned
            << " completed=" << stats.placement.completed << "\n"
            << "app-visible: errors=" << read_errors
            << " mismatches=" << byte_mismatches << "\n";
  if (read_errors == 0 && byte_mismatches == 0) {
    std::cout << "RESILIENT: training saw zero errors\n";
    return 0;
  }
  std::cout << "DEGRADED: training saw errors\n";
  return 2;
}

/// The ISSUE-4 cooperative-caching demo: N in-memory "nodes" (one
/// Monarch instance each) over ONE shared dataset, wired through a
/// cluster::PeerGroup. Epoch 1 stages each node's consistent-hash shard;
/// epoch 2+ serves the other shards over the simulated interconnect.
/// Dumps the per-node directory view the satellite asks for.
int CmdPeerStatus(const Args& args) {
  const int nodes = std::max(2, std::atoi(args.GetOr("nodes", "3").c_str()));
  const int num_files =
      std::max(1, std::atoi(args.GetOr("files", "8").c_str()));
  const int epochs = std::max(1, std::atoi(args.GetOr("epochs", "2").c_str()));
  const int replication =
      std::max(1, std::atoi(args.GetOr("replication", "1").c_str()));

  constexpr std::size_t kFileBytes = 4096;
  auto pfs = std::make_shared<storage::MemoryEngine>("demo-pfs");
  const std::vector<std::byte> payload(kFileBytes);
  for (int i = 0; i < num_files; ++i) {
    if (auto s = pfs->Write("data/f" + std::to_string(i) + ".bin", payload);
        !s.ok()) {
      std::cerr << "peer-status: seeding dataset failed: " << s << "\n";
      return 2;
    }
  }

  cluster::PeerOptions options;
  options.replication = replication;
  cluster::PeerGroup group(nodes, options);

  std::vector<std::unique_ptr<core::Monarch>> instances;
  for (int n = 0; n < nodes; ++n) {
    auto local = std::make_shared<storage::MemoryEngine>(
        "local" + std::to_string(n));
    group.RegisterNode(n, local);
    core::MonarchConfig config;
    config.cache_tiers.push_back(
        core::TierSpec{"local" + std::to_string(n), local,
                       /*quota_bytes=*/1ull << 20});
    config.peer_tier = core::TierSpec{"peer", group.MakePeerEngine(n), 0};
    config.peer_view = group.MakePeerView(n);
    config.pfs = core::TierSpec{"demo-pfs", pfs, 0};
    config.dataset_dir = "data";
    auto monarch = core::Monarch::Create(std::move(config));
    if (!monarch.ok()) {
      std::cerr << "peer-status: node " << n << ": " << monarch.status()
                << "\n";
      return 2;
    }
    instances.push_back(std::move(monarch).value());
  }

  // Epochs run node-by-node so the demo is deterministic: after epoch 1
  // every shard is staged on its owner, so epoch 2's foreign reads all
  // travel the interconnect.
  std::vector<std::byte> buffer(kFileBytes);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (auto& node : instances) {
      for (const auto& entry : node->metadata().Snapshot()) {
        if (auto read = node->Read(entry.name, 0, buffer); !read.ok()) {
          std::cerr << "peer-status: read failed: " << read.status() << "\n";
          return 2;
        }
      }
    }
    for (auto& node : instances) node->DrainPlacements();
  }

  std::cout << "cooperative peer cache status (demo: " << nodes << " nodes, "
            << num_files << " files, " << epochs << " epochs, replication "
            << replication << ")\n";
  Table table({"node", "owned", "placed", "remote_hits", "peer_reads",
               "pfs_reads", "peer_fallbacks"});
  for (int n = 0; n < nodes; ++n) {
    const auto peer_stats = group.directory().StatsFor(n);
    const auto stats = instances[static_cast<std::size_t>(n)]->Stats();
    const auto& peer_level =
        stats.levels[stats.levels.size() - 2];  // always present here
    table.AddRow({std::to_string(n), std::to_string(peer_stats.owned),
                  std::to_string(peer_stats.placed),
                  std::to_string(peer_stats.remote_hits),
                  std::to_string(peer_level.reads),
                  std::to_string(stats.pfs_reads()),
                  std::to_string(stats.fallbacks_peer_miss +
                                 stats.fallbacks_peer_error)});
  }
  table.PrintAscii(std::cout);
  std::cout << "directory: entries=" << group.directory().entries()
            << " placed_copies=" << group.directory().placed_copies() << "\n"
            << "interconnect: transfers=" << group.network()->transfers()
            << " bytes=" << FormatByteSize(group.network()->bytes_transferred())
            << "\n";
  return 0;
}

const char* NodeStateName(cluster::NodeState state) {
  switch (state) {
    case cluster::NodeState::kAbsent: return "absent";
    case cluster::NodeState::kUp: return "up";
    case cluster::NodeState::kDown: return "DOWN";
  }
  return "?";
}

/// The ISSUE-7 churn-survival demo: N in-memory nodes stage a replicated
/// dataset, one node is killed (ads retracted, ownership shifts, repair
/// queued), the re-staging pumps restore the replication factor, and the
/// node rejoins. Dumps per-node liveness, ring version, replication
/// health, and re-stage queue depth at each step.
int CmdClusterStatus(const Args& args) {
  const int nodes = std::max(2, std::atoi(args.GetOr("nodes", "3").c_str()));
  const int num_files =
      std::max(1, std::atoi(args.GetOr("files", "9").c_str()));
  const int replication =
      std::max(1, std::atoi(args.GetOr("replication", "2").c_str()));
  const int victim =
      std::min(nodes - 1,
               std::max(0, std::atoi(args.GetOr("kill", "1").c_str())));

  constexpr std::size_t kFileBytes = 4096;
  auto pfs = std::make_shared<storage::MemoryEngine>("demo-pfs");
  const std::vector<std::byte> payload(kFileBytes);
  for (int i = 0; i < num_files; ++i) {
    if (auto s = pfs->Write("data/f" + std::to_string(i) + ".bin", payload);
        !s.ok()) {
      std::cerr << "cluster-status: seeding dataset failed: " << s << "\n";
      return 2;
    }
  }

  cluster::PeerOptions options;
  options.replication = replication;
  cluster::PeerGroup group(nodes, options);
  cluster::FileDirectory& directory = group.directory();

  std::vector<std::unique_ptr<core::Monarch>> instances;
  for (int n = 0; n < nodes; ++n) {
    auto local = std::make_shared<storage::MemoryEngine>(
        "local" + std::to_string(n));
    group.RegisterNode(n, local);
    core::MonarchConfig config;
    config.cache_tiers.push_back(
        core::TierSpec{"local" + std::to_string(n), local,
                       /*quota_bytes=*/1ull << 20});
    config.peer_tier = core::TierSpec{"peer", group.MakePeerEngine(n), 0};
    config.peer_view = group.MakePeerView(n);
    config.pfs = core::TierSpec{"demo-pfs", pfs, 0};
    config.dataset_dir = "data";
    auto monarch = core::Monarch::Create(std::move(config));
    if (!monarch.ok()) {
      std::cerr << "cluster-status: node " << n << ": " << monarch.status()
                << "\n";
      return 2;
    }
    instances.push_back(std::move(monarch).value());
  }

  // Two staging epochs: every owner (primary and replicas) ends up
  // holding its shard.
  std::vector<std::byte> buffer(kFileBytes);
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (auto& node : instances) {
      for (const auto& entry : node->metadata().Snapshot()) {
        if (auto read = node->Read(entry.name, 0, buffer); !read.ok()) {
          std::cerr << "cluster-status: read failed: " << read.status()
                    << "\n";
          return 2;
        }
      }
      node->DrainPlacements();
    }
  }

  const auto print_state = [&](const char* phase) {
    std::cout << "\n[" << phase << "] ring version "
              << directory.membership_version() << ", live "
              << directory.live_nodes() << "/" << nodes << "\n";
    Table table({"node", "state", "owned", "placed", "remote_hits",
                 "restage_pending"});
    for (int n = 0; n < nodes; ++n) {
      const auto stats = directory.StatsFor(n);
      table.AddRow({std::to_string(n), NodeStateName(stats.state),
                    std::to_string(stats.owned),
                    std::to_string(stats.placed),
                    std::to_string(stats.remote_hits),
                    std::to_string(stats.restage_pending)});
    }
    table.PrintAscii(std::cout);
    const auto health = directory.CheckReplication();
    std::cout << "replication: files=" << health.files << " at_target="
              << health.at_target << " below_target=" << health.below_target
              << " unhosted=" << health.unhosted << " (target "
              << std::min(replication, directory.live_nodes()) << ")\n";
  };

  std::cout << "cluster churn status (demo: " << nodes << " nodes, "
            << num_files << " files, replication " << replication << ")\n";
  print_state("staged");

  // Kill the victim: its ads are retracted atomically, ownership walks
  // past it, and repair work lands on the survivors' re-stage queues.
  group.KillNode(victim);
  print_state("node killed");

  // Drain the repair queues through each survivor's prefetch lane.
  for (int n = 0; n < nodes; ++n) {
    for (const std::string& name : directory.TakeRestage(
             n, static_cast<std::size_t>(num_files))) {
      auto staged = instances[static_cast<std::size_t>(n)]->RestageFile(name);
      if (staged.ok() && staged.value() > 0) {
        directory.CountRestageCompleted(staged.value());
      }
    }
    instances[static_cast<std::size_t>(n)]->DrainPlacements();
  }
  print_state("repaired");

  // The victim rejoins: surviving local copies are re-advertised first,
  // so the rejoin delta only repairs what was actually lost.
  instances[static_cast<std::size_t>(victim)]->ReadvertisePlacedCopies();
  group.ReviveNode(victim);
  print_state("rejoined");

  std::cout << "\nrestage: enqueued=" << directory.restage_enqueued_total()
            << " completed=" << directory.restage_completed_total()
            << " queued_now=" << directory.RestageQueueDepth() << "\n";
  const auto health = directory.CheckReplication();
  if (health.below_target == 0 && health.unhosted == 0) {
    std::cout << "HEALTHY: replication restored after churn\n";
    return 0;
  }
  std::cout << "DEGRADED: " << health.below_target
            << " files below replication target\n";
  return 2;
}

/// The ISSUE-5 write-back checkpoint demo: a CheckpointManager over an
/// in-memory two-level hierarchy saves N checkpoints, drains them to the
/// demo PFS (optionally bandwidth-capped), and dumps the manifest table
/// the satellite asks for.
int CmdCkptStatus(const Args& args) {
  const int saves = std::max(1, std::atoi(args.GetOr("saves", "6").c_str()));
  const int keep = std::max(0, std::atoi(args.GetOr("keep", "0").c_str()));
  const auto bytes = ParseByteSize(args.GetOr("bytes", "256KiB"));
  const auto bandwidth = ParseByteSize(args.GetOr("drain-bandwidth", "0"));
  if (!bytes.ok() || !bandwidth.ok()) {
    std::cerr << "ckpt-status: " << (bytes.ok() ? bandwidth : bytes).status()
              << "\n";
    return 1;
  }

  // Local quota of 4 checkpoints: with more saves than that, the demo
  // also shows durable-copy eviction under capacity pressure.
  std::vector<core::StorageDriverPtr> drivers;
  drivers.push_back(std::make_unique<core::StorageDriver>(
      "local-ram", std::make_shared<storage::MemoryEngine>("local-ram"),
      bytes.value() * 4 + 4096, /*read_only=*/false));
  drivers.push_back(std::make_unique<core::StorageDriver>(
      "demo-pfs", std::make_shared<storage::MemoryEngine>("demo-pfs"),
      /*quota_bytes=*/0, /*read_only=*/true));
  auto hierarchy = core::StorageHierarchy::Create(std::move(drivers));
  if (!hierarchy.ok()) {
    std::cerr << "ckpt-status: " << hierarchy.status() << "\n";
    return 2;
  }

  ckpt::CheckpointOptions options;
  options.keep_last = keep;
  options.drain_bandwidth_bytes_per_sec = bandwidth.value();
  options.chunk_bytes = 64 * 1024;
  options.buffer_bytes = 256 * 1024;
  ckpt::CheckpointManager manager(**hierarchy, options);

  std::vector<std::byte> payload(bytes.value());
  for (int i = 0; i < saves; ++i) {
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::byte>((j + static_cast<std::size_t>(i)) &
                                          0xFF);
    }
    if (auto s = manager.Save("model-" + std::to_string(i), payload); !s.ok()) {
      std::cerr << "ckpt-status: save failed: " << s << "\n";
      return 2;
    }
  }
  if (auto s = manager.Flush(); !s.ok()) {
    std::cerr << "ckpt-status: flush failed: " << s << "\n";
    return 2;
  }

  std::cout << "checkpoint write-back status (demo: " << saves << " saves of "
            << FormatByteSize(bytes.value()) << ", keep-last "
            << (keep == 0 ? std::string("all") : std::to_string(keep))
            << ", drain cap "
            << (bandwidth.value() == 0
                    ? std::string("none")
                    : FormatByteSize(bandwidth.value()) + "/s")
            << ")\n";
  Table table({"gen", "name", "bytes", "crc32c", "state", "local"});
  for (const auto& entry : manager.ManifestView()) {
    std::ostringstream crc;
    crc << std::hex << entry.crc;
    table.AddRow({std::to_string(entry.gen), entry.name,
                  std::to_string(entry.bytes), crc.str(),
                  ckpt::CkptStateName(entry.state),
                  entry.local_present ? "yes" : "no"});
  }
  table.PrintAscii(std::cout);
  const auto stats = manager.GetStats();
  std::cout << "saves=" << stats.saves << " drained="
            << stats.drains_completed << " drain_bytes=" << stats.drain_bytes
            << " local_evictions=" << stats.local_evictions
            << " pruned=" << stats.pruned
            << " pending=" << stats.pending_drains << "\n";
  return 0;
}

/// Multi-tenant QoS demo (DESIGN.md "Multi-tenant QoS"): an interactive,
/// a training, and a full-scan tenant share one bandwidth broker. The
/// demand tenants sip well inside their weighted shares; the scan floods
/// past its own and absorbs every throttle wait. Three job footprints
/// then go through admission control against --capacity.
int CmdQosStatus(const Args& args) {
  const auto bandwidth = ParseByteSize(args.GetOr("bandwidth", "2MiB"));
  const auto capacity = ParseByteSize(args.GetOr("capacity", "64MiB"));
  if (!bandwidth.ok() || !capacity.ok()) {
    std::cerr << "qos-status: "
              << (bandwidth.ok() ? capacity : bandwidth).status() << "\n";
    return 1;
  }

  qos::BandwidthBroker::Options broker_options;
  broker_options.total_rate_bps = static_cast<double>(bandwidth.value());
  broker_options.work_conserving = true;
  qos::BandwidthBroker broker(broker_options);

  const auto make_tenant = [](int id, const char* name, qos::IoClass cls,
                              double weight, bool low_retention) {
    qos::TenantContext tenant;
    tenant.tenant_id = id;
    tenant.name = name;
    tenant.io_class = cls;
    tenant.weight = weight;
    tenant.low_retention = low_retention;
    return tenant;
  };
  const auto interactive =
      make_tenant(0, "interactive", qos::IoClass::kInteractive, 8.0, false);
  const auto training =
      make_tenant(1, "training", qos::IoClass::kTraining, 4.0, false);
  const auto scan = make_tenant(2, "scan", qos::IoClass::kScan, 2.0, true);
  broker.RegisterTenant(interactive);
  broker.RegisterTenant(training);
  broker.RegisterTenant(scan);

  // All three are active, so shares split 8:4:2. The demand charges sit
  // inside their buckets' burst; the scan charge overdrives its share.
  broker.Acquire(interactive.tenant_id, bandwidth.value() / 200);
  broker.Acquire(training.tenant_id, bandwidth.value() / 200);
  broker.Acquire(scan.tenant_id, bandwidth.value() / 16);

  std::cout << "multi-tenant QoS status (demo: "
            << FormatByteSize(bandwidth.value()) << "/s shared pipe, "
            << FormatByteSize(capacity.value()) << " admission capacity)\n";
  Table table({"tenant", "class", "weight", "share", "consumed", "waits",
               "throttled_us"});
  const auto usage = broker.Usage();
  const auto row = [&](int tenant_id) -> const auto* {
    for (const auto& entry : usage) {
      if (entry.tenant_id == tenant_id) return &entry;
    }
    std::abort();  // all three tenants are registered above
  };
  for (int id : {0, 1, 2}) {
    const auto* entry = row(id);
    table.AddRow({entry->name, std::string(qos::IoClassName(entry->io_class)),
                  std::to_string(static_cast<int>(entry->weight)),
                  FormatByteSize(static_cast<std::uint64_t>(entry->share_bps)) +
                      "/s",
                  std::to_string(entry->consumed_bytes),
                  std::to_string(entry->throttle_waits),
                  std::to_string(entry->throttled_us)});
  }
  table.PrintAscii(std::cout);

  // Admission: a half-capacity trainer and a quarter-capacity serving
  // job fit; a third job tips past the queue threshold; a full-scan
  // footprint larger than 1.5x capacity is rejected outright.
  qos::AdmissionController::Options admission_options;
  admission_options.capacity_bytes = capacity.value();
  qos::AdmissionController admission(admission_options);
  (void)admission.Request(training, capacity.value() / 2);
  (void)admission.Request(interactive, capacity.value() / 4);
  (void)admission.Request(training, capacity.value() / 4);
  (void)admission.Request(scan, capacity.value() * 2);
  const auto stats = admission.GetStats();
  std::cout << "admission: admitted=" << stats.admitted
            << " queued=" << stats.queued << " rejected=" << stats.rejected
            << " committed=" << FormatByteSize(stats.committed_bytes) << "\n";

  const bool isolated = row(2)->throttle_waits > 0 &&
                        row(0)->throttle_waits == 0 &&
                        row(1)->throttle_waits == 0;
  std::cout << (isolated ? "ISOLATED: scan throttled, demand untouched"
                         : "FAILED: throttling landed on the wrong class")
            << "\n";
  return isolated ? 0 : 2;
}

/// Async read-ring demo (DESIGN.md "Async read path & zero-copy lane"):
/// stage a small in-memory dataset, submit lease-mode reads through the
/// submission ring, verify every completion against the authoritative
/// bytes, and print the ring status monarchctl-style.
int CmdReadRing(const Args& args) {
  const int files = std::max(1, std::atoi(args.GetOr("files", "8").c_str()));
  const int ops = std::max(1, std::atoi(args.GetOr("ops", "64").c_str()));
  const int depth = std::max(1, std::atoi(args.GetOr("depth", "32").c_str()));
  const int workers =
      std::max(1, std::atoi(args.GetOr("workers", "2").c_str()));
  const std::string zero_copy_flag = args.GetOr("zero-copy", "true");
  if (zero_copy_flag != "true" && zero_copy_flag != "false") {
    std::cerr << "read-ring: unknown --zero-copy '" << zero_copy_flag
              << "' (true|false)\n";
    return 1;
  }
  const bool zero_copy = zero_copy_flag == "true";

  auto pfs = std::make_shared<storage::MemoryEngine>("demo-pfs");
  std::vector<std::vector<std::byte>> payloads;
  std::vector<std::string> names;
  for (int i = 0; i < files; ++i) {
    std::vector<std::byte> payload(4096);
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::byte>((j * 31 + static_cast<std::size_t>(i))
                                          & 0xFF);
    }
    const std::string name = "data/f" + std::to_string(i) + ".bin";
    if (const Status status = pfs->Write(name, payload); !status.ok()) {
      std::cerr << "read-ring: " << status << "\n";
      return 2;
    }
    names.push_back(name);
    payloads.push_back(std::move(payload));
  }

  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "demo-ssd", std::make_shared<storage::MemoryEngine>("demo-ssd"),
      /*quota_bytes=*/1ull << 20});
  config.pfs = core::TierSpec{"demo-pfs", std::move(pfs), 0};
  config.dataset_dir = "data";
  config.read.depth = depth;
  config.read.worker_threads = workers;
  config.read.zero_copy = zero_copy;
  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    std::cerr << "read-ring: " << monarch.status() << "\n";
    return 2;
  }
  // Warm pass so the placement pipeline stages the dataset — the ring
  // demo then reads from the cache tier (the zero-copy lane).
  std::vector<std::byte> warm(4096);
  for (const std::string& name : names) {
    if (auto read = monarch.value()->Read(name, 0, warm); !read.ok()) {
      std::cerr << "read-ring: warm read failed: " << read.status() << "\n";
      return 2;
    }
  }
  monarch.value()->DrainPlacements();

  core::ReadRing& ring = monarch.value()->read_ring();
  std::vector<core::ReadOp> batch;
  for (int i = 0; i < ops; ++i) {
    core::ReadOp op;
    op.name = names[static_cast<std::size_t>(i) % names.size()];
    op.lease = true;
    op.user_data = static_cast<std::uint64_t>(i);
    batch.push_back(std::move(op));
  }
  const std::size_t accepted = ring.Submit(std::move(batch));

  std::vector<core::ReadCompletion> completions;
  while (completions.size() < accepted) {
    if (ring.HarvestBlocking(completions) == 0 &&
        completions.size() < accepted) {
      break;  // ring drained without delivering everything (shutdown)
    }
  }
  int failures = 0;
  for (const core::ReadCompletion& c : completions) {
    const auto& expect =
        payloads[static_cast<std::size_t>(c.user_data) % payloads.size()];
    if (!c.bytes.ok() || c.lease.size() != expect.size() ||
        !std::equal(expect.begin(), expect.end(), c.lease.data().begin())) {
      ++failures;
    }
  }

  const core::ReadRing::RingStats stats = ring.Stats();
  std::cout << "read ring status (demo: " << files << " files, " << accepted
            << " lease ops, zero-copy "
            << (zero_copy ? "enabled" : "disabled") << ")\n"
            << "  ring            depth=" << stats.depth
            << " workers=" << ring.options().worker_threads
            << " queued=" << stats.queued << " inflight=" << stats.inflight
            << "\n"
            << "  ops             submitted=" << stats.submitted
            << " completed=" << stats.completed
            << " cancelled=" << stats.cancelled << "\n"
            << "  zero-copy       hits=" << stats.zero_copy_reads
            << " copies=" << stats.copy_reads << " hit_rate="
            << Table::Num(100.0 * stats.zero_copy_hit_rate(), 1) << "%\n"
            << "  verify          ok=" << (completions.size() -
                                           static_cast<std::size_t>(failures))
            << "/" << completions.size() << " byte-identical\n";
  return failures == 0 && completions.size() == accepted ? 0 : 2;
}

int Main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::cerr << args.status() << "\n";
    PrintUsage();
    return 1;
  }
  const std::string& command = args->command;
  if (command == "gen") return CmdGen(*args);
  if (command == "inspect") return CmdInspect(*args);
  if (command == "run") return CmdRun(*args);
  if (command == "replay") return CmdReplay(*args);
  if (command == "metrics") return CmdMetrics(*args);
  if (command == "trace") return CmdTraceExport(*args);
  if (command == "stage-status") return CmdStageStatus(*args);
  if (command == "pack-status") return CmdPackStatus(*args);
  if (command == "faults") return CmdFaults(*args);
  if (command == "peer-status") return CmdPeerStatus(*args);
  if (command == "cluster-status") return CmdClusterStatus(*args);
  if (command == "read-ring") return CmdReadRing(*args);
  if (command == "ckpt-status") return CmdCkptStatus(*args);
  if (command == "qos-status") return CmdQosStatus(*args);
  PrintUsage();
  return command.empty() ? 1 : 1;
}

}  // namespace
}  // namespace monarch::ctl

int main(int argc, char** argv) { return monarch::ctl::Main(argc, argv); }
