// Trace-replay example: capture the I/O pattern a training epoch issues,
// serialize it, and replay it against two different storage stacks to
// compare their capacity for the exact same access pattern — a common
// storage-research workflow built from this repo's pieces.
//
// Build & run:  ./build/examples/trace_replay
#include <filesystem>
#include <iostream>

#include "dlsim/data_loader.h"
#include "util/byte_units.h"
#include "dlsim/record_opener.h"
#include "storage/engine_factory.h"
#include "util/table.h"
#include "workload/dataset_generator.h"
#include "workload/trace.h"

namespace fs = std::filesystem;
using namespace monarch;

int main() {
  const fs::path work = fs::temp_directory_path() / "monarch_trace";
  fs::remove_all(work);

  // Dataset on a raw directory.
  workload::DatasetSpec spec = workload::DatasetSpec::Tiny();
  spec.num_files = 24;
  spec.samples_per_file = 8;
  spec.mean_sample_bytes = 8192;
  auto raw = storage::MakeRawEngine(work / "data");
  auto manifest = workload::GenerateDataset(*raw, spec);
  if (!manifest.ok()) {
    std::cerr << "dataset generation failed: " << manifest.status() << "\n";
    return 1;
  }

  // 1. Capture: run one loader epoch over a traced raw engine.
  workload::TraceRecorder recorder;
  auto traced =
      std::make_shared<workload::TracingEngine>(raw, recorder);
  dlsim::EngineOpener opener(traced);
  dlsim::ResourceMonitor monitor(4, 1);
  dlsim::LoaderConfig loader_config;
  loader_config.reader_threads = 4;
  loader_config.read_chunk_bytes = 16 * 1024;
  {
    dlsim::EpochLoader loader(manifest->file_paths, 1, opener, monitor,
                              loader_config);
    std::uint64_t samples = 0;
    while (loader.queue().Pop().has_value()) ++samples;
    loader.Finish();
    if (!loader.status().ok()) {
      std::cerr << "capture epoch failed: " << loader.status() << "\n";
      return 1;
    }
    std::cout << "captured epoch: " << samples << " samples\n";
  }
  const auto events = recorder.Drain();
  const std::string serialized = workload::SerializeTrace(events);
  std::cout << "trace: " << events.size() << " events, "
            << FormatByteSize(serialized.size()) << " serialized\n";
  std::cout << "first lines:\n"
            << serialized.substr(0, serialized.find('\n', serialized.find(
                                          '\n', serialized.find('\n') + 1) +
                                          1) + 1);

  // 2. Round-trip through the text form (a real workflow would save it).
  auto parsed = workload::ParseTrace(serialized);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return 1;
  }

  // 3. Replay the identical pattern against two device models.
  Table table({"backend", "read_ops", "bytes", "elapsed_s", "MB/s"});
  struct Arm {
    std::string name;
    storage::StorageEnginePtr engine;
  };
  for (Arm& arm : std::vector<Arm>{
           {"lustre-sim (contended)",
            storage::MakeLustreEngine(work / "data", 7)},
           {"local-ssd-sim", storage::MakeLocalSsdEngine(work / "data")}}) {
    auto stats = workload::ReplayTrace(parsed.value(), *arm.engine,
                                       /*parallelism=*/4);
    if (!stats.ok()) {
      std::cerr << "replay failed: " << stats.status() << "\n";
      return 1;
    }
    const double mbps = stats->elapsed_seconds > 0
                            ? static_cast<double>(stats->bytes) / 1e6 /
                                  stats->elapsed_seconds
                            : 0;
    table.AddRow({arm.name, std::to_string(stats->ops),
                  FormatByteSize(stats->bytes),
                  Table::Num(stats->elapsed_seconds, 2),
                  Table::Num(mbps, 1)});
  }
  table.PrintAscii(std::cout);
  std::cout << "\nSame request stream, two device models: the SSD profile "
               "sustains several times\nthe throughput of the contended "
               "PFS profile — the gap MONARCH exploits.\n";
  fs::remove_all(work);
  return 0;
}
