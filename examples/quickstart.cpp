// Quickstart: the smallest end-to-end MONARCH program.
//
//   1. Generate a tiny TFRecord dataset into a directory standing in for
//      the shared PFS.
//   2. Configure a two-level hierarchy (simulated local SSD above a
//      simulated, contended Lustre) — the paper's §III-B configuration.
//   3. Read files through Monarch::Read and watch the middleware stage
//      them: the first pass is served by the PFS, the second by the
//      local tier.
//
// Build & run:  ./build/examples/quickstart
//
// Pass `--trace-out trace.json` to record the whole run with the
// observability layer and export Chrome trace_event JSON — open the file
// in chrome://tracing or https://ui.perfetto.dev to see the staging
// overlap with the epoch-1 reads (docs/OBSERVABILITY.md §3 walks through
// the result).
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/monarch.h"
#include "obs/event_tracer.h"
#include "storage/engine_factory.h"
#include "util/byte_units.h"
#include "workload/dataset_generator.h"

namespace fs = std::filesystem;
using namespace monarch;

namespace {

void PrintTierStats(const core::MonarchStats& stats, const char* moment) {
  std::cout << "\n-- tier stats " << moment << " --\n";
  for (const auto& level : stats.levels) {
    std::cout << "  " << level.tier_name << ": reads=" << level.reads
              << " bytes=" << FormatByteSize(level.bytes)
              << " occupancy=" << FormatByteSize(level.occupancy_bytes);
    if (level.quota_bytes > 0) {
      std::cout << "/" << FormatByteSize(level.quota_bytes);
    }
    std::cout << "\n";
  }
  std::cout << "  placements: completed=" << stats.placement.completed
            << " bytes-staged=" << FormatByteSize(stats.placement.bytes_staged)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[i + 1];
  }
  if (!trace_out.empty()) obs::EventTracer::Global().Enable();

  const fs::path work = fs::temp_directory_path() / "monarch_quickstart";
  fs::remove_all(work);

  // 1. Stage a small dataset on the "PFS" directory (untimed, raw speed).
  auto raw = storage::MakeRawEngine(work / "pfs");
  auto spec = workload::DatasetSpec::Tiny();
  auto manifest = workload::GenerateDataset(*raw, spec);
  if (!manifest.ok()) {
    std::cerr << "dataset generation failed: " << manifest.status() << "\n";
    return 1;
  }
  std::cout << "generated " << manifest->num_files() << " record files ("
            << FormatByteSize(manifest->total_bytes) << ") under "
            << (work / "pfs") << "\n";

  // 2. Two-level hierarchy: local SSD (quota'd) over contended Lustre.
  core::MonarchConfig config;
  config.cache_tiers.push_back(core::TierSpec{
      "local-ssd", storage::MakeLocalSsdEngine(work / "ssd"), 64 * kMiB});
  config.pfs = core::TierSpec{
      "lustre", storage::MakeLustreEngine(work / "pfs", /*seed=*/42), 0};
  config.dataset_dir = spec.directory;
  config.placement.num_threads = 4;

  auto monarch = core::Monarch::Create(std::move(config));
  if (!monarch.ok()) {
    std::cerr << "monarch init failed: " << monarch.status() << "\n";
    return 1;
  }
  std::cout << "indexed " << (*monarch)->Stats().files_indexed
            << " files in " << (*monarch)->Stats().metadata_init_seconds
            << "s\n";

  // 3. Epoch 1: every first read is intercepted, served from the PFS and
  //    staged to the SSD in the background.
  std::vector<std::byte> buffer(4096);
  for (const auto& path : manifest->file_paths) {
    auto read = (*monarch)->Read(path, 0, buffer);
    if (!read.ok()) {
      std::cerr << "read failed: " << read.status() << "\n";
      return 1;
    }
  }
  (*monarch)->DrainPlacements();
  PrintTierStats((*monarch)->Stats(), "after epoch 1");

  // Epoch 2: the same reads now come from the local tier.
  for (const auto& path : manifest->file_paths) {
    (void)(*monarch)->Read(path, 0, buffer);
  }
  PrintTierStats((*monarch)->Stats(), "after epoch 2");

  std::cout << "\nNote how the PFS read count stopped growing after epoch 1"
            << " — that is the\nI/O-pressure reduction the paper measures."
            << "\n";
  (*monarch)->Shutdown();

  if (!trace_out.empty()) {
    obs::EventTracer& tracer = obs::EventTracer::Global();
    tracer.Disable();
    if (auto status = tracer.ExportChromeJsonToFile(trace_out); !status.ok()) {
      std::cerr << "trace export failed: " << status << "\n";
      return 1;
    }
    std::cout << "\nwrote " << tracer.recorded_events()
              << " trace events to " << trace_out
              << " — open it in chrome://tracing or https://ui.perfetto.dev"
              << "\n";
  }

  fs::remove_all(work);
  return 0;
}
