// Partial-cache example: the paper's 200 GiB scenario — a dataset larger
// than the local tier. TensorFlow's Dataset.cache refuses this outright
// (it needs the whole dataset to fit); MONARCH caches what fits and keeps
// serving the remainder from the PFS, still cutting PFS traffic roughly
// in half.
//
// Build & run:  ./build/examples/partial_cache
#include <filesystem>
#include <iostream>

#include "dlsim/caching_opener.h"
#include "dlsim/setups.h"
#include "util/byte_units.h"
#include "util/table.h"

namespace fs = std::filesystem;
using namespace monarch;

int main() {
  const double scale = 0.12;
  const fs::path work = fs::temp_directory_path() / "monarch_partial";
  fs::remove_all(work);

  dlsim::ExperimentConfig config;
  config.dataset = workload::DatasetSpec::ImageNet200GiB(scale);
  config.model = dlsim::ModelProfile::LeNet();
  config.epochs = 3;
  // The local tier holds only ~half the dataset, as on the Frontera node.
  config.local_quota_bytes =
      static_cast<std::uint64_t>(115.0 * scale * 1024 * 1024);
  config.run_seed = 21;

  std::cout << "dataset ~" << FormatByteSize(config.dataset.approx_total_bytes())
            << ", local tier quota "
            << FormatByteSize(config.local_quota_bytes) << "\n\n";

  // TensorFlow's cache transformation cannot handle this dataset at all:
  auto caching = dlsim::MakeVanillaCachingSetup(work / "pfs", work / "ssd_c",
                                                config);
  std::cout << "vanilla-caching: "
            << (caching.ok() ? "accepted (unexpected!)"
                             : caching.status().ToString())
            << "\n\n";

  // MONARCH handles it by caching what fits.
  auto setup = dlsim::MakeMonarchSetup(work / "pfs", work / "ssd", config);
  if (!setup.ok()) {
    std::cerr << "setup failed: " << setup.status() << "\n";
    return 1;
  }
  std::cout << "training with MONARCH (3 epochs)..." << std::endl;
  auto result = setup->trainer->Train();
  if (!result.ok()) {
    std::cerr << "training failed: " << result.status() << "\n";
    return 1;
  }
  setup->monarch->DrainPlacements();

  const auto stats = setup->monarch->Stats();
  Table table({"metric", "value"});
  table.AddRow({"files indexed", std::to_string(stats.files_indexed)});
  table.AddRow({"files placed on local tier",
                std::to_string(stats.placement.completed)});
  table.AddRow({"files left on the PFS",
                std::to_string(stats.placement.rejected_no_space)});
  table.AddRow({"local tier occupancy",
                FormatByteSize(stats.levels[0].occupancy_bytes) + " / " +
                    FormatByteSize(stats.levels[0].quota_bytes)});
  table.AddRow({"reads served by local tier",
                std::to_string(stats.levels[0].reads)});
  table.AddRow({"reads served by PFS", std::to_string(stats.pfs_reads())});
  for (const auto& epoch : result->epochs) {
    table.AddRow({"epoch " + std::to_string(epoch.epoch) + " time",
                  Table::Num(epoch.wall_seconds, 2) + " s"});
  }
  table.PrintAscii(std::cout);

  std::cout << "\nThe local tier filled to its quota during epoch 1 and "
               "then held steady (no\nevictions, §III-A); every epoch "
               "after the first reads the placed half locally\nand only "
               "the overflow from the PFS.\n";
  setup->monarch->Shutdown();
  fs::remove_all(work);
  return 0;
}
