// Multi-tier example: the paper's §VI "consider more storage layers"
// direction — a three-level hierarchy (RAM above local SSD above the
// PFS), configured through the INI interface a system designer would
// write. Files spill downward: RAM fills first, then the SSD, and the
// overflow stays on the PFS.
//
// Build & run:  ./build/examples/multi_tier
#include <filesystem>
#include <iostream>
#include <vector>

#include "core/config.h"
#include "util/byte_units.h"
#include "storage/engine_factory.h"
#include "util/table.h"
#include "workload/dataset_generator.h"

namespace fs = std::filesystem;
using namespace monarch;

int main() {
  const fs::path work = fs::temp_directory_path() / "monarch_multitier";
  fs::remove_all(work);

  // Dataset: 48 files x ~8 KiB. RAM holds ~16 files, SSD ~24, the
  // remaining ~8 stay on the PFS.
  workload::DatasetSpec spec = workload::DatasetSpec::Tiny();
  spec.directory = "dataset";
  spec.num_files = 48;
  spec.samples_per_file = 4;
  spec.mean_sample_bytes = 2048;
  spec.sample_size_jitter = 0.0;
  {
    auto raw = storage::MakeRawEngine(work / "pfs");
    auto manifest = workload::GenerateDataset(*raw, spec);
    if (!manifest.ok()) {
      std::cerr << "dataset generation failed: " << manifest.status() << "\n";
      return 1;
    }
    std::cout << "dataset: " << manifest->num_files() << " files, "
              << FormatByteSize(manifest->total_bytes) << "\n";
  }

  // The whole hierarchy declared as configuration (§III-B: the system
  // designer specifies the tiers before execution).
  const std::string ini =
      "[monarch]\n"
      "dataset_dir = dataset\n"
      "placement_threads = 4\n"
      "[tier.0]\n"
      "name = ram\n"
      "profile = ram\n"
      "quota = 133KiB\n"   // ~16 files
      "[tier.1]\n"
      "name = local-ssd\n"
      "profile = ssd\n"
      "root = " + (work / "ssd").string() + "\n"
      "quota = 200KiB\n"   // ~24 files
      "[pfs]\n"
      "name = lustre\n"
      "profile = lustre-quiet\n"
      "root = " + (work / "pfs").string() + "\n";

  auto monarch = core::MonarchFromIni(ini);
  if (!monarch.ok()) {
    std::cerr << "config failed: " << monarch.status() << "\n";
    return 1;
  }

  // One epoch of reads triggers placement across all writable tiers.
  std::vector<std::byte> buffer(16 * 1024);
  for (std::uint64_t f = 0; f < spec.num_files; ++f) {
    auto read = (*monarch)->Read(workload::RecordFilePath(spec, f), 0, buffer);
    if (!read.ok()) {
      std::cerr << "read failed: " << read.status() << "\n";
      return 1;
    }
  }
  (*monarch)->DrainPlacements();

  // Second epoch: reads are spread across the hierarchy.
  for (std::uint64_t f = 0; f < spec.num_files; ++f) {
    (void)(*monarch)->Read(workload::RecordFilePath(spec, f), 0, buffer);
  }

  const auto stats = (*monarch)->Stats();
  Table table({"level", "tier", "reads", "occupancy", "quota"});
  for (std::size_t i = 0; i < stats.levels.size(); ++i) {
    const auto& level = stats.levels[i];
    table.AddRow({std::to_string(i), level.tier_name,
                  std::to_string(level.reads),
                  FormatByteSize(level.occupancy_bytes),
                  level.quota_bytes == 0 ? "-"
                                         : FormatByteSize(level.quota_bytes)});
  }
  table.PrintAscii(std::cout);
  std::cout << "placed=" << stats.placement.completed
            << " unplaceable=" << stats.placement.rejected_no_space << "\n";
  std::cout << "\nFirst-fit placement filled RAM, spilled to the SSD, and "
               "left the overflow on the\nPFS — ordering tiers by "
               "performance, exactly as §III-A describes.\n";
  (*monarch)->Shutdown();
  fs::remove_all(work);
  return 0;
}
