// Train-LeNet example: the paper's headline scenario as a program.
//
// Runs the full training simulation (LeNet, 3 epochs, 4 simulated GPUs,
// tf.data-style input pipeline) twice over the same synthetic ImageNet
// shard set — once reading straight from the simulated Lustre PFS
// (vanilla-lustre) and once through MONARCH — and prints the per-epoch
// times and the PFS I/O counters side by side.
//
// Build & run:  ./build/examples/train_lenet
// Knobs: MONARCH_EXAMPLE_SCALE (default 0.12 for a ~30 s run)
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "dlsim/setups.h"
#include "util/byte_units.h"
#include "util/table.h"

namespace fs = std::filesystem;
using namespace monarch;

int main() {
  double scale = 0.12;
  if (const char* env = std::getenv("MONARCH_EXAMPLE_SCALE")) {
    scale = std::max(0.05, std::atof(env));
  }
  const fs::path work = fs::temp_directory_path() / "monarch_train_lenet";
  fs::remove_all(work);

  dlsim::ExperimentConfig config;
  config.dataset = workload::DatasetSpec::ImageNet100GiB(scale);
  config.model = dlsim::ModelProfile::LeNet();
  config.epochs = 3;
  config.local_quota_bytes =
      static_cast<std::uint64_t>(115.0 * scale * 1024 * 1024);
  config.run_seed = 11;

  std::cout << "dataset: " << config.dataset.num_files << " record files, ~"
            << FormatByteSize(config.dataset.approx_total_bytes()) << "\n\n";

  Table table({"setup", "epoch1_s", "epoch2_s", "epoch3_s", "total_s",
               "pfs_reads"});

  // Arm 1: vanilla-lustre.
  {
    auto setup = dlsim::MakeVanillaLustreSetup(work / "pfs", config);
    if (!setup.ok()) {
      std::cerr << "setup failed: " << setup.status() << "\n";
      return 1;
    }
    std::cout << "training vanilla-lustre..." << std::endl;
    auto result = setup->trainer->Train();
    if (!result.ok()) {
      std::cerr << "training failed: " << result.status() << "\n";
      return 1;
    }
    table.AddRow({"vanilla-lustre", Table::Num(result->EpochSeconds(1), 2),
                  Table::Num(result->EpochSeconds(2), 2),
                  Table::Num(result->EpochSeconds(3), 2),
                  Table::Num(result->total_seconds, 2),
                  std::to_string(
                      setup->pfs_engine->Stats().Snapshot().read_ops)});
  }

  // Arm 2: MONARCH (same dataset directory, fresh contention seed).
  {
    auto setup = dlsim::MakeMonarchSetup(work / "pfs", work / "ssd", config);
    if (!setup.ok()) {
      std::cerr << "setup failed: " << setup.status() << "\n";
      return 1;
    }
    std::cout << "training with MONARCH..." << std::endl;
    auto result = setup->trainer->Train();
    if (!result.ok()) {
      std::cerr << "training failed: " << result.status() << "\n";
      return 1;
    }
    setup->monarch->DrainPlacements();
    const auto stats = setup->monarch->Stats();
    table.AddRow({"monarch", Table::Num(result->EpochSeconds(1), 2),
                  Table::Num(result->EpochSeconds(2), 2),
                  Table::Num(result->EpochSeconds(3), 2),
                  Table::Num(result->total_seconds, 2),
                  std::to_string(stats.pfs_reads())});
    std::cout << "\nMONARCH staged " << stats.placement.completed
              << " files (" << FormatByteSize(stats.placement.bytes_staged)
              << ") to the local tier during epoch 1;\nmetadata init took "
              << stats.metadata_init_seconds << "s.\n\n";
  }

  table.PrintAscii(std::cout);
  std::cout << "\nExpect MONARCH's epochs 2-3 (and usually epoch 1, thanks "
               "to the full-record\nbackground fetch) to run faster, with "
               "far fewer PFS reads.\n";
  fs::remove_all(work);
  return 0;
}
