#!/usr/bin/env bash
# Full verification: release build + tests + benches, then TSan and
# ASan/UBSan builds of the test suite. Mirrors what CI should run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

cmake -B build-tsan -G Ninja -DMONARCH_SANITIZE=thread \
      -DMONARCH_BUILD_BENCHMARKS=OFF -DMONARCH_BUILD_EXAMPLES=OFF
cmake --build build-tsan
# The observability, placement, staging-pipeline, resilience, peer-
# cache, churn, and checkpoint suites are the concurrency-critical ones:
# they assert the lock-free metrics hot path, the tracer's export-vs-
# writer race, the two-lane staging queue (demand priority, promotion,
# in-flight caps, buffer pool), the circuit-breaker state machine under
# concurrent readers, the cluster file directory's register/lookup/evict
# and membership-retraction races, the re-staging pumps draining while
# membership flips, the checkpoint drain lane racing Save/Flush/
# recovery, and the packing tier's chunk-map claim/publish/evict races
# under concurrent readers, and the QoS fair queue / bandwidth
# broker / admission controller / rate limiter racing concurrent
# acquirers and waiters stay TSan-clean (docs/OBSERVABILITY.md,
# DESIGN.md "Failure model", "Cooperative peer cache", "Cluster failure
# model", "Checkpoint write-back", "Small-file packing & chunk
# staging").
./build-tsan/tests/monarch_tests \
    --gtest_filter='MetricsRegistry*:EventTracer*:DocCatalogue*:ConfigDoc*:PlacementHandler*:Eviction*:StagingPipeline*:BufferPool*:Monarch*:Resilience*:TierHealth*:Peer*:FileDirectory*:NetworkModel*:Cluster*:Churn*:Membership*:Restage*:Ckpt*:Checkpoint*:WriteAtFallback*:ReadRing*:ReadLease*:Pack*:Chunk*:Qos*:FairQueue*:Admission*:RateLimiter*'
# ... and the rest of the suite.
./build-tsan/tests/monarch_tests \
    --gtest_filter='-MetricsRegistry*:EventTracer*:DocCatalogue*:ConfigDoc*:PlacementHandler*:Eviction*:StagingPipeline*:BufferPool*:Monarch*:Resilience*:TierHealth*:Peer*:FileDirectory*:NetworkModel*:Cluster*:Churn*:Membership*:Restage*:Ckpt*:Checkpoint*:WriteAtFallback*:ReadRing*:ReadLease*:Pack*:Chunk*:Qos*:FairQueue*:Admission*:RateLimiter*'

cmake -B build-asan -G Ninja -DMONARCH_SANITIZE=address \
      -DMONARCH_BUILD_BENCHMARKS=OFF -DMONARCH_BUILD_EXAMPLES=OFF
cmake --build build-asan
./build-asan/tests/monarch_tests

echo "benches (quick pass):"
MONARCH_BENCH_RUNS=1 MONARCH_BENCH_SCALE=0.15 MONARCH_BENCH_EPOCHS=2 \
  bash -c 'for b in build/bench/*; do "$b"; done' > /dev/null
echo "ALL CHECKS PASSED"
