#!/usr/bin/env bash
# Reduced-scale smoke pass over the headline figure benches (fig1, fig3)
# plus the multi-job peer-sharing experiment (ext_multijob), the
# checkpoint write-back comparison (ext_checkpoint), the node-churn
# chaos experiment (ext_churn), and the fig4 placement-policy sweep
# (eviction policies vs overcommit, sweep arm only), the async
# zero-copy read-path gate (micro_read_hotpath), the metadata-flatness
# gate (micro_metadata_scale), the small-file packing comparison
# (ext_smallfile), and the multi-tenant QoS isolation gate (ext_qos),
# producing
# BENCH_fig1.json / BENCH_fig3.json / BENCH_ext_multijob.json /
# BENCH_ext_checkpoint.json / BENCH_ext_churn.json / BENCH_fig4.json /
# BENCH_read_hotpath.json / BENCH_metadata_scale.json /
# BENCH_ext_smallfile.json / BENCH_ext_qos.json
# for quick inspection: the demand-vs-prefetch first-epoch comparison,
# the vanilla / monarch / monarch-peer PFS-traffic comparison, the
# direct-PFS vs write-back stall gap, the kill/revive digest and
# replication-repair check, the per-policy steady-state hit rates
# (docs/PLACEMENT.md), the sync-copy vs async-zero-copy reads/sec
# sweep with its >=2x-at-64-threads acceptance gate (ISSUE 8), the
# 1k->1M lookup-p99 drift gate, and the packed-vs-naive sparse-PFS /
# compression / digest gates (ISSUE 9), and the interactive-p99 /
# scan-throughput / cross-class-eviction QoS gates (ISSUE 10).
#
# Usage: scripts/bench_smoke.sh [output-dir]
#   output-dir   where the BENCH_*.json files land (default: bench-results)
#
# Knobs (inherited by the benches, see bench/bench_common.h):
#   MONARCH_BENCH_RUNS (default 1), MONARCH_BENCH_SCALE (default 0.15),
#   MONARCH_BENCH_EPOCHS (default 2)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-bench-results}"
mkdir -p "$OUT_DIR"

if [[ ! -x build/bench/fig1_motivation || ! -x build/bench/fig3_full_dataset \
      || ! -x build/bench/ext_multijob || ! -x build/bench/ext_checkpoint \
      || ! -x build/bench/ext_churn \
      || ! -x build/bench/fig4_partial_dataset \
      || ! -x build/bench/micro_read_hotpath \
      || ! -x build/bench/micro_metadata_scale \
      || ! -x build/bench/ext_smallfile \
      || ! -x build/bench/ext_qos ]]; then
  echo "bench binaries missing — build first: cmake -B build && cmake --build build -j" >&2
  exit 1
fi

export MONARCH_BENCH_RUNS="${MONARCH_BENCH_RUNS:-1}"
export MONARCH_BENCH_SCALE="${MONARCH_BENCH_SCALE:-0.15}"
export MONARCH_BENCH_EPOCHS="${MONARCH_BENCH_EPOCHS:-2}"
export MONARCH_BENCH_JSON_DIR="$OUT_DIR"

echo "bench smoke: runs=$MONARCH_BENCH_RUNS scale=$MONARCH_BENCH_SCALE epochs=$MONARCH_BENCH_EPOCHS -> $OUT_DIR"

./build/bench/fig1_motivation
./build/bench/fig3_full_dataset
# Smallest useful multi-job scale: ext_multijob halves MONARCH_BENCH_SCALE
# internally (the K-job runs multiply the work), so the smoke default of
# 0.15 runs the 1/2/4-job grid, all three arms, in well under a minute.
./build/bench/ext_multijob
./build/bench/ext_checkpoint
# Churn survival: 4 jobs, kill/revive mid-run, digests + replication
# repair asserted in the JSON (3 epochs minimum so the outage has an
# epoch boundary to span).
MONARCH_BENCH_EPOCHS=3 ./build/bench/ext_churn
# Policy-sweep arm only (4 overcommit ratios x 4 eviction policies); the
# full fig4 figure arms are too slow for a smoke pass.
MONARCH_FIG4_ARMS=sweep ./build/bench/fig4_partial_dataset
# Async read-path gate: sync-copy vs async-zero-copy reads/sec at
# 1/8/64 threads. Exits non-zero when the >=2x-at-64-threads or the
# p99-no-worse-at-1-thread gate fails, failing the whole smoke pass.
./build/bench/micro_read_hotpath
# Metadata-flatness gate (ISSUE 9): registers the 1k->1M (scaled)
# namespace sweep and exits non-zero when steady-state lookup p99 drifts
# more than 2x across it, failing the whole smoke pass.
./build/bench/micro_metadata_scale
# Small-file packing gates (ISSUE 9): naive vs packed-none vs packed-lz
# over the same generated dataset. Exits non-zero when the sparse pass's
# PFS bytes stop scaling with bytes touched, the lz arm's effective
# local-tier capacity drops below 1.5x, or the arms' sample digests
# diverge.
./build/bench/ext_smallfile
# Multi-tenant QoS gates (ISSUE 10): interactive p99 must stay within
# 2x of its solo baseline as scan tenants ramp, aggregate scan
# throughput must stay within 20% of the no-interactive baseline, and
# the concurrent full-scan must never evict the trainer's working set
# (0 cross-class evictions). Exits non-zero on any gate, failing the
# whole smoke pass.
./build/bench/ext_qos

echo
echo "wrote:"
ls -l "$OUT_DIR"/BENCH_fig1.json "$OUT_DIR"/BENCH_fig3.json \
      "$OUT_DIR"/BENCH_ext_multijob.json "$OUT_DIR"/BENCH_ext_checkpoint.json \
      "$OUT_DIR"/BENCH_ext_churn.json "$OUT_DIR"/BENCH_fig4.json \
      "$OUT_DIR"/BENCH_read_hotpath.json \
      "$OUT_DIR"/BENCH_metadata_scale.json \
      "$OUT_DIR"/BENCH_ext_smallfile.json "$OUT_DIR"/BENCH_ext_qos.json
