// CheckpointSink: the write-path counterpart of Monarch's read API.
//
// MONARCH (§II, §V) manages only the read path; real training jobs also
// write periodic model checkpoints, and on a shared cluster that write
// burst lands on the same contended PFS the reads are fleeing. This
// interface is what the trainer (dlsim) and the POSIX shim program
// against: `Save` must make the checkpoint recoverable (crash-consistent
// commit), `Flush` must make everything saved so far durable on the PFS.
//
// Implementations live in src/ckpt/ — `CheckpointManager` (write-back:
// land on the fastest local tier, drain to the PFS asynchronously) and
// `DirectPfsSink` (write-through baseline the benches compare against).
// The interface lives in core so core's posix_shim can accept a sink
// without a core -> ckpt dependency cycle.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace monarch::core {

class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;

  /// Persist one checkpoint under `name`. On return the checkpoint is
  /// committed: a crash at any later point leaves either this checkpoint
  /// or a previously committed one restorable, never a torn mix.
  /// Durability on the PFS may still be pending (see Flush).
  virtual Status Save(const std::string& name,
                      std::span<const std::byte> data) = 0;

  /// Read back a committed checkpoint, CRC-verified.
  virtual Result<std::vector<std::byte>> Restore(const std::string& name) = 0;

  /// Block until every checkpoint saved so far is durable on the PFS.
  virtual Status Flush() = 0;
};

}  // namespace monarch::core
