#include "core/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

#include "pack/codec.h"
#include "storage/engine_factory.h"
#include "util/byte_units.h"

namespace monarch::core {

namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<bool> ParseBool(const std::string& value, int line_no) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  return InvalidArgumentError("line " + std::to_string(line_no) +
                              ": bad boolean '" + value + "'");
}

Result<std::uint64_t> ParseU64(const std::string& value, int line_no) {
  std::uint64_t out = 0;
  auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || p != value.data() + value.size()) {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": bad integer '" + value + "'");
  }
  return out;
}

Result<double> ParseDouble(const std::string& value, int line_no) {
  double out = 0;
  auto [p, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || p != value.data() + value.size()) {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": bad number '" + value + "'");
  }
  return out;
}

Status ApplyResilienceKey(ResilienceOptions& r, const std::string& key,
                          const std::string& value, int line_no) {
  if (key == "retry_max_attempts") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    r.retry.max_attempts = static_cast<int>(n);
  } else if (key == "retry_initial_backoff_us") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t us, ParseU64(value, line_no));
    r.retry.initial_backoff = Micros(static_cast<std::int64_t>(us));
  } else if (key == "retry_multiplier") {
    MONARCH_ASSIGN_OR_RETURN(r.retry.backoff_multiplier,
                             ParseDouble(value, line_no));
  } else if (key == "retry_max_backoff_us") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t us, ParseU64(value, line_no));
    r.retry.max_backoff = Micros(static_cast<std::int64_t>(us));
  } else if (key == "retry_budget_us") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t us, ParseU64(value, line_no));
    r.retry.budget = Micros(static_cast<std::int64_t>(us));
  } else if (key == "health_enabled") {
    MONARCH_ASSIGN_OR_RETURN(r.health.enabled, ParseBool(value, line_no));
  } else if (key == "health_window") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    r.health.window = static_cast<std::size_t>(n);
  } else if (key == "health_min_samples") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    r.health.min_samples = static_cast<std::size_t>(n);
  } else if (key == "health_error_threshold") {
    MONARCH_ASSIGN_OR_RETURN(r.health.error_threshold,
                             ParseDouble(value, line_no));
  } else if (key == "health_cooldown_us") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t us, ParseU64(value, line_no));
    r.health.cooldown = Micros(static_cast<std::int64_t>(us));
  } else if (key == "health_half_open_successes") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    r.health.half_open_successes = static_cast<int>(n);
  } else if (key == "verify_staged_writes") {
    MONARCH_ASSIGN_OR_RETURN(r.verify_staged_writes, ParseBool(value, line_no));
  } else if (key == "verify_on_read") {
    MONARCH_ASSIGN_OR_RETURN(r.verify_on_read, ParseBool(value, line_no));
  } else if (key == "max_placement_attempts") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    r.max_placement_attempts = static_cast<int>(n);
  } else if (key == "restage_after_quarantine") {
    MONARCH_ASSIGN_OR_RETURN(r.restage_after_quarantine,
                             ParseBool(value, line_no));
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown resilience key '" + key + "'");
  }
  return Status::Ok();
}

Status ApplyTierKey(ParsedTier& tier, const std::string& key,
                    const std::string& value, int line_no) {
  if (key == "name") {
    tier.name = value;
  } else if (key == "profile") {
    tier.profile = value;
  } else if (key == "root") {
    tier.root = value;
  } else if (key == "quota") {
    MONARCH_ASSIGN_OR_RETURN(tier.quota_bytes, ParseByteSize(value));
  } else if (key == "seed") {
    MONARCH_ASSIGN_OR_RETURN(tier.seed, ParseU64(value, line_no));
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown tier key '" + key + "'");
  }
  return Status::Ok();
}

Status ApplyPlacementKey(ParsedConfig& config, const std::string& key,
                         const std::string& value, int line_no) {
  if (key == "policy") {
    // Validate eagerly so a typo fails at parse time with a line number,
    // not later in BuildMonarchConfig.
    auto policy = MakePlacementPolicyByName(value);
    if (!policy.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  policy.status().message());
    }
    config.placement_policy = value;
  } else if (key == "hotspot_decay_interval") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    if (n == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": hotspot_decay_interval must be >= 1");
    }
    config.policy_knobs.hotspot_decay_interval = n;
  } else if (key == "clairvoyant_protect_window") {
    MONARCH_ASSIGN_OR_RETURN(config.policy_knobs.clairvoyant_protect_window,
                             ParseU64(value, line_no));
  } else if (key == "staging_buffer_bytes") {
    MONARCH_ASSIGN_OR_RETURN(config.staging_buffer_bytes,
                             ParseByteSize(value));
  } else if (key == "staging_chunk_bytes") {
    MONARCH_ASSIGN_OR_RETURN(config.staging_chunk_bytes, ParseByteSize(value));
  } else if (key == "tier_inflight_cap_bytes") {
    MONARCH_ASSIGN_OR_RETURN(config.tier_inflight_cap_bytes,
                             ParseByteSize(value));
  } else if (key == "prefetch_lookahead") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    config.prefetch_lookahead = static_cast<int>(n);
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown placement key '" + key + "'");
  }
  return Status::Ok();
}

Status ApplyPeerKey(ParsedPeer& peer, const std::string& key,
                    const std::string& value, int line_no) {
  if (key == "enabled") {
    MONARCH_ASSIGN_OR_RETURN(peer.enabled, ParseBool(value, line_no));
  } else if (key == "interconnect_bandwidth") {
    MONARCH_ASSIGN_OR_RETURN(peer.interconnect_bandwidth_bps,
                             ParseByteSize(value));
  } else if (key == "interconnect_latency_us") {
    MONARCH_ASSIGN_OR_RETURN(peer.interconnect_latency_us,
                             ParseU64(value, line_no));
  } else if (key == "directory_shards") {
    MONARCH_ASSIGN_OR_RETURN(peer.directory_shards, ParseU64(value, line_no));
  } else if (key == "replication") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    if (n == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": replication must be >= 1");
    }
    peer.replication = static_cast<int>(n);
  } else if (key == "restage_bandwidth") {
    MONARCH_ASSIGN_OR_RETURN(peer.restage_bandwidth_bps,
                             ParseByteSize(value));
  } else if (key == "max_failover_holders") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    if (n == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": max_failover_holders must be >= 1");
    }
    peer.max_failover_holders = static_cast<int>(n);
  } else if (key == "quarantine_failures") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    if (n == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": quarantine_failures must be >= 1");
    }
    peer.quarantine_failures = static_cast<int>(n);
  } else if (key == "churn_detection_lag_us") {
    MONARCH_ASSIGN_OR_RETURN(peer.churn_detection_lag_us,
                             ParseU64(value, line_no));
  } else if (key == "churn_random_kills") {
    MONARCH_ASSIGN_OR_RETURN(peer.churn_random_kills,
                             ParseU64(value, line_no));
  } else if (key == "churn_seed") {
    MONARCH_ASSIGN_OR_RETURN(peer.churn_seed, ParseU64(value, line_no));
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown peer key '" + key + "'");
  }
  return Status::Ok();
}

Status ApplyCheckpointKey(ParsedCheckpoint& ckpt, const std::string& key,
                          const std::string& value, int line_no) {
  if (key == "enabled") {
    MONARCH_ASSIGN_OR_RETURN(ckpt.enabled, ParseBool(value, line_no));
  } else if (key == "dir") {
    if (value.empty()) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": checkpoint dir must be non-empty");
    }
    ckpt.dir = value;
  } else if (key == "keep_last") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    ckpt.keep_last = static_cast<int>(n);
  } else if (key == "drain_bandwidth") {
    MONARCH_ASSIGN_OR_RETURN(ckpt.drain_bandwidth_bytes_per_sec,
                             ParseByteSize(value));
  } else if (key == "drain_threads") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    if (n == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": drain_threads must be >= 1");
    }
    ckpt.drain_threads = static_cast<int>(n);
  } else if (key == "verify_on_restore") {
    MONARCH_ASSIGN_OR_RETURN(ckpt.verify_on_restore, ParseBool(value, line_no));
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown checkpoint key '" + key + "'");
  }
  return Status::Ok();
}

Status ApplyPackKey(pack::PackOptions& pack, const std::string& key,
                    const std::string& value, int line_no) {
  if (key == "enabled") {
    MONARCH_ASSIGN_OR_RETURN(pack.enabled, ParseBool(value, line_no));
  } else if (key == "chunk_bytes") {
    MONARCH_ASSIGN_OR_RETURN(pack.chunk_bytes, ParseByteSize(value));
    if (pack.chunk_bytes == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": chunk_bytes must be >= 1");
    }
  } else if (key == "codec") {
    // Validate eagerly: a codec typo should fail with a line number, not
    // silently stage uncompressed.
    auto codec = pack::CodecByName(value);
    if (!codec.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  codec.status().message());
    }
    pack.codec = value;
  } else if (key == "pack_extent_bytes") {
    MONARCH_ASSIGN_OR_RETURN(pack.pack_extent_bytes, ParseByteSize(value));
    if (pack.pack_extent_bytes == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": pack_extent_bytes must be >= 1");
    }
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown pack key '" + key + "'");
  }
  return Status::Ok();
}

Status ApplyQosKey(qos::QosOptions& q, const std::string& key,
                   const std::string& value, int line_no) {
  if (key == "enabled") {
    MONARCH_ASSIGN_OR_RETURN(q.enabled, ParseBool(value, line_no));
  } else if (key == "interactive_weight") {
    MONARCH_ASSIGN_OR_RETURN(q.interactive_weight, ParseDouble(value, line_no));
  } else if (key == "training_weight") {
    MONARCH_ASSIGN_OR_RETURN(q.training_weight, ParseDouble(value, line_no));
  } else if (key == "scan_weight") {
    MONARCH_ASSIGN_OR_RETURN(q.scan_weight, ParseDouble(value, line_no));
  } else if (key == "drain_weight") {
    MONARCH_ASSIGN_OR_RETURN(q.drain_weight, ParseDouble(value, line_no));
  } else if (key == "tenant_share") {
    MONARCH_ASSIGN_OR_RETURN(q.tenant_share, ParseDouble(value, line_no));
  } else if (key == "total_bandwidth") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t bps, ParseByteSize(value));
    q.total_bandwidth_bps = static_cast<double>(bps);
  } else if (key == "admission_queue_threshold") {
    MONARCH_ASSIGN_OR_RETURN(q.admission_queue_threshold,
                             ParseDouble(value, line_no));
  } else if (key == "admission_reject_threshold") {
    MONARCH_ASSIGN_OR_RETURN(q.admission_reject_threshold,
                             ParseDouble(value, line_no));
  } else if (key == "work_conserving") {
    MONARCH_ASSIGN_OR_RETURN(q.work_conserving, ParseBool(value, line_no));
  } else if (key == "scan_stage_cap") {
    MONARCH_ASSIGN_OR_RETURN(q.scan_stage_cap_bytes, ParseByteSize(value));
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown qos key '" + key + "'");
  }
  const bool weights_positive =
      q.interactive_weight > 0 && q.training_weight > 0 && q.scan_weight > 0 &&
      q.drain_weight > 0;
  if (!weights_positive) {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": qos class weights must be > 0");
  }
  return Status::Ok();
}

Status ApplyReadKey(ReadRingOptions& read, const std::string& key,
                    const std::string& value, int line_no) {
  if (key == "ring_depth") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    if (n == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": ring_depth must be >= 1");
    }
    read.depth = static_cast<int>(n);
  } else if (key == "worker_threads") {
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n, ParseU64(value, line_no));
    if (n == 0) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": worker_threads must be >= 1");
    }
    read.worker_threads = static_cast<int>(n);
  } else if (key == "zero_copy") {
    MONARCH_ASSIGN_OR_RETURN(read.zero_copy, ParseBool(value, line_no));
  } else {
    return InvalidArgumentError("line " + std::to_string(line_no) +
                                ": unknown read key '" + key + "'");
  }
  return Status::Ok();
}

}  // namespace

Result<ParsedConfig> ParseConfig(const std::string& ini_text) {
  ParsedConfig config;
  // tier.<index> sections may appear in any order; collect then sort.
  std::map<int, ParsedTier> tiers;
  bool saw_pfs = false;

  enum class Section {
    kNone,
    kMonarch,
    kTier,
    kPfs,
    kPlacement,
    kResilience,
    kPeer,
    kCheckpoint,
    kRead,
    kPack,
    kQos
  };
  Section section = Section::kNone;
  int tier_index = -1;

  std::istringstream stream(ini_text);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    // Strip comments (';' or '#') and whitespace.
    const std::size_t comment = raw_line.find_first_of(";#");
    std::string line =
        Trim(comment == std::string::npos ? raw_line
                                          : raw_line.substr(0, comment));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return InvalidArgumentError("line " + std::to_string(line_no) +
                                    ": unterminated section header");
      }
      const std::string name = Trim(line.substr(1, line.size() - 2));
      if (name == "monarch") {
        section = Section::kMonarch;
      } else if (name == "pfs") {
        section = Section::kPfs;
        saw_pfs = true;
      } else if (name == "placement") {
        section = Section::kPlacement;
      } else if (name == "resilience") {
        section = Section::kResilience;
      } else if (name == "peer") {
        section = Section::kPeer;
      } else if (name == "checkpoint") {
        section = Section::kCheckpoint;
      } else if (name == "read") {
        section = Section::kRead;
      } else if (name == "pack") {
        section = Section::kPack;
      } else if (name == "qos") {
        section = Section::kQos;
      } else if (name.starts_with("tier.")) {
        MONARCH_ASSIGN_OR_RETURN(
            const std::uint64_t idx,
            ParseU64(name.substr(5), line_no));
        section = Section::kTier;
        tier_index = static_cast<int>(idx);
        tiers.try_emplace(tier_index);
      } else {
        return InvalidArgumentError("line " + std::to_string(line_no) +
                                    ": unknown section '" + name + "'");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));

    switch (section) {
      case Section::kNone:
        return InvalidArgumentError("line " + std::to_string(line_no) +
                                    ": key outside any section");
      case Section::kMonarch:
        if (key == "dataset_dir") {
          config.dataset_dir = value;
        } else if (key == "placement_threads") {
          MONARCH_ASSIGN_OR_RETURN(const std::uint64_t n,
                                   ParseU64(value, line_no));
          config.placement_threads = static_cast<int>(n);
        } else if (key == "fetch_full_file") {
          MONARCH_ASSIGN_OR_RETURN(config.fetch_full_file,
                                   ParseBool(value, line_no));
        } else {
          return InvalidArgumentError("line " + std::to_string(line_no) +
                                      ": unknown monarch key '" + key + "'");
        }
        break;
      case Section::kTier:
        MONARCH_RETURN_IF_ERROR(
            ApplyTierKey(tiers[tier_index], key, value, line_no));
        break;
      case Section::kPfs:
        MONARCH_RETURN_IF_ERROR(ApplyTierKey(config.pfs, key, value, line_no));
        break;
      case Section::kPlacement:
        MONARCH_RETURN_IF_ERROR(
            ApplyPlacementKey(config, key, value, line_no));
        break;
      case Section::kResilience:
        MONARCH_RETURN_IF_ERROR(
            ApplyResilienceKey(config.resilience, key, value, line_no));
        break;
      case Section::kPeer:
        MONARCH_RETURN_IF_ERROR(
            ApplyPeerKey(config.peer, key, value, line_no));
        break;
      case Section::kCheckpoint:
        MONARCH_RETURN_IF_ERROR(
            ApplyCheckpointKey(config.checkpoint, key, value, line_no));
        break;
      case Section::kRead:
        MONARCH_RETURN_IF_ERROR(
            ApplyReadKey(config.read, key, value, line_no));
        break;
      case Section::kPack:
        MONARCH_RETURN_IF_ERROR(
            ApplyPackKey(config.pack, key, value, line_no));
        break;
      case Section::kQos:
        MONARCH_RETURN_IF_ERROR(
            ApplyQosKey(config.qos, key, value, line_no));
        break;
    }
  }

  if (!saw_pfs) return InvalidArgumentError("missing [pfs] section");
  if (tiers.empty()) {
    return InvalidArgumentError("need at least one [tier.N] section");
  }
  int expected = 0;
  for (auto& [idx, tier] : tiers) {
    if (idx != expected) {
      return InvalidArgumentError("tier indices must be contiguous from 0 "
                                  "(missing tier." +
                                  std::to_string(expected) + ")");
    }
    ++expected;
    config.cache_tiers.push_back(std::move(tier));
  }
  if (config.dataset_dir.empty()) {
    return InvalidArgumentError("[monarch] dataset_dir is required");
  }
  return config;
}

namespace {

Result<storage::StorageEnginePtr> MakeEngine(const ParsedTier& tier) {
  if (tier.profile == "ssd") {
    if (tier.root.empty()) {
      return InvalidArgumentError("tier '" + tier.name + "': ssd needs root");
    }
    return storage::MakeLocalSsdEngine(tier.root);
  }
  if (tier.profile == "ram") return storage::MakeRamEngine();
  if (tier.profile == "lustre" || tier.profile == "lustre-quiet") {
    if (tier.root.empty()) {
      return InvalidArgumentError("tier '" + tier.name +
                                  "': lustre needs root");
    }
    return storage::MakeLustreEngine(tier.root, tier.seed,
                                     tier.profile == "lustre");
  }
  if (tier.profile == "raw") {
    if (tier.root.empty()) {
      return InvalidArgumentError("tier '" + tier.name + "': raw needs root");
    }
    return storage::MakeRawEngine(tier.root);
  }
  return InvalidArgumentError("tier '" + tier.name + "': unknown profile '" +
                              tier.profile + "'");
}

}  // namespace

Result<MonarchConfig> BuildMonarchConfig(const ParsedConfig& parsed) {
  MonarchConfig config;
  config.dataset_dir = parsed.dataset_dir;
  config.placement.num_threads = parsed.placement_threads;
  config.placement.fetch_full_file_on_partial_read = parsed.fetch_full_file;
  config.placement.staging_buffer_bytes = parsed.staging_buffer_bytes;
  config.placement.staging_chunk_bytes = parsed.staging_chunk_bytes;
  config.placement.tier_inflight_cap_bytes = parsed.tier_inflight_cap_bytes;
  config.placement.prefetch_lookahead = parsed.prefetch_lookahead;
  if (parsed.pack.enabled &&
      parsed.pack.chunk_bytes > parsed.staging_chunk_bytes) {
    return InvalidArgumentError(
        "[pack] chunk_bytes (" + std::to_string(parsed.pack.chunk_bytes) +
        ") must not exceed [placement] staging_chunk_bytes (" +
        std::to_string(parsed.staging_chunk_bytes) +
        "): staged chunks ride the staging buffer pool");
  }
  config.placement.pack = parsed.pack;
  config.placement.qos = parsed.qos;
  config.resilience = parsed.resilience;
  config.read = parsed.read;
  MONARCH_ASSIGN_OR_RETURN(
      config.policy,
      MakePlacementPolicyByName(parsed.placement_policy, parsed.policy_knobs));

  for (const ParsedTier& tier : parsed.cache_tiers) {
    TierSpec spec;
    spec.name = tier.name.empty() ? tier.profile : tier.name;
    MONARCH_ASSIGN_OR_RETURN(spec.engine, MakeEngine(tier));
    spec.quota_bytes = tier.quota_bytes;
    config.cache_tiers.push_back(std::move(spec));
  }
  TierSpec pfs;
  pfs.name = parsed.pfs.name.empty() ? "pfs" : parsed.pfs.name;
  MONARCH_ASSIGN_OR_RETURN(pfs.engine, MakeEngine(parsed.pfs));
  config.pfs = std::move(pfs);
  return config;
}

std::vector<ConfigKeyInfo> ConfigKeyCatalogue() {
  // Keep in lockstep with the Apply*Key functions and the [monarch]
  // switch above — the config_doc_test feeds every sample below through
  // ParseConfig and diffs the key set against docs/CONFIG.md.
  return {
      {"monarch", "dataset_dir", "data"},
      {"monarch", "placement_threads", "6"},
      {"monarch", "fetch_full_file", "true"},
      {"tier.0", "name", "local-ssd"},
      {"tier.0", "profile", "ram"},
      {"tier.0", "root", "/tmp/monarch/ssd"},
      {"tier.0", "quota", "115MiB"},
      {"tier.0", "seed", "42"},
      {"pfs", "name", "lustre"},
      {"pfs", "profile", "ram"},
      {"pfs", "root", "/tmp/monarch/pfs"},
      {"pfs", "quota", "0"},
      {"pfs", "seed", "42"},
      {"placement", "policy", "clairvoyant"},
      {"placement", "staging_buffer_bytes", "64MiB"},
      {"placement", "staging_chunk_bytes", "4MiB"},
      {"placement", "tier_inflight_cap_bytes", "0"},
      {"placement", "prefetch_lookahead", "8"},
      {"placement", "hotspot_decay_interval", "256"},
      {"placement", "clairvoyant_protect_window", "64"},
      {"resilience", "retry_max_attempts", "4"},
      {"resilience", "retry_initial_backoff_us", "50"},
      {"resilience", "retry_multiplier", "2.0"},
      {"resilience", "retry_max_backoff_us", "5000"},
      {"resilience", "retry_budget_us", "20000"},
      {"resilience", "health_enabled", "true"},
      {"resilience", "health_window", "64"},
      {"resilience", "health_min_samples", "16"},
      {"resilience", "health_error_threshold", "0.5"},
      {"resilience", "health_cooldown_us", "100000"},
      {"resilience", "health_half_open_successes", "3"},
      {"resilience", "verify_staged_writes", "true"},
      {"resilience", "verify_on_read", "false"},
      {"resilience", "max_placement_attempts", "3"},
      {"resilience", "restage_after_quarantine", "true"},
      {"peer", "enabled", "true"},
      {"peer", "interconnect_bandwidth", "1200MiB"},
      {"peer", "interconnect_latency_us", "150"},
      {"peer", "directory_shards", "16"},
      {"peer", "replication", "1"},
      {"peer", "restage_bandwidth", "0"},
      {"peer", "max_failover_holders", "2"},
      {"peer", "quarantine_failures", "3"},
      {"peer", "churn_detection_lag_us", "0"},
      {"peer", "churn_random_kills", "0"},
      {"peer", "churn_seed", "42"},
      {"pack", "enabled", "true"},
      {"pack", "chunk_bytes", "256KiB"},
      {"pack", "codec", "lz"},
      {"pack", "pack_extent_bytes", "64MiB"},
      {"qos", "enabled", "true"},
      {"qos", "interactive_weight", "8"},
      {"qos", "training_weight", "4"},
      {"qos", "scan_weight", "2"},
      {"qos", "drain_weight", "1"},
      {"qos", "tenant_share", "1.0"},
      {"qos", "total_bandwidth", "400MiB"},
      {"qos", "admission_queue_threshold", "0.85"},
      {"qos", "admission_reject_threshold", "1.5"},
      {"qos", "work_conserving", "true"},
      {"qos", "scan_stage_cap", "64MiB"},
      {"read", "ring_depth", "256"},
      {"read", "worker_threads", "2"},
      {"read", "zero_copy", "true"},
      {"checkpoint", "enabled", "true"},
      {"checkpoint", "dir", "ckpt"},
      {"checkpoint", "keep_last", "3"},
      {"checkpoint", "drain_bandwidth", "200MiB"},
      {"checkpoint", "drain_threads", "1"},
      {"checkpoint", "verify_on_restore", "true"},
  };
}

Result<std::unique_ptr<Monarch>> MonarchFromIni(const std::string& ini_text) {
  MONARCH_ASSIGN_OR_RETURN(const ParsedConfig parsed, ParseConfig(ini_text));
  MONARCH_ASSIGN_OR_RETURN(MonarchConfig config, BuildMonarchConfig(parsed));
  return Monarch::Create(std::move(config));
}

}  // namespace monarch::core
