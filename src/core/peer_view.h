// PeerView: what one Monarch instance (one node) sees of the cluster's
// cooperative peer cache (ISSUE 4). Implemented by the cluster layer on
// top of its FileDirectory; core stays free of any cluster dependency.
//
// The contract mirrors the directory protocol in DESIGN.md:
//  * consistent-hash shard ownership decides WHO stages a file —
//    ShouldStageLocally() gates every local staging trigger (demand,
//    prefetch, prestage), so each file is pulled from the PFS by its
//    owner node(s) only, once cluster-wide;
//  * HasRemoteCopy() is the read path's peer rung — true when some OTHER
//    node currently advertises a placed copy this node could fetch over
//    the interconnect instead of hitting the PFS;
//  * OnStaged()/OnDropped() keep the directory in sync with this node's
//    placements (publish, quarantine, eviction, cleanup).
#pragma once

#include <memory>
#include <string>

namespace monarch::core {

class PeerView {
 public:
  virtual ~PeerView() = default;

  /// Some other node holds a placed copy of `name` (serve it via the
  /// peer tier before falling back to the PFS).
  virtual bool HasRemoteCopy(const std::string& name) = 0;

  /// This node is a shard owner of `name` and may stage it locally.
  /// False means the file belongs to a peer's shard: read it owner-first
  /// over the interconnect, never copy it into this node's tiers.
  virtual bool ShouldStageLocally(const std::string& name) = 0;

  /// This node published a placed copy of `name` on its local `level`.
  virtual void OnStaged(const std::string& name, int level) = 0;

  /// This node's placed copy of `name` is gone (quarantine, eviction,
  /// shutdown cleanup) — stop advertising it to peers.
  virtual void OnDropped(const std::string& name) = 0;
};

using PeerViewPtr = std::shared_ptr<PeerView>;

}  // namespace monarch::core
