#include "core/read_ring.h"

#include <algorithm>
#include <utility>

#include "core/monarch.h"
#include "obs/event_tracer.h"

namespace monarch::core {

namespace {
/// Ops a worker claims per queue visit: big enough to amortise the lock
/// and give the per-tier sort something to coalesce, small enough that
/// one slow op doesn't convoy a deep queue behind a single worker.
constexpr std::size_t kWorkerBatch = 8;
}  // namespace

ReadRing::ReadRing(Monarch& monarch, ReadRingOptions options)
    : monarch_(monarch), options_(options) {
  options_.depth = std::max(1, options_.depth);
  options_.worker_threads = std::max(1, options_.worker_threads);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  m_submitted_ = registry.GetCounter("monarch.readring.submitted", "ops",
                                     "read ops accepted by ReadRing::Submit");
  m_completed_ = registry.GetCounter(
      "monarch.readring.completed", "ops",
      "read-ring completions delivered (callbacks + completion queue)");
  m_cancelled_ = registry.GetCounter(
      "monarch.readring.cancelled", "ops",
      "queued read-ring ops cancelled by Shutdown before starting");
  m_zero_copy_ = registry.GetCounter(
      "monarch.readring.zero_copy_reads", "ops",
      "ring completions served through the zero-copy lease lane");
  m_copy_ = registry.GetCounter(
      "monarch.readring.copy_reads", "ops",
      "ring completions that copied into a caller or private buffer");
  m_depth_ = registry.GetGauge("monarch.readring.depth", "ops",
                               "configured submission-ring capacity");
  m_queued_ = registry.GetGauge("monarch.readring.queued", "ops",
                                "ring ops submitted but not yet started");
  m_inflight_ = registry.GetGauge(
      "monarch.readring.inflight", "ops",
      "ring ops a worker is currently executing");
  m_depth_->Set(options_.depth);

  workers_.reserve(static_cast<std::size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ReadRing::~ReadRing() { Shutdown(); }

std::size_t ReadRing::Submit(std::vector<ReadOp> ops,
                             CompletionFn on_complete) {
  if (ops.empty()) return 0;
  obs::TraceSpan span("readring.submit", "core");
  // Capture the submitter's tenant once per batch: the ops execute on
  // ring workers, and attribution must survive the thread hop.
  std::optional<qos::TenantContext> tenant;
  if (const qos::TenantContext* ambient = qos::CurrentTenant()) {
    tenant = *ambient;
  }
  std::size_t accepted = 0;
  {
    std::unique_lock lock(mu_);
    for (ReadOp& op : ops) {
      space_cv_.wait(lock, [this] {
        return stop_ ||
               queue_.size() < static_cast<std::size_t>(options_.depth);
      });
      if (stop_) break;
      queue_.push_back(Pending{std::move(op), on_complete, tenant});
      ++accepted;
      // Wake a worker per op, not once per batch: a batch deeper than
      // the ring must have workers draining WHILE the submitter is
      // still blocked on space_cv_, or neither side ever runs.
      work_cv_.notify_one();
    }
    m_queued_->Set(static_cast<std::int64_t>(queue_.size()));
  }
  if (accepted > 0) {
    submitted_.fetch_add(accepted, std::memory_order_relaxed);
    m_submitted_->Increment(accepted);
    work_cv_.notify_all();
  }
  if (span.active()) {
    span.set_args_json("\"ops\":" + std::to_string(accepted));
  }
  return accepted;
}

std::size_t ReadRing::Harvest(std::vector<ReadCompletion>& out,
                              std::size_t max) {
  std::lock_guard lock(mu_);
  const std::size_t n = std::min(max, completions_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(completions_[i]));
  }
  completions_.erase(completions_.begin(),
                     completions_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

std::size_t ReadRing::HarvestBlocking(std::vector<ReadCompletion>& out,
                                      std::size_t max) {
  std::unique_lock lock(mu_);
  harvest_cv_.wait(lock, [this] {
    return !completions_.empty() || stop_ ||
           (queue_.empty() && inflight_ == 0);
  });
  const std::size_t n = std::min(max, completions_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(completions_[i]));
  }
  completions_.erase(completions_.begin(),
                     completions_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

void ReadRing::Shutdown() {
  std::deque<Pending> orphaned;
  {
    std::lock_guard lock(mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
    orphaned.swap(queue_);
    m_queued_->Set(0);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();

  // Cancel everything that never started. Delivered outside the lock —
  // callbacks may call back into the ring (Harvest) freely.
  for (Pending& pending : orphaned) {
    ReadCompletion completion;
    completion.user_data = pending.op.user_data;
    completion.bytes = FailedPreconditionError("read ring shut down before '" +
                                               pending.op.name + "' started");
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    m_cancelled_->Increment();
    Deliver(pending, std::move(completion));
  }

  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mu_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  harvest_cv_.notify_all();
}

ReadRing::RingStats ReadRing::Stats() const {
  RingStats stats;
  stats.depth = options_.depth;
  {
    std::lock_guard lock(mu_);
    stats.queued = queue_.size();
    stats.inflight = inflight_;
  }
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.zero_copy_reads = zero_copy_reads_.load(std::memory_order_relaxed);
  stats.copy_reads = copy_reads_.load(std::memory_order_relaxed);
  return stats;
}

void ReadRing::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      const std::size_t n = std::min(kWorkerBatch, queue_.size());
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      inflight_ += n;
      m_queued_->Set(static_cast<std::int64_t>(queue_.size()));
      m_inflight_->Set(static_cast<std::int64_t>(inflight_));
    }
    space_cv_.notify_all();

    // Per-tier coalescing: group the batch by the files' current serving
    // level so consecutive ops hit the same driver. Stable, so same-tier
    // ops keep their submission order.
    if (batch.size() > 1) {
      std::stable_sort(batch.begin(), batch.end(),
                       [this](const Pending& a, const Pending& b) {
                         return monarch_.ServingLevelHint(a.op.name) <
                                monarch_.ServingLevelHint(b.op.name);
                       });
    }
    for (Pending& pending : batch) {
      Execute(std::move(pending));
    }
    {
      std::lock_guard lock(mu_);
      inflight_ -= batch.size();
      m_inflight_->Set(static_cast<std::int64_t>(inflight_));
    }
    harvest_cv_.notify_all();
  }
}

void ReadRing::Execute(Pending pending) {
  // Re-install the submitter's tenant for the duration of the op so the
  // storage drivers charge the right bandwidth share (ISSUE 10).
  std::optional<qos::ScopedTenant> scope;
  if (pending.tenant.has_value()) scope.emplace(*pending.tenant);
  ReadCompletion completion;
  completion.user_data = pending.op.user_data;
  if (pending.op.lease) {
    auto lease = monarch_.ReadZeroCopy(pending.op.name, pending.op.offset,
                                       pending.op.max_bytes,
                                       options_.zero_copy);
    if (lease.ok()) {
      completion.level = lease.value().level();
      completion.zero_copy = lease.value().zero_copy();
      completion.bytes = lease.value().size();
      completion.lease = std::move(lease).value();
    } else {
      completion.bytes = lease.status();
    }
  } else {
    auto read =
        monarch_.Read(pending.op.name, pending.op.offset, pending.op.dst);
    if (read.ok()) {
      completion.bytes = read.value();
    } else {
      completion.bytes = read.status();
    }
  }
  if (completion.bytes.ok()) {
    if (completion.zero_copy) {
      zero_copy_reads_.fetch_add(1, std::memory_order_relaxed);
      m_zero_copy_->Increment();
    } else {
      copy_reads_.fetch_add(1, std::memory_order_relaxed);
      m_copy_->Increment();
    }
  }
  Deliver(pending, std::move(completion));
}

void ReadRing::Deliver(Pending& pending, ReadCompletion completion) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  m_completed_->Increment();
  if (pending.on_complete) {
    pending.on_complete(std::move(completion));
    return;
  }
  {
    std::lock_guard lock(mu_);
    completions_.push_back(std::move(completion));
  }
  harvest_cv_.notify_all();
}

}  // namespace monarch::core
