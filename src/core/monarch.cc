#include "core/monarch.h"

#include <utility>

#include "util/logging.h"

namespace monarch::core {

Result<std::unique_ptr<Monarch>> Monarch::Create(MonarchConfig config) {
  if (!config.pfs.engine) {
    return InvalidArgumentError("config.pfs.engine must be set");
  }
  if (config.cache_tiers.empty()) {
    return InvalidArgumentError(
        "config needs at least one cache tier above the PFS");
  }

  std::vector<StorageDriverPtr> drivers;
  drivers.reserve(config.cache_tiers.size() + 1);
  for (TierSpec& tier : config.cache_tiers) {
    if (!tier.engine) {
      return InvalidArgumentError("cache tier '" + tier.name +
                                  "' has no engine");
    }
    if (tier.quota_bytes == 0) {
      return InvalidArgumentError("cache tier '" + tier.name +
                                  "' needs a nonzero quota");
    }
    drivers.push_back(std::make_unique<StorageDriver>(
        tier.name, tier.engine, tier.quota_bytes, /*read_only=*/false));
  }
  drivers.push_back(std::make_unique<StorageDriver>(
      config.pfs.name.empty() ? "pfs" : config.pfs.name, config.pfs.engine,
      /*quota_bytes=*/0, /*read_only=*/true));

  MONARCH_ASSIGN_OR_RETURN(auto hierarchy,
                           StorageHierarchy::Create(std::move(drivers)));

  std::unique_ptr<Monarch> monarch(
      new Monarch(std::move(config), std::move(hierarchy)));

  // Metadata initialization phase: walk the dataset directory on the PFS
  // and build the virtual namespace (§III-B startup flow).
  MONARCH_ASSIGN_OR_RETURN(
      const std::uint64_t indexed,
      monarch->metadata_.Populate(monarch->hierarchy_->Pfs().engine(),
                                  monarch->config_.dataset_dir,
                                  monarch->hierarchy_->pfs_level()));
  MLOG_INFO << "monarch: indexed " << indexed << " files from '"
            << monarch->config_.dataset_dir << "' in "
            << monarch->metadata_.init_seconds() << "s";
  return monarch;
}

Monarch::Monarch(MonarchConfig config,
                 std::unique_ptr<StorageHierarchy> hierarchy)
    : config_(std::move(config)), hierarchy_(std::move(hierarchy)) {
  if (!config_.policy) config_.policy = MakeFirstFitPolicy();
  placement_ = std::make_unique<PlacementHandler>(
      *hierarchy_, metadata_, std::move(config_.policy), config_.placement);
  served_.reserve(hierarchy_->num_levels());
  for (std::size_t i = 0; i < hierarchy_->num_levels(); ++i) {
    served_.push_back(std::make_unique<LevelCounters>());
  }
}

Monarch::~Monarch() { Shutdown(); }

Result<std::size_t> Monarch::Read(const std::string& name,
                                  std::uint64_t offset,
                                  std::span<std::byte> dst) {
  FileInfoPtr info = metadata_.Lookup(name);
  if (!info) {
    // File not in the startup namespace: discover it lazily from the PFS
    // (keeps the middleware usable when files appear mid-job).
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t size,
                             hierarchy_->Pfs().engine().FileSize(name));
    metadata_.Register(name, size, hierarchy_->pfs_level());
    info = metadata_.Lookup(name);
    if (!info) return InternalError("metadata race on '" + name + "'");
  }

  info->last_access.store(
      access_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);

  // ① consult the namespace for the file's current level, ② read from
  // that tier's driver.
  int level = info->level.load(std::memory_order_acquire);
  auto read = hierarchy_->Level(level).Read(name, offset, dst);
  if (!read.ok() && level != hierarchy_->pfs_level() &&
      read.status().code() == StatusCode::kNotFound) {
    // The tier copy vanished between the level lookup and the read (an
    // eviction race, possible only in the ablation-mode configuration).
    // The PFS always holds the authoritative copy: fall back to it.
    level = hierarchy_->pfs_level();
    read = hierarchy_->Level(level).Read(name, offset, dst);
  }
  if (!read.ok()) return read;

  auto& counters = *served_[static_cast<std::size_t>(level)];
  counters.reads.fetch_add(1, std::memory_order_relaxed);
  counters.bytes.fetch_add(read.value(), std::memory_order_relaxed);

  // First access to a PFS-resident file: claim it and stage a copy in the
  // background (③/④). When the framework's request already covered the
  // whole file, hand those bytes to the placement task so the PFS is not
  // read twice; otherwise the task fetches the full content itself — the
  // §III-B partial-read optimisation (disabled => only full reads stage).
  if (level == hierarchy_->pfs_level() && !placement_->stopped()) {
    const bool full_read = offset == 0 && read.value() == info->size;
    if (full_read || placement_->options().fetch_full_file_on_partial_read) {
      if (info->TryBeginFetch()) {
        std::optional<std::vector<std::byte>> content;
        if (full_read) {
          content.emplace(dst.begin(), dst.begin() + read.value());
        }
        placement_->SchedulePlacement(info, std::move(content));
      }
    }
  }
  return read;
}

Result<std::uint64_t> Monarch::FileSize(const std::string& name) {
  if (FileInfoPtr info = metadata_.Lookup(name)) return info->size;
  return hierarchy_->Pfs().engine().FileSize(name);
}

std::uint64_t Monarch::Prestage(bool block) {
  std::uint64_t scheduled = 0;
  for (const auto& entry : metadata_.Snapshot()) {
    FileInfoPtr info = metadata_.Lookup(entry.name);
    if (!info || !info->TryBeginFetch()) continue;
    placement_->SchedulePlacement(std::move(info), std::nullopt);
    ++scheduled;
  }
  if (block) placement_->Drain();
  return scheduled;
}

void Monarch::StopPlacement() noexcept { placement_->StopScheduling(); }

void Monarch::DrainPlacements() { placement_->Drain(); }

std::uint64_t Monarch::CleanupStagedCopies() {
  // Quiesce staging first so no copy lands after its delete.
  placement_->StopScheduling();
  placement_->Drain();

  const int pfs_level = hierarchy_->pfs_level();
  std::uint64_t removed = 0;
  for (const auto& entry : metadata_.Snapshot()) {
    if (entry.state != PlacementState::kPlaced) continue;
    FileInfoPtr info = metadata_.Lookup(entry.name);
    if (!info) continue;
    // Claim the file (kPlaced -> kFetching) so concurrent readers stop
    // trusting the tier copy, then revert it to PFS-resident.
    PlacementState expected = PlacementState::kPlaced;
    if (!info->state.compare_exchange_strong(expected,
                                             PlacementState::kFetching,
                                             std::memory_order_acq_rel)) {
      continue;
    }
    const int level = info->level.load(std::memory_order_acquire);
    info->level.store(pfs_level, std::memory_order_release);
    info->AbortFetch(/*permanently=*/false);
    StorageDriver& tier = hierarchy_->Level(level);
    if (tier.Delete(info->name).ok()) {
      tier.Release(info->size);
      ++removed;
    }
  }
  return removed;
}

void Monarch::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (config_.cleanup_staged_on_shutdown) CleanupStagedCopies();
  placement_->StopScheduling();
  placement_->Drain();
}

MonarchStats Monarch::Stats() const {
  MonarchStats stats;
  stats.levels.reserve(hierarchy_->num_levels());
  for (std::size_t i = 0; i < hierarchy_->num_levels(); ++i) {
    const StorageDriver& driver =
        hierarchy_->Level(static_cast<int>(i));
    LevelReadStats level;
    level.tier_name = driver.name();
    level.reads = served_[i]->reads.load(std::memory_order_relaxed);
    level.bytes = served_[i]->bytes.load(std::memory_order_relaxed);
    level.occupancy_bytes = driver.occupancy_bytes();
    level.quota_bytes = driver.quota_bytes();
    stats.levels.push_back(std::move(level));
  }
  stats.placement = placement_->Stats();
  stats.files_indexed = metadata_.FileCount();
  stats.dataset_bytes = metadata_.TotalBytes();
  stats.metadata_init_seconds = metadata_.init_seconds();
  return stats;
}

}  // namespace monarch::core
