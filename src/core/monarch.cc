#include "core/monarch.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string_view>
#include <utility>

#include "obs/event_tracer.h"
#include "pack/packed_engine.h"
#include "obs/json.h"
#include "util/clock.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace monarch::core {

namespace {

/// Render one Stats() view as registry samples (the Monarch pull source).
std::vector<obs::MetricSample> StatsToSamples(const MonarchStats& stats) {
  std::vector<obs::MetricSample> out;
  out.reserve(stats.levels.size() * 6 + 12);
  auto sample = [&out](std::string name, std::string label,
                       obs::MetricKind kind, std::string unit,
                       std::uint64_t value, std::string help) {
    obs::MetricSample s;
    s.name = std::move(name);
    s.label = std::move(label);
    s.kind = kind;
    s.unit = std::move(unit);
    if (kind == obs::MetricKind::kGauge) {
      s.gauge = static_cast<std::int64_t>(value);
    } else {
      s.value = value;
    }
    s.help = std::move(help);
    out.push_back(std::move(s));
  };
  for (const LevelReadStats& level : stats.levels) {
    sample("monarch.level.reads", level.tier_name, obs::MetricKind::kCounter,
           "ops", level.reads, "reads served by this hierarchy level");
    sample("monarch.level.bytes", level.tier_name, obs::MetricKind::kCounter,
           "bytes", level.bytes, "bytes served by this hierarchy level");
    sample("monarch.level.occupancy_bytes", level.tier_name,
           obs::MetricKind::kGauge, "bytes", level.occupancy_bytes,
           "bytes currently staged on this level");
    sample("monarch.level.quota_bytes", level.tier_name,
           obs::MetricKind::kGauge, "bytes", level.quota_bytes,
           "configured byte budget of this level (0 = PFS, unbounded)");
    sample("monarch.level.health_state", level.tier_name,
           obs::MetricKind::kGauge, "state",
           static_cast<std::uint64_t>(level.circuit_state),
           "circuit-breaker state of this level (0 closed, 1 half-open, "
           "2 open)");
    sample("monarch.level.circuit_opens", level.tier_name,
           obs::MetricKind::kCounter, "events", level.circuit_opens,
           "times this level's circuit breaker tripped open");
  }
  const PlacementStats& p = stats.placement;
  sample("monarch.placement.scheduled", "", obs::MetricKind::kCounter, "ops",
         p.scheduled, "background placement tasks enqueued");
  sample("monarch.placement.completed", "", obs::MetricKind::kCounter, "ops",
         p.completed, "files now served from upper tiers");
  sample("monarch.placement.rejected_no_space", "", obs::MetricKind::kCounter,
         "ops", p.rejected_no_space,
         "placements rejected because no tier had room");
  sample("monarch.placement.failed", "", obs::MetricKind::kCounter, "ops",
         p.failed, "placements aborted on backend errors");
  sample("monarch.placement.bytes_staged", "", obs::MetricKind::kCounter,
         "bytes", p.bytes_staged, "bytes copied into cache tiers");
  // `monarch.placement.evictions` is an owned registry counter
  // (PlacementHandler ctor), not a per-instance sample — the ablation
  // benches read it like every other placement stat.
  sample("monarch.placement.retries", "", obs::MetricKind::kCounter, "ops",
         p.retries, "failed stagings left retryable for a later access");
  sample("monarch.placement.quarantined", "", obs::MetricKind::kCounter, "ops",
         p.quarantined,
         "staged copies deleted because their bytes failed CRC verification");
  sample("monarch.placement.abandoned", "", obs::MetricKind::kCounter, "ops",
         p.abandoned,
         "files marked unplaceable after exhausting max_placement_attempts");
  sample("monarch.placement.prefetch_scheduled", "", obs::MetricKind::kCounter,
         "ops", p.prefetch_scheduled,
         "look-ahead hints enqueued on the prefetch lane");
  sample("monarch.placement.prefetch_completed", "", obs::MetricKind::kCounter,
         "ops", p.prefetch_completed,
         "prefetch-lane copies published to a cache tier");
  sample("monarch.placement.prefetch_promoted", "", obs::MetricKind::kCounter,
         "ops", p.prefetch_promoted,
         "queued prefetches moved to the demand lane by an overtaking read");
  sample("monarch.placement.prefetch_cancelled", "", obs::MetricKind::kCounter,
         "ops", p.prefetch_cancelled,
         "hints dropped before staging (no space, stop, or shutdown)");
  sample("monarch.placement.prefetch_hits", "", obs::MetricKind::kCounter,
         "ops", stats.prefetch_hits,
         "demand reads served from a copy a look-ahead hint staged");
  sample("monarch.placement.chunks_copied", "", obs::MetricKind::kCounter,
         "chunks", p.chunks_copied,
         "fixed-size chunk writes performed by the staging pipeline");
  sample("monarch.placement.donated_bytes", "", obs::MetricKind::kCounter,
         "bytes", p.donated_bytes,
         "triggering-read bytes reused by staging instead of re-read");
  sample("monarch.placement.queue_depth", "demand", obs::MetricKind::kGauge,
         "tasks", p.queue_depth_demand, "staging tasks waiting, by lane");
  sample("monarch.placement.queue_depth", "prefetch", obs::MetricKind::kGauge,
         "tasks", p.queue_depth_prefetch, "staging tasks waiting, by lane");
  // Per-class fair-queue depths (ISSUE 10): same metric, finer labels —
  // the demand/prefetch labels above stay as lane aggregates.
  sample("monarch.placement.queue_depth", "interactive",
         obs::MetricKind::kGauge, "tasks", p.queue_depth_interactive,
         "staging tasks waiting, by lane");
  sample("monarch.placement.queue_depth", "training", obs::MetricKind::kGauge,
         "tasks", p.queue_depth_training, "staging tasks waiting, by lane");
  sample("monarch.placement.queue_depth", "scan", obs::MetricKind::kGauge,
         "tasks", p.queue_depth_scan, "staging tasks waiting, by lane");
  sample("monarch.placement.queue_depth", "drain", obs::MetricKind::kGauge,
         "tasks", p.queue_depth_drain, "staging tasks waiting, by lane");
  sample("qos.low_retention_resident_bytes", "", obs::MetricKind::kGauge,
         "bytes", p.low_retention_resident_bytes,
         "cache-tier bytes currently held by low-retention (scan) copies");
  sample("monarch.placement.inflight_bytes", "", obs::MetricKind::kGauge,
         "bytes", p.inflight_bytes,
         "bytes of staging copies currently in flight across all tiers");
  sample("monarch.placement.buffer_pool_used_bytes", "",
         obs::MetricKind::kGauge, "bytes", p.buffer_pool_used_bytes,
         "chunk-buffer bytes currently leased by staging copies");
  sample("monarch.placement.buffer_pool_capacity_bytes", "",
         obs::MetricKind::kGauge, "bytes", p.buffer_pool_capacity_bytes,
         "configured chunk-buffer budget (staging_buffer_bytes)");
  // Pack gauges are emitted unconditionally (zeros without an index) so
  // the catalogue diff holds on non-pack instances too.
  sample("monarch.pack.extents", "", obs::MetricKind::kGauge, "extents",
         stats.pack_extents,
         "container extents in the loaded pack index (0 = unpacked)");
  sample("monarch.pack.logical_files", "", obs::MetricKind::kGauge, "files",
         stats.pack_logical_files,
         "small logical files aggregated into pack extents");
  sample("monarch.pack.logical_bytes", "", obs::MetricKind::kGauge, "bytes",
         stats.pack_logical_bytes,
         "logical bytes addressed through the pack index");
  sample("monarch.files_indexed", "", obs::MetricKind::kGauge, "files",
         stats.files_indexed, "files in the virtual namespace");
  sample("monarch.dataset_bytes", "", obs::MetricKind::kGauge, "bytes",
         stats.dataset_bytes, "total bytes of the indexed dataset");
  sample("monarch.metadata_init_us", "", obs::MetricKind::kGauge, "us",
         static_cast<std::uint64_t>(stats.metadata_init_seconds * 1e6),
         "duration of the startup metadata-initialization walk");
  return out;
}

}  // namespace

Result<std::unique_ptr<Monarch>> Monarch::Create(MonarchConfig config) {
  if (!config.pfs.engine) {
    return InvalidArgumentError("config.pfs.engine must be set");
  }
  if (config.cache_tiers.empty()) {
    return InvalidArgumentError(
        "config needs at least one cache tier above the PFS");
  }

  // Small-file packing (ISSUE 9): when pack mode is on and the dataset
  // directory carries a pack index, wrap the PFS engine so the packed
  // logical files read/list/stat transparently out of their container
  // extents. kNotFound just means the dataset is loose files — chunk
  // staging still applies, only the packing layer is absent.
  pack::PackIndexPtr pack_index;
  if (config.placement.pack.enabled) {
    auto loaded = pack::PackIndex::Load(*config.pfs.engine,
                                        config.dataset_dir);
    if (loaded.ok()) {
      pack_index = std::move(loaded).value();
      config.pfs.engine = std::make_shared<pack::PackedPfsEngine>(
          config.pfs.engine, pack_index);
      MLOG_INFO << "monarch: pack index of '" << config.dataset_dir
                << "': " << pack_index->logical_files()
                << " logical files in " << pack_index->extent_count()
                << " extents";
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  std::vector<StorageDriverPtr> drivers;
  drivers.reserve(config.cache_tiers.size() + 2);
  for (TierSpec& tier : config.cache_tiers) {
    if (!tier.engine) {
      return InvalidArgumentError("cache tier '" + tier.name +
                                  "' has no engine");
    }
    if (tier.quota_bytes == 0) {
      return InvalidArgumentError("cache tier '" + tier.name +
                                  "' needs a nonzero quota");
    }
    drivers.push_back(std::make_unique<StorageDriver>(
        tier.name, tier.engine, tier.quota_bytes, /*read_only=*/false,
        config.resilience.retry, config.resilience.health));
  }
  // Cooperative peer tier (ISSUE 4): a read-only level directly above
  // the PFS serving other nodes' staged copies over the interconnect.
  // Quota 0 — the bytes are accounted on the owning nodes — and guarded
  // by retries and a circuit breaker like any tier, so a sick peer
  // degrades to the PFS instead of stalling the job.
  if (config.peer_tier.has_value()) {
    if (!config.peer_tier->engine) {
      return InvalidArgumentError("peer tier '" + config.peer_tier->name +
                                  "' has no engine");
    }
    if (config.peer_view == nullptr) {
      return InvalidArgumentError(
          "config.peer_tier requires config.peer_view (the cluster "
          "directory that knows which peers hold which files)");
    }
    drivers.push_back(std::make_unique<StorageDriver>(
        config.peer_tier->name.empty() ? "peer" : config.peer_tier->name,
        config.peer_tier->engine, /*quota_bytes=*/0, /*read_only=*/true,
        config.resilience.retry, config.resilience.health));
  }
  // The PFS gets the retry envelope too but no live breaker: it is the
  // authoritative copy, so routing around it is never an option
  // (StorageHierarchy::NextServingLevel always admits it regardless).
  drivers.push_back(std::make_unique<StorageDriver>(
      config.pfs.name.empty() ? "pfs" : config.pfs.name, config.pfs.engine,
      /*quota_bytes=*/0, /*read_only=*/true, config.resilience.retry,
      config.resilience.health));

  MONARCH_ASSIGN_OR_RETURN(auto hierarchy,
                           StorageHierarchy::Create(std::move(drivers)));

  std::unique_ptr<Monarch> monarch(
      new Monarch(std::move(config), std::move(hierarchy)));
  monarch->pack_index_ = std::move(pack_index);

  // Metadata initialization phase: walk the dataset directory on the PFS
  // and build the virtual namespace (§III-B startup flow). Retried on
  // transient failures — the walk is idempotent (Register dedups), so a
  // flaky PFS listing must not kill the job before it starts.
  Backoff backoff(monarch->config_.resilience.retry,
                  std::hash<std::string>{}(monarch->config_.dataset_dir));
  Result<std::uint64_t> populated = monarch->metadata_.Populate(
      monarch->hierarchy_->Pfs().engine(), monarch->config_.dataset_dir,
      monarch->hierarchy_->pfs_level());
  while (!populated.ok() && IsRetryableError(populated.status())) {
    const auto delay = backoff.NextDelay();
    if (!delay.has_value()) break;
    MLOG_WARN << "monarch: metadata walk of '" << monarch->config_.dataset_dir
              << "' failed transiently (" << populated.status()
              << "); retrying";
    PreciseSleep(*delay);
    populated = monarch->metadata_.Populate(
        monarch->hierarchy_->Pfs().engine(), monarch->config_.dataset_dir,
        monarch->hierarchy_->pfs_level());
  }
  MONARCH_ASSIGN_OR_RETURN(const std::uint64_t indexed, std::move(populated));
  MLOG_INFO << "monarch: indexed " << indexed << " files from '"
            << monarch->config_.dataset_dir << "' in "
            << monarch->metadata_.init_seconds() << "s";
  return monarch;
}

Monarch::Monarch(MonarchConfig config,
                 std::unique_ptr<StorageHierarchy> hierarchy)
    : config_(std::move(config)), hierarchy_(std::move(hierarchy)) {
  if (!config_.policy) config_.policy = MakeFirstFitPolicy();
  placement_ = std::make_unique<PlacementHandler>(
      *hierarchy_, metadata_, std::move(config_.policy), config_.placement,
      config_.resilience, config_.peer_view);
  served_.reserve(hierarchy_->num_levels());
  for (std::size_t i = 0; i < hierarchy_->num_levels(); ++i) {
    served_.push_back(std::make_unique<LevelCounters>());
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  read_requests_ = registry.GetCounter(
      "monarch.read.requests", "ops", "Monarch::Read calls");
  read_pfs_fallbacks_ = registry.GetCounter(
      "monarch.read.pfs_fallbacks", "ops",
      "reads rerouted to the PFS after a tier copy vanished (eviction race)");
  read_errors_ = registry.GetCounter(
      "monarch.read.errors", "ops", "Monarch::Read calls that returned an error");
  read_degraded_fallbacks_ = registry.GetCounter(
      "monarch.read.degraded_fallbacks", "ops",
      "reads a cache tier failed to serve (error, open breaker, or corrupt "
      "copy) that the PFS absorbed");
  read_latency_ = registry.GetHistogram(
      "monarch.read.latency_us", "us",
      "end-to-end Monarch::Read latency distribution");
  chunk_hits_counter_ = registry.GetCounter(
      "monarch.chunk.hits", "ops",
      "pack-mode reads fully served from resident chunks on a cache tier");
  chunk_misses_counter_ = registry.GetCounter(
      "monarch.chunk.misses", "ops",
      "pack-mode reads that touched the PFS (non-resident chunks)");
  // Multi-tenant QoS (ISSUE 10): the broker sits under every tier driver
  // so each byte — demand reads, staging writes, checkpoint drains — is
  // charged to the ambient tenant, with this instance's identity as the
  // fallback for unattributed I/O.
  if (config_.qos_broker != nullptr) {
    config_.qos_broker->RegisterTenant(config_.tenant);
    for (std::size_t i = 0; i < hierarchy_->num_levels(); ++i) {
      hierarchy_->Level(static_cast<int>(i))
          .SetQosBroker(config_.qos_broker, config_.tenant);
    }
  }
  // The ring is always constructed (its instruments are part of the
  // stable catalogue); idle workers cost two parked threads.
  ring_ = std::make_unique<ReadRing>(*this, config_.read);
  obs_source_ = registry.AddSource([this] { return StatsToSamples(Stats()); });
}

Monarch::~Monarch() { Shutdown(); }

Result<std::size_t> Monarch::Read(std::string_view name, std::uint64_t offset,
                                  std::span<std::byte> dst) {
  // Instrumentation is lock-free: the counters/histogram below are
  // relaxed atomics resolved at construction, and the span costs one
  // atomic load while tracing is disabled.
  const obs::TraceSpan span("monarch.read", "core");
  if (read_requests_ != nullptr) read_requests_->Increment();
  const Stopwatch timer;
  auto result = ReadImpl(name, offset, dst);
  if (result.ok()) {
    if (read_latency_ != nullptr) read_latency_->Record(timer.Elapsed());
  } else if (read_errors_ != nullptr) {
    read_errors_->Increment();
  }
  return result;
}

Result<ReadLease> Monarch::ReadZeroCopy(std::string_view name,
                                        std::uint64_t offset,
                                        std::uint64_t max_bytes,
                                        bool allow_zero_copy) {
  const obs::TraceSpan span("monarch.read", "core");
  if (read_requests_ != nullptr) read_requests_->Increment();
  const Stopwatch timer;
  auto result = ReadZeroCopyImpl(name, offset, max_bytes, allow_zero_copy);
  if (result.ok()) {
    if (read_latency_ != nullptr) read_latency_->Record(timer.Elapsed());
  } else if (read_errors_ != nullptr) {
    read_errors_->Increment();
  }
  return result;
}

Result<FileInfoPtr> Monarch::PrepareRead(std::string_view name,
                                         std::uint64_t offset) {
  FileInfoPtr info = metadata_.Lookup(name);
  if (!info) {
    // File not in the startup namespace: discover it lazily from the PFS
    // (keeps the middleware usable when files appear mid-job). This cold
    // path is the one place the read path materialises the key.
    const std::string owned(name);
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t size,
                             hierarchy_->Pfs().engine().FileSize(owned));
    metadata_.Register(owned, size, hierarchy_->pfs_level());
    info = metadata_.Lookup(name);
    if (!info) return InternalError("metadata race on '" + owned + "'");
  }

  info->last_access.store(
      access_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);

  // Policy bookkeeping at file-visit granularity: the loader reads files
  // in chunks, so only the offset-0 read marks a new access (the
  // clairvoyant schedule clock and hotspot counters advance here).
  if (offset == 0) placement_->NoteAccess(*info);
  return info;
}

int Monarch::ServingLevelHint(std::string_view name) const {
  if (FileInfoPtr info = metadata_.Lookup(name)) {
    return info->level.load(std::memory_order_relaxed);
  }
  return hierarchy_->pfs_level();
}

Result<std::size_t> Monarch::ReadImpl(std::string_view name,
                                      std::uint64_t offset,
                                      std::span<std::byte> dst) {
  MONARCH_ASSIGN_OR_RETURN(FileInfoPtr info, PrepareRead(name, offset));

  // Pin the file for the duration of this read (ISSUE 6): an eviction
  // that claims it while the pin is held reverts and picks another
  // victim, so an in-flight demand read never loses its tier copy.
  info->read_pins.fetch_add(1, std::memory_order_acq_rel);
  struct PinGuard {
    FileInfo* file;
    ~PinGuard() { file->read_pins.fetch_sub(1, std::memory_order_acq_rel); }
  } pin_guard{info.get()};

  // Pack mode (ISSUE 9): chunk-granularity serve/claim path.
  if (placement_->options().pack.enabled) {
    return ReadChunkedImpl(info, name, offset, dst);
  }

  // ① consult the namespace for the file's current level, ② read from
  // that tier's driver — unless its circuit breaker is open, in which
  // case the tier is skipped without a doomed attempt. The file's only
  // other copy is the authoritative one on the PFS, so every rung of the
  // degradation ladder lands there.
  const int pfs = hierarchy_->pfs_level();
  const int peer = hierarchy_->peer_level();
  int level = info->level.load(std::memory_order_acquire);
  if (level != pfs && hierarchy_->NextServingLevel(level) != level) {
    CountDegradedFallback("circuit_open", name, level);
    level = pfs;
  }

  // Peer rung (ISSUE 4): a PFS-resident file that another node already
  // staged is closer over the interconnect than on the shared PFS. Route
  // the read to the peer level when the cluster directory advertises a
  // remote copy and the peer breaker admits requests. (`info->name` is
  // the owned key — no temporary for the directory lookup.)
  if (level == pfs && peer >= 0 && config_.peer_view != nullptr &&
      config_.peer_view->HasRemoteCopy(info->name)) {
    if (hierarchy_->Level(peer).health().AllowRequest()) {
      level = peer;
    } else {
      CountDegradedFallback("circuit_open", name, peer);
    }
  }

  auto read = hierarchy_->Level(level).Read(name, offset, dst);
  if (read.ok() && level != pfs && level != peer &&
      !VerifyTierRead(info, level, offset, dst, read.value())) {
    // The staged copy is corrupt: it has been quarantined; re-read the
    // authoritative bytes.
    CountDegradedFallback("corruption", name, level);
    level = pfs;
    read = hierarchy_->Level(level).Read(name, offset, dst);
  }
  if (!read.ok() && level != pfs) {
    // Any upper-tier failure degrades to the PFS rather than surfacing to
    // the framework: kNotFound means the copy vanished (eviction race or
    // quarantine on another thread); everything else is a tier fault that
    // survived the driver's retries. Peer failures are counted apart so
    // the cluster benches can reconcile interconnect rescue traffic.
    if (level == peer) {
      CountDegradedFallback(read.status().code() == StatusCode::kNotFound
                                ? "peer_miss"
                                : "peer_error",
                            name, level);
    } else if (read.status().code() == StatusCode::kNotFound) {
      if (read_pfs_fallbacks_ != nullptr) read_pfs_fallbacks_->Increment();
    } else {
      CountDegradedFallback("tier_error", name, level);
    }
    level = pfs;
    read = hierarchy_->Level(level).Read(name, offset, dst);
  }
  if (!read.ok()) return read;

  FinishRead(info, name, level, offset, read.value(),
             offset == 0 && read.value() > 0
                 ? std::span<const std::byte>(dst.data(), read.value())
                 : std::span<const std::byte>{});
  return read;
}

Result<ReadLease> Monarch::ReadZeroCopyImpl(std::string_view name,
                                            std::uint64_t offset,
                                            std::uint64_t max_bytes,
                                            bool allow_zero_copy) {
  MONARCH_ASSIGN_OR_RETURN(FileInfoPtr info, PrepareRead(name, offset));

  // Same eviction pin as ReadImpl, but on success its ownership moves
  // into the returned lease — the copy stays pinned until the caller is
  // done with the lent bytes, not just until this call returns.
  info->read_pins.fetch_add(1, std::memory_order_acq_rel);
  bool pin_transferred = false;
  struct PinGuard {
    FileInfo* file;
    const bool* transferred;
    ~PinGuard() {
      if (!*transferred) {
        file->read_pins.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  } pin_guard{info.get(), &pin_transferred};

  // Pack mode (ISSUE 9): chunk-granularity zero-copy lane.
  if (placement_->options().pack.enabled) {
    return ReadZeroCopyChunkedImpl(info, name, offset, max_bytes,
                                   allow_zero_copy, pin_transferred);
  }

  // Same degradation ladder as ReadImpl, running over lent views.
  const int pfs = hierarchy_->pfs_level();
  const int peer = hierarchy_->peer_level();
  int level = info->level.load(std::memory_order_acquire);
  if (level != pfs && hierarchy_->NextServingLevel(level) != level) {
    CountDegradedFallback("circuit_open", name, level);
    level = pfs;
  }
  if (level == pfs && peer >= 0 && config_.peer_view != nullptr &&
      config_.peer_view->HasRemoteCopy(info->name)) {
    if (hierarchy_->Level(peer).health().AllowRequest()) {
      level = peer;
    } else {
      CountDegradedFallback("circuit_open", name, peer);
    }
  }

  auto view =
      hierarchy_->Level(level).ReadZeroCopy(name, offset, max_bytes,
                                            allow_zero_copy);
  if (view.ok() && level != pfs && level != peer &&
      !VerifyTierRead(info, level, offset, view.value().data(),
                      view.value().size())) {
    // The staged copy is corrupt and has been quarantined; drop the
    // tainted view and re-read the authoritative bytes.
    CountDegradedFallback("corruption", name, level);
    level = pfs;
    view = hierarchy_->Level(level).ReadZeroCopy(name, offset, max_bytes,
                                                 allow_zero_copy);
  }
  if (!view.ok() && level != pfs) {
    if (level == peer) {
      CountDegradedFallback(view.status().code() == StatusCode::kNotFound
                                ? "peer_miss"
                                : "peer_error",
                            name, level);
    } else if (view.status().code() == StatusCode::kNotFound) {
      if (read_pfs_fallbacks_ != nullptr) read_pfs_fallbacks_->Increment();
    } else {
      CountDegradedFallback("tier_error", name, level);
    }
    level = pfs;
    view = hierarchy_->Level(level).ReadZeroCopy(name, offset, max_bytes,
                                                 allow_zero_copy);
  }
  if (!view.ok()) return view.status();

  FinishRead(info, name, level, offset, view.value().size(),
             offset == 0 ? view.value().data()
                         : std::span<const std::byte>{});
  pin_transferred = true;
  return ReadLease(std::move(view).value(), std::move(info), level);
}

namespace {

/// Alloc-free (after warmup) chunk-object name for the read hot path:
/// one thread_local string is reused across calls, so serving a
/// resident chunk never heap-allocates in steady state.
const std::string& ChunkObjectNameTL(const std::string& file,
                                     std::uint32_t chunk) {
  thread_local std::string object;
  object.assign(file);
  object.append("#c");
  char index[16];
  const int len = std::snprintf(index, sizeof(index), "%u", chunk);
  object.append(index, static_cast<std::size_t>(len));
  return object;
}

}  // namespace

bool Monarch::ServeResidentChunk(const FileInfoPtr& info, pack::ChunkMap& cm,
                                 std::uint32_t chunk, int level,
                                 std::uint64_t offset_in_chunk,
                                 std::span<std::byte> dst) {
  const pack::ChunkMap::ChunkMeta meta = cm.Meta(chunk);
  const std::uint32_t logical_n = cm.ChunkLogicalBytes(chunk);
  StorageDriver& tier = hierarchy_->Level(level);
  const pack::Codec* codec = placement_->pack_codec();
  const std::string& object = ChunkObjectNameTL(info->name, chunk);

  bool corrupt = false;
  bool served = false;
  Status error = Status::Ok();
  if (codec == nullptr) {
    // Identity codec: the chunk object holds the logical bytes; read the
    // requested slice straight into the caller's buffer. Whole-chunk
    // reads are verified against the recorded CRC when verify_on_read is
    // set (slices would need a full-chunk readback to check).
    auto read = tier.Read(object, offset_in_chunk, dst);
    if (!read.ok()) {
      error = read.status();
    } else if (read.value() != dst.size()) {
      corrupt = true;
    } else if (config_.resilience.verify_on_read && offset_in_chunk == 0 &&
               dst.size() == logical_n &&
               Crc32c(std::span<const std::byte>(dst)) != meta.crc_logical) {
      corrupt = true;
    } else {
      served = true;
    }
  } else {
    // Compressed chunk: pull the stored bytes through a reusable
    // per-thread scratch buffer, verify the stored-side CRC (a corrupt
    // stream must never reach the decoder), decode — straight into the
    // caller's buffer when the request covers the whole chunk — and
    // verify the logical side.
    thread_local std::vector<std::byte> stored_scratch;
    thread_local std::vector<std::byte> logical_scratch;
    stored_scratch.resize(meta.stored_bytes);
    auto read = tier.Read(object, 0, stored_scratch);
    if (!read.ok()) {
      error = read.status();
    } else if (read.value() != meta.stored_bytes ||
               Crc32c(std::span<const std::byte>(stored_scratch)) !=
                   meta.crc_stored) {
      corrupt = true;
    } else {
      const obs::TraceSpan span("pack.decompress", "core");
      std::span<std::byte> logical;
      if (offset_in_chunk == 0 && dst.size() == logical_n) {
        logical = dst;
      } else {
        logical_scratch.resize(logical_n);
        logical = logical_scratch;
      }
      if (!codec->Decode(stored_scratch, logical).ok() ||
          Crc32c(std::span<const std::byte>(logical)) != meta.crc_logical) {
        corrupt = true;
      } else {
        if (logical.data() != dst.data()) {
          std::copy_n(logical.begin() +
                          static_cast<std::ptrdiff_t>(offset_in_chunk),
                      dst.size(), dst.begin());
        }
        served = true;
      }
    }
  }
  if (served) return true;

  if (corrupt) {
    // Drop the bad copy so a later read re-stages it from the
    // authoritative extent bytes — corruption degrades to PFS
    // performance, never wrong bytes.
    MLOG_WARN << "staged chunk '" << object << "' on tier '" << tier.name()
              << "' failed verification; dropping it";
    std::lock_guard lock(cm.placement_mutex());
    const std::uint64_t stored = cm.TryEvict(chunk);
    if (stored > 0) {
      (void)tier.Delete(object);
      tier.Release(stored);
    }
    CountDegradedFallback("corruption", info->name, level);
  } else if (error.code() == StatusCode::kNotFound) {
    // Eviction race: the chunk vanished between the residency check and
    // the read. Same accounting as the whole-file fallback.
    if (read_pfs_fallbacks_ != nullptr) read_pfs_fallbacks_->Increment();
  } else {
    CountDegradedFallback("tier_error", info->name, level);
  }
  return false;
}

void Monarch::TriggerChunkStaging(const FileInfoPtr& info, pack::ChunkMap& cm,
                                  std::uint64_t offset,
                                  std::uint64_t length) {
  if (length == 0 || placement_->stopped()) return;
  // Shard ownership (ISSUE 4): chunk staging honours the same gate as
  // whole-file staging.
  if (config_.peer_view != nullptr &&
      !config_.peer_view->ShouldStageLocally(info->name)) {
    return;
  }
  // An offset-0 read (file open) re-arms a file whose last chunk staging
  // was refused for space; later chunks of the same pass stay latched.
  if (offset == 0) {
    info->stage_refused.store(false, std::memory_order_release);
  } else if (info->stage_refused.load(std::memory_order_acquire)) {
    return;
  }
  const std::uint32_t first = cm.ChunkOf(offset);
  const std::uint32_t last = cm.ChunkOf(offset + length - 1);
  std::vector<std::uint32_t> claimed;
  for (std::uint32_t c = first; c <= last; ++c) {
    if (!cm.IsResident(c) && cm.TryClaim(c)) claimed.push_back(c);
  }
  if (claimed.empty()) return;
  placement_->ScheduleChunkPlacement(info, std::move(claimed));
}

void Monarch::FinishChunkedMiss(std::string_view name, std::uint64_t offset,
                                std::size_t bytes_read) {
  chunk_misses_.fetch_add(1, std::memory_order_relaxed);
  if (chunk_misses_counter_ != nullptr) chunk_misses_counter_->Increment();
  auto& counters =
      *served_[static_cast<std::size_t>(hierarchy_->pfs_level())];
  counters.reads.fetch_add(1, std::memory_order_relaxed);
  counters.bytes.fetch_add(bytes_read, std::memory_order_relaxed);
  if (offset == 0 && hints_active_.load(std::memory_order_acquire)) {
    AdvancePrefetchCursor(name);
  }
}

Result<std::size_t> Monarch::ReadChunkedImpl(const FileInfoPtr& info,
                                             std::string_view name,
                                             std::uint64_t offset,
                                             std::span<std::byte> dst) {
  const int pfs = hierarchy_->pfs_level();
  const std::uint64_t length =
      offset >= info->size
          ? 0
          : std::min<std::uint64_t>(dst.size(), info->size - offset);
  pack::ChunkMap* cm =
      info->EnsureChunkMap(placement_->options().pack.chunk_bytes);

  // Every overlapping chunk resident → serve the request chunk by chunk
  // from the assigned tier; no PFS traffic at all.
  if (length > 0 && cm->RangeResident(offset, length)) {
    const int level = cm->tier();
    if (level >= 0 && level != pfs &&
        hierarchy_->NextServingLevel(level) == level) {
      std::uint64_t pos = offset;
      std::span<std::byte> out = dst.subspan(0, length);
      bool served = true;
      while (!out.empty()) {
        const std::uint32_t c = cm->ChunkOf(pos);
        const std::uint64_t in_chunk = pos - cm->ChunkOffset(c);
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(cm->ChunkLogicalBytes(c) - in_chunk,
                                    out.size()));
        if (!ServeResidentChunk(info, *cm, c, level, in_chunk,
                                out.subspan(0, n))) {
          served = false;  // counted inside; re-read everything from PFS
          break;
        }
        pos += n;
        out = out.subspan(n);
      }
      if (served) {
        chunk_hits_.fetch_add(1, std::memory_order_relaxed);
        if (chunk_hits_counter_ != nullptr) chunk_hits_counter_->Increment();
        FinishRead(info, name, level, offset,
                   static_cast<std::size_t>(length), {});
        return static_cast<std::size_t>(length);
      }
    }
  }

  // Miss (or partially resident, or the tier is sick): the request is
  // served by the authoritative PFS copy — through the pack index when
  // the dataset is packed — and the touched chunks are claimed for
  // background staging. PFS bytes scale with bytes *touched*.
  auto read = hierarchy_->Level(pfs).Read(name, offset, dst);
  if (!read.ok()) return read;
  if (read.value() > 0) {
    TriggerChunkStaging(info, *cm, offset, read.value());
  }
  FinishChunkedMiss(name, offset, read.value());
  return read;
}

Result<ReadLease> Monarch::ReadZeroCopyChunkedImpl(
    FileInfoPtr info, std::string_view name, std::uint64_t offset,
    std::uint64_t max_bytes, bool allow_zero_copy, bool& pin_transferred) {
  const int pfs = hierarchy_->pfs_level();
  const std::uint64_t length =
      offset >= info->size
          ? 0
          : std::min<std::uint64_t>(max_bytes, info->size - offset);
  pack::ChunkMap* cm =
      info->EnsureChunkMap(placement_->options().pack.chunk_bytes);

  if (length > 0) {
    const std::uint32_t c = cm->ChunkOf(offset);
    const int level = cm->tier();
    if (cm->IsResident(c) && level >= 0 && level != pfs &&
        hierarchy_->NextServingLevel(level) == level) {
      // Serve within the first overlapping chunk, clipped to its end —
      // short views are legal (ReadZeroCopy callers loop).
      const std::uint64_t in_chunk = offset - cm->ChunkOffset(c);
      const std::uint64_t avail = std::min<std::uint64_t>(
          length, cm->ChunkLogicalBytes(c) - in_chunk);
      if (placement_->pack_codec() == nullptr) {
        auto view = hierarchy_->Level(level).ReadZeroCopy(
            ChunkObjectNameTL(info->name, c), in_chunk, avail,
            allow_zero_copy);
        if (view.ok() && view.value().size() == avail) {
          chunk_hits_.fetch_add(1, std::memory_order_relaxed);
          if (chunk_hits_counter_ != nullptr) {
            chunk_hits_counter_->Increment();
          }
          FinishRead(info, name, level, offset, view.value().size(), {});
          pin_transferred = true;
          return ReadLease(std::move(view).value(), std::move(info), level);
        }
        if (!view.ok() &&
            view.status().code() == StatusCode::kNotFound) {
          if (read_pfs_fallbacks_ != nullptr) {
            read_pfs_fallbacks_->Increment();
          }
        } else if (!view.ok()) {
          CountDegradedFallback("tier_error", name, level);
        }
      } else {
        // Compressed chunk: decode the whole chunk into a heap buffer
        // the returned view keeps alive (zero_copy() reports false —
        // decompression is inherently a copy).
        auto logical = std::make_shared<std::vector<std::byte>>(
            cm->ChunkLogicalBytes(c));
        if (ServeResidentChunk(info, *cm, c, level, 0, *logical)) {
          const std::span<const std::byte> data(
              logical->data() + in_chunk, static_cast<std::size_t>(avail));
          storage::ReadView view(data, std::move(logical),
                                 /*zero_copy=*/false);
          chunk_hits_.fetch_add(1, std::memory_order_relaxed);
          if (chunk_hits_counter_ != nullptr) {
            chunk_hits_counter_->Increment();
          }
          FinishRead(info, name, level, offset, data.size(), {});
          pin_transferred = true;
          return ReadLease(std::move(view), std::move(info), level);
        }
      }
    }
  }

  // Miss: lend from the PFS (the pack layer serves packed names out of
  // their extents) and claim whatever the view actually covered.
  auto view = hierarchy_->Level(pfs).ReadZeroCopy(name, offset, max_bytes,
                                                  allow_zero_copy);
  if (!view.ok()) return view.status();
  if (view.value().size() > 0) {
    TriggerChunkStaging(info, *cm, offset, view.value().size());
  }
  FinishChunkedMiss(name, offset, view.value().size());
  pin_transferred = true;
  return ReadLease(std::move(view).value(), std::move(info), pfs);
}

void Monarch::FinishRead(const FileInfoPtr& info, std::string_view name,
                         int level, std::uint64_t offset,
                         std::size_t bytes_read,
                         std::span<const std::byte> donated) {
  const int pfs = hierarchy_->pfs_level();
  const int peer = hierarchy_->peer_level();

  auto& counters = *served_[static_cast<std::size_t>(level)];
  counters.reads.fetch_add(1, std::memory_order_relaxed);
  counters.bytes.fetch_add(bytes_read, std::memory_order_relaxed);

  if (level != pfs && info->prefetched.exchange(false)) {
    // First demand read of a copy that a look-ahead hint staged: the
    // prefetch paid off before demand ever touched the PFS.
    prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  // First access to a PFS-resident file: claim it and stage a copy in the
  // background (③/④). Any leading bytes the framework's request already
  // pulled are donated to the placement task — the full file when the
  // read covered it (old fast path), a prefix otherwise — so the staging
  // pipeline never re-reads them from the PFS. The §III-B partial-read
  // optimisation fetches the rest in the background (disabled => only
  // full reads stage).
  // Shard ownership (ISSUE 4): with a peer view installed, each node
  // stages only the files it owns — demand reads of peer-owned files go
  // owner-first / PFS-second and never trigger local staging. A read
  // served by a PEER still stages when this node is an owner (ISSUE 7):
  // with replication > 1 the later owners' reads are satisfied by the
  // first owner's copy, and without this their replicas would never
  // materialise — the donated bytes mean the copy costs no extra PFS
  // traffic.
  if ((level == pfs || level == peer) && !placement_->stopped() &&
      (config_.peer_view == nullptr ||
       config_.peer_view->ShouldStageLocally(info->name))) {
    // An offset-0 read (file open) re-arms a file whose last demand
    // staging was refused by the eviction policy; later chunks of the
    // same pass leave the latch alone so one open retries at most once.
    if (offset == 0) info->stage_refused.store(false, std::memory_order_release);
    const bool full_read = offset == 0 && bytes_read == info->size;
    if ((full_read ||
         placement_->options().fetch_full_file_on_partial_read) &&
        !info->stage_refused.load(std::memory_order_acquire)) {
      if (info->TryBeginFetch()) {
        std::optional<std::vector<std::byte>> content;
        if (offset == 0 && !donated.empty()) {
          // The copy happens ONLY when a staging task actually claims
          // the file — never on the per-read hot path.
          content.emplace(donated.begin(), donated.end());
        }
        placement_->SchedulePlacement(info, std::move(content));
      } else if (info->state.load(std::memory_order_acquire) ==
                 PlacementState::kFetching) {
        // Someone else holds the fetch — possibly a hint still queued
        // behind other speculative work. Demand has overtaken it: move
        // it to the demand lane.
        placement_->PromoteToDemand(info);
      }
    }
  }

  // Keep the look-ahead window rolling: a demand read of a hinted file
  // moves the cursor past it and claims the next files in order.
  if (offset == 0 && hints_active_.load(std::memory_order_acquire)) {
    AdvancePrefetchCursor(name);
  }
}

bool Monarch::VerifyTierRead(const FileInfoPtr& info, int level,
                             std::uint64_t offset,
                             std::span<const std::byte> data, std::size_t n) {
  // Only whole-file reads can be checked against the staged-copy CRC —
  // chunked reads would need per-block checksums. That covers the dlsim
  // trainer (sample == file) and any full-fetch read path.
  if (!config_.resilience.verify_on_read) return true;
  if (offset != 0 || n != info->size || !info->HasStagedCrc()) return true;
  const std::uint64_t expected =
      info->staged_crc.load(std::memory_order_acquire);
  if (Crc32c(data.subspan(0, n)) == expected) return true;
  MLOG_WARN << "read of '" << info->name << "' from tier '"
            << hierarchy_->Level(level).name()
            << "' failed CRC verification; quarantining the copy";
  placement_->QuarantineCopy(info);
  return false;
}

void Monarch::CountDegradedFallback(const char* cause, std::string_view name,
                                    int level) {
  if (read_degraded_fallbacks_ != nullptr) {
    read_degraded_fallbacks_->Increment();
  }
  if (std::string_view(cause) == "circuit_open") {
    fallbacks_circuit_open_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::string_view(cause) == "corruption") {
    fallbacks_corruption_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::string_view(cause) == "peer_miss") {
    fallbacks_peer_miss_.fetch_add(1, std::memory_order_relaxed);
  } else if (std::string_view(cause) == "peer_error") {
    fallbacks_peer_error_.fetch_add(1, std::memory_order_relaxed);
  } else {
    fallbacks_tier_error_.fetch_add(1, std::memory_order_relaxed);
  }
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant(
        "monarch.read.fallback", "resilience",
        "\"file\":" + obs::JsonQuote(name) + ",\"cause\":\"" + cause +
            "\",\"tier\":" + obs::JsonQuote(hierarchy_->Level(level).name()));
  }
}

void Monarch::HintUpcoming(std::span<const std::string> upcoming) {
  if (placement_->options().prefetch_lookahead <= 0) return;
  std::size_t installed = 0;
  {
    std::lock_guard lock(hint_mu_);
    hinted_order_.clear();
    hint_index_.clear();
    hinted_order_.reserve(upcoming.size());
    for (const std::string& name : upcoming) {
      FileInfoPtr info = metadata_.Lookup(name);
      if (!info) continue;  // unknown files cannot be prefetched
      hint_index_.emplace(name, hinted_order_.size());
      hinted_order_.push_back(std::move(info));
    }
    hint_cursor_ = 0;
    hint_scheduled_ = 0;
    installed = hinted_order_.size();
    hints_active_.store(installed != 0, std::memory_order_release);
  }
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.hint", "placement",
                         "\"files\":" + std::to_string(installed));
  }
  TopUpPrefetch();
}

void Monarch::InstallRunSchedule(
    const std::vector<std::vector<std::string>>& epochs) {
  std::vector<std::string> sequence;
  std::size_t total = 0;
  for (const auto& epoch : epochs) total += epoch.size();
  sequence.reserve(total);
  for (const auto& epoch : epochs) {
    sequence.insert(sequence.end(), epoch.begin(), epoch.end());
  }
  placement_->InstallSchedule(sequence);
}

void Monarch::AdvancePrefetchCursor(std::string_view name) {
  bool advanced = false;
  {
    std::lock_guard lock(hint_mu_);
    auto it = hint_index_.find(name);
    if (it == hint_index_.end()) return;
    if (it->second >= hint_cursor_) {
      hint_cursor_ = it->second + 1;
      advanced = true;
    }
  }
  if (advanced) TopUpPrefetch();
}

void Monarch::TopUpPrefetch() {
  if (placement_->stopped()) return;
  const bool pack = placement_->options().pack.enabled;
  // Claim under the lock (so the window accounting stays consistent),
  // enqueue outside it (SchedulePlacement takes the handler's own lock).
  std::vector<FileInfoPtr> claimed;
  std::vector<std::pair<FileInfoPtr, std::vector<std::uint32_t>>>
      chunk_claimed;
  {
    std::lock_guard lock(hint_mu_);
    const auto lookahead =
        static_cast<std::size_t>(placement_->options().prefetch_lookahead);
    const std::size_t limit =
        std::min(hinted_order_.size(), hint_cursor_ + lookahead);
    for (; hint_scheduled_ < limit; ++hint_scheduled_) {
      const FileInfoPtr& info = hinted_order_[hint_scheduled_];
      // Hints for peer-owned files are skipped, not claimed: the owner
      // stages them and this node reads them over the interconnect.
      if (config_.peer_view != nullptr &&
          !config_.peer_view->ShouldStageLocally(info->name)) {
        continue;
      }
      if (pack) {
        // Chunked files are prefetched whole, but chunk by chunk: claim
        // every non-resident chunk instead of the file-level fetch flag.
        pack::ChunkMap* cm =
            info->EnsureChunkMap(placement_->options().pack.chunk_bytes);
        std::vector<std::uint32_t> chunks;
        for (std::uint32_t c = 0; c < cm->num_chunks(); ++c) {
          if (!cm->IsResident(c) && cm->TryClaim(c)) chunks.push_back(c);
        }
        if (!chunks.empty()) {
          info->prefetched.store(true, std::memory_order_release);
          chunk_claimed.emplace_back(info, std::move(chunks));
        }
      } else if (info->TryBeginFetch()) {
        info->prefetched.store(true, std::memory_order_release);
        claimed.push_back(info);
      }
    }
  }
  for (FileInfoPtr& info : claimed) {
    placement_->SchedulePlacement(std::move(info), std::nullopt,
                                  StagingLane::kPrefetch);
  }
  for (auto& [info, chunks] : chunk_claimed) {
    placement_->ScheduleChunkPlacement(std::move(info), std::move(chunks),
                                       StagingLane::kPrefetch);
  }
}

Result<std::uint64_t> Monarch::FileSize(std::string_view name) {
  if (FileInfoPtr info = metadata_.Lookup(name)) return info->size;
  return hierarchy_->Pfs().engine().FileSize(std::string(name));
}

std::uint64_t Monarch::Prestage(bool block) {
  std::uint64_t scheduled = 0;
  for (const auto& entry : metadata_.Snapshot()) {
    // Shard ownership (ISSUE 4): prestage only this node's shard; the
    // rest of the dataset reaches it through the peer tier.
    if (config_.peer_view != nullptr &&
        !config_.peer_view->ShouldStageLocally(entry.name)) {
      continue;
    }
    FileInfoPtr info = metadata_.Lookup(entry.name);
    if (!info) continue;
    if (placement_->options().pack.enabled) {
      pack::ChunkMap* cm =
          info->EnsureChunkMap(placement_->options().pack.chunk_bytes);
      std::vector<std::uint32_t> chunks;
      for (std::uint32_t c = 0; c < cm->num_chunks(); ++c) {
        if (!cm->IsResident(c) && cm->TryClaim(c)) chunks.push_back(c);
      }
      if (chunks.empty()) continue;
      placement_->ScheduleChunkPlacement(std::move(info), std::move(chunks));
      ++scheduled;
      continue;
    }
    if (!info->TryBeginFetch()) continue;
    placement_->SchedulePlacement(std::move(info), std::nullopt);
    ++scheduled;
  }
  if (block) placement_->Drain();
  return scheduled;
}

Result<std::uint64_t> Monarch::RestageFile(const std::string& name) {
  if (placement_->stopped()) return std::uint64_t{0};
  // Ownership may have shifted again since the repair task was queued —
  // re-check the gate at drain time, not enqueue time.
  if (config_.peer_view != nullptr &&
      !config_.peer_view->ShouldStageLocally(name)) {
    return std::uint64_t{0};
  }
  FileInfoPtr info = metadata_.Lookup(name);
  if (!info) {
    return NotFoundError("restage of unindexed file '" + name + "'");
  }
  const std::uint64_t size = info->size;
  if (placement_->options().pack.enabled) {
    pack::ChunkMap* cm =
        info->EnsureChunkMap(placement_->options().pack.chunk_bytes);
    std::vector<std::uint32_t> chunks;
    for (std::uint32_t c = 0; c < cm->num_chunks(); ++c) {
      if (!cm->IsResident(c) && cm->TryClaim(c)) chunks.push_back(c);
    }
    if (chunks.empty()) return std::uint64_t{0};
    placement_->ScheduleChunkPlacement(std::move(info), std::move(chunks),
                                       StagingLane::kPrefetch);
    return size;
  }
  if (!info->TryBeginFetch()) return std::uint64_t{0};
  // Repair rides the PREFETCH lane: the two-lane pipeline guarantees it
  // parks behind demand staging and respects the in-flight byte caps.
  placement_->SchedulePlacement(std::move(info), std::nullopt,
                                StagingLane::kPrefetch);
  return size;
}

std::uint64_t Monarch::ReadvertisePlacedCopies() {
  if (config_.peer_view == nullptr) return 0;
  std::uint64_t readvertised = 0;
  for (const auto& entry : metadata_.Snapshot()) {
    if (entry.state != PlacementState::kPlaced) continue;
    FileInfoPtr info = metadata_.Lookup(entry.name);
    if (!info ||
        info->state.load(std::memory_order_acquire) != PlacementState::kPlaced) {
      continue;
    }
    config_.peer_view->OnStaged(entry.name,
                                info->level.load(std::memory_order_acquire));
    ++readvertised;
  }
  return readvertised;
}

void Monarch::StopPlacement() noexcept {
  placement_->StopScheduling();
  // Speculative work is pointless once placement stops: drop queued
  // hints so the files return to the retryable PFS-only state.
  hints_active_.store(false, std::memory_order_release);
  placement_->CancelPrefetches();
}

void Monarch::DrainPlacements() { placement_->Drain(); }

std::uint64_t Monarch::CleanupStagedCopies() {
  // Quiesce staging first so no copy lands after its delete.
  placement_->StopScheduling();
  placement_->Drain();

  const int pfs_level = hierarchy_->pfs_level();
  std::uint64_t removed = 0;
  for (const auto& entry : metadata_.Snapshot()) {
    if (entry.state != PlacementState::kPlaced) continue;
    FileInfoPtr info = metadata_.Lookup(entry.name);
    if (!info) continue;
    // Chunk-resident files drop all their chunk objects through the
    // placement handler (which also flips the state back to PFS-only).
    if (pack::ChunkMap* cm = info->chunk_map();
        cm != nullptr && cm->ResidentCount() > 0) {
      if (placement_->EvictChunkCopies(info) > 0) ++removed;
      continue;
    }
    // Claim the file (kPlaced -> kFetching) so concurrent readers stop
    // trusting the tier copy, then revert it to PFS-resident.
    PlacementState expected = PlacementState::kPlaced;
    if (!info->state.compare_exchange_strong(expected,
                                             PlacementState::kFetching,
                                             std::memory_order_acq_rel)) {
      continue;
    }
    const int level = info->level.load(std::memory_order_acquire);
    info->level.store(pfs_level, std::memory_order_release);
    info->AbortFetch(/*permanently=*/false);
    // Retract the cluster-directory advertisement before the bytes go.
    if (config_.peer_view != nullptr) config_.peer_view->OnDropped(info->name);
    StorageDriver& tier = hierarchy_->Level(level);
    if (tier.Delete(info->name).ok()) {
      tier.Release(info->size);
      ++removed;
    }
  }
  return removed;
}

void Monarch::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Quiesce the async ring first: queued ops cancel, in-flight ops finish
  // against a still-fully-alive instance, workers join.
  if (ring_) ring_->Shutdown();
  if (config_.cleanup_staged_on_shutdown) CleanupStagedCopies();
  placement_->StopScheduling();
  hints_active_.store(false, std::memory_order_release);
  // Don't make shutdown wait on speculative copies that nothing will read.
  placement_->CancelPrefetches();
  placement_->Drain();
}

MonarchStats Monarch::Stats() const {
  MonarchStats stats;
  stats.levels.reserve(hierarchy_->num_levels());
  for (std::size_t i = 0; i < hierarchy_->num_levels(); ++i) {
    const StorageDriver& driver =
        hierarchy_->Level(static_cast<int>(i));
    LevelReadStats level;
    level.tier_name = driver.name();
    level.reads = served_[i]->reads.load(std::memory_order_relaxed);
    level.bytes = served_[i]->bytes.load(std::memory_order_relaxed);
    level.occupancy_bytes = driver.occupancy_bytes();
    level.quota_bytes = driver.quota_bytes();
    level.circuit_state = driver.health().state();
    level.circuit_opens = driver.health().circuit_opens();
    level.error_rate = driver.health().error_rate();
    level.retries = driver.retries();
    stats.levels.push_back(std::move(level));
  }
  stats.placement = placement_->Stats();
  stats.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  stats.fallbacks_circuit_open =
      fallbacks_circuit_open_.load(std::memory_order_relaxed);
  stats.fallbacks_tier_error =
      fallbacks_tier_error_.load(std::memory_order_relaxed);
  stats.fallbacks_corruption =
      fallbacks_corruption_.load(std::memory_order_relaxed);
  stats.fallbacks_peer_miss =
      fallbacks_peer_miss_.load(std::memory_order_relaxed);
  stats.fallbacks_peer_error =
      fallbacks_peer_error_.load(std::memory_order_relaxed);
  stats.degraded_fallbacks =
      stats.fallbacks_circuit_open + stats.fallbacks_tier_error +
      stats.fallbacks_corruption + stats.fallbacks_peer_miss +
      stats.fallbacks_peer_error;
  stats.chunk_hits = chunk_hits_.load(std::memory_order_relaxed);
  stats.chunk_misses = chunk_misses_.load(std::memory_order_relaxed);
  if (pack_index_ != nullptr) {
    stats.pack_extents = pack_index_->extent_count();
    stats.pack_logical_files = pack_index_->logical_files();
    stats.pack_logical_bytes = pack_index_->logical_bytes();
  }
  stats.files_indexed = metadata_.FileCount();
  stats.dataset_bytes = metadata_.TotalBytes();
  stats.metadata_init_seconds = metadata_.init_seconds();
  return stats;
}

}  // namespace monarch::core
