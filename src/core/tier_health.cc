#include "core/tier_health.h"

#include <algorithm>

#include "obs/event_tracer.h"
#include "obs/json.h"
#include "util/logging.h"

namespace monarch::core {

const char* CircuitStateName(CircuitState state) noexcept {
  switch (state) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kHalfOpen: return "half-open";
    case CircuitState::kOpen: return "open";
  }
  return "unknown";
}

TierHealth::TierHealth(std::string tier_name, TierHealthOptions options)
    : name_(std::move(tier_name)),
      options_(options),
      window_(std::max<std::size_t>(1, options.window)) {
  for (auto& slot : window_) {
    slot.store(0, std::memory_order_relaxed);
  }
}

std::int64_t TierHealth::NowNs() const noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

bool TierHealth::AllowRequest() noexcept {
  if (!options_.enabled) return true;
  switch (state()) {
    case CircuitState::kClosed:
    case CircuitState::kHalfOpen:
      return true;
    case CircuitState::kOpen: {
      const std::int64_t opened = opened_at_ns_.load(std::memory_order_acquire);
      if (NowNs() - opened <
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              options_.cooldown)
              .count()) {
        return false;
      }
      TransitionToHalfOpen();
      // Whether this caller won the transition race or another did, the
      // circuit is no longer rejecting: admit the probe.
      return state() != CircuitState::kOpen;
    }
  }
  return true;
}

double TierHealth::RecordOutcome(bool failure) noexcept {
  const std::uint64_t seq = cursor_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t pos = static_cast<std::size_t>(seq % window_.size());
  const std::uint8_t value = failure ? 1 : 0;
  const std::uint8_t old =
      window_[pos].exchange(value, std::memory_order_relaxed);
  window_failures_.fetch_add(static_cast<std::int64_t>(value) - old,
                             std::memory_order_relaxed);
  const std::uint64_t samples = std::min<std::uint64_t>(
      seq + 1, static_cast<std::uint64_t>(window_.size()));
  if (samples < options_.min_samples) return -1.0;
  const std::int64_t failures =
      std::max<std::int64_t>(0, window_failures_.load(std::memory_order_relaxed));
  return static_cast<double>(failures) / static_cast<double>(samples);
}

double TierHealth::error_rate() const noexcept {
  const std::uint64_t seen = cursor_.load(std::memory_order_relaxed);
  const std::uint64_t samples = std::min<std::uint64_t>(
      seen, static_cast<std::uint64_t>(window_.size()));
  if (samples == 0) return 0.0;
  const std::int64_t failures =
      std::max<std::int64_t>(0, window_failures_.load(std::memory_order_relaxed));
  return static_cast<double>(failures) / static_cast<double>(samples);
}

void TierHealth::RecordSuccess() noexcept {
  if (!options_.enabled) return;
  RecordOutcome(false);
  if (state() == CircuitState::kHalfOpen &&
      probe_successes_.fetch_add(1, std::memory_order_acq_rel) + 1 >=
          options_.half_open_successes) {
    TransitionToClosed();
  }
}

void TierHealth::RecordFailure() noexcept {
  if (!options_.enabled) return;
  const double rate = RecordOutcome(true);
  switch (state()) {
    case CircuitState::kClosed:
      if (rate >= options_.error_threshold) TransitionToOpen();
      break;
    case CircuitState::kHalfOpen:
      // A failed probe means the tier has not recovered: re-open and
      // restart the cooldown.
      TransitionToOpen();
      break;
    case CircuitState::kOpen:
      break;  // stragglers that were already in flight
  }
}

void TierHealth::TransitionToOpen() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (state() == CircuitState::kOpen) return;
  opened_at_ns_.store(NowNs(), std::memory_order_release);
  state_.store(static_cast<int>(CircuitState::kOpen),
               std::memory_order_release);
  opens_.fetch_add(1, std::memory_order_relaxed);
  MLOG_WARN << "tier '" << name_ << "': circuit OPEN (error rate "
            << error_rate() << " over the last "
            << std::min<std::uint64_t>(cursor_.load(), window_.size())
            << " ops); routing reads around this tier";
  PublishTransition("tier.circuit_open");
}

void TierHealth::TransitionToHalfOpen() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (state() != CircuitState::kOpen) return;
  probe_successes_.store(0, std::memory_order_release);
  state_.store(static_cast<int>(CircuitState::kHalfOpen),
               std::memory_order_release);
  MLOG_INFO << "tier '" << name_ << "': circuit HALF-OPEN, probing";
  PublishTransition("tier.circuit_half_open");
}

void TierHealth::TransitionToClosed() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (state() != CircuitState::kHalfOpen) return;
  // Reset the window so the failures that opened the circuit don't
  // immediately re-open it. Concurrent recorders may race the reset; the
  // count is clamped at read time, so drift is bounded and harmless.
  for (auto& slot : window_) slot.store(0, std::memory_order_relaxed);
  window_failures_.store(0, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
  state_.store(static_cast<int>(CircuitState::kClosed),
               std::memory_order_release);
  MLOG_INFO << "tier '" << name_ << "': circuit CLOSED, tier recovered";
  PublishTransition("tier.circuit_close");
}

void TierHealth::PublishTransition(const char* event) noexcept {
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant(event, "resilience",
                         "\"tier\":" + obs::JsonQuote(name_));
  }
}

}  // namespace monarch::core
