#include "core/storage_hierarchy.h"

namespace monarch::core {

Result<std::unique_ptr<StorageHierarchy>> StorageHierarchy::Create(
    std::vector<StorageDriverPtr> drivers) {
  if (drivers.size() < 2) {
    return InvalidArgumentError(
        "a hierarchy needs at least one local tier plus the PFS level");
  }
  if (!drivers.back()->read_only()) {
    return InvalidArgumentError(
        "the last hierarchy level must be the read-only PFS source");
  }
  // One read-only peer-cache level is allowed directly above the PFS
  // (ISSUE 4); every level above that must be writable.
  int peer_level = -1;
  const std::size_t last_cache = drivers.size() - 2;
  if (drivers[last_cache]->read_only()) {
    if (drivers.size() < 3) {
      return InvalidArgumentError(
          "a hierarchy needs at least one writable tier above the "
          "read-only levels");
    }
    peer_level = static_cast<int>(last_cache);
  }
  for (std::size_t i = 0; i + 1 < drivers.size(); ++i) {
    if (drivers[i]->read_only() && static_cast<int>(i) != peer_level) {
      return InvalidArgumentError("tier '" + drivers[i]->name() +
                                  "' (level " + std::to_string(i) +
                                  ") must be writable");
    }
  }
  return std::unique_ptr<StorageHierarchy>(
      new StorageHierarchy(std::move(drivers), peer_level));
}

int StorageHierarchy::NextServingLevel(int from) noexcept {
  int level = from < 0 ? 0 : from;
  while (level < pfs_level() &&
         !drivers_[static_cast<std::size_t>(level)]->health().AllowRequest()) {
    ++level;
  }
  return level;
}

std::uint64_t StorageHierarchy::TotalWritableFreeBytes() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < drivers_.size(); ++i) {
    // A read-only peer level reports unlimited free space (quota 0); it
    // can never hold a placement, so it must not count.
    if (drivers_[i]->read_only()) continue;
    total += drivers_[i]->free_bytes();
  }
  return total;
}

}  // namespace monarch::core
