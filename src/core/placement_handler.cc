#include "core/placement_handler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/event_tracer.h"
#include "obs/json.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace monarch::core {

namespace {

const char* LaneName(StagingLane lane) {
  return lane == StagingLane::kDemand ? "demand" : "prefetch";
}

/// The scheduling thread's ambient tenant, or the process default
/// (training class) when none is installed — QoS-off callers never pay
/// for attribution.
qos::TenantContext SnapshotTenant() {
  const qos::TenantContext* ambient = qos::CurrentTenant();
  return ambient != nullptr ? *ambient : qos::TenantContext{};
}

}  // namespace

int PlacementHandler::TaskClass(const StagingTask& task) noexcept {
  if (task.lane == StagingLane::kPrefetch) {
    return qos::ClassIndex(qos::IoClass::kPrefetch);
  }
  return qos::ClassIndex(task.tenant.io_class);
}

double PlacementHandler::TaskCost(const StagingTask& task) const noexcept {
  if (task.chunks.empty()) {
    return static_cast<double>(task.file->size);
  }
  return static_cast<double>(task.chunks.size()) *
         static_cast<double>(
             std::max<std::uint64_t>(1, options_.pack.chunk_bytes));
}

void PlacementHandler::PushLocked(StagingTask task) {
  const int cls = TaskClass(task);
  const double cost = TaskCost(task);
  queue_.Push(cls, cost, std::move(task));
}

void PlacementHandler::NoteCopyDropped(FileInfo& file) noexcept {
  if (file.low_retention.exchange(false, std::memory_order_acq_rel)) {
    low_retention_resident_bytes_.fetch_sub(file.size,
                                            std::memory_order_relaxed);
  }
}

PlacementHandler::PlacementHandler(StorageHierarchy& hierarchy,
                                   MetadataContainer& metadata,
                                   PlacementPolicyPtr policy,
                                   PlacementOptions options,
                                   ResilienceOptions resilience,
                                   PeerViewPtr peer_view)
    : hierarchy_(hierarchy),
      metadata_(metadata),
      policy_(std::move(policy)),
      options_(options),
      resilience_(resilience),
      peer_view_(std::move(peer_view)),
      pool_(options.staging_buffer_bytes,
            std::min<std::uint64_t>(
                std::max<std::uint64_t>(1, options.staging_chunk_bytes),
                std::max<std::uint64_t>(1, options.staging_buffer_bytes))),
      inflight_bytes_(hierarchy.num_levels(), 0) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  evictions_counter_ = registry.GetCounter(
      "monarch.placement.evictions", "ops",
      "placed copies dropped to make room for incoming files");
  evicted_bytes_counter_ = registry.GetCounter(
      "monarch.placement.evicted_bytes", "bytes",
      "bytes freed from cache tiers by evictions");
  eviction_refused_counter_ = registry.GetCounter(
      "monarch.placement.eviction_refused", "ops",
      "evictions the policy refused or that freed no usable room");
  chunk_staged_counter_ = registry.GetCounter(
      "monarch.chunk.staged", "ops",
      "chunk copies published to cache tiers (pack mode)");
  chunk_stored_bytes_counter_ = registry.GetCounter(
      "monarch.chunk.stored_bytes", "bytes",
      "post-codec bytes written to cache tiers by chunk staging");
  chunk_evicted_counter_ = registry.GetCounter(
      "monarch.chunk.evicted", "ops",
      "chunk copies dropped from cache tiers");
  cross_class_counter_ = registry.GetCounter(
      "qos.cross_class_evictions", "ops",
      "evictions where a low-retention tenant dropped a demand working-"
      "set copy (zero by construction)");
  scan_refusal_counter_ = registry.GetCounter(
      "qos.scan_stage_refusals", "ops",
      "scan stagings refused by the low-retention resident cap");
  // Fair-queue classes (ISSUE 10): interactive and training are the
  // demand band, scan/drain/prefetch the background band. With QoS off
  // every class weighs 1 — the queue degenerates to the original
  // two-lane demand-before-prefetch behaviour.
  const qos::QosOptions& q = options_.qos;
  queue_.RegisterClass(qos::ClassIndex(qos::IoClass::kInteractive), 0,
                       q.enabled ? q.interactive_weight : 1.0);
  queue_.RegisterClass(qos::ClassIndex(qos::IoClass::kTraining), 0,
                       q.enabled ? q.training_weight : 1.0);
  queue_.RegisterClass(qos::ClassIndex(qos::IoClass::kScan), 1,
                       q.enabled ? q.scan_weight : 1.0);
  queue_.RegisterClass(qos::ClassIndex(qos::IoClass::kDrain), 1,
                       q.enabled ? q.drain_weight : 1.0);
  queue_.RegisterClass(qos::ClassIndex(qos::IoClass::kPrefetch), 1,
                       q.enabled ? q.drain_weight : 1.0);
  // A logical chunk must fit one pooled buffer: the staging pipeline
  // reads exactly one chunk per lease.
  options_.pack.chunk_bytes = std::min<std::uint64_t>(
      std::max<std::uint64_t>(1, options_.pack.chunk_bytes),
      pool_.chunk_bytes());
  if (options_.pack.enabled && options_.pack.codec != "none") {
    auto codec = pack::CodecByName(options_.pack.codec);
    if (codec.ok()) {
      codec_ = codec.value();
    } else {
      MLOG_WARN << "unknown pack codec '" << options_.pack.codec
                << "'; staging chunks uncompressed";
    }
  }
  const int n = std::max(1, options_.num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PlacementHandler::~PlacementHandler() {
  StopScheduling();
  CancelPrefetches();
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // A prefetch copy that was running during shutdown may have parked
  // itself after the cancel above; return those files to the retryable
  // state instead of leaving them stuck in kFetching.
  CancelPrefetches();
}

void PlacementHandler::SchedulePlacement(
    FileInfoPtr file, std::optional<std::vector<std::byte>> content,
    StagingLane lane) {
  if (stopped_.load(std::memory_order_relaxed)) {
    if (lane == StagingLane::kPrefetch) {
      prefetch_cancelled_.fetch_add(1, std::memory_order_relaxed);
      file->prefetched.store(false, std::memory_order_relaxed);
    }
    file->AbortFetch(/*permanently=*/false);
    return;
  }
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  if (lane == StagingLane::kPrefetch) {
    prefetch_scheduled_.fetch_add(1, std::memory_order_relaxed);
  }
  // The task owns the FileInfo reference and (optionally) the bytes the
  // read path already fetched, avoiding a second PFS read (§III-B, ③/④).
  StagingTask task{std::move(file), std::move(content), lane, {},
                   SnapshotTenant()};
  {
    std::lock_guard lock(mu_);
    PushLocked(std::move(task));
  }
  cv_.notify_one();
}

void PlacementHandler::ScheduleChunkPlacement(FileInfoPtr file,
                                              std::vector<std::uint32_t> chunks,
                                              StagingLane lane) {
  if (chunks.empty()) return;
  StagingTask task;
  task.file = std::move(file);
  task.lane = lane;
  task.chunks = std::move(chunks);
  task.tenant = SnapshotTenant();
  if (stopped_.load(std::memory_order_relaxed)) {
    if (lane == StagingLane::kPrefetch) {
      prefetch_cancelled_.fetch_add(1, std::memory_order_relaxed);
      task.file->prefetched.store(false, std::memory_order_relaxed);
    }
    ReleaseChunkClaims(task);
    return;
  }
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  if (lane == StagingLane::kPrefetch) {
    prefetch_scheduled_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(mu_);
    PushLocked(std::move(task));
  }
  cv_.notify_one();
}

bool PlacementHandler::PromoteToDemand(const FileInfoPtr& file) {
  // The promoting thread is the overtaking demand reader: the task is
  // re-queued on that reader's class so the copy inherits its urgency.
  const qos::TenantContext promoter = SnapshotTenant();
  {
    std::lock_guard lock(mu_);
    auto match = [&file](const StagingTask& t) {
      return t.file == file && t.lane == StagingLane::kPrefetch;
    };
    std::optional<StagingTask> found = queue_.Extract(match);
    if (!found.has_value()) {
      auto dit = std::find_if(deferred_.begin(), deferred_.end(), match);
      if (dit == deferred_.end()) return false;
      found = std::move(*dit);
      deferred_.erase(dit);
    }
    found->lane = StagingLane::kDemand;
    found->tenant = promoter;
    PushLocked(std::move(*found));
  }
  prefetch_promoted_.fetch_add(1, std::memory_order_relaxed);
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.promote", "placement",
                         "\"file\":" + obs::JsonQuote(file->name));
  }
  cv_.notify_one();
  return true;
}

std::size_t PlacementHandler::CancelPrefetches() {
  std::vector<StagingTask> cancelled;
  {
    std::lock_guard lock(mu_);
    cancelled = queue_.ExtractAll([](const StagingTask& t) {
      return t.lane == StagingLane::kPrefetch;
    });
    for (auto& task : deferred_) cancelled.push_back(std::move(task));
    deferred_.clear();
  }
  for (const StagingTask& task : cancelled) {
    task.file->prefetched.store(false, std::memory_order_relaxed);
    if (task.chunks.empty()) {
      task.file->AbortFetch(/*permanently=*/false);
    } else {
      // Chunk tasks never claimed the file-level fetch; just hand the
      // chunk claims back so a later read can re-trigger staging.
      ReleaseChunkClaims(task);
    }
    prefetch_cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  drain_cv_.notify_all();
  return cancelled.size();
}

void PlacementHandler::WorkerLoop() {
  for (;;) {
    StagingTask task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      std::optional<StagingTask> popped = queue_.TryPop();
      if (!popped.has_value()) {
        // shutdown_ is set and nothing is queued: exit after the last
        // task finishes (queued tasks still run to completion).
        return;
      }
      task = std::move(*popped);
      ++active_;
    }
    // Re-install the scheduling thread's tenant on this worker so every
    // byte the copy moves stays attributable across the thread hop.
    const qos::TenantContext tenant = task.tenant;
    qos::ScopedTenant scope(tenant);
    if (task.chunks.empty()) {
      PlaceFile(std::move(task));
    } else {
      PlaceChunks(std::move(task));
    }
    {
      std::lock_guard lock(mu_);
      --active_;
    }
    drain_cv_.notify_all();
  }
}

bool PlacementHandler::AdmitInflight(int level, StagingTask& task) {
  const std::uint64_t size = task.file->size;
  const std::uint64_t cap = options_.tier_inflight_cap_bytes;
  std::lock_guard lock(mu_);
  auto& inflight = inflight_bytes_[static_cast<std::size_t>(level)];
  // The `inflight > 0` guard makes parking self-resolving: some other
  // copy is in flight on this tier, and its FinishInflight (under this
  // mutex) splices the parked task back into the prefetch queue.
  if (task.lane == StagingLane::kPrefetch && cap > 0 && inflight > 0 &&
      inflight + size > cap) {
    deferred_.push_back(std::move(task));
    return false;
  }
  inflight += size;
  return true;
}

void PlacementHandler::FinishInflight(int level, std::uint64_t size) {
  bool wake = false;
  {
    std::lock_guard lock(mu_);
    inflight_bytes_[static_cast<std::size_t>(level)] -= size;
    if (!deferred_.empty()) {
      for (auto& task : deferred_) PushLocked(std::move(task));
      deferred_.clear();
      wake = true;
    }
  }
  if (wake) cv_.notify_all();
}

void PlacementHandler::RecordStagingFailure(const FileInfoPtr& file) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  file->prefetched.store(false, std::memory_order_relaxed);
  const int failures =
      file->fetch_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= resilience_.max_placement_attempts) {
    abandoned_.fetch_add(1, std::memory_order_relaxed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("placement.abandoned", "resilience",
                           "\"file\":" + obs::JsonQuote(file->name) +
                               ",\"attempts\":" + std::to_string(failures));
    }
    MLOG_WARN << "giving up staging '" << file->name << "' after " << failures
              << " failed attempts; it stays PFS-resident";
    file->AbortFetch(/*permanently=*/true);
  } else {
    retries_.fetch_add(1, std::memory_order_relaxed);
    file->AbortFetch(/*permanently=*/false);
  }
}

Status PlacementHandler::StreamCopy(
    const FileInfoPtr& file, const std::optional<std::vector<std::byte>>& prefix,
    StorageDriver& destination, std::uint32_t& crc) {
  const std::uint64_t chunk_bytes = pool_.chunk_bytes();
  std::uint64_t offset = 0;
  crc = 0;

  // Donated leading bytes: the triggering partial read already paid the
  // PFS for these, so they enter the pipeline straight from memory.
  if (prefix.has_value() && !prefix->empty()) {
    const std::span<const std::byte> donated(*prefix);
    while (offset < donated.size()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk_bytes, donated.size() - offset));
      const auto slice = donated.subspan(static_cast<std::size_t>(offset), n);
      crc = Crc32c(slice, crc);
      MONARCH_RETURN_IF_ERROR(destination.WriteAt(file->name, offset, slice));
      offset += n;
      chunks_copied_.fetch_add(1, std::memory_order_relaxed);
    }
    donated_bytes_.fetch_add(donated.size(), std::memory_order_relaxed);
  }

  // Stream the remainder from the PFS through one pooled buffer — peak
  // staging memory is the pool budget, never the file size.
  if (offset < file->size) {
    BufferPool::Lease lease = pool_.Acquire();
    while (offset < file->size) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk_bytes, file->size - offset));
      const std::span<std::byte> buffer(lease.bytes().data(), n);
      auto read = hierarchy_.Pfs().Read(file->name, offset, buffer);
      if (!read.ok()) return read.status();
      if (read.value() != n) {
        return InternalError("short PFS read of '" + file->name + "' at " +
                             std::to_string(offset) + ": got " +
                             std::to_string(read.value()) + " of " +
                             std::to_string(n) + " bytes");
      }
      crc = Crc32c(buffer, crc);
      MONARCH_RETURN_IF_ERROR(destination.WriteAt(file->name, offset, buffer));
      offset += n;
      chunks_copied_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

bool PlacementHandler::VerifyStagedCopy(const FileInfoPtr& file,
                                        StorageDriver& destination,
                                        std::uint32_t crc) {
  const std::uint64_t chunk_bytes = pool_.chunk_bytes();
  BufferPool::Lease lease = pool_.Acquire();
  std::uint32_t readback_crc = 0;
  std::uint64_t offset = 0;
  while (offset < file->size) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_bytes, file->size - offset));
    const std::span<std::byte> buffer(lease.bytes().data(), n);
    auto read = destination.Read(file->name, offset, buffer);
    if (!read.ok() || read.value() != n) return false;
    readback_crc = Crc32c(buffer, readback_crc);
    offset += n;
  }
  return readback_crc == crc;
}

void PlacementHandler::PlaceFile(StagingTask task) {
  // Own reference, not an alias into the task: parking moves the task
  // into `deferred_`, which would leave `task.file` null.
  const FileInfoPtr file = task.file;
  // Spans the whole schedule→complete staging of one file. Args are only
  // rendered when tracing is live (active() gate).
  obs::TraceSpan span("placement.stage", "placement");
  if (span.active()) {
    span.set_args_json("\"file\":" + obs::JsonQuote(file->name) +
                       ",\"bytes\":" + std::to_string(file->size) +
                       ",\"lane\":\"" + LaneName(task.lane) + "\"");
  }

  // Scan resistance (ISSUE 10): a low-retention tenant past its
  // resident cap is refused — its reads keep being served straight from
  // the PFS instead of churning the cache tiers.
  const bool low_retention = task.tenant.low_retention;
  const std::uint64_t scan_cap = options_.qos.scan_stage_cap_bytes;
  if (low_retention && scan_cap > 0 &&
      low_retention_resident_bytes_.load(std::memory_order_relaxed) +
              file->size >
          scan_cap) {
    scan_stage_refusals_.fetch_add(1, std::memory_order_relaxed);
    scan_refusal_counter_->Increment();
    if (task.lane == StagingLane::kPrefetch) {
      prefetch_cancelled_.fetch_add(1, std::memory_order_relaxed);
      file->prefetched.store(false, std::memory_order_relaxed);
    }
    file->stage_refused.store(true, std::memory_order_release);
    file->AbortFetch(/*permanently=*/false);
    return;
  }

  // 1. Choose (and reserve) the destination level, falling back to
  // policy-driven eviction when no tier has room (EvictAndReserve gates
  // on what the policy and lane allow).
  std::optional<int> level = policy_->PickLevel(hierarchy_, file->size);
  if (!level.has_value()) level = EvictAndReserve(file, task.lane, file->size);
  if (!level.has_value()) {
    rejected_no_space_.fetch_add(1, std::memory_order_relaxed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("placement.rejected_no_space", "placement",
                           "\"file\":" + obs::JsonQuote(file->name));
    }
    if (task.lane == StagingLane::kPrefetch) {
      // A prefetch rejection is never permanent: a later demand read may
      // still place the file (e.g. after evictions free room).
      prefetch_cancelled_.fetch_add(1, std::memory_order_relaxed);
      file->prefetched.store(false, std::memory_order_relaxed);
      file->AbortFetch(/*permanently=*/false);
    } else if (options_.enable_eviction || policy_->EvictsUnderPressure()) {
      // Eviction makes quota headroom dynamic: this rejection only means
      // the policy protected every current resident (or lost the claim
      // races), not that the file can never fit. Leave it retryable so a
      // later access tries again against the then-current occupancy —
      // but latch stage_refused so chunked readers retry once per file
      // open instead of once per chunk.
      file->stage_refused.store(true, std::memory_order_release);
      file->AbortFetch(/*permanently=*/false);
    } else {
      // No tier can hold the file and nothing will ever be evicted: it
      // stays PFS-resident for the whole job (the 200 GiB-dataset
      // scenario). Mark it so the read path stops retrying placement on
      // every access.
      file->AbortFetch(/*permanently=*/true);
    }
    return;
  }

  StorageDriver& destination = hierarchy_.Level(*level);

  // 2. Per-tier staging-bandwidth cap: a prefetch copy parks while the
  // tier is saturated (any completion on the tier un-parks it); demand
  // copies are exempt so a read-triggered stage never waits here.
  const StagingLane lane = task.lane;
  if (!AdmitInflight(*level, task)) {
    destination.Release(file->size);
    return;
  }

  // 3. Copy. A full-content task (the triggering read covered the whole
  // file) is a single put of bytes already in memory; anything else is
  // the chunked pipeline: donated prefix first, then streamed PFS reads.
  std::uint32_t crc = 0;
  Status written = Status::Ok();
  if (task.content.has_value() && task.content->size() == file->size) {
    crc = Crc32c(*task.content);
    written = destination.Write(file->name, *task.content);
  } else {
    written = StreamCopy(file, task.content, destination, crc);
  }
  if (!written.ok()) {
    MLOG_WARN << "placement copy of '" << file->name << "' to tier '"
              << destination.name() << "' failed: " << written;
    // A chunked copy may have landed a partial file; remove it so a
    // retry starts clean and readers never see a truncated copy.
    (void)destination.Delete(file->name);
    destination.Release(file->size);
    FinishInflight(*level, file->size);
    RecordStagingFailure(file);
    return;
  }

  // 4. Optionally read the copy back (chunked, bounded memory) and prove
  // the bytes landed intact — a corrupted staged copy must degrade to a
  // failed placement, never get published as a serving replica.
  if (resilience_.verify_staged_writes &&
      !VerifyStagedCopy(file, destination, crc)) {
    MLOG_WARN << "staged copy of '" << file->name << "' on tier '"
              << destination.name() << "' failed verification; deleting";
    // We still hold the Reserve for this copy, so the quota comes back
    // whether or not the delete found anything on disk.
    (void)destination.Delete(file->name);
    destination.Release(file->size);
    FinishInflight(*level, file->size);
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("placement.quarantine", "resilience",
                           "\"file\":" + obs::JsonQuote(file->name) +
                               ",\"tier\":" +
                               obs::JsonQuote(destination.name()) +
                               ",\"phase\":\"stage\"");
    }
    RecordStagingFailure(file);
    return;
  }

  // Record the checksum before publishing the level so any reader that
  // observes kPlaced also observes the CRC it may verify against.
  file->staged_crc.store(crc, std::memory_order_release);
  file->fetch_failures.store(0, std::memory_order_relaxed);
  if (low_retention) {
    if (!file->low_retention.exchange(true, std::memory_order_acq_rel)) {
      low_retention_resident_bytes_.fetch_add(file->size,
                                              std::memory_order_relaxed);
    }
  } else {
    // A demand-class tenant re-staged the file: its copy is a working-
    // set member again, protected from low-retention evictors.
    NoteCopyDropped(*file);
  }
  file->FinishFetch(*level);
  // Advertise the copy to the cluster once it is actually readable.
  if (peer_view_ != nullptr) peer_view_->OnStaged(file->name, *level);
  completed_.fetch_add(1, std::memory_order_relaxed);
  bytes_staged_.fetch_add(file->size, std::memory_order_relaxed);
  if (lane == StagingLane::kPrefetch) {
    prefetch_completed_.fetch_add(1, std::memory_order_relaxed);
  }
  FinishInflight(*level, file->size);
}

bool PlacementHandler::QuarantineCopy(const FileInfoPtr& file) {
  // Claim the file exactly like an eviction: kPlaced -> kFetching stops
  // concurrent readers from trusting its level while we delete the copy.
  PlacementState expected = PlacementState::kPlaced;
  if (!file->state.compare_exchange_strong(expected, PlacementState::kFetching,
                                           std::memory_order_acq_rel)) {
    return false;  // already being fetched/evicted/quarantined elsewhere
  }
  const int level = file->level.load(std::memory_order_acquire);
  if (level == hierarchy_.pfs_level()) {
    // Nothing staged to quarantine (level already points at the source).
    file->state.store(PlacementState::kPlaced, std::memory_order_release);
    return false;
  }
  StorageDriver& tier = hierarchy_.Level(level);
  file->level.store(hierarchy_.pfs_level(), std::memory_order_release);
  if (peer_view_ != nullptr) peer_view_->OnDropped(file->name);
  if (tier.Delete(file->name).ok()) {
    tier.Release(file->size);
  }
  NoteCopyDropped(*file);
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.quarantine", "resilience",
                         "\"file\":" + obs::JsonQuote(file->name) +
                             ",\"tier\":" + obs::JsonQuote(tier.name()) +
                             ",\"phase\":\"read\"");
  }
  MLOG_WARN << "quarantined corrupt copy of '" << file->name << "' on tier '"
            << tier.name() << "'; reads fall back to the PFS";
  // A corrupt copy counts toward the per-file cap so persistent
  // corruption eventually parks the file as unplaceable; with
  // restage_after_quarantine off the file is parked immediately.
  const int failures =
      file->fetch_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  file->AbortFetch(/*permanently=*/!resilience_.restage_after_quarantine ||
                   failures >= resilience_.max_placement_attempts);
  return true;
}

bool PlacementHandler::EvictOne(const FileInfoPtr& victim) {
  FileInfo& vf = *victim;
  // Scan resistance (ISSUE 10): a low-retention requester may only
  // evict other low-retention copies — it can never push out a demand
  // working set, so `qos.cross_class_evictions` stays zero by
  // construction.
  const qos::TenantContext* requester = qos::CurrentTenant();
  if (requester != nullptr && requester->low_retention &&
      !vf.low_retention.load(std::memory_order_acquire)) {
    return false;
  }
  // Chunk-resident victims (pack mode) hold per-chunk quota and tier
  // objects, not a whole-file copy: drop them through the chunk path.
  if (pack::ChunkMap* cm = vf.chunk_map();
      cm != nullptr && cm->ResidentCount() > 0) {
    return EvictChunks(victim,
                       std::numeric_limits<std::uint64_t>::max()) > 0;
  }
  // Claim the victim: kPlaced -> kFetching blocks concurrent readers
  // from trusting its level while we delete the copy.
  PlacementState expected = PlacementState::kPlaced;
  if (!vf.state.compare_exchange_strong(expected, PlacementState::kFetching,
                                        std::memory_order_acq_rel)) {
    return false;
  }
  // Read pins (ISSUE 6): a demand read is mid-flight on this file's
  // staged copy. Revert the claim — its bytes stay until the read ends.
  // The pin is checked after the claim so a reader that pinned first is
  // always honoured; one that pins after this check degrades to the
  // pre-pinning behaviour (kNotFound -> PFS fallback).
  if (vf.read_pins.load(std::memory_order_acquire) > 0) {
    vf.state.store(PlacementState::kPlaced, std::memory_order_release);
    eviction_pinned_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const int victim_level = vf.level.load(std::memory_order_acquire);
  if (victim_level == hierarchy_.pfs_level()) {
    // Nothing staged (stale snapshot); leave the file as we found it.
    vf.state.store(PlacementState::kPlaced, std::memory_order_release);
    return false;
  }
  StorageDriver& tier = hierarchy_.Level(victim_level);
  vf.level.store(hierarchy_.pfs_level(), std::memory_order_release);
  if (peer_view_ != nullptr) peer_view_->OnDropped(vf.name);
  vf.AbortFetch(/*permanently=*/false);  // back to PFS-only
  if (!tier.Delete(vf.name).ok()) return false;
  tier.Release(vf.size);
  const bool was_low_retention =
      vf.low_retention.load(std::memory_order_acquire);
  NoteCopyDropped(vf);
  if (requester != nullptr && requester->low_retention &&
      !was_low_retention) {
    // Unreachable under the guard above; counted so a future regression
    // shows up in `qos.cross_class_evictions` instead of hiding.
    cross_class_evictions_.fetch_add(1, std::memory_order_relaxed);
    cross_class_counter_->Increment();
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
  evicted_bytes_.fetch_add(vf.size, std::memory_order_relaxed);
  evictions_counter_->Increment();
  evicted_bytes_counter_->Increment(vf.size);
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.evict", "placement",
                         "\"file\":" + obs::JsonQuote(vf.name) +
                             ",\"bytes\":" + std::to_string(vf.size) +
                             ",\"tier\":" + obs::JsonQuote(tier.name()));
  }
  return true;
}

std::optional<int> PlacementHandler::EvictAndReserve(const FileInfoPtr& file,
                                                     StagingLane lane,
                                                     std::uint64_t bytes) {
  const bool may_evict =
      lane == StagingLane::kDemand
          ? options_.enable_eviction || policy_->EvictsUnderPressure()
          : policy_->PrefetchMayEvict();
  if (!may_evict) return std::nullopt;

  // The policy ranks; this loop claims and drops. Re-ask PickLevel after
  // each successful eviction — freed space is first-come-first-served
  // under concurrent workers, so the reservation is the only proof.
  // Low-retention (scan) copies are tried first: they are explicitly
  // marked expendable, so demand working sets survive pressure longest.
  std::vector<FileInfoPtr> victims = policy_->SelectVictims(
      metadata_, *file, lane == StagingLane::kDemand);
  if (options_.qos.enabled) {
    std::stable_partition(victims.begin(), victims.end(),
                          [](const FileInfoPtr& v) {
                            return v->low_retention.load(
                                std::memory_order_acquire);
                          });
  }
  for (const FileInfoPtr& victim : victims) {
    if (victim == file) continue;
    if (!EvictOne(victim)) continue;
    if (auto level = policy_->PickLevel(hierarchy_, bytes)) return level;
  }
  eviction_refused_.fetch_add(1, std::memory_order_relaxed);
  eviction_refused_counter_->Increment();
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.evict_refused", "placement",
                         "\"file\":" + obs::JsonQuote(file->name) +
                             ",\"bytes\":" + std::to_string(bytes));
  }
  return std::nullopt;
}

void PlacementHandler::ReleaseChunkClaims(const StagingTask& task) {
  pack::ChunkMap* cm = task.file->chunk_map();
  if (cm == nullptr) return;
  for (const std::uint32_t c : task.chunks) cm->ReleaseClaim(c);
  std::lock_guard lock(cm->placement_mutex());
  cm->MaybeResetTier();
}

std::uint64_t PlacementHandler::EvictChunks(const FileInfoPtr& victim,
                                            std::uint64_t needed_bytes) {
  FileInfo& vf = *victim;
  pack::ChunkMap* cm = vf.chunk_map();
  if (cm == nullptr) return 0;
  // Read pins protect chunked files exactly like whole-file copies: an
  // active read keeps every resident chunk until it unpins.
  if (vf.read_pins.load(std::memory_order_acquire) > 0) {
    eviction_pinned_skips_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  const int level = cm->tier();
  if (level < 0 || level == hierarchy_.pfs_level()) return 0;
  StorageDriver& tier = hierarchy_.Level(level);
  std::uint64_t freed = 0;
  std::uint64_t dropped = 0;
  {
    std::lock_guard lock(cm->placement_mutex());
    for (std::uint32_t c = 0;
         c < cm->num_chunks() && freed < needed_bytes; ++c) {
      const std::uint64_t stored = cm->TryEvict(c);
      if (stored == 0) continue;
      (void)tier.Delete(pack::ChunkObjectName(vf.name, c));
      tier.Release(stored);
      freed += stored;
      ++dropped;
    }
    if (cm->ResidentCount() == 0) {
      cm->MaybeResetTier();
      NoteCopyDropped(vf);
      // The file no longer serves anything from a tier; fold it back to
      // PFS-resident through the same claim the whole-file evictor uses
      // (readers mid-lookup fall back to the PFS on kNotFound).
      PlacementState expected = PlacementState::kPlaced;
      if (vf.state.compare_exchange_strong(expected,
                                           PlacementState::kFetching,
                                           std::memory_order_acq_rel)) {
        vf.level.store(hierarchy_.pfs_level(), std::memory_order_release);
        vf.AbortFetch(/*permanently=*/false);
      }
    }
  }
  if (dropped > 0) {
    chunks_evicted_.fetch_add(dropped, std::memory_order_relaxed);
    evicted_bytes_.fetch_add(freed, std::memory_order_relaxed);
    chunk_evicted_counter_->Increment(dropped);
    evicted_bytes_counter_->Increment(freed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("placement.evict", "placement",
                           "\"file\":" + obs::JsonQuote(vf.name) +
                               ",\"bytes\":" + std::to_string(freed) +
                               ",\"chunks\":" + std::to_string(dropped) +
                               ",\"tier\":" + obs::JsonQuote(tier.name()));
    }
  }
  return freed;
}

bool PlacementHandler::EvictForChunkOn(int level, const FileInfoPtr& incoming,
                                       std::uint64_t stored_bytes,
                                       StagingLane lane) {
  const bool may_evict =
      lane == StagingLane::kDemand
          ? options_.enable_eviction || policy_->EvictsUnderPressure()
          : policy_->PrefetchMayEvict();
  if (!may_evict) return false;
  StorageDriver& tier = hierarchy_.Level(level);
  std::vector<FileInfoPtr> victims = policy_->SelectVictims(
      metadata_, *incoming, lane == StagingLane::kDemand);
  if (options_.qos.enabled) {
    std::stable_partition(victims.begin(), victims.end(),
                          [](const FileInfoPtr& v) {
                            return v->low_retention.load(
                                std::memory_order_acquire);
                          });
  }
  for (const FileInfoPtr& victim : victims) {
    if (victim == incoming) continue;
    // Only victims resident on this level can free room here: the
    // incoming file's chunks are pinned to `level` by the tier
    // assignment, so space anywhere else does not help.
    const pack::ChunkMap* vcm = victim->chunk_map();
    const int victim_level =
        vcm != nullptr && vcm->ResidentCount() > 0
            ? vcm->tier()
            : victim->level.load(std::memory_order_acquire);
    if (victim_level != level) continue;
    if (!EvictOne(victim)) continue;
    if (tier.Reserve(stored_bytes)) return true;
  }
  eviction_refused_.fetch_add(1, std::memory_order_relaxed);
  eviction_refused_counter_->Increment();
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.evict_refused", "placement",
                         "\"file\":" + obs::JsonQuote(incoming->name) +
                             ",\"bytes\":" + std::to_string(stored_bytes));
  }
  return false;
}

std::optional<int> PlacementHandler::ReserveChunk(const FileInfoPtr& file,
                                                  pack::ChunkMap& cm,
                                                  std::uint64_t stored_bytes,
                                                  StagingLane lane) {
  int level = cm.tier();
  if (level < 0) {
    // No tier assigned yet: let the policy pick one (reserving the
    // bytes there), then race to install it as the file's tier.
    std::optional<int> picked = policy_->PickLevel(hierarchy_, stored_bytes);
    if (!picked.has_value()) picked = EvictAndReserve(file, lane, stored_bytes);
    if (!picked.has_value()) return std::nullopt;
    {
      std::lock_guard lock(cm.placement_mutex());
      level = cm.AssignTier(*picked);
    }
    if (level == *picked) return level;
    // Lost the assignment race: hand the reservation back and fall
    // through to reserve on the winner's tier instead.
    hierarchy_.Level(*picked).Release(stored_bytes);
  }
  StorageDriver& tier = hierarchy_.Level(level);
  if (tier.Reserve(stored_bytes)) return level;
  if (EvictForChunkOn(level, file, stored_bytes, lane)) return level;
  return std::nullopt;
}

void PlacementHandler::PlaceChunks(StagingTask task) {
  const FileInfoPtr file = task.file;
  pack::ChunkMap* cm = file->chunk_map();
  if (cm == nullptr) return;  // claims imply a map; defensive only
  obs::TraceSpan span("pack.stage", "placement");
  if (span.active()) {
    span.set_args_json("\"file\":" + obs::JsonQuote(file->name) +
                       ",\"chunks\":" + std::to_string(task.chunks.size()) +
                       ",\"lane\":\"" + LaneName(task.lane) + "\"");
  }

  // Scan resistance, chunk flavour: past the cap, refuse instead of
  // staging (the claims go back so a later read can retry).
  const bool low_retention = task.tenant.low_retention;
  const std::uint64_t scan_cap = options_.qos.scan_stage_cap_bytes;
  if (low_retention && scan_cap > 0 &&
      low_retention_resident_bytes_.load(std::memory_order_relaxed) +
              file->size >
          scan_cap) {
    scan_stage_refusals_.fetch_add(1, std::memory_order_relaxed);
    scan_refusal_counter_->Increment();
    if (task.lane == StagingLane::kPrefetch) {
      prefetch_cancelled_.fetch_add(1, std::memory_order_relaxed);
      file->prefetched.store(false, std::memory_order_relaxed);
    }
    file->stage_refused.store(true, std::memory_order_release);
    ReleaseChunkClaims(task);
    return;
  }

  // One pooled lease carries the logical bytes of every chunk in the
  // task (pack.chunk_bytes is clamped to the pool's chunk size); the
  // codec output and verification scratch are reused across chunks.
  BufferPool::Lease lease = pool_.Acquire();
  std::vector<std::byte> encoded;
  std::vector<std::byte> readback;

  std::size_t next = 0;
  bool rejected = false;
  Status failure = Status::Ok();
  for (; next < task.chunks.size(); ++next) {
    const std::uint32_t c = task.chunks[next];
    const std::uint64_t offset = cm->ChunkOffset(c);
    const std::uint32_t logical_n = cm->ChunkLogicalBytes(c);
    const std::span<std::byte> logical(lease.bytes().data(), logical_n);
    auto read = hierarchy_.Pfs().Read(file->name, offset, logical);
    if (!read.ok()) {
      failure = read.status();
      break;
    }
    if (read.value() != logical_n) {
      failure = InternalError("short PFS read of '" + file->name + "' at " +
                              std::to_string(offset) + ": got " +
                              std::to_string(read.value()) + " of " +
                              std::to_string(logical_n) + " bytes");
      break;
    }
    pack::ChunkMap::ChunkMeta meta;
    meta.crc_logical = Crc32c(logical);
    std::span<const std::byte> stored(logical);
    if (codec_ != nullptr) {
      const Status encoded_ok = codec_->Encode(logical, encoded);
      if (!encoded_ok.ok()) {
        failure = encoded_ok;
        break;
      }
      stored = encoded;
    }
    meta.stored_bytes = static_cast<std::uint32_t>(stored.size());
    meta.crc_stored = Crc32c(stored);

    const std::optional<int> level =
        ReserveChunk(file, *cm, stored.size(), task.lane);
    if (!level.has_value()) {
      rejected = true;
      break;
    }
    StorageDriver& tier = hierarchy_.Level(*level);
    const std::string object = pack::ChunkObjectName(file->name, c);
    Status written = tier.Write(object, stored);
    if (written.ok() && resilience_.verify_staged_writes) {
      readback.resize(stored.size());
      auto rb = tier.Read(object, 0, readback);
      if (!rb.ok() || rb.value() != stored.size() ||
          Crc32c(std::span<const std::byte>(readback)) != meta.crc_stored) {
        quarantined_.fetch_add(1, std::memory_order_relaxed);
        written =
            DataLossError("staged chunk failed verification: " + object);
      }
    }
    if (!written.ok()) {
      (void)tier.Delete(object);
      tier.Release(stored.size());
      failure = written;
      break;
    }
    {
      std::lock_guard lock(cm->placement_mutex());
      if (cm->Publish(c, meta) == 1) {
        // First resident chunk: the file now serves (partially) from a
        // tier. Flip the whole-file state so the eviction policies see
        // it as placed and readers route offset lookups via the map.
        file->fetch_failures.store(0, std::memory_order_relaxed);
        if (low_retention &&
            !file->low_retention.exchange(true,
                                          std::memory_order_acq_rel)) {
          low_retention_resident_bytes_.fetch_add(
              file->size, std::memory_order_relaxed);
        }
        file->FinishFetch(*level);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (task.lane == StagingLane::kPrefetch) {
          prefetch_completed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    chunks_staged_.fetch_add(1, std::memory_order_relaxed);
    chunk_stored_bytes_.fetch_add(stored.size(), std::memory_order_relaxed);
    bytes_staged_.fetch_add(logical_n, std::memory_order_relaxed);
    chunk_staged_counter_->Increment();
    chunk_stored_bytes_counter_->Increment(stored.size());
  }

  if (next >= task.chunks.size()) return;  // every chunk published

  // Back out the claims we will not stage.
  StagingTask rest;
  rest.file = file;
  rest.chunks.assign(task.chunks.begin() +
                         static_cast<std::ptrdiff_t>(next),
                     task.chunks.end());
  ReleaseChunkClaims(rest);
  if (rejected) {
    rejected_no_space_.fetch_add(1, std::memory_order_relaxed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("placement.rejected_no_space", "placement",
                           "\"file\":" + obs::JsonQuote(file->name));
    }
    if (task.lane == StagingLane::kPrefetch) {
      prefetch_cancelled_.fetch_add(1, std::memory_order_relaxed);
      file->prefetched.store(false, std::memory_order_relaxed);
    } else {
      // Latch so chunked readers stop re-enqueueing doomed demand
      // stagings chunk by chunk; the next offset-0 read re-arms it.
      file->stage_refused.store(true, std::memory_order_release);
    }
    return;
  }
  chunk_failures_.fetch_add(1, std::memory_order_relaxed);
  failed_.fetch_add(1, std::memory_order_relaxed);
  file->prefetched.store(false, std::memory_order_relaxed);
  MLOG_WARN << "chunk staging of '" << file->name << "' failed: " << failure;
}

void PlacementHandler::InstallSchedule(
    const std::vector<std::string>& sequence) {
  policy_->OnSchedule(sequence);
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.schedule", "placement",
                         "\"accesses\":" + std::to_string(sequence.size()) +
                             ",\"policy\":" + obs::JsonQuote(policy_->Name()));
  }
}

void PlacementHandler::NoteAccess(const FileInfo& file) {
  policy_->OnAccess(file);
}

void PlacementHandler::Drain() {
  std::unique_lock lock(mu_);
  drain_cv_.wait(lock, [this] {
    return queue_.empty() && deferred_.empty() && active_ == 0;
  });
}

PlacementStats PlacementHandler::Stats() const {
  PlacementStats s;
  s.scheduled = scheduled_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_no_space = rejected_no_space_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.bytes_staged = bytes_staged_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.evicted_bytes = evicted_bytes_.load(std::memory_order_relaxed);
  s.eviction_refused = eviction_refused_.load(std::memory_order_relaxed);
  s.eviction_pinned_skips =
      eviction_pinned_skips_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.abandoned = abandoned_.load(std::memory_order_relaxed);
  s.prefetch_scheduled = prefetch_scheduled_.load(std::memory_order_relaxed);
  s.prefetch_completed = prefetch_completed_.load(std::memory_order_relaxed);
  s.prefetch_promoted = prefetch_promoted_.load(std::memory_order_relaxed);
  s.prefetch_cancelled = prefetch_cancelled_.load(std::memory_order_relaxed);
  s.chunks_copied = chunks_copied_.load(std::memory_order_relaxed);
  s.donated_bytes = donated_bytes_.load(std::memory_order_relaxed);
  s.chunks_staged = chunks_staged_.load(std::memory_order_relaxed);
  s.chunk_stored_bytes = chunk_stored_bytes_.load(std::memory_order_relaxed);
  s.chunks_evicted = chunks_evicted_.load(std::memory_order_relaxed);
  s.chunk_failures = chunk_failures_.load(std::memory_order_relaxed);
  s.cross_class_evictions =
      cross_class_evictions_.load(std::memory_order_relaxed);
  s.scan_stage_refusals =
      scan_stage_refusals_.load(std::memory_order_relaxed);
  s.low_retention_resident_bytes =
      low_retention_resident_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    s.queue_depth_interactive = queue_.class_depth(
        qos::ClassIndex(qos::IoClass::kInteractive));
    s.queue_depth_training =
        queue_.class_depth(qos::ClassIndex(qos::IoClass::kTraining));
    s.queue_depth_scan =
        queue_.class_depth(qos::ClassIndex(qos::IoClass::kScan));
    s.queue_depth_drain =
        queue_.class_depth(qos::ClassIndex(qos::IoClass::kDrain));
    // The original two-lane gauges survive as aggregates: every demand-
    // band class counts as demand, the prefetch class (plus parked
    // tasks) as prefetch.
    s.queue_depth_demand = s.queue_depth_interactive +
                           s.queue_depth_training + s.queue_depth_scan +
                           s.queue_depth_drain;
    s.queue_depth_prefetch =
        queue_.class_depth(qos::ClassIndex(qos::IoClass::kPrefetch)) +
        deferred_.size();
    s.inflight_bytes_per_level = inflight_bytes_;
    for (const std::uint64_t bytes : inflight_bytes_) s.inflight_bytes += bytes;
  }
  s.buffer_pool_used_bytes = pool_.in_use_bytes();
  s.buffer_pool_capacity_bytes = pool_.capacity_bytes();
  return s;
}

}  // namespace monarch::core
