#include "core/placement_handler.h"

#include <algorithm>
#include <utility>

#include "obs/event_tracer.h"
#include "obs/json.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace monarch::core {

PlacementHandler::PlacementHandler(StorageHierarchy& hierarchy,
                                   MetadataContainer& metadata,
                                   PlacementPolicyPtr policy,
                                   PlacementOptions options,
                                   ResilienceOptions resilience)
    : hierarchy_(hierarchy),
      metadata_(metadata),
      policy_(std::move(policy)),
      options_(options),
      resilience_(resilience),
      pool_(static_cast<std::size_t>(std::max(1, options.num_threads))) {}

PlacementHandler::~PlacementHandler() {
  StopScheduling();
  pool_.Shutdown();
}

void PlacementHandler::SchedulePlacement(
    FileInfoPtr file, std::optional<std::vector<std::byte>> content) {
  if (stopped_.load(std::memory_order_relaxed)) {
    file->AbortFetch(/*permanently=*/false);
    return;
  }
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  // The task owns the FileInfo reference and (optionally) the content the
  // read path already fetched, avoiding a second PFS read (§III-B, ③/④).
  pool_.Submit([this, file = std::move(file),
                content = std::move(content)]() mutable {
    PlaceFile(file, std::move(content));
  });
}

void PlacementHandler::RecordStagingFailure(const FileInfoPtr& file) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  const int failures =
      file->fetch_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= resilience_.max_placement_attempts) {
    abandoned_.fetch_add(1, std::memory_order_relaxed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("placement.abandoned", "resilience",
                           "\"file\":" + obs::JsonQuote(file->name) +
                               ",\"attempts\":" + std::to_string(failures));
    }
    MLOG_WARN << "giving up staging '" << file->name << "' after " << failures
              << " failed attempts; it stays PFS-resident";
    file->AbortFetch(/*permanently=*/true);
  } else {
    retries_.fetch_add(1, std::memory_order_relaxed);
    file->AbortFetch(/*permanently=*/false);
  }
}

void PlacementHandler::PlaceFile(
    const FileInfoPtr& file, std::optional<std::vector<std::byte>> content) {
  // Spans the whole schedule→complete staging of one file. Args are only
  // rendered when tracing is live (active() gate).
  obs::TraceSpan span("placement.stage", "placement");
  if (span.active()) {
    span.set_args_json("\"file\":" + obs::JsonQuote(file->name) +
                       ",\"bytes\":" + std::to_string(file->size));
  }

  // 1. Choose (and reserve) the destination level.
  std::optional<int> level = policy_->PickLevel(hierarchy_, file->size);
  if (!level.has_value() && options_.enable_eviction) {
    level = EvictAndReserve(file->size);
  }
  if (!level.has_value()) {
    // No tier can hold the file: it stays PFS-resident for the whole job
    // (the 200 GiB-dataset scenario). Mark it so the read path stops
    // retrying placement on every access.
    rejected_no_space_.fetch_add(1, std::memory_order_relaxed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("placement.rejected_no_space", "placement",
                           "\"file\":" + obs::JsonQuote(file->name));
    }
    file->AbortFetch(/*permanently=*/true);
    return;
  }

  StorageDriver& destination = hierarchy_.Level(*level);

  // 2. Obtain the full content if the triggering read was partial.
  if (!content.has_value()) {
    std::vector<std::byte> buffer(file->size);
    auto read = hierarchy_.Pfs().Read(file->name, 0, buffer);
    if (!read.ok() || read.value() != file->size) {
      MLOG_WARN << "placement read of '" << file->name
                << "' failed: " << read.status();
      destination.Release(file->size);
      RecordStagingFailure(file);
      return;
    }
    content = std::move(buffer);
  }

  // Checksum the authoritative bytes before they leave our hands: this is
  // the reference the staged copy must match, now and on later reads.
  const std::uint32_t crc = Crc32c(*content);

  // 3. Write the staged copy and publish the new location (⑤/⑥).
  const Status written = destination.Write(file->name, *content);
  if (!written.ok()) {
    MLOG_WARN << "placement write of '" << file->name << "' to tier '"
              << destination.name() << "' failed: " << written;
    destination.Release(file->size);
    RecordStagingFailure(file);
    return;
  }

  // 4. Optionally read the copy back and prove the bytes landed intact —
  // a corrupted staged copy must degrade to a failed placement, never get
  // published as a serving replica.
  if (resilience_.verify_staged_writes) {
    std::vector<std::byte> readback(file->size);
    auto verify = destination.Read(file->name, 0, readback);
    const bool intact = verify.ok() && verify.value() == file->size &&
                        Crc32c(readback) == crc;
    if (!intact) {
      MLOG_WARN << "staged copy of '" << file->name << "' on tier '"
                << destination.name() << "' failed verification; deleting";
      // We still hold the Reserve for this copy, so the quota comes back
      // whether or not the delete found anything on disk.
      (void)destination.Delete(file->name);
      destination.Release(file->size);
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      obs::EventTracer& tracer = obs::EventTracer::Global();
      if (tracer.enabled()) {
        tracer.RecordInstant("placement.quarantine", "resilience",
                             "\"file\":" + obs::JsonQuote(file->name) +
                                 ",\"tier\":" +
                                 obs::JsonQuote(destination.name()) +
                                 ",\"phase\":\"stage\"");
      }
      RecordStagingFailure(file);
      return;
    }
  }

  // Record the checksum before publishing the level so any reader that
  // observes kPlaced also observes the CRC it may verify against.
  file->staged_crc.store(crc, std::memory_order_release);
  file->fetch_failures.store(0, std::memory_order_relaxed);
  file->FinishFetch(*level);
  completed_.fetch_add(1, std::memory_order_relaxed);
  bytes_staged_.fetch_add(file->size, std::memory_order_relaxed);
}

bool PlacementHandler::QuarantineCopy(const FileInfoPtr& file) {
  // Claim the file exactly like an eviction: kPlaced -> kFetching stops
  // concurrent readers from trusting its level while we delete the copy.
  PlacementState expected = PlacementState::kPlaced;
  if (!file->state.compare_exchange_strong(expected, PlacementState::kFetching,
                                           std::memory_order_acq_rel)) {
    return false;  // already being fetched/evicted/quarantined elsewhere
  }
  const int level = file->level.load(std::memory_order_acquire);
  if (level == hierarchy_.pfs_level()) {
    // Nothing staged to quarantine (level already points at the source).
    file->state.store(PlacementState::kPlaced, std::memory_order_release);
    return false;
  }
  StorageDriver& tier = hierarchy_.Level(level);
  file->level.store(hierarchy_.pfs_level(), std::memory_order_release);
  if (tier.Delete(file->name).ok()) {
    tier.Release(file->size);
  }
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("placement.quarantine", "resilience",
                         "\"file\":" + obs::JsonQuote(file->name) +
                             ",\"tier\":" + obs::JsonQuote(tier.name()) +
                             ",\"phase\":\"read\"");
  }
  MLOG_WARN << "quarantined corrupt copy of '" << file->name << "' on tier '"
            << tier.name() << "'; reads fall back to the PFS";
  // A corrupt copy counts toward the per-file cap so persistent
  // corruption eventually parks the file as unplaceable; with
  // restage_after_quarantine off the file is parked immediately.
  const int failures =
      file->fetch_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  file->AbortFetch(/*permanently=*/!resilience_.restage_after_quarantine ||
                   failures >= resilience_.max_placement_attempts);
  return true;
}

std::optional<int> PlacementHandler::EvictAndReserve(std::uint64_t needed) {
  // Collect placed files ordered by last access (oldest first).
  struct Victim {
    FileInfoPtr file;
    std::uint64_t stamp;
  };
  std::vector<Victim> victims;
  for (const auto& entry : metadata_.Snapshot()) {
    if (entry.state != PlacementState::kPlaced) continue;
    FileInfoPtr info = metadata_.Lookup(entry.name);
    if (!info) continue;
    victims.push_back(
        Victim{info, info->last_access.load(std::memory_order_relaxed)});
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.stamp < b.stamp; });

  for (const Victim& victim : victims) {
    FileInfo& vf = *victim.file;
    // Claim the victim: kPlaced -> kFetching blocks concurrent readers
    // from trusting its level while we delete the copy.
    PlacementState expected = PlacementState::kPlaced;
    if (!vf.state.compare_exchange_strong(expected, PlacementState::kFetching,
                                          std::memory_order_acq_rel)) {
      continue;
    }
    const int victim_level = vf.level.load(std::memory_order_acquire);
    StorageDriver& tier = hierarchy_.Level(victim_level);
    vf.level.store(hierarchy_.pfs_level(), std::memory_order_release);
    vf.AbortFetch(/*permanently=*/false);  // back to PFS-only
    if (tier.Delete(vf.name).ok()) {
      tier.Release(vf.size);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      obs::EventTracer& tracer = obs::EventTracer::Global();
      if (tracer.enabled()) {
        tracer.RecordInstant("placement.evict", "placement",
                             "\"file\":" + obs::JsonQuote(vf.name) +
                                 ",\"bytes\":" + std::to_string(vf.size));
      }
    }
    // Retry the policy after each eviction.
    if (auto level = policy_->PickLevel(hierarchy_, needed)) return level;
  }
  return std::nullopt;
}

void PlacementHandler::Drain() { pool_.Drain(); }

PlacementStats PlacementHandler::Stats() const {
  PlacementStats s;
  s.scheduled = scheduled_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_no_space = rejected_no_space_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.bytes_staged = bytes_staged_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.abandoned = abandoned_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace monarch::core
