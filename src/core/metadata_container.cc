#include "core/metadata_container.h"

#include <algorithm>

#include "util/clock.h"

namespace monarch::core {

Result<std::uint64_t> MetadataContainer::Populate(
    storage::StorageEngine& pfs, const std::string& dataset_dir,
    int pfs_level) {
  const Stopwatch timer;
  MONARCH_ASSIGN_OR_RETURN(auto listing, pfs.ListFiles(dataset_dir));

  std::uint64_t registered = 0;
  for (const storage::FileStat& st : listing) {
    if (Register(st.path, st.size, pfs_level)) ++registered;
  }
  init_seconds_ = timer.ElapsedSeconds();
  return registered;
}

bool MetadataContainer::Register(const std::string& name, std::uint64_t size,
                                 int pfs_level) {
  auto info = std::make_shared<FileInfo>(name, size, pfs_level);
  if (!files_.Insert(name, std::move(info))) return false;
  total_bytes_.fetch_add(size, std::memory_order_relaxed);
  return true;
}

std::vector<MetadataContainer::Entry> MetadataContainer::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(files_.Size());
  files_.ForEach([&](const std::string& name, const FileInfoPtr& info) {
    out.push_back(Entry{name, info->size,
                        info->level.load(std::memory_order_relaxed),
                        info->state.load(std::memory_order_relaxed)});
  });
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

}  // namespace monarch::core
