// POSIX-style shim over Monarch: open/pread/close with integer
// descriptors. Monarch::Read takes a filename (unlike pread), so a
// framework whose storage driver traffics in file descriptors — like the
// TensorFlow POSIX driver the paper patched — needs this thin fd-to-name
// table at the interception point. The shim demonstrates that the
// middleware really can live "at the POSIX layer" (§III).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "core/monarch.h"

namespace monarch::core {

class PosixShim {
 public:
  explicit PosixShim(Monarch& monarch) : monarch_(monarch) {}

  PosixShim(const PosixShim&) = delete;
  PosixShim& operator=(const PosixShim&) = delete;

  /// Open `name` for reading; NOT_FOUND when the file is unknown to both
  /// the namespace and the PFS. Returns a descriptor (>= 3, like real
  /// fds past stdio).
  Result<int> Open(const std::string& name);

  /// pread(2) semantics: read dst.size() bytes at `offset` from `fd`.
  Result<std::size_t> Pread(int fd, std::uint64_t offset,
                            std::span<std::byte> dst);

  /// fstat-like size query.
  Result<std::uint64_t> Fstat(int fd);

  /// Close `fd`. FAILED_PRECONDITION on double close / bad fd.
  Status Close(int fd);

  [[nodiscard]] std::size_t open_count() const;

 private:
  Result<std::string> NameFor(int fd) const;

  Monarch& monarch_;
  mutable std::mutex mu_;
  std::unordered_map<int, std::string> open_files_;
  int next_fd_ = 3;
};

}  // namespace monarch::core
