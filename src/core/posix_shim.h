// POSIX-style shim over Monarch: open/pread/close with integer
// descriptors. Monarch::Read takes a filename (unlike pread), so a
// framework whose storage driver traffics in file descriptors — like the
// TensorFlow POSIX driver the paper patched — needs this thin fd-to-name
// table at the interception point. The shim demonstrates that the
// middleware really can live "at the POSIX layer" (§III).
//
// ISSUE 5 adds the write path: OpenForWrite/Pwrite buffer a checkpoint
// the way a framework's saver streams one out, and Close commits the
// assembled bytes through a CheckpointSink (ckpt::CheckpointManager for
// write-back, ckpt::DirectPfsSink for write-through) — the POSIX-level
// interception point for checkpoint writes, mirroring the read path's.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/checkpoint_sink.h"
#include "core/monarch.h"

namespace monarch::core {

class PosixShim {
 public:
  explicit PosixShim(Monarch& monarch) : monarch_(monarch) {}

  /// `checkpoint_sink` (borrowed; may be null) enables the write path:
  /// descriptors from OpenForWrite commit through it on Close.
  PosixShim(Monarch& monarch, CheckpointSink* checkpoint_sink)
      : monarch_(monarch), checkpoint_sink_(checkpoint_sink) {}

  PosixShim(const PosixShim&) = delete;
  PosixShim& operator=(const PosixShim&) = delete;

  /// Open `name` for reading; NOT_FOUND when the file is unknown to both
  /// the namespace and the PFS. Returns a descriptor (>= 3, like real
  /// fds past stdio).
  Result<int> Open(const std::string& name);

  /// Open `name` for writing (O_WRONLY|O_CREAT|O_TRUNC semantics).
  /// Bytes accumulate in the shim until Close commits them through the
  /// checkpoint sink. FAILED_PRECONDITION when no sink is attached.
  Result<int> OpenForWrite(const std::string& name);

  /// pread(2) semantics: read dst.size() bytes at `offset` from `fd`.
  Result<std::size_t> Pread(int fd, std::uint64_t offset,
                            std::span<std::byte> dst);

  /// pwrite(2) semantics on a write descriptor: land `data` at `offset`
  /// of the buffered file (sparse gaps read back as zero bytes).
  Result<std::size_t> Pwrite(int fd, std::uint64_t offset,
                             std::span<const std::byte> data);

  /// fstat-like size query (buffered size for write descriptors).
  Result<std::uint64_t> Fstat(int fd);

  /// Close `fd`. FAILED_PRECONDITION on double close / bad fd. Closing a
  /// write descriptor commits the buffered bytes through the checkpoint
  /// sink — the commit's status is Close's status, and the descriptor is
  /// released either way.
  Status Close(int fd);

  [[nodiscard]] std::size_t open_count() const;

 private:
  struct WriteFile {
    std::string name;
    std::vector<std::byte> buffer;
  };

  Result<std::string> NameFor(int fd) const;

  Monarch& monarch_;
  CheckpointSink* checkpoint_sink_ = nullptr;
  mutable std::mutex mu_;
  std::unordered_map<int, std::string> open_files_;
  std::unordered_map<int, WriteFile> write_files_;
  int next_fd_ = 3;
};

}  // namespace monarch::core
