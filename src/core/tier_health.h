// TierHealth: per-tier failure tracking with a circuit breaker.
//
// Every storage driver records the outcome of its backend operations into
// a sliding window of the most recent results. When the failure share of
// that window crosses a threshold the circuit OPENS: the read path stops
// sending requests to the tier (they fall straight down the hierarchy to
// the PFS, which always holds the authoritative copy) instead of paying a
// retry storm per read. After a cooldown the circuit HALF-OPENS and lets
// probe requests through; enough consecutive successes CLOSE it again,
// any probe failure re-opens it. This is the Hoard/FanStore-style
// "degrade, don't abort" behaviour ISSUE 2 builds in.
//
// Concurrency: the window is a fixed ring of relaxed atomics (the error
// rate is deliberately approximate under contention — never torn, off by
// at most the number of in-flight recorders), and state transitions are
// serialised by a small mutex that is only touched when a transition is
// actually due, so the steady-state hot path stays lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

namespace monarch::core {

enum class CircuitState : int {
  kClosed = 0,    ///< healthy: all requests admitted
  kHalfOpen = 1,  ///< probing: requests admitted, outcomes decide the state
  kOpen = 2,      ///< degraded: requests routed around the tier
};

[[nodiscard]] const char* CircuitStateName(CircuitState state) noexcept;

struct TierHealthOptions {
  /// Master switch: disabled means AllowRequest() is always true and no
  /// outcome tracking happens (the seed repo's behaviour).
  bool enabled = true;

  /// Sliding window length (most recent operations considered).
  std::size_t window = 64;

  /// Don't judge a tier before this many outcomes are in the window
  /// (avoids opening on the first unlucky operation).
  std::size_t min_samples = 16;

  /// Open the circuit when failures/samples reaches this share.
  double error_threshold = 0.5;

  /// How long an open circuit waits before letting probes through.
  Duration cooldown = Millis(100);

  /// Consecutive half-open successes required to close the circuit.
  int half_open_successes = 3;
};

class TierHealth {
 public:
  TierHealth(std::string tier_name, TierHealthOptions options);

  TierHealth(const TierHealth&) = delete;
  TierHealth& operator=(const TierHealth&) = delete;

  /// Should a request be sent to this tier right now? Open circuits
  /// reject until the cooldown elapses, at which point the first caller
  /// flips the circuit to half-open and is admitted as a probe.
  [[nodiscard]] bool AllowRequest() noexcept;

  void RecordSuccess() noexcept;
  void RecordFailure() noexcept;

  [[nodiscard]] CircuitState state() const noexcept {
    return static_cast<CircuitState>(state_.load(std::memory_order_acquire));
  }

  /// Times the circuit transitioned closed/half-open -> open.
  [[nodiscard]] std::uint64_t circuit_opens() const noexcept {
    return opens_.load(std::memory_order_relaxed);
  }

  /// Failure share of the current window (approximate under concurrency).
  [[nodiscard]] double error_rate() const noexcept;

  [[nodiscard]] const std::string& tier_name() const noexcept {
    return name_;
  }
  [[nodiscard]] const TierHealthOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Push one outcome into the ring; returns the post-update failure
  /// share, or a negative value while fewer than min_samples outcomes
  /// have been recorded.
  double RecordOutcome(bool failure) noexcept;

  // Transitions (serialised by mu_; each re-checks state under the lock).
  void TransitionToOpen() noexcept;
  void TransitionToHalfOpen() noexcept;
  void TransitionToClosed() noexcept;
  void PublishTransition(const char* event) noexcept;

  [[nodiscard]] std::int64_t NowNs() const noexcept;

  const std::string name_;
  const TierHealthOptions options_;

  std::atomic<int> state_{static_cast<int>(CircuitState::kClosed)};
  std::vector<std::atomic<std::uint8_t>> window_;  ///< 1 = failure
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::int64_t> window_failures_{0};
  std::atomic<std::int64_t> opened_at_ns_{0};
  std::atomic<int> probe_successes_{0};
  std::atomic<std::uint64_t> opens_{0};
  std::mutex mu_;  ///< transitions only; never taken on the happy path
};

}  // namespace monarch::core
