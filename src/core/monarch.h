// Monarch: the middleware facade (the public API of this library).
//
// A Monarch instance sits between a DL framework and the storage
// hierarchy. The framework replaces its POSIX pread with Monarch::Read —
// the paper's TensorFlow integration is exactly that swap (6 LoC) — and
// everything else (tier selection, background staging, namespace
// bookkeeping) happens behind this interface:
//
//   auto monarch = Monarch::Create(std::move(config));
//   ...
//   monarch->Read("imagenet/train-00001.tfrecord", offset, buffer);
//
// Lifecycle: Create() builds the hierarchy and populates the metadata
// container by walking the PFS dataset directory (the timed metadata-
// initialization phase). Reads then flow per §III-B: look up the file's
// current level, serve from that tier, and — first time a file is seen —
// kick a background task that copies the whole file to the best tier
// with room. Shutdown() (or the destructor) drains in-flight staging.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/metadata_container.h"
#include "core/peer_view.h"
#include "core/placement_handler.h"
#include "core/placement_policy.h"
#include "core/read_lease.h"
#include "core/read_ring.h"
#include "core/resilience.h"
#include "core/storage_hierarchy.h"
#include "core/tier_health.h"
#include "obs/metrics_registry.h"
#include "pack/chunk_map.h"
#include "pack/pack_index.h"
#include "util/sharded_map.h"
#include "util/status.h"

namespace monarch::core {

/// One tier of the hierarchy, as the system designer specifies it before
/// the job starts (§III-B "MONARCH is tuned with two storage tiers...").
struct TierSpec {
  std::string name;
  storage::StorageEnginePtr engine;
  /// Byte budget on this tier (ignored for the PFS level).
  std::uint64_t quota_bytes = 0;
};

struct MonarchConfig {
  /// Writable cache tiers, fastest first (level 0, 1, ...).
  std::vector<TierSpec> cache_tiers;
  /// The PFS holding the dataset (becomes the read-only last level).
  TierSpec pfs;
  /// Optional cooperative peer-cache tier (ISSUE 4): an engine serving
  /// other nodes' staged copies over the interconnect, slotted directly
  /// above the PFS as a read-only level. `quota_bytes` is ignored (the
  /// bytes live on the peers). Requires `peer_view`.
  std::optional<TierSpec> peer_tier;
  /// Cluster placement knowledge backing the peer tier: shard ownership
  /// for staging decisions, remote-copy lookups for the read path, and
  /// the directory callbacks placement notifies. Null = single node.
  PeerViewPtr peer_view;
  /// Directory on the PFS to index at startup.
  std::string dataset_dir;
  PlacementOptions placement;
  /// Fault-tolerance knobs: driver retry policy, per-tier circuit
  /// breakers, staged-copy verification (ISSUE 2; `[resilience]` in the
  /// INI dialect).
  ResilienceOptions resilience;
  /// Placement policy; FirstFit (the paper's) when null.
  PlacementPolicyPtr policy;
  /// Remove staged copies from the cache tiers on Shutdown (§III-A's
  /// ephemeral job model). Off by default so post-mortem inspection of
  /// the tiers remains possible.
  bool cleanup_staged_on_shutdown = false;
  /// Async submission/completion ring over the read path (`[read]` in
  /// the INI dialect): ring depth, worker pool size, zero-copy lane.
  ReadRingOptions read;
  /// Multi-tenant QoS (ISSUE 10). When set, every tier driver charges
  /// its bytes through this broker, attributed to the calling thread's
  /// ambient tenant (qos::CurrentTenant()) with `tenant` as fallback.
  /// Shared across instances so co-located jobs contend on one budget.
  qos::BandwidthBrokerPtr qos_broker;
  /// This instance's own identity: the default attribution for I/O
  /// issued with no ambient tenant installed.
  qos::TenantContext tenant;
};

/// Per-level share of read traffic, for the PFS-pressure tables.
struct LevelReadStats {
  std::string tier_name;
  std::uint64_t reads = 0;
  std::uint64_t bytes = 0;
  std::uint64_t occupancy_bytes = 0;
  std::uint64_t quota_bytes = 0;
  /// Tier health (core/tier_health.h): breaker state, times it opened,
  /// current error-rate estimate, and transient errors absorbed by the
  /// driver's retry loop.
  CircuitState circuit_state = CircuitState::kClosed;
  std::uint64_t circuit_opens = 0;
  double error_rate = 0;
  std::uint64_t retries = 0;
};

struct MonarchStats {
  std::vector<LevelReadStats> levels;  ///< indexed by hierarchy level
  PlacementStats placement;
  std::uint64_t files_indexed = 0;
  std::uint64_t dataset_bytes = 0;
  double metadata_init_seconds = 0;

  /// Demand reads served from a cache tier whose copy a look-ahead hint
  /// (HintUpcoming) staged before the read arrived.
  std::uint64_t prefetch_hits = 0;

  /// Degradation-ladder outcomes (ISSUE 2): reads that a cache tier
  /// failed to serve but the PFS rescued, broken down by cause.
  std::uint64_t degraded_fallbacks = 0;       ///< sum of the five below
  std::uint64_t fallbacks_circuit_open = 0;   ///< tier skipped, breaker open
  std::uint64_t fallbacks_tier_error = 0;     ///< tier read failed after retries
  std::uint64_t fallbacks_corruption = 0;     ///< staged copy failed its CRC
  std::uint64_t fallbacks_peer_miss = 0;      ///< peer copy vanished mid-read
  std::uint64_t fallbacks_peer_error = 0;     ///< peer read failed after retries

  /// Chunk-granularity read outcomes (ISSUE 9; pack mode only). A hit is
  /// a read fully served from resident chunks on a cache tier; a miss
  /// touched the PFS (and claimed the touched chunks for staging).
  std::uint64_t chunk_hits = 0;
  std::uint64_t chunk_misses = 0;

  /// Pack-index shape (zero when the dataset is not packed): container
  /// extents on the PFS, logical files inside them, and their bytes.
  std::uint64_t pack_extents = 0;
  std::uint64_t pack_logical_files = 0;
  std::uint64_t pack_logical_bytes = 0;

  /// Reads served by the last level (the shared PFS).
  [[nodiscard]] std::uint64_t pfs_reads() const {
    return levels.empty() ? 0 : levels.back().reads;
  }
  [[nodiscard]] std::uint64_t total_reads() const {
    std::uint64_t total = 0;
    for (const auto& l : levels) total += l.reads;
    return total;
  }
};

class Monarch {
 public:
  /// Build the hierarchy, index the dataset, start the placement pool.
  static Result<std::unique_ptr<Monarch>> Create(MonarchConfig config);

  ~Monarch();
  Monarch(const Monarch&) = delete;
  Monarch& operator=(const Monarch&) = delete;

  /// The custom read operation that replaces POSIX pread (§III).
  /// Contrary to pread it takes the *filename*, not a descriptor. Returns
  /// bytes read (0 at EOF). Thread-safe; called concurrently by all of
  /// the framework's reader threads. Takes string_view — the hot path
  /// never copies the key (satellite of the async-read tentpole).
  Result<std::size_t> Read(std::string_view name, std::uint64_t offset,
                           std::span<std::byte> dst);

  /// Zero-copy variant of Read: instead of filling a caller buffer, the
  /// serving tier lends (memory-backed tiers) or privately copies
  /// (POSIX-backed tiers) up to `max_bytes` from `offset`, returned as a
  /// ReadLease that (a) keeps the underlying page alive and (b) holds the
  /// file's eviction read-pin until released. Runs the same degradation
  /// ladder, CRC verification, staging triggers, and prefetch-cursor
  /// bookkeeping as Read. `allow_zero_copy=false` forces the copying
  /// lane (the benches' A/B lever).
  Result<ReadLease> ReadZeroCopy(
      std::string_view name, std::uint64_t offset,
      std::uint64_t max_bytes = std::numeric_limits<std::uint64_t>::max(),
      bool allow_zero_copy = true);

  /// File size from the virtual namespace (no backend round trip for
  /// indexed files).
  Result<std::uint64_t> FileSize(std::string_view name);

  /// Cheap, possibly-stale serving-level estimate (the ring's per-tier
  /// coalescing sort key). Unknown files report the PFS level.
  [[nodiscard]] int ServingLevelHint(std::string_view name) const;

  /// The async submission/completion ring over this instance's read path
  /// (always constructed; sized by MonarchConfig::read).
  [[nodiscard]] ReadRing& read_ring() noexcept { return *ring_; }

  /// Publish the upcoming read order (a data loader calls this with each
  /// epoch's shuffled file list before reading it). When
  /// `[placement] prefetch_lookahead` is nonzero, a prefetch cursor
  /// stages up to that many hinted files ahead of the newest demand
  /// read on the PREFETCH lane — speculative work that never delays or
  /// evicts demand staging. Replaces any previous hint list; a no-op
  /// when look-ahead is disabled.
  void HintUpcoming(std::span<const std::string> upcoming);

  /// Publish the WHOLE run's access order — every epoch's shuffled file
  /// list, in epoch order — before training starts (ISSUE 6). The
  /// concatenated sequence is handed to the placement policy; the
  /// clairvoyant policy derives per-file next-access times from it and
  /// evicts Belady-style. Policies without a schedule hook ignore it.
  /// Unlike HintUpcoming this does not drive the prefetch cursor; the
  /// per-epoch hints still do that.
  void InstallRunSchedule(const std::vector<std::vector<std::string>>& epochs);

  /// Stage the dataset into the cache tiers BEFORE training — the
  /// §III-A placement-timing alternative (i). Schedules a background
  /// copy for every indexed PFS-resident file (in namespace order) and,
  /// when `block` is true, waits for staging to finish. The paper
  /// chooses during-training placement instead to avoid delaying the
  /// first epoch; `bench/abl_design_choices` measures the trade.
  /// Returns the number of files scheduled.
  std::uint64_t Prestage(bool block = true);

  /// Replication repair after membership churn (ISSUE 7): claim `name`
  /// if this node now owns it (per the peer view), it is indexed, and it
  /// is still PFS-resident, then schedule a PREFETCH-lane copy — repair
  /// traffic rides the speculative lane and can never starve demand
  /// staging. Returns the bytes scheduled (0 = nothing to do: not owned,
  /// already placed/fetching, or placement stopped). Driven by
  /// cluster::RestagePump at bounded rate.
  Result<std::uint64_t> RestageFile(const std::string& name);

  /// Re-publish every currently-placed local copy to the peer view — a
  /// revived node's surviving copies re-enter the cluster directory
  /// (its advertisements were retracted when it was marked down).
  /// Returns the number of copies re-advertised. No-op without a peer
  /// view.
  std::uint64_t ReadvertisePlacedCopies();

  /// Stop new placements (integration layer may call this at the end of
  /// the first epoch; optional — placement also self-terminates when the
  /// tiers fill or every file is placed).
  void StopPlacement() noexcept;

  /// Block until no background staging is in flight (tests/benches use
  /// this to observe the post-epoch-1 steady state deterministically).
  void DrainPlacements();

  /// Delete every staged copy from the writable tiers and reset their
  /// occupancy — the ephemeral teardown of §III-A (HPC jobs leave the
  /// node's scratch storage clean). Files revert to PFS-resident state,
  /// so the instance remains usable. Returns the number of copies
  /// removed. Called automatically by Shutdown() when
  /// MonarchConfig::cleanup_staged_on_shutdown is set.
  std::uint64_t CleanupStagedCopies();

  /// Drain staging and stop the pool. Idempotent; the destructor calls it.
  void Shutdown();

  [[nodiscard]] MonarchStats Stats() const;

  [[nodiscard]] const MetadataContainer& metadata() const noexcept {
    return metadata_;
  }
  /// The active placement policy (monarchctl stage-status, tests).
  [[nodiscard]] const PlacementPolicy& policy() const noexcept {
    return placement_->policy();
  }
  [[nodiscard]] StorageHierarchy& hierarchy() noexcept { return *hierarchy_; }

  /// The loaded pack index, or null when the dataset directory carries
  /// no `.pack/index.mpki` (loose files) or pack mode is off.
  [[nodiscard]] const pack::PackIndexPtr& pack_index() const noexcept {
    return pack_index_;
  }

 private:
  explicit Monarch(MonarchConfig config,
                   std::unique_ptr<StorageHierarchy> hierarchy);

  /// Read() minus instrumentation (Read wraps this with the span, the
  /// request/error counters, and the latency histogram).
  Result<std::size_t> ReadImpl(std::string_view name, std::uint64_t offset,
                               std::span<std::byte> dst);

  /// ReadZeroCopy() minus instrumentation.
  Result<ReadLease> ReadZeroCopyImpl(std::string_view name,
                                     std::uint64_t offset,
                                     std::uint64_t max_bytes,
                                     bool allow_zero_copy);

  /// Shared head of both read paths: look up (or lazily register) the
  /// file, stamp the access clock, and note the policy access.
  Result<FileInfoPtr> PrepareRead(std::string_view name, std::uint64_t offset);

  /// Shared tail of both read paths: serve counters, prefetch-hit
  /// bookkeeping, staging trigger, prefetch-cursor advance. `donated`
  /// holds the leading bytes of an offset-0 read when available.
  void FinishRead(const FileInfoPtr& info, std::string_view name, int level,
                  std::uint64_t offset, std::size_t bytes_read,
                  std::span<const std::byte> donated);

  /// Full-file tier reads against a recorded CRC when verify_on_read is
  /// set. Returns false when the copy is corrupt (and quarantines it).
  bool VerifyTierRead(const FileInfoPtr& info, int level, std::uint64_t offset,
                      std::span<const std::byte> data, std::size_t n);

  /// Count one rung of the degradation ladder: a read the tier at `level`
  /// could not serve and the PFS absorbed. `cause` is one of
  /// "circuit_open" | "tier_error" | "corruption" | "peer_miss" |
  /// "peer_error".
  void CountDegradedFallback(const char* cause, std::string_view name,
                             int level);

  /// Pack mode (ISSUE 9): serve [offset, offset + dst.size()) of a
  /// chunked file. When every overlapping chunk is resident, the request
  /// is served chunk by chunk from the assigned tier (decoding through
  /// the staging codec); otherwise the whole request reads from the
  /// authoritative PFS — so PFS traffic scales with bytes *touched* —
  /// and the touched chunks are claimed for demand staging.
  Result<std::size_t> ReadChunkedImpl(const FileInfoPtr& info,
                                      std::string_view name,
                                      std::uint64_t offset,
                                      std::span<std::byte> dst);

  /// Pack mode, zero-copy lane. A resident first chunk serves a view
  /// clipped to the chunk boundary (short views are legal — callers
  /// loop); the compressed codec decodes into a heap buffer the view
  /// keeps alive (zero_copy() reports false). Anything else falls back
  /// to the PFS. Sets `pin_transferred` when the returned lease took
  /// over the caller's read pin.
  Result<ReadLease> ReadZeroCopyChunkedImpl(FileInfoPtr info,
                                            std::string_view name,
                                            std::uint64_t offset,
                                            std::uint64_t max_bytes,
                                            bool allow_zero_copy,
                                            bool& pin_transferred);

  /// Serve one resident chunk slice (`dst` = logical bytes at
  /// `offset_in_chunk`) from the tier at `level`, decoding when the
  /// codec is active. Verifies the stored-side CRC before decode and
  /// the logical-side CRC after; a bad copy is dropped (so staging can
  /// retry it) and counted as a degraded fallback. Returns false when
  /// the caller must re-read from the PFS.
  bool ServeResidentChunk(const FileInfoPtr& info, pack::ChunkMap& cm,
                          std::uint32_t chunk, int level,
                          std::uint64_t offset_in_chunk,
                          std::span<std::byte> dst);

  /// Claim the non-resident chunks overlapping [offset, offset+length)
  /// and enqueue one demand-lane chunk staging task for them.
  void TriggerChunkStaging(const FileInfoPtr& info, pack::ChunkMap& cm,
                           std::uint64_t offset, std::uint64_t length);

  /// Shared tail of the pack-mode PFS miss paths: serve counters and
  /// the prefetch-cursor advance, WITHOUT the whole-file staging
  /// trigger of FinishRead (pack mode stages chunks, never files).
  void FinishChunkedMiss(std::string_view name, std::uint64_t offset,
                         std::size_t bytes_read);

  /// A demand read of `name` landed: advance the prefetch cursor past it
  /// and top up the look-ahead window with new PREFETCH-lane claims.
  void AdvancePrefetchCursor(std::string_view name);
  /// Claim hinted files in [scheduled, cursor + lookahead) that are still
  /// PFS-only and enqueue them on the prefetch lane. Caller must NOT hold
  /// hint_mu_.
  void TopUpPrefetch();

  MonarchConfig config_;
  std::unique_ptr<StorageHierarchy> hierarchy_;
  MetadataContainer metadata_;
  std::unique_ptr<PlacementHandler> placement_;
  /// Set by Create when pack mode found `.pack/index.mpki` in the
  /// dataset dir (the PFS engine is then a PackedPfsEngine wrapper).
  pack::PackIndexPtr pack_index_;

  std::atomic<std::uint64_t> access_clock_{0};

  // Look-ahead prefetch state (tentpole (3), DESIGN.md "staging
  // pipeline"). `hints_active_` lets the read path skip the mutex
  // entirely while no hint list is installed.
  std::atomic<bool> hints_active_{false};
  std::atomic<std::uint64_t> prefetch_hits_{0};
  std::mutex hint_mu_;
  std::vector<FileInfoPtr> hinted_order_;               ///< under hint_mu_
  /// under hint_mu_; transparent hash so the read path probes it with a
  /// string_view (no temporary key)
  std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>>
      hint_index_;
  std::size_t hint_cursor_ = 0;     ///< first hint not yet demand-read
  std::size_t hint_scheduled_ = 0;  ///< first hint not yet claimed

  /// reads/bytes served per hierarchy level (vector sized at Create).
  struct LevelCounters {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  std::vector<std::unique_ptr<LevelCounters>> served_;
  bool shut_down_ = false;

  // Hot-path instruments (docs/OBSERVABILITY.md §1, `monarch.read.*`).
  // Resolved once at construction so Read() touches only relaxed atomics
  // — the registry mutex is never taken on the read path.
  obs::Counter* read_requests_ = nullptr;
  obs::Counter* read_pfs_fallbacks_ = nullptr;
  obs::Counter* read_errors_ = nullptr;
  obs::Counter* read_degraded_fallbacks_ = nullptr;
  obs::Histogram* read_latency_ = nullptr;

  // Chunk-read outcomes (pack mode): owned registry counters plus the
  // per-instance tallies Stats() reports.
  obs::Counter* chunk_hits_counter_ = nullptr;
  obs::Counter* chunk_misses_counter_ = nullptr;
  std::atomic<std::uint64_t> chunk_hits_{0};
  std::atomic<std::uint64_t> chunk_misses_{0};

  // Per-cause fallback tallies behind `monarch.read.degraded_fallbacks`.
  std::atomic<std::uint64_t> fallbacks_circuit_open_{0};
  std::atomic<std::uint64_t> fallbacks_tier_error_{0};
  std::atomic<std::uint64_t> fallbacks_corruption_{0};
  std::atomic<std::uint64_t> fallbacks_peer_miss_{0};
  std::atomic<std::uint64_t> fallbacks_peer_error_{0};

  // The async submission/completion ring (declared after everything its
  // workers touch; destroyed — joining the workers — before any of it).
  std::unique_ptr<ReadRing> ring_;

  // Pull source exporting Stats() as `monarch.level.*`/`monarch.placement.*`
  // metrics. Last member: deregisters before the state its callback reads
  // (hierarchy_, served_, placement_, metadata_) is destroyed.
  obs::SourceRegistration obs_source_;
};

}  // namespace monarch::core
