#include "core/placement_policy.h"

#include <algorithm>
#include <utility>

namespace monarch::core {

namespace {

/// Placed files with a live metadata entry, paired with a ranking key.
/// The shared scaffolding of every SelectVictims implementation.
template <typename KeyFn>
std::vector<FileInfoPtr> RankedPlacedFiles(const MetadataContainer& metadata,
                                           const FileInfo& incoming,
                                           KeyFn key, bool ascending) {
  struct Candidate {
    FileInfoPtr file;
    std::uint64_t key;
  };
  std::vector<Candidate> candidates;
  for (const auto& entry : metadata.Snapshot()) {
    if (entry.state != PlacementState::kPlaced) continue;
    if (entry.name == incoming.name) continue;
    FileInfoPtr info = metadata.Lookup(entry.name);
    if (!info) continue;
    const std::optional<std::uint64_t> k = key(*info);
    if (!k.has_value()) continue;  // the key fn vetoed this candidate
    candidates.push_back(Candidate{std::move(info), *k});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [ascending](const Candidate& a, const Candidate& b) {
                     return ascending ? a.key < b.key : a.key > b.key;
                   });
  std::vector<FileInfoPtr> out;
  out.reserve(candidates.size());
  for (Candidate& c : candidates) out.push_back(std::move(c.file));
  return out;
}

}  // namespace

std::vector<FileInfoPtr> PlacementPolicy::SelectVictims(
    const MetadataContainer& metadata, const FileInfo& incoming,
    bool /*incoming_active*/) {
  // LRU order: oldest access stamp first. This is both the LruPolicy
  // ranking and the default for the enable_eviction ablation.
  return RankedPlacedFiles(
      metadata, incoming,
      [](const FileInfo& f) -> std::optional<std::uint64_t> {
        return f.last_access.load(std::memory_order_relaxed);
      },
      /*ascending=*/true);
}

std::optional<int> FirstFitPolicy::PickLevel(StorageHierarchy& hierarchy,
                                             std::uint64_t bytes) {
  const int pfs = hierarchy.pfs_level();
  for (int level = 0; level < pfs; ++level) {
    if (hierarchy.Level(level).Reserve(bytes)) return level;
  }
  return std::nullopt;
}

std::optional<int> RoundRobinPolicy::PickLevel(StorageHierarchy& hierarchy,
                                               std::uint64_t bytes) {
  const int writable = hierarchy.pfs_level();
  if (writable <= 0) return std::nullopt;
  const auto start =
      next_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint64_t>(writable);
  for (int i = 0; i < writable; ++i) {
    const int level =
        static_cast<int>((start + static_cast<std::uint64_t>(i)) %
                         static_cast<std::uint64_t>(writable));
    if (hierarchy.Level(level).Reserve(bytes)) return level;
  }
  return std::nullopt;
}

HotspotPolicy::HotspotPolicy(std::uint64_t decay_interval)
    : decay_interval_(std::max<std::uint64_t>(1, decay_interval)) {}

void HotspotPolicy::OnAccess(const FileInfo& file) {
  std::lock_guard lock(mu_);
  ++frequency_[file.name];
  if (++accesses_since_decay_ < decay_interval_) return;
  // Periodic decay (dm-cache): halve every bucket so heat is recency-
  // weighted; buckets that reach zero are dropped to bound the map.
  accesses_since_decay_ = 0;
  for (auto it = frequency_.begin(); it != frequency_.end();) {
    it->second /= 2;
    it = it->second == 0 ? frequency_.erase(it) : std::next(it);
  }
}

std::uint64_t HotspotPolicy::FrequencyOf(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = frequency_.find(name);
  return it == frequency_.end() ? 0 : it->second;
}

std::vector<FileInfoPtr> HotspotPolicy::SelectVictims(
    const MetadataContainer& metadata, const FileInfo& incoming,
    bool /*incoming_active*/) {
  std::lock_guard lock(mu_);
  // Coldest first: lowest decayed count, ties broken by oldest access.
  // The count is packed into the key's high bits so one 64-bit sort key
  // expresses (frequency, recency); counts are capped accordingly.
  return RankedPlacedFiles(
      metadata, incoming,
      [this](const FileInfo& f) -> std::optional<std::uint64_t> {
        const auto it = frequency_.find(f.name);
        const std::uint64_t count =
            std::min<std::uint64_t>(it == frequency_.end() ? 0 : it->second,
                                    (1ull << 20) - 1);
        const std::uint64_t stamp =
            f.last_access.load(std::memory_order_relaxed) &
            ((1ull << 44) - 1);
        return (count << 44) | stamp;
      },
      /*ascending=*/true);
}

ClairvoyantPolicy::ClairvoyantPolicy(std::uint64_t protect_window)
    : protect_window_(protect_window) {}

void ClairvoyantPolicy::OnSchedule(const std::vector<std::string>& sequence) {
  std::lock_guard lock(mu_);
  positions_.clear();
  last_consumed_.clear();
  clock_ = 0;
  for (std::uint64_t i = 0; i < sequence.size(); ++i) {
    positions_[sequence[i]].push_back(i);
  }
  schedule_installed_ = !sequence.empty();
}

std::uint64_t ClairvoyantPolicy::NextAccessLocked(
    const std::string& name) const {
  const auto it = positions_.find(name);
  if (it == positions_.end()) return kNever;
  std::deque<std::uint64_t>& queue = it->second;
  while (!queue.empty() && queue.front() < clock_) queue.pop_front();
  return queue.empty() ? kNever : queue.front();
}

void ClairvoyantPolicy::OnAccess(const FileInfo& file) {
  std::lock_guard lock(mu_);
  if (!schedule_installed_) return;
  const auto it = positions_.find(file.name);
  if (it == positions_.end()) return;
  std::deque<std::uint64_t>& queue = it->second;
  if (queue.empty()) return;
  // Consume this file's earliest pending occurrence and advance the
  // clock to it. Reader threads interleave, so accesses arrive slightly
  // out of schedule order; max() keeps the clock monotonic.
  const std::uint64_t position = queue.front();
  queue.pop_front();
  clock_ = std::max(clock_, position + 1);
  last_consumed_[file.name] = position;
}

std::optional<std::uint64_t> ClairvoyantPolicy::NextAccessOf(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  const std::uint64_t next = NextAccessLocked(name);
  if (next == kNever) return std::nullopt;
  return next;
}

std::uint64_t ClairvoyantPolicy::ScheduleClock() const {
  std::lock_guard lock(mu_);
  return clock_;
}

std::vector<FileInfoPtr> ClairvoyantPolicy::SelectVictims(
    const MetadataContainer& metadata, const FileInfo& incoming,
    bool incoming_active) {
  std::lock_guard lock(mu_);
  if (!schedule_installed_) {
    // No schedule (plain HintUpcoming-free runs): degrade to LRU.
    return PlacementPolicy::SelectVictims(metadata, incoming,
                                          incoming_active);
  }
  // The bar the incoming file must beat. A speculative prefetch is worth
  // its next scheduled access; a demand staging is being read RIGHT NOW
  // (its remaining chunks are served from the new copy), so its
  // effective next access is the current clock no matter what the
  // schedule says later.
  const std::uint64_t incoming_next =
      incoming_active ? clock_ : NextAccessLocked(incoming.name);
  if (incoming_next == kNever) {
    // A prefetch of a file the schedule never (again) names: caching it
    // cannot pay off, so nothing should yield space for it.
    return {};
  }
  // Belady: evict the placed file whose next access is farthest away —
  // but never one needed within the protect window (those are exactly
  // what the look-ahead prefetcher just staged), and never one needed
  // sooner than the incoming file itself.
  const std::uint64_t horizon = clock_ + protect_window_;
  return RankedPlacedFiles(
      metadata, incoming,
      [this, incoming_next,
       horizon](const FileInfo& f) -> std::optional<std::uint64_t> {
        const std::uint64_t next = NextAccessLocked(f.name);
        if (next != kNever && (next <= horizon || next <= incoming_next)) {
          return std::nullopt;  // needed soon: protected
        }
        // Also protect files consumed recently on the PAST side: a file
        // whose access just rolled by is likely mid-visit (later chunks
        // of the same read still being served by parallel readers), and
        // a freshly demand-placed copy would otherwise be the farthest-
        // next-access file — evicting it before its own read finishes
        // throws the copy away at its moment of maximum value. Visits
        // overlap across reader threads, so the past window is wider
        // than the schedule-position one.
        const auto consumed = last_consumed_.find(f.name);
        if (consumed != last_consumed_.end() &&
            consumed->second + 4 * protect_window_ >= clock_) {
          return std::nullopt;
        }
        return next;
      },
      /*ascending=*/false);
}

PlacementPolicyPtr MakeFirstFitPolicy() {
  return std::make_unique<FirstFitPolicy>();
}
PlacementPolicyPtr MakeRoundRobinPolicy() {
  return std::make_unique<RoundRobinPolicy>();
}
PlacementPolicyPtr MakeLruPolicy() { return std::make_unique<LruPolicy>(); }
PlacementPolicyPtr MakeHotspotPolicy(std::uint64_t decay_interval) {
  return std::make_unique<HotspotPolicy>(decay_interval);
}
PlacementPolicyPtr MakeClairvoyantPolicy(std::uint64_t protect_window) {
  return std::make_unique<ClairvoyantPolicy>(protect_window);
}

Result<PlacementPolicyPtr> MakePlacementPolicyByName(
    const std::string& name, const PlacementPolicyKnobs& knobs) {
  if (name.empty() || name == "first-fit") return MakeFirstFitPolicy();
  if (name == "round-robin") return MakeRoundRobinPolicy();
  if (name == "lru") return MakeLruPolicy();
  if (name == "hotspot") {
    return MakeHotspotPolicy(knobs.hotspot_decay_interval);
  }
  if (name == "clairvoyant") {
    return MakeClairvoyantPolicy(knobs.clairvoyant_protect_window);
  }
  return InvalidArgumentError(
      "unknown placement policy '" + name +
      "' (expected first-fit | round-robin | lru | hotspot | clairvoyant)");
}

}  // namespace monarch::core
