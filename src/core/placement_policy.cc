#include "core/placement_policy.h"

namespace monarch::core {

std::optional<int> FirstFitPolicy::PickLevel(StorageHierarchy& hierarchy,
                                             std::uint64_t bytes) {
  const int pfs = hierarchy.pfs_level();
  for (int level = 0; level < pfs; ++level) {
    if (hierarchy.Level(level).Reserve(bytes)) return level;
  }
  return std::nullopt;
}

std::optional<int> RoundRobinPolicy::PickLevel(StorageHierarchy& hierarchy,
                                               std::uint64_t bytes) {
  const int writable = hierarchy.pfs_level();
  if (writable <= 0) return std::nullopt;
  const auto start =
      next_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint64_t>(writable);
  for (int i = 0; i < writable; ++i) {
    const int level =
        static_cast<int>((start + static_cast<std::uint64_t>(i)) %
                         static_cast<std::uint64_t>(writable));
    if (hierarchy.Level(level).Reserve(bytes)) return level;
  }
  return std::nullopt;
}

PlacementPolicyPtr MakeFirstFitPolicy() {
  return std::make_unique<FirstFitPolicy>();
}
PlacementPolicyPtr MakeRoundRobinPolicy() {
  return std::make_unique<RoundRobinPolicy>();
}

}  // namespace monarch::core
