// Fault-tolerance policy types shared by the storage drivers, the
// placement handler, and the Monarch facade.
//
// MONARCH's premise (§III) is that the PFS always holds the authoritative
// copy, so every failure above it is survivable: transient backend errors
// are retried with bounded exponential backoff, persistently failing
// tiers are routed around by a per-tier circuit breaker (core/tier_health.h),
// and a corrupted staged copy is quarantined back to PFS-resident state.
// The degradation ladder is documented in DESIGN.md ("Failure model &
// degradation ladder"); every rung is observable through the metrics and
// trace events listed in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <optional>

#include "core/tier_health.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/status.h"

namespace monarch::core {

/// Bounded-retry policy for transient (kUnavailable) backend errors.
/// Backoff is exponential with deterministic jitter (seeded util::Rng, so
/// failure-injection tests replay identically) and capped twice: per-delay
/// by `max_backoff` and in total by `budget` — a read never stalls a
/// training step longer than the budget before the caller falls down the
/// hierarchy.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 4;
  Duration initial_backoff = Micros(50);
  double backoff_multiplier = 2.0;
  Duration max_backoff = Millis(5);
  /// Cap on the SUM of backoff sleeps for one logical operation.
  Duration budget = Millis(20);
  /// Seed for the jitter stream (mixed with a per-call-site salt).
  std::uint64_t jitter_seed = 42;
};

/// True for errors worth retrying in place (the backend said "try again").
/// kNotFound is NOT retryable: it is either a legitimate miss or an
/// eviction race, and the fix is falling down the hierarchy, not waiting.
[[nodiscard]] inline bool IsRetryableError(const Status& status) noexcept {
  return status.code() == StatusCode::kUnavailable;
}

/// Per-operation backoff schedule. Construct, then call NextDelay() after
/// each failed attempt: a value is how long to sleep before retrying,
/// nullopt means attempts or budget are exhausted and the error should
/// surface to the caller.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, std::uint64_t salt) noexcept
      : policy_(policy), rng_(policy.jitter_seed ^ salt) {}

  std::optional<Duration> NextDelay() noexcept {
    if (++attempt_ >= policy_.max_attempts) return std::nullopt;
    if (spent_ >= policy_.budget) return std::nullopt;
    // Full jitter over [delay/2, delay): deterministic for a given seed,
    // decorrelated across call sites via the salt.
    const double jitter = 0.5 + 0.5 * rng_.NextDouble();
    Duration delay = std::chrono::duration_cast<Duration>(next_ * jitter);
    if (delay > policy_.max_backoff) delay = policy_.max_backoff;
    if (spent_ + delay > policy_.budget) delay = policy_.budget - spent_;
    spent_ += delay;
    next_ = std::chrono::duration_cast<Duration>(
        next_ * policy_.backoff_multiplier);
    if (next_ > policy_.max_backoff) next_ = policy_.max_backoff;
    return delay;
  }

  /// Failed attempts seen so far (== NextDelay() calls).
  [[nodiscard]] int attempts() const noexcept { return attempt_; }

 private:
  const RetryPolicy& policy_;
  Xoshiro256 rng_;
  int attempt_ = 0;
  Duration next_{policy_.initial_backoff};
  Duration spent_{0};
};

/// Everything the fault-tolerance layer can be tuned with; carried by
/// MonarchConfig and parsed from the `[resilience]` INI section
/// (core/config.h).
struct ResilienceOptions {
  RetryPolicy retry;
  TierHealthOptions health;

  /// After staging a copy, read it back and verify its CRC32C before
  /// publishing the new level — a corrupted write degrades to a failed
  /// placement instead of serving wrong bytes forever.
  bool verify_staged_writes = true;

  /// Verify the recorded CRC32C on full-file reads served by a cache
  /// tier; a mismatch quarantines the copy and re-reads from the PFS.
  /// Off by default (costs a checksum pass per full read).
  bool verify_on_read = false;

  /// Per-file cap on failed staging attempts: after this many the file is
  /// marked unplaceable so a broken file cannot hammer the staging pool
  /// on every subsequent access (it keeps being served by the PFS).
  int max_placement_attempts = 3;

  /// Schedule a fresh staging attempt after a quarantine removed the
  /// corrupt copy (subject to max_placement_attempts).
  bool restage_after_quarantine = true;
};

}  // namespace monarch::core
