// MonarchSource: tfrecord::RandomAccessSource adapter over a Monarch
// instance. This is the repo's equivalent of the paper's TensorFlow
// driver patch — a reader built on this source issues the same record-
// oriented I/O as one built on a plain engine, except every pread becomes
// a Monarch.read(filename, ...) call.
#pragma once

#include <string>
#include <utility>

#include "core/monarch.h"
#include "tfrecord/random_access_source.h"

namespace monarch::core {

class MonarchSource final : public tfrecord::RandomAccessSource {
 public:
  MonarchSource(Monarch& monarch, std::string path)
      : monarch_(monarch), path_(std::move(path)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             std::span<std::byte> dst) override {
    return monarch_.Read(path_, offset, dst);
  }

  Result<std::uint64_t> Size() override { return monarch_.FileSize(path_); }

  [[nodiscard]] std::string Name() const override { return path_; }

 private:
  Monarch& monarch_;
  std::string path_;
};

}  // namespace monarch::core
