// FileInfo: the per-file entry of MONARCH's virtual namespace (§III-A,
// "metadata container"). Tracks the file's size and which storage level
// currently serves it, plus the placement state machine that makes the
// first-epoch staging race-free:
//
//   kPfsOnly --(first read seen)--> kFetching --(copy done)--> kPlaced
//        ^                              |
//        +------(copy failed)----------+
//
// The kPfsOnly->kFetching transition is a CAS, so concurrent reads of the
// same file schedule exactly one background copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "pack/chunk_map.h"

namespace monarch::core {

enum class PlacementState : int {
  kPfsOnly = 0,   ///< only the PFS copy exists
  kFetching = 1,  ///< a background copy to an upper tier is in flight
  kPlaced = 2,    ///< an upper-tier copy exists and serves reads
  kUnplaceable = 3, ///< no upper tier had room; reads stay on the PFS
};

struct FileInfo {
  FileInfo(std::string name_in, std::uint64_t size_in, int pfs_level)
      : name(std::move(name_in)), size(size_in), level(pfs_level) {}

  const std::string name;       ///< hierarchy-relative path
  const std::uint64_t size;     ///< bytes (fixed for the job's lifetime)

  /// Storage level whose driver currently serves reads of this file.
  /// Starts at the PFS level; updated once placement completes (⑤ in the
  /// paper's operation flow).
  std::atomic<int> level;

  std::atomic<PlacementState> state{PlacementState::kPfsOnly};

  /// Monotonic access stamp, maintained for the eviction-policy ablation
  /// (the paper's design deliberately never evicts; §III-A).
  std::atomic<std::uint64_t> last_access{0};

  /// CRC32C of the staged tier copy, recorded by the placement handler
  /// when the copy is written; kNoStagedCrc while no (verified) copy
  /// exists. Stored widened to 64 bits so the sentinel cannot collide
  /// with a real checksum.
  static constexpr std::uint64_t kNoStagedCrc = ~0ull;
  std::atomic<std::uint64_t> staged_crc{kNoStagedCrc};

  /// Failed staging attempts so far; once this reaches the configured
  /// cap the placement handler marks the file kUnplaceable so a broken
  /// file cannot hammer the staging pool on every access.
  std::atomic<int> fetch_failures{0};

  /// Set when a look-ahead hint (not a demand read) claimed this file's
  /// fetch. The read path exchanges it back to false on the first demand
  /// read served from a cache tier — that exchange is one prefetch hit.
  std::atomic<bool> prefetched{false};

  /// In-flight demand reads of this file (ISSUE 6). A nonzero count pins
  /// the staged copy against eviction: the evictor claims the file, sees
  /// the pin, and reverts — so an active read never loses its tier copy
  /// mid-flight. Readers that pin after the evictor's check fall back to
  /// the PFS exactly like the pre-pinning eviction race.
  std::atomic<int> read_pins{0};

  /// Latched when a retryable no-space rejection bounced this file (an
  /// eviction-capable policy refused to make room). The read path skips
  /// re-claiming a latched file until the next offset-0 read re-arms it:
  /// chunked readers would otherwise re-enqueue a doomed demand staging
  /// per chunk and starve the prefetch lane behind the demand lane's
  /// priority.
  std::atomic<bool> stage_refused{false};

  /// Scan-resistance marking (ISSUE 10): set when the staged copy was
  /// placed on behalf of a low-retention tenant (a full-scan data-prep
  /// job). Low-retention copies are fair game for any evictor, but a
  /// low-retention requester may ONLY evict other low-retention copies —
  /// a scan can never push out a trainer's working set.
  std::atomic<bool> low_retention{false};

  /// Chunk-granularity residency (ISSUE 9), lazily allocated by the
  /// first touch of a file under pack mode and immutable-as-a-pointer
  /// afterwards: the read hot path does one acquire load, never an
  /// allocation, and whole-file mode never allocates it at all. Owned
  /// by this FileInfo (freed in the destructor).
  std::atomic<pack::ChunkMap*> chunks{nullptr};

  ~FileInfo() { delete chunks.load(std::memory_order_acquire); }

  /// The chunk map, or nullptr while the file has never been touched
  /// under pack mode.
  [[nodiscard]] pack::ChunkMap* chunk_map() const noexcept {
    return chunks.load(std::memory_order_acquire);
  }

  /// Get-or-create the chunk map (CAS; the loser frees its copy). Only
  /// the pack-mode read path calls this — once per file, not per read.
  pack::ChunkMap* EnsureChunkMap(std::uint64_t chunk_bytes) {
    pack::ChunkMap* existing = chunks.load(std::memory_order_acquire);
    if (existing != nullptr) return existing;
    auto* fresh = new pack::ChunkMap(size, chunk_bytes);
    if (chunks.compare_exchange_strong(existing, fresh,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return fresh;
    }
    delete fresh;
    return existing;
  }

  /// One-way CAS used by the read path to claim the background fetch.
  bool TryBeginFetch() noexcept {
    PlacementState expected = PlacementState::kPfsOnly;
    return state.compare_exchange_strong(expected, PlacementState::kFetching,
                                         std::memory_order_acq_rel);
  }

  void FinishFetch(int new_level) noexcept {
    level.store(new_level, std::memory_order_release);
    state.store(PlacementState::kPlaced, std::memory_order_release);
  }

  void AbortFetch(bool permanently) noexcept {
    staged_crc.store(kNoStagedCrc, std::memory_order_release);
    state.store(permanently ? PlacementState::kUnplaceable
                            : PlacementState::kPfsOnly,
                std::memory_order_release);
  }

  [[nodiscard]] bool HasStagedCrc() const noexcept {
    return staged_crc.load(std::memory_order_acquire) != kNoStagedCrc;
  }
};

using FileInfoPtr = std::shared_ptr<FileInfo>;

}  // namespace monarch::core
