// Declarative hierarchy configuration.
//
// The paper has "the system designer specify the main MONARCH
// configuration, defining the storage tiers" before execution (§III-B).
// This module parses a small INI dialect into tier specs and builds a
// ready MonarchConfig from it, e.g.:
//
//   [monarch]
//   dataset_dir = imagenet_100g
//   placement_threads = 6
//   fetch_full_file = true
//
//   [tier.0]
//   name = local-ssd
//   profile = ssd           ; ssd | ram | raw
//   root = /tmp/monarch/ssd
//   quota = 115MiB
//
//   [pfs]
//   name = lustre
//   profile = lustre        ; lustre | lustre-quiet | raw
//   root = /tmp/monarch/pfs
//   seed = 42
//
//   [placement]             ; optional — staging-pipeline knobs
//   staging_buffer_bytes = 64MiB   ; chunk-buffer-pool budget
//   staging_chunk_bytes = 4MiB     ; copy granularity
//   tier_inflight_cap_bytes = 0    ; prefetch in-flight cap per tier
//   prefetch_lookahead = 0         ; hinted files staged ahead (0 = off)
//
//   [resilience]            ; optional — defaults match ResilienceOptions
//   retry_max_attempts = 4
//   retry_initial_backoff_us = 50
//   retry_multiplier = 2.0
//   retry_max_backoff_us = 5000
//   retry_budget_us = 20000
//   health_enabled = true
//   health_window = 64
//   health_min_samples = 16
//   health_error_threshold = 0.5
//   health_cooldown_us = 100000
//   health_half_open_successes = 3
//   verify_staged_writes = true
//   verify_on_read = false
//   max_placement_attempts = 3
//   restage_after_quarantine = true
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/monarch.h"
#include "util/status.h"

namespace monarch::core {

/// Parsed, engine-free view of the configuration (tests inspect this).
struct ParsedTier {
  std::string name;
  std::string profile;   ///< ssd | ram | lustre | lustre-quiet | raw
  std::string root;      ///< host directory (unused for ram)
  std::uint64_t quota_bytes = 0;
  std::uint64_t seed = 42;
};

struct ParsedConfig {
  std::string dataset_dir;
  int placement_threads = 6;
  bool fetch_full_file = true;
  /// `[placement]` section; defaults match PlacementOptions.
  std::uint64_t staging_buffer_bytes = PlacementOptions{}.staging_buffer_bytes;
  std::uint64_t staging_chunk_bytes = PlacementOptions{}.staging_chunk_bytes;
  std::uint64_t tier_inflight_cap_bytes = 0;
  int prefetch_lookahead = 0;
  std::vector<ParsedTier> cache_tiers;  ///< level order
  ParsedTier pfs;
  /// `[resilience]` section; defaults when the section is absent.
  ResilienceOptions resilience;
};

/// Parse the INI text. Unknown sections/keys are errors (config typos
/// should fail loudly before a multi-hour training job starts).
Result<ParsedConfig> ParseConfig(const std::string& ini_text);

/// Instantiate engines per each tier's profile and assemble the
/// MonarchConfig (policy defaults to first-fit).
Result<MonarchConfig> BuildMonarchConfig(const ParsedConfig& parsed);

/// Convenience: parse + build + Monarch::Create.
Result<std::unique_ptr<Monarch>> MonarchFromIni(const std::string& ini_text);

}  // namespace monarch::core
