// Declarative hierarchy configuration.
//
// The paper has "the system designer specify the main MONARCH
// configuration, defining the storage tiers" before execution (§III-B).
// This module parses a small INI dialect into tier specs and builds a
// ready MonarchConfig from it, e.g.:
//
//   [monarch]
//   dataset_dir = imagenet_100g
//   placement_threads = 6
//   fetch_full_file = true
//
//   [tier.0]
//   name = local-ssd
//   profile = ssd           ; ssd | ram | raw
//   root = /tmp/monarch/ssd
//   quota = 115MiB
//
//   [pfs]
//   name = lustre
//   profile = lustre        ; lustre | lustre-quiet | raw
//   root = /tmp/monarch/pfs
//   seed = 42
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/monarch.h"
#include "util/status.h"

namespace monarch::core {

/// Parsed, engine-free view of the configuration (tests inspect this).
struct ParsedTier {
  std::string name;
  std::string profile;   ///< ssd | ram | lustre | lustre-quiet | raw
  std::string root;      ///< host directory (unused for ram)
  std::uint64_t quota_bytes = 0;
  std::uint64_t seed = 42;
};

struct ParsedConfig {
  std::string dataset_dir;
  int placement_threads = 6;
  bool fetch_full_file = true;
  std::vector<ParsedTier> cache_tiers;  ///< level order
  ParsedTier pfs;
};

/// Parse the INI text. Unknown sections/keys are errors (config typos
/// should fail loudly before a multi-hour training job starts).
Result<ParsedConfig> ParseConfig(const std::string& ini_text);

/// Instantiate engines per each tier's profile and assemble the
/// MonarchConfig (policy defaults to first-fit).
Result<MonarchConfig> BuildMonarchConfig(const ParsedConfig& parsed);

/// Convenience: parse + build + Monarch::Create.
Result<std::unique_ptr<Monarch>> MonarchFromIni(const std::string& ini_text);

}  // namespace monarch::core
