// Declarative hierarchy configuration.
//
// The paper has "the system designer specify the main MONARCH
// configuration, defining the storage tiers" before execution (§III-B).
// This module parses a small INI dialect into tier specs and builds a
// ready MonarchConfig from it, e.g.:
//
//   [monarch]
//   dataset_dir = imagenet_100g
//   placement_threads = 6
//   fetch_full_file = true
//
//   [tier.0]
//   name = local-ssd
//   profile = ssd           ; ssd | ram | raw
//   root = /tmp/monarch/ssd
//   quota = 115MiB
//
//   [pfs]
//   name = lustre
//   profile = lustre        ; lustre | lustre-quiet | raw
//   root = /tmp/monarch/pfs
//   seed = 42
//
//   [placement]             ; optional — staging-pipeline knobs
//   policy = first-fit      ; first-fit | round-robin | lru | hotspot
//                           ;   | clairvoyant (docs/PLACEMENT.md)
//   staging_buffer_bytes = 64MiB   ; chunk-buffer-pool budget
//   staging_chunk_bytes = 4MiB     ; copy granularity
//   tier_inflight_cap_bytes = 0    ; prefetch in-flight cap per tier
//   prefetch_lookahead = 0         ; hinted files staged ahead (0 = off)
//   hotspot_decay_interval = 256   ; accesses between frequency halvings
//   clairvoyant_protect_window = 64  ; upcoming accesses never evicted
//
//   [resilience]            ; optional — defaults match ResilienceOptions
//   retry_max_attempts = 4
//   retry_initial_backoff_us = 50
//   retry_multiplier = 2.0
//   retry_max_backoff_us = 5000
//   retry_budget_us = 20000
//   health_enabled = true
//   health_window = 64
//   health_min_samples = 16
//   health_error_threshold = 0.5
//   health_cooldown_us = 100000
//   health_half_open_successes = 3
//   verify_staged_writes = true
//   verify_on_read = false
//   max_placement_attempts = 3
//   restage_after_quarantine = true
//
//   [peer]                  ; optional — cooperative peer caching (ISSUE 4)
//   enabled = true
//   interconnect_bandwidth = 1200MiB  ; shared fabric, bytes/second
//   interconnect_latency_us = 150     ; one-way hop latency
//   directory_shards = 16             ; cluster file-directory stripes
//   replication = 1                   ; owner nodes staging each file
//
//   [pack]                  ; optional — small-file packing tier (ISSUE 9)
//   enabled = true          ; chunk-granularity staging + pack-index reads
//   chunk_bytes = 256KiB    ; staging/eviction granularity (<= staging_chunk_bytes)
//   codec = lz              ; none | lz — per-chunk compression on stage-in
//   pack_extent_bytes = 64MiB  ; container extent size used by PackWriter
//
//   [read]                  ; optional — async read-ring hot path (ISSUE 8)
//   ring_depth = 256        ; submission-queue capacity (Submit blocks when full)
//   worker_threads = 2      ; ring workers draining the queue
//   zero_copy = true        ; lend pages from memory-backed tiers (off = copy)
//
//   [checkpoint]            ; optional — write-back checkpoint tier (ISSUE 5)
//   enabled = true
//   dir = ckpt                        ; namespace prefix for checkpoint files
//   keep_last = 3                     ; retention window (0 = keep all)
//   drain_bandwidth = 200MiB          ; PFS drain cap, bytes/second (0 = off)
//   drain_threads = 1
//   verify_on_restore = true
//
//   [qos]                   ; optional — multi-tenant QoS (ISSUE 10)
//   enabled = true          ; weighted fair queue + scan resistance
//   interactive_weight = 8  ; per-class fair-queue/share weights
//   training_weight = 4
//   scan_weight = 2
//   drain_weight = 1
//   tenant_share = 1.0      ; this job's weight among cluster tenants
//   total_bandwidth = 400MiB          ; broker total, bytes/s (0 = no broker)
//   admission_queue_threshold = 0.85  ; footprint fraction that queues a job
//   admission_reject_threshold = 1.5  ; footprint multiple that rejects it
//   work_conserving = true  ; idle tenants lend their share to active ones
//   scan_stage_cap = 64MiB  ; resident bytes a scan tenant may stage (0 = off)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/monarch.h"
#include "pack/options.h"
#include "util/status.h"

namespace monarch::core {

/// Parsed, engine-free view of the configuration (tests inspect this).
struct ParsedTier {
  std::string name;
  std::string profile;   ///< ssd | ram | lustre | lustre-quiet | raw
  std::string root;      ///< host directory (unused for ram)
  std::uint64_t quota_bytes = 0;
  std::uint64_t seed = 42;
};

/// `[peer]` section (ISSUE 4): cooperative peer caching. Engine-free —
/// BuildMonarchConfig ignores it (a single Monarch instance has no
/// peers); the cluster integration layer (dlsim::RunClusterExperiment,
/// the multi-job benches) turns these knobs into a cluster::PeerGroup
/// and installs each node's peer tier and view.
struct ParsedPeer {
  bool enabled = false;
  /// Shared interconnect bandwidth, bytes/second (byte-size syntax).
  std::uint64_t interconnect_bandwidth_bps = 1'200'000'000;
  /// One-way hop latency charged per peer RPC/transfer.
  std::uint64_t interconnect_latency_us = 150;
  /// Lock stripes of the cluster file directory.
  std::uint64_t directory_shards = 16;
  /// Distinct owner nodes staging each file.
  int replication = 1;
  /// Per-node replication-repair bandwidth cap, bytes/second (byte-size
  /// syntax; 0 = uncapped). Bounds cluster::RestagePump after churn.
  std::uint64_t restage_bandwidth_bps = 0;
  /// Distinct holders a peer read tries before the failure escapes to
  /// the degradation ladder (1 = no replica failover).
  int max_failover_holders = 2;
  /// Consecutive transfer failures before a holder is quarantined from
  /// holder selection.
  int quarantine_failures = 3;
  /// Churn harness (dlsim): how long after a node leaves the fabric the
  /// directory notices and retracts it — the replica-failover window.
  std::uint64_t churn_detection_lag_us = 0;
  /// Seeded random kill/revive pairs injected per run (0 = scripted
  /// schedule only) and their seed.
  std::uint64_t churn_random_kills = 0;
  std::uint64_t churn_seed = 42;
};

/// `[checkpoint]` section (ISSUE 5): write-back checkpoint tier. Engine-
/// free like ParsedPeer — BuildMonarchConfig ignores it; the integration
/// layer (dlsim trainer harnesses, the checkpoint benches) turns these
/// knobs into a ckpt::CheckpointManager over the node's hierarchy.
struct ParsedCheckpoint {
  bool enabled = false;
  /// Namespace prefix for checkpoint data files and the manifest.
  std::string dir = "ckpt";
  /// Retention window applied once a checkpoint is durable (0 = keep all).
  int keep_last = 0;
  /// Drain bandwidth cap, bytes/second (byte-size syntax; 0 = uncapped).
  std::uint64_t drain_bandwidth_bytes_per_sec = 0;
  int drain_threads = 1;
  bool verify_on_restore = true;
};

struct ParsedConfig {
  std::string dataset_dir;
  int placement_threads = 6;
  bool fetch_full_file = true;
  /// `[placement]` section; defaults match PlacementOptions.
  std::string placement_policy = "first-fit";
  std::uint64_t staging_buffer_bytes = PlacementOptions{}.staging_buffer_bytes;
  std::uint64_t staging_chunk_bytes = PlacementOptions{}.staging_chunk_bytes;
  std::uint64_t tier_inflight_cap_bytes = 0;
  int prefetch_lookahead = 0;
  /// Per-policy eviction knobs (docs/PLACEMENT.md).
  PlacementPolicyKnobs policy_knobs;
  std::vector<ParsedTier> cache_tiers;  ///< level order
  ParsedTier pfs;
  /// `[resilience]` section; defaults when the section is absent.
  ResilienceOptions resilience;
  /// `[peer]` section; disabled when the section is absent.
  ParsedPeer peer;
  /// `[checkpoint]` section; disabled when the section is absent.
  ParsedCheckpoint checkpoint;
  /// `[read]` section; ReadRingOptions defaults when absent.
  ReadRingOptions read;
  /// `[pack]` section (ISSUE 9); disabled when the section is absent.
  pack::PackOptions pack;
  /// `[qos]` section (ISSUE 10); disabled when the section is absent.
  /// BuildMonarchConfig copies it into PlacementOptions; the integration
  /// layer (dlsim cluster, benches) additionally builds the shared
  /// BandwidthBroker / AdmissionController from these knobs.
  qos::QosOptions qos;
};

/// Parse the INI text. Unknown sections/keys are errors (config typos
/// should fail loudly before a multi-hour training job starts).
Result<ParsedConfig> ParseConfig(const std::string& ini_text);

/// Instantiate engines per each tier's profile and assemble the
/// MonarchConfig — including the placement policy named by
/// `[placement] policy` (first-fit when unset).
Result<MonarchConfig> BuildMonarchConfig(const ParsedConfig& parsed);

/// One INI key the parser accepts: its section, name, and a sample value
/// the parser is guaranteed to take. `section` is the header as written
/// ("tier.0" stands in for every tier.N).
struct ConfigKeyInfo {
  std::string section;
  std::string key;
  std::string sample;
};

/// Every (section, key) pair ParseConfig accepts, with a valid sample
/// value each. This is the source of truth the docs/CONFIG.md reference
/// is checked against (tests/core/config_doc_test.cc): a key added to
/// the parser must be added here AND documented, or CI fails; a key
/// listed here that the parser rejects also fails (the test feeds every
/// sample through ParseConfig).
std::vector<ConfigKeyInfo> ConfigKeyCatalogue();

/// Convenience: parse + build + Monarch::Create.
Result<std::unique_ptr<Monarch>> MonarchFromIni(const std::string& ini_text);

}  // namespace monarch::core
