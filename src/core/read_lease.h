// ReadLease: the core-level handle of the zero-copy read lane.
//
// A lease couples a storage-layer ReadView (the lent/copied page span)
// with the namespace-level read pin of the file it was cut from: while
// the lease is alive, FileInfo::read_pins stays elevated, so eviction's
// read-pin machinery (PlacementHandler::EvictOne) can never reclaim the
// staged copy out from under the reader, and the ReadView's keepalive
// guarantees the bytes themselves survive even engine teardown or an
// overwrite that lands anyway. Releasing (or destroying) the lease drops
// both pins.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "core/file_info.h"
#include "storage/storage_engine.h"

namespace monarch::core {

class ReadLease {
 public:
  ReadLease() = default;

  /// Takes ownership of one already-acquired read pin on `info` (may be
  /// null for anonymous views); the pin is returned on release.
  ReadLease(storage::ReadView view, FileInfoPtr info, int level) noexcept
      : view_(std::move(view)), info_(std::move(info)), level_(level) {}

  ReadLease(const ReadLease&) = delete;
  ReadLease& operator=(const ReadLease&) = delete;

  ReadLease(ReadLease&& other) noexcept
      : view_(std::move(other.view_)),
        info_(std::move(other.info_)),
        level_(other.level_) {
    other.view_.Reset();
    other.level_ = -1;
  }

  ReadLease& operator=(ReadLease&& other) noexcept {
    if (this != &other) {
      Release();
      view_ = std::move(other.view_);
      info_ = std::move(other.info_);
      level_ = other.level_;
      other.view_.Reset();
      other.level_ = -1;
    }
    return *this;
  }

  ~ReadLease() { Release(); }

  /// Unpin early: drops the eviction pin and the page keepalive. The
  /// span returned by data() must not be touched afterwards.
  void Release() noexcept {
    if (info_) {
      info_->read_pins.fetch_sub(1, std::memory_order_acq_rel);
      info_.reset();
    }
    view_.Reset();
    level_ = -1;
  }

  [[nodiscard]] std::span<const std::byte> data() const noexcept {
    return view_.data();
  }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] bool empty() const noexcept { return view_.empty(); }
  /// True when the bytes were lent (no memcpy anywhere on the path).
  [[nodiscard]] bool zero_copy() const noexcept { return view_.zero_copy(); }
  /// Hierarchy level that served the read (-1 for a released lease).
  [[nodiscard]] int level() const noexcept { return level_; }
  /// True while the lease still holds a file pin.
  [[nodiscard]] bool pinned() const noexcept { return info_ != nullptr; }

 private:
  storage::ReadView view_;
  FileInfoPtr info_;
  int level_ = -1;
};

}  // namespace monarch::core
