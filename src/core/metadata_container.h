// MetadataContainer: MONARCH's virtual namespace over the storage
// hierarchy (§III-A). Populated once at startup by traversing the PFS
// dataset directory (the "metadata initialization phase" the paper times
// at ~13s / ~52s for the 100/200 GiB datasets), updated at runtime by the
// placement handler, and discarded with the job — an ephemeral storage
// model, like the HPC jobs it serves.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/file_info.h"
#include "storage/storage_engine.h"
#include "util/sharded_map.h"
#include "util/status.h"

namespace monarch::core {

class MetadataContainer {
 public:
  MetadataContainer() = default;

  /// Traverse `dataset_dir` on the PFS engine and build a FileInfo per
  /// file, all initially located at `pfs_level`. Returns the number of
  /// files registered. The walk's metadata ops hit the PFS engine (they
  /// are the startup cost the paper measures).
  Result<std::uint64_t> Populate(storage::StorageEngine& pfs,
                                 const std::string& dataset_dir,
                                 int pfs_level);

  /// Register a single file (used by tests and by lazy discovery of files
  /// that appeared after startup). Returns false if already present.
  bool Register(const std::string& name, std::uint64_t size, int pfs_level);

  /// Hot-path lookup: probes the RCU snapshot with no mutex when the
  /// namespace is quiescent, and never builds a temporary key — reader
  /// threads call this once per Read.
  [[nodiscard]] FileInfoPtr Lookup(std::string_view name) const {
    return files_.FindFast(name).value_or(nullptr);
  }

  [[nodiscard]] bool Contains(const std::string& name) const {
    return files_.Contains(name);
  }

  [[nodiscard]] std::uint64_t FileCount() const { return files_.Size(); }

  /// Total dataset bytes registered.
  [[nodiscard]] std::uint64_t TotalBytes() const noexcept {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  /// Snapshot of every file's (name, size, level, state); sorted by name.
  struct Entry {
    std::string name;
    std::uint64_t size;
    int level;
    PlacementState state;
  };
  [[nodiscard]] std::vector<Entry> Snapshot() const;

  /// Seconds spent inside the last Populate() call.
  [[nodiscard]] double init_seconds() const noexcept { return init_seconds_; }

 private:
  ShardedMap<std::string, FileInfoPtr, StringHash, std::equal_to<>> files_{64};
  std::atomic<std::uint64_t> total_bytes_{0};
  double init_seconds_ = 0;
};

}  // namespace monarch::core
