#include "core/posix_shim.h"

namespace monarch::core {

Result<int> PosixShim::Open(const std::string& name) {
  // Validate existence up front so Open mirrors open(2)'s ENOENT.
  MONARCH_RETURN_IF_ERROR(monarch_.FileSize(name).status());
  std::lock_guard<std::mutex> lock(mu_);
  const int fd = next_fd_++;
  open_files_.emplace(fd, name);
  return fd;
}

Result<std::string> PosixShim::NameFor(int fd) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return FailedPreconditionError("bad file descriptor " +
                                   std::to_string(fd));
  }
  return it->second;
}

Result<std::size_t> PosixShim::Pread(int fd, std::uint64_t offset,
                                     std::span<std::byte> dst) {
  MONARCH_ASSIGN_OR_RETURN(const std::string name, NameFor(fd));
  return monarch_.Read(name, offset, dst);
}

Result<std::uint64_t> PosixShim::Fstat(int fd) {
  MONARCH_ASSIGN_OR_RETURN(const std::string name, NameFor(fd));
  return monarch_.FileSize(name);
}

Status PosixShim::Close(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_files_.erase(fd) == 0) {
    return FailedPreconditionError("close of bad file descriptor " +
                                   std::to_string(fd));
  }
  return Status::Ok();
}

std::size_t PosixShim::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_files_.size();
}

}  // namespace monarch::core
