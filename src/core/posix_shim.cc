#include "core/posix_shim.h"

#include <algorithm>
#include <utility>

namespace monarch::core {

Result<int> PosixShim::Open(const std::string& name) {
  // Validate existence up front so Open mirrors open(2)'s ENOENT.
  MONARCH_RETURN_IF_ERROR(monarch_.FileSize(name).status());
  std::lock_guard<std::mutex> lock(mu_);
  const int fd = next_fd_++;
  open_files_.emplace(fd, name);
  return fd;
}

Result<int> PosixShim::OpenForWrite(const std::string& name) {
  if (checkpoint_sink_ == nullptr) {
    return FailedPreconditionError(
        "shim has no checkpoint sink: writes are not intercepted");
  }
  if (name.empty()) {
    return InvalidArgumentError("empty file name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int fd = next_fd_++;
  write_files_.emplace(fd, WriteFile{name, {}});
  return fd;
}

Result<std::string> PosixShim::NameFor(int fd) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) {
    return FailedPreconditionError("bad file descriptor " +
                                   std::to_string(fd));
  }
  return it->second;
}

Result<std::size_t> PosixShim::Pread(int fd, std::uint64_t offset,
                                     std::span<std::byte> dst) {
  MONARCH_ASSIGN_OR_RETURN(const std::string name, NameFor(fd));
  return monarch_.Read(name, offset, dst);
}

Result<std::size_t> PosixShim::Pwrite(int fd, std::uint64_t offset,
                                      std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = write_files_.find(fd);
  if (it == write_files_.end()) {
    return FailedPreconditionError("pwrite on non-write descriptor " +
                                   std::to_string(fd));
  }
  std::vector<std::byte>& buffer = it->second.buffer;
  const std::size_t end = static_cast<std::size_t>(offset) + data.size();
  if (buffer.size() < end) buffer.resize(end);
  std::copy(data.begin(), data.end(),
            buffer.begin() + static_cast<std::ptrdiff_t>(offset));
  return data.size();
}

Result<std::uint64_t> PosixShim::Fstat(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = write_files_.find(fd);
    if (it != write_files_.end()) return it->second.buffer.size();
  }
  MONARCH_ASSIGN_OR_RETURN(const std::string name, NameFor(fd));
  return monarch_.FileSize(name);
}

Status PosixShim::Close(int fd) {
  WriteFile committed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = write_files_.find(fd);
    if (it != write_files_.end()) {
      committed = std::move(it->second);
      write_files_.erase(it);
    } else {
      if (open_files_.erase(fd) == 0) {
        return FailedPreconditionError("close of bad file descriptor " +
                                       std::to_string(fd));
      }
      return Status::Ok();
    }
  }
  // Commit outside the fd-table lock: Save may block on a local write.
  return checkpoint_sink_->Save(committed.name, committed.buffer);
}

std::size_t PosixShim::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_files_.size() + write_files_.size();
}

}  // namespace monarch::core
