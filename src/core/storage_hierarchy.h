// StorageHierarchy: the ordered set of storage tiers (§III-A). Level 0 is
// the fastest writable tier; the last level is the read-only PFS that
// holds the full dataset. The system designer fixes the order at
// configuration time (this repo orders by descending performance, as the
// paper does, but any criterion works).
//
// ISSUE 4 adds an optional PEER level: a second read-only level slotted
// directly above the PFS, backed by other cluster nodes' local tiers
// reached over the interconnect (net/PeerEngine). It serves reads like
// any tier — circuit-breaker-guarded, retried by its driver — but never
// receives placements (read-only, so Reserve() always fails).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/storage_driver.h"
#include "util/status.h"

namespace monarch::core {

class StorageHierarchy {
 public:
  /// `drivers` ordered level 0..N-1; the last must be the read-only PFS
  /// level. Every other level must be writable, except that the level
  /// immediately above the PFS may be a second read-only driver — the
  /// peer-cache tier (there must still be at least one writable level).
  static Result<std::unique_ptr<StorageHierarchy>> Create(
      std::vector<StorageDriverPtr> drivers);

  [[nodiscard]] std::size_t num_levels() const noexcept {
    return drivers_.size();
  }
  /// Index of the PFS (source) level == num_levels()-1.
  [[nodiscard]] int pfs_level() const noexcept {
    return static_cast<int>(drivers_.size()) - 1;
  }

  /// Index of the read-only peer-cache level, or -1 when the hierarchy
  /// has none. When present it is always pfs_level()-1.
  [[nodiscard]] int peer_level() const noexcept { return peer_level_; }

  [[nodiscard]] StorageDriver& Level(int level) noexcept {
    return *drivers_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] const StorageDriver& Level(int level) const noexcept {
    return *drivers_[static_cast<std::size_t>(level)];
  }

  [[nodiscard]] StorageDriver& Pfs() noexcept {
    return *drivers_.back();
  }

  /// The first level >= `from` whose circuit breaker currently admits
  /// requests. The PFS level is always admitted: it holds the
  /// authoritative copy and there is nothing below it to fall back to,
  /// so even an unhealthy PFS is worth trying.
  [[nodiscard]] int NextServingLevel(int from) noexcept;

  /// Sum of free bytes over writable levels — placement stops for a file
  /// bigger than this. Read-only levels (peer cache, PFS) report
  /// unlimited free space and are excluded.
  [[nodiscard]] std::uint64_t TotalWritableFreeBytes() const noexcept;

 private:
  explicit StorageHierarchy(std::vector<StorageDriverPtr> drivers,
                            int peer_level)
      : drivers_(std::move(drivers)), peer_level_(peer_level) {}

  std::vector<StorageDriverPtr> drivers_;
  int peer_level_ = -1;
};

}  // namespace monarch::core
