// StorageHierarchy: the ordered set of storage tiers (§III-A). Level 0 is
// the fastest writable tier; the last level is the read-only PFS that
// holds the full dataset. The system designer fixes the order at
// configuration time (this repo orders by descending performance, as the
// paper does, but any criterion works).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/storage_driver.h"
#include "util/status.h"

namespace monarch::core {

class StorageHierarchy {
 public:
  /// `drivers` ordered level 0..N-1; the last must be the read-only PFS
  /// level and every other level must be writable.
  static Result<std::unique_ptr<StorageHierarchy>> Create(
      std::vector<StorageDriverPtr> drivers);

  [[nodiscard]] std::size_t num_levels() const noexcept {
    return drivers_.size();
  }
  /// Index of the PFS (source) level == num_levels()-1.
  [[nodiscard]] int pfs_level() const noexcept {
    return static_cast<int>(drivers_.size()) - 1;
  }

  [[nodiscard]] StorageDriver& Level(int level) noexcept {
    return *drivers_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] const StorageDriver& Level(int level) const noexcept {
    return *drivers_[static_cast<std::size_t>(level)];
  }

  [[nodiscard]] StorageDriver& Pfs() noexcept {
    return *drivers_.back();
  }

  /// The first level >= `from` whose circuit breaker currently admits
  /// requests. The PFS level is always admitted: it holds the
  /// authoritative copy and there is nothing below it to fall back to,
  /// so even an unhealthy PFS is worth trying.
  [[nodiscard]] int NextServingLevel(int from) noexcept;

  /// Sum of free bytes over writable levels — placement stops for a file
  /// bigger than this.
  [[nodiscard]] std::uint64_t TotalWritableFreeBytes() const noexcept;

 private:
  explicit StorageHierarchy(std::vector<StorageDriverPtr> drivers)
      : drivers_(std::move(drivers)) {}

  std::vector<StorageDriverPtr> drivers_;
};

}  // namespace monarch::core
