#include "core/storage_driver.h"

namespace monarch::core {

StorageDriver::StorageDriver(std::string name,
                             storage::StorageEnginePtr engine,
                             std::uint64_t quota_bytes, bool read_only)
    : name_(std::move(name)),
      engine_(std::move(engine)),
      quota_(quota_bytes),
      read_only_(read_only) {}

bool StorageDriver::Reserve(std::uint64_t bytes) noexcept {
  if (read_only_) return false;
  if (quota_ == 0) {  // unlimited
    occupancy_.fetch_add(bytes, std::memory_order_relaxed);
    return true;
  }
  std::uint64_t current = occupancy_.load(std::memory_order_relaxed);
  for (;;) {
    if (current + bytes > quota_) return false;
    if (occupancy_.compare_exchange_weak(current, current + bytes,
                                         std::memory_order_acq_rel)) {
      return true;
    }
  }
}

void StorageDriver::Release(std::uint64_t bytes) noexcept {
  occupancy_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t StorageDriver::free_bytes() const noexcept {
  if (quota_ == 0) return UINT64_MAX;
  const std::uint64_t used = occupancy_.load(std::memory_order_relaxed);
  return used >= quota_ ? 0 : quota_ - used;
}

Status StorageDriver::Write(const std::string& path,
                            std::span<const std::byte> data) {
  if (read_only_) {
    return FailedPreconditionError("write to read-only tier '" + name_ + "'");
  }
  return engine_->Write(path, data);
}

Status StorageDriver::Delete(const std::string& path) {
  if (read_only_) {
    return FailedPreconditionError("delete on read-only tier '" + name_ +
                                   "'");
  }
  return engine_->Delete(path);
}

}  // namespace monarch::core
