#include "core/storage_driver.h"

#include <functional>

namespace monarch::core {

StorageDriver::StorageDriver(std::string name,
                             storage::StorageEnginePtr engine,
                             std::uint64_t quota_bytes, bool read_only,
                             RetryPolicy retry, TierHealthOptions health)
    : name_(std::move(name)),
      engine_(std::move(engine)),
      quota_(quota_bytes),
      read_only_(read_only),
      retry_(retry),
      health_(name_, health) {
  retries_ = obs::MetricsRegistry::Global().GetCounter(
      "storage.retries", "ops",
      "engine operations retried after a transient (UNAVAILABLE) failure");
}

bool StorageDriver::Reserve(std::uint64_t bytes) noexcept {
  if (read_only_) return false;
  if (quota_ == 0) {  // unlimited
    occupancy_.fetch_add(bytes, std::memory_order_relaxed);
    return true;
  }
  std::uint64_t current = occupancy_.load(std::memory_order_relaxed);
  for (;;) {
    if (current + bytes > quota_) return false;
    if (occupancy_.compare_exchange_weak(current, current + bytes,
                                         std::memory_order_acq_rel)) {
      return true;
    }
  }
}

void StorageDriver::Release(std::uint64_t bytes) noexcept {
  occupancy_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t StorageDriver::free_bytes() const noexcept {
  if (quota_ == 0) return UINT64_MAX;
  const std::uint64_t used = occupancy_.load(std::memory_order_relaxed);
  return used >= quota_ ? 0 : quota_ - used;
}

void StorageDriver::CountRetry() noexcept {
  retries_local_.fetch_add(1, std::memory_order_relaxed);
  if (retries_ != nullptr) retries_->Increment();
}

Result<std::size_t> StorageDriver::Read(std::string_view path,
                                        std::uint64_t offset,
                                        std::span<std::byte> dst) {
  // Charge the tenant before the engine op: the token-bucket wait IS
  // the bandwidth enforcement (charged once, not per retry attempt).
  ChargeQos(dst.size());
  // Salt the jitter stream per (tier, file) so concurrent retries across
  // files don't sleep in lockstep, while staying deterministic per run.
  // Hashes are combined instead of concatenated — no per-read allocation.
  Backoff backoff(retry_, std::hash<std::string>{}(name_) ^
                              std::hash<std::string_view>{}(path));
  for (;;) {
    auto read = engine_->Read(path, offset, dst);
    if (read.ok()) {
      health_.RecordSuccess();
      return read;
    }
    if (!IsRetryableError(read.status())) {
      // kNotFound etc. are misses, not tier failures — don't poison the
      // health window with them.
      return read;
    }
    health_.RecordFailure();
    const auto delay = backoff.NextDelay();
    if (!delay.has_value()) return read;
    CountRetry();
    PreciseSleep(*delay);
  }
}

Result<storage::ReadView> StorageDriver::ReadZeroCopy(std::string_view path,
                                                      std::uint64_t offset,
                                                      std::uint64_t max_bytes,
                                                      bool allow_zero_copy) {
  ChargeQos(max_bytes);
  Backoff backoff(retry_, std::hash<std::string>{}(name_) ^
                              std::hash<std::string_view>{}(path));
  for (;;) {
    // The qualified call is the non-virtual base implementation: always a
    // private copy routed through the engine's own Read.
    auto view = allow_zero_copy
                    ? engine_->ReadZeroCopy(path, offset, max_bytes)
                    : engine_->storage::StorageEngine::ReadZeroCopy(
                          path, offset, max_bytes);
    if (view.ok()) {
      health_.RecordSuccess();
      return view;
    }
    if (!IsRetryableError(view.status())) return view;
    health_.RecordFailure();
    const auto delay = backoff.NextDelay();
    if (!delay.has_value()) return view;
    CountRetry();
    PreciseSleep(*delay);
  }
}

Status StorageDriver::Write(const std::string& path,
                            std::span<const std::byte> data) {
  if (read_only_) {
    return FailedPreconditionError("write to read-only tier '" + name_ + "'");
  }
  ChargeQos(data.size());
  Backoff backoff(retry_, std::hash<std::string>{}(name_ + path) ^ 0x57u);
  for (;;) {
    const Status written = engine_->Write(path, data);
    if (written.ok()) {
      health_.RecordSuccess();
      return written;
    }
    if (!IsRetryableError(written)) return written;
    health_.RecordFailure();
    const auto delay = backoff.NextDelay();
    if (!delay.has_value()) return written;
    CountRetry();
    PreciseSleep(*delay);
  }
}

Status StorageDriver::WriteAt(const std::string& path, std::uint64_t offset,
                              std::span<const std::byte> data) {
  if (read_only_) {
    return FailedPreconditionError("write to read-only tier '" + name_ + "'");
  }
  ChargeQos(data.size());
  // Retrying a chunk is safe: WriteAt is an idempotent overwrite of the
  // same byte range.
  Backoff backoff(retry_, std::hash<std::string>{}(name_ + path) ^ offset);
  for (;;) {
    const Status written = engine_->WriteAt(path, offset, data);
    if (written.ok()) {
      health_.RecordSuccess();
      return written;
    }
    if (!IsRetryableError(written)) return written;
    health_.RecordFailure();
    const auto delay = backoff.NextDelay();
    if (!delay.has_value()) return written;
    CountRetry();
    PreciseSleep(*delay);
  }
}

Status StorageDriver::Delete(const std::string& path) {
  if (read_only_) {
    return FailedPreconditionError("delete on read-only tier '" + name_ +
                                   "'");
  }
  return engine_->Delete(path);
}

}  // namespace monarch::core
