// ReadRing: io_uring-style asynchronous submission/completion ring over
// Monarch::Read (the tentpole of the zero-copy async hot path).
//
// Callers enqueue BATCHES of ReadOps — copy-mode ops carry a caller
// buffer, lease-mode ops ask for a zero-copy ReadLease — and either
// harvest completions from the completion queue or register a callback
// that fires as each op finishes (the hook dlsim's prefetch pipeline
// feeds from). A small worker pool drains the submission queue; each
// worker pops a batch and sorts it by the files' CURRENT hierarchy level
// before executing, so ops against the same tier run back-to-back
// (per-tier coalescing: the tier's breaker/driver state stays hot over
// the run of ops instead of ping-ponging between tiers).
//
// Backpressure: the submission queue is bounded by `depth`; Submit
// blocks while the ring is full, which is what keeps an unbounded
// producer (a 64-thread data loader) from ballooning memory.
//
// Shutdown drains every queued-but-unstarted op into a
// kFailedPrecondition completion (the async analogue of read-after-
// close) and joins the workers; in-flight ops finish normally first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/read_lease.h"
#include "obs/metrics_registry.h"
#include "qos/tenant.h"
#include "util/status.h"

namespace monarch::core {

class Monarch;

struct ReadRingOptions {
  /// Maximum ops queued-but-unstarted before Submit blocks.
  int depth = 256;
  /// Worker threads draining the submission queue.
  int worker_threads = 2;
  /// Serve lease-mode ops through the zero-copy lane when the tier can
  /// lend; off = every lease is a private copy (A/B lever for benches).
  bool zero_copy = true;
};

/// One submitted read. Copy mode (`lease == false`) fills `dst`;
/// lease mode ignores `dst` and returns a ReadLease of up to
/// `max_bytes` from `offset`. `user_data` is echoed in the completion
/// (io_uring idiom) so callers can correlate out-of-order completions.
struct ReadOp {
  std::string name;
  std::uint64_t offset = 0;
  std::span<std::byte> dst{};
  bool lease = false;
  std::uint64_t max_bytes = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t user_data = 0;
};

struct ReadCompletion {
  std::uint64_t user_data = 0;
  /// Bytes read, or the error the degradation ladder surfaced
  /// (kFailedPrecondition for ops cancelled by Shutdown).
  Result<std::size_t> bytes = std::size_t{0};
  /// Valid when the op was lease-mode and succeeded.
  ReadLease lease;
  /// True when the bytes were served through the zero-copy lane.
  bool zero_copy = false;
  /// Hierarchy level that served the read (-1 on error).
  int level = -1;
};

class ReadRing {
 public:
  using CompletionFn = std::function<void(ReadCompletion)>;

  ReadRing(Monarch& monarch, ReadRingOptions options);
  ~ReadRing();
  ReadRing(const ReadRing&) = delete;
  ReadRing& operator=(const ReadRing&) = delete;

  /// Enqueue a batch. Blocks while the ring is full (backpressure).
  /// With a callback, completions are delivered by invoking `on_complete`
  /// from a worker thread (per op, possibly concurrently); without one
  /// they land on the completion queue for Harvest. Returns the number
  /// of ops accepted — less than ops.size() only when the ring is
  /// shutting down (the rest are dropped without completions).
  std::size_t Submit(std::vector<ReadOp> ops, CompletionFn on_complete = {});

  /// Move up to `max` ready completions into `out` (appended).
  /// Non-blocking; returns the number harvested.
  std::size_t Harvest(std::vector<ReadCompletion>& out,
                      std::size_t max = std::numeric_limits<std::size_t>::max());

  /// Like Harvest, but blocks until at least one completion is ready,
  /// every submitted op has completed, or the ring shuts down.
  std::size_t HarvestBlocking(
      std::vector<ReadCompletion>& out,
      std::size_t max = std::numeric_limits<std::size_t>::max());

  /// Cancel queued ops (each completes with kFailedPrecondition), let
  /// in-flight ops finish, join the workers. Idempotent.
  void Shutdown();

  /// Point-in-time ring state for monarchctl / tests.
  struct RingStats {
    int depth = 0;                       ///< configured capacity
    std::size_t queued = 0;              ///< submitted, not yet started
    std::size_t inflight = 0;            ///< started, not yet completed
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;         ///< includes cancelled
    std::uint64_t cancelled = 0;
    std::uint64_t zero_copy_reads = 0;   ///< completions served zero-copy
    std::uint64_t copy_reads = 0;        ///< completions that memcpy'd
    /// zero_copy_reads / (zero_copy_reads + copy_reads), 0 when idle.
    [[nodiscard]] double zero_copy_hit_rate() const noexcept {
      const std::uint64_t total = zero_copy_reads + copy_reads;
      return total == 0 ? 0.0
                        : static_cast<double>(zero_copy_reads) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] RingStats Stats() const;

  [[nodiscard]] const ReadRingOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Pending {
    ReadOp op;
    CompletionFn on_complete;  ///< empty = deliver to completion queue
    /// Submitter's ambient tenant, re-installed on the executing worker
    /// so ring reads stay attributable (ISSUE 10). Unset = no tenant.
    std::optional<qos::TenantContext> tenant;
  };

  void WorkerLoop();
  /// Execute one op (outside any ring lock) and deliver its completion.
  void Execute(Pending pending);
  void Deliver(Pending& pending, ReadCompletion completion);

  Monarch& monarch_;
  ReadRingOptions options_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;    ///< submitters waiting for room
  std::condition_variable work_cv_;     ///< workers waiting for ops
  std::condition_variable harvest_cv_;  ///< harvesters waiting for results
  std::deque<Pending> queue_;
  std::vector<ReadCompletion> completions_;
  std::size_t inflight_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> zero_copy_reads_{0};
  std::atomic<std::uint64_t> copy_reads_{0};

  // Ring instruments (docs/OBSERVABILITY.md §1, `monarch.readring.*`),
  // resolved once at construction like Monarch's read counters.
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Counter* m_zero_copy_ = nullptr;
  obs::Counter* m_copy_ = nullptr;
  obs::Gauge* m_depth_ = nullptr;
  obs::Gauge* m_queued_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace monarch::core
