// PlacementHandler: MONARCH's background data-placement engine (§III-A/B).
//
// When the read path sees a file that only exists on the PFS, it claims
// the file (FileInfo CAS) and hands it to this module. A dedicated thread
// pool — the paper configures 6 threads — then:
//   1. asks the placement policy for a writable level with room
//      (first-fit top-down in the paper's configuration),
//   2. obtains the *full* file content: either the bytes the read path
//      already pulled (when the framework requested the whole file) or a
//      fresh full read from the PFS (the partial-read optimisation that
//      gives MONARCH its first-epoch edge, §III-B),
//   3. writes the copy to the chosen tier — recording its CRC32C and,
//      when verify_staged_writes is on, reading it back to prove the
//      bytes landed intact — and flips the file's level so subsequent
//      reads are served from it.
//
// Failure handling (ISSUE 2): backend I/O is retried inside the storage
// drivers; a staging attempt that still fails is re-tried on a later
// access until the per-file cap (max_placement_attempts) marks the file
// unplaceable, so a broken file degrades to PFS-resident instead of
// hammering the pool every epoch. A staged copy whose checksum does not
// match is QUARANTINED: deleted, its quota released, and the file reset
// to PFS-resident — corruption degrades to vanilla-PFS performance,
// never wrong bytes.
//
// No evictions happen under the paper's policy: with random per-epoch
// access every file is equally likely to be read, so replacement would
// only add tier-to-tier traffic ("I/O trashing"). An optional eviction
// mode exists purely for the ablation bench that quantifies that claim.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/file_info.h"
#include "core/metadata_container.h"
#include "core/placement_policy.h"
#include "core/resilience.h"
#include "core/storage_hierarchy.h"
#include "util/thread_pool.h"

namespace monarch::core {

struct PlacementOptions {
  /// Background copy threads (paper: 6).
  int num_threads = 6;

  /// When the framework's read covers only part of the file, fetch the
  /// whole file in the background anyway (§III-B). Disabling this is the
  /// `abl_design_choices` "no-full-fetch" arm: only full-file reads get
  /// staged.
  bool fetch_full_file_on_partial_read = true;

  /// Ablation only: evict least-recently-accessed placed files to make
  /// room when the policy finds no space. The paper's design keeps this
  /// off.
  bool enable_eviction = false;
};

struct PlacementStats {
  std::uint64_t scheduled = 0;     ///< placement tasks enqueued
  std::uint64_t completed = 0;     ///< files now served from upper tiers
  std::uint64_t rejected_no_space = 0;
  std::uint64_t failed = 0;        ///< backend errors during staging
  std::uint64_t bytes_staged = 0;
  std::uint64_t evictions = 0;     ///< ablation mode only
  std::uint64_t retries = 0;       ///< failed stagings left retryable
  std::uint64_t quarantined = 0;   ///< copies deleted on CRC mismatch
  std::uint64_t abandoned = 0;     ///< files past max_placement_attempts
};

class PlacementHandler {
 public:
  PlacementHandler(StorageHierarchy& hierarchy, MetadataContainer& metadata,
                   PlacementPolicyPtr policy, PlacementOptions options,
                   ResilienceOptions resilience = {});
  ~PlacementHandler();

  PlacementHandler(const PlacementHandler&) = delete;
  PlacementHandler& operator=(const PlacementHandler&) = delete;

  /// Called by the read path after it claimed `file` (TryBeginFetch).
  /// `content`: the full file bytes when the triggering read already
  /// covered them, otherwise nullopt and the handler reads the PFS copy
  /// itself. Never blocks the caller.
  void SchedulePlacement(FileInfoPtr file,
                         std::optional<std::vector<std::byte>> content);

  /// Remove `file`'s tier copy because its bytes failed verification:
  /// claim it (kPlaced -> kFetching), delete the copy, release the
  /// quota, and reset the file to PFS-resident (or unplaceable once past
  /// the failure cap). Returns false when another thread already holds
  /// the file in a non-kPlaced state. Thread-safe.
  bool QuarantineCopy(const FileInfoPtr& file);

  /// Stop scheduling new placements (e.g. the integration layer signals
  /// the end of epoch 1 when tiers filled); in-flight tasks finish.
  void StopScheduling() noexcept { stopped_.store(true); }
  [[nodiscard]] bool stopped() const noexcept { return stopped_.load(); }

  /// Block until every scheduled placement finished (tests, shutdown).
  void Drain();

  [[nodiscard]] PlacementStats Stats() const;

  [[nodiscard]] const PlacementOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const ResilienceOptions& resilience() const noexcept {
    return resilience_;
  }

 private:
  void PlaceFile(const FileInfoPtr& file,
                 std::optional<std::vector<std::byte>> content);
  /// Count one failed staging attempt and either leave the file
  /// retryable (a later access re-claims it) or mark it unplaceable once
  /// the per-file cap is hit.
  void RecordStagingFailure(const FileInfoPtr& file);
  /// Eviction ablation: free >= `needed` bytes on some writable level and
  /// retry the policy. Returns the reserved level or nullopt.
  std::optional<int> EvictAndReserve(std::uint64_t needed);

  StorageHierarchy& hierarchy_;
  MetadataContainer& metadata_;
  PlacementPolicyPtr policy_;
  PlacementOptions options_;
  ResilienceOptions resilience_;
  ThreadPool pool_;

  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> scheduled_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_no_space_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> bytes_staged_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> abandoned_{0};
};

}  // namespace monarch::core
