// PlacementHandler: MONARCH's background staging engine (§III-A/B),
// rebuilt as a pipelined, two-lane copy service.
//
// When the read path sees a file that only exists on the PFS, it claims
// the file (FileInfo CAS) and hands it to this module. Dedicated worker
// threads — the paper configures 6 — then:
//   1. ask the placement policy for a writable level with room
//      (first-fit top-down in the paper's configuration),
//   2. stream the file tier-to-tier in fixed-size chunks drawn from a
//      bounded, reusable buffer pool (peak staging memory is
//      `staging_buffer_bytes`, never a function of file sizes), reusing
//      any leading bytes the triggering read already pulled instead of
//      re-reading them from the PFS,
//   3. publish the copy — recording its incrementally computed CRC32C
//      and, when verify_staged_writes is on, reading it back chunk by
//      chunk to prove the bytes landed intact — and flip the file's
//      level so subsequent reads are served from it.
//
// Two lanes: DEMAND tasks come from actual reads and always run first;
// PREFETCH tasks come from look-ahead hints (Monarch::HintUpcoming) and
// only run when no demand work is queued. A per-tier in-flight byte cap
// additionally parks prefetch copies while a tier's staging bandwidth is
// saturated, so speculative work cannot starve demand staging. A demand
// read that overtakes a queued prefetch promotes it to the demand lane;
// prefetch never evicts and a prefetch rejection is never permanent.
//
// Failure handling (ISSUE 2): backend I/O is retried inside the storage
// drivers; a staging attempt that still fails is re-tried on a later
// access until the per-file cap (max_placement_attempts) marks the file
// unplaceable. A staged copy whose checksum does not match is
// QUARANTINED: deleted, its quota released, and the file reset to
// PFS-resident — corruption degrades to vanilla-PFS performance, never
// wrong bytes.
//
// Evictions (ISSUE 6): the paper's first-fit policy never evicts — with
// random per-epoch access every file is equally likely, so replacement
// would only add tier-to-tier traffic ("I/O trashing"). The eviction-
// capable policies (lru, hotspot, clairvoyant; docs/PLACEMENT.md) make
// the opposite bet for partial-fit datasets: when PickLevel finds no
// room, the handler walks the policy's victim ranking and drops placed
// copies — through the same claim/delete/OnDropped path as quarantine,
// honouring read pins — until the incoming file fits. The demand lane
// evicts whenever the policy allows it (or the enable_eviction ablation
// forces it); the prefetch lane only under clairvoyant, whose
// speculative copies are certain future reads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/file_info.h"
#include "core/metadata_container.h"
#include "core/peer_view.h"
#include "core/placement_policy.h"
#include "core/resilience.h"
#include "core/storage_hierarchy.h"
#include "obs/metrics_registry.h"
#include "pack/codec.h"
#include "pack/options.h"
#include "qos/fair_queue.h"
#include "qos/options.h"
#include "qos/tenant.h"
#include "util/buffer_pool.h"

namespace monarch::core {

/// Which queue a staging task belongs to. Demand tasks (read-triggered)
/// always pop before prefetch tasks (hint-triggered).
enum class StagingLane { kDemand, kPrefetch };

struct PlacementOptions {
  /// Background copy threads (paper: 6).
  int num_threads = 6;

  /// When the framework's read covers only part of the file, fetch the
  /// whole file in the background anyway (§III-B). Disabling this is the
  /// `abl_design_choices` "no-full-fetch" arm: only full-file reads get
  /// staged.
  bool fetch_full_file_on_partial_read = true;

  /// Force the demand lane to evict even under a policy that does not
  /// evict on its own (FirstFitPolicy's ablation arm: LRU-ordered
  /// victims). Policies whose EvictsUnderPressure() is true evict
  /// regardless of this flag; the prefetch lane evicts only when the
  /// policy's PrefetchMayEvict() allows it (clairvoyant).
  bool enable_eviction = false;

  /// Total budget for the chunk buffer pool — the hard cap on staging
  /// memory (`[placement] staging_buffer_bytes`).
  std::uint64_t staging_buffer_bytes = 64ULL * 1024 * 1024;

  /// Copy granularity: each pooled buffer holds one chunk of this size
  /// (`[placement] staging_chunk_bytes`).
  std::uint64_t staging_chunk_bytes = 4ULL * 1024 * 1024;

  /// Per-tier cap on bytes being staged concurrently by the PREFETCH
  /// lane; 0 = uncapped. While a tier carries this much in-flight
  /// staging, further prefetch copies park until a copy completes —
  /// demand staging is exempt (`[placement] tier_inflight_cap_bytes`).
  std::uint64_t tier_inflight_cap_bytes = 0;

  /// How many hinted files the prefetch cursor keeps in flight ahead of
  /// the newest demand read; 0 disables look-ahead prefetching
  /// (`[placement] prefetch_lookahead`). Consumed by Monarch, carried
  /// here so one options struct configures the whole staging engine.
  int prefetch_lookahead = 0;

  /// Multi-tenant QoS (ISSUE 10). When `qos.enabled`, the two-lane
  /// queue generalizes to per-class weighted fair queuing (interactive >
  /// training > scan > drain/prefetch) and low-retention tenants are
  /// scan-resisted: they may only evict other low-retention copies, and
  /// `qos.scan_stage_cap_bytes` caps their resident footprint. Off, the
  /// queue degenerates to the original demand/prefetch behaviour.
  qos::QosOptions qos;

  /// Small-file packing / chunk-granularity staging (ISSUE 9). When
  /// `pack.enabled`, dataset files are staged, evicted and served chunk
  /// by chunk through `ScheduleChunkPlacement` instead of whole-file
  /// `SchedulePlacement`; `pack.chunk_bytes` is clamped to the staging
  /// chunk size so a logical chunk always fits one pooled buffer.
  pack::PackOptions pack;
};

struct PlacementStats {
  std::uint64_t scheduled = 0;     ///< placement tasks enqueued (both lanes)
  std::uint64_t completed = 0;     ///< files now served from upper tiers
  std::uint64_t rejected_no_space = 0;
  std::uint64_t failed = 0;        ///< backend errors during staging
  std::uint64_t bytes_staged = 0;
  std::uint64_t evictions = 0;       ///< placed copies dropped for space
  std::uint64_t evicted_bytes = 0;   ///< bytes those copies occupied
  /// Evictions the policy refused (no eligible victim) or that freed no
  /// usable room — the incoming file stayed rejected.
  std::uint64_t eviction_refused = 0;
  /// Victim claims reverted because a demand read held the file pinned.
  std::uint64_t eviction_pinned_skips = 0;
  std::uint64_t retries = 0;       ///< failed stagings left retryable
  std::uint64_t quarantined = 0;   ///< copies deleted on CRC mismatch
  std::uint64_t abandoned = 0;     ///< files past max_placement_attempts

  // Pipelined-staging telemetry (docs/OBSERVABILITY.md §1).
  std::uint64_t prefetch_scheduled = 0;  ///< hint-lane tasks enqueued
  std::uint64_t prefetch_completed = 0;  ///< hint-lane copies published
  std::uint64_t prefetch_promoted = 0;   ///< hints overtaken by demand reads
  std::uint64_t prefetch_cancelled = 0;  ///< hints dropped before staging
  std::uint64_t chunks_copied = 0;       ///< chunk writes across all copies
  std::uint64_t donated_bytes = 0;       ///< triggering-read bytes reused
  std::uint64_t queue_depth_demand = 0;  ///< gauge: demand tasks waiting
  std::uint64_t queue_depth_prefetch = 0; ///< gauge: prefetch waiting+parked
  std::uint64_t inflight_bytes = 0;      ///< gauge: bytes being copied now
  /// Per-hierarchy-level breakdown of `inflight_bytes` (monarchctl
  /// stage-status; the in-flight cap is enforced per tier).
  std::vector<std::uint64_t> inflight_bytes_per_level;
  std::uint64_t buffer_pool_used_bytes = 0;      ///< gauge
  std::uint64_t buffer_pool_capacity_bytes = 0;  ///< gauge

  // Chunk-granularity staging (ISSUE 9; zero when pack mode is off).
  std::uint64_t chunks_staged = 0;        ///< chunk copies published
  std::uint64_t chunk_stored_bytes = 0;   ///< post-codec bytes written
  std::uint64_t chunks_evicted = 0;       ///< chunk copies dropped
  std::uint64_t chunk_failures = 0;       ///< chunk copies that failed

  // Multi-tenant QoS (ISSUE 10; docs/OBSERVABILITY.md §1).
  std::uint64_t queue_depth_interactive = 0;  ///< gauge: class depth
  std::uint64_t queue_depth_training = 0;     ///< gauge: class depth
  std::uint64_t queue_depth_scan = 0;         ///< gauge: class depth
  std::uint64_t queue_depth_drain = 0;        ///< gauge: class depth
  /// Evictions where a low-retention requester dropped a non-low-
  /// retention copy. Zero by construction: the victim walk skips them.
  std::uint64_t cross_class_evictions = 0;
  /// Scan stagings refused by `qos.scan_stage_cap_bytes` (the read was
  /// served straight from the PFS instead of churning the cache).
  std::uint64_t scan_stage_refusals = 0;
  /// Gauge: resident bytes currently held by low-retention copies.
  std::uint64_t low_retention_resident_bytes = 0;
};

class PlacementHandler {
 public:
  /// `peer_view`, when set, is notified of every publish/drop of a
  /// placed copy so the cluster's FileDirectory tracks what this node
  /// can serve to peers (ISSUE 4).
  PlacementHandler(StorageHierarchy& hierarchy, MetadataContainer& metadata,
                   PlacementPolicyPtr policy, PlacementOptions options,
                   ResilienceOptions resilience = {},
                   PeerViewPtr peer_view = nullptr);
  ~PlacementHandler();

  PlacementHandler(const PlacementHandler&) = delete;
  PlacementHandler& operator=(const PlacementHandler&) = delete;

  /// Called after `file` was claimed (TryBeginFetch). `content`: bytes
  /// the triggering read already pulled — the full file, or a leading
  /// prefix that the chunk pipeline extends with PFS reads (donated
  /// bytes are never re-read). Never blocks the caller.
  void SchedulePlacement(FileInfoPtr file,
                         std::optional<std::vector<std::byte>> content,
                         StagingLane lane = StagingLane::kDemand);

  /// Chunk-granularity staging (pack mode). `chunks` are chunk indexes
  /// the caller already claimed via ChunkMap::TryClaim; the handler
  /// stages each one — PFS read at the chunk's offset, optional codec
  /// encode, CRC on both sides — through the same two-lane pipeline and
  /// releases every claim (publish or back-out). Never blocks.
  void ScheduleChunkPlacement(FileInfoPtr file,
                              std::vector<std::uint32_t> chunks,
                              StagingLane lane = StagingLane::kDemand);

  /// A demand read overtook a queued (or parked) prefetch of `file`:
  /// move the task to the demand lane so it stops waiting behind other
  /// speculative work. Returns false when no queued prefetch matched
  /// (the copy may already be running or done).
  bool PromoteToDemand(const FileInfoPtr& file);

  /// Drop every queued/parked prefetch task and return the files to the
  /// retryable PFS-only state. Used at StopPlacement/shutdown; returns
  /// the number of cancelled hints.
  std::size_t CancelPrefetches();

  /// Remove `file`'s tier copy because its bytes failed verification:
  /// claim it (kPlaced -> kFetching), delete the copy, release the
  /// quota, and reset the file to PFS-resident (or unplaceable once past
  /// the failure cap). Returns false when another thread already holds
  /// the file in a non-kPlaced state. Thread-safe.
  bool QuarantineCopy(const FileInfoPtr& file);

  /// Drop every resident chunk copy of `file` (pack mode): delete the
  /// chunk objects, release their quota, and reset the file to
  /// PFS-resident once nothing remains. Honours read pins. Returns the
  /// stored bytes freed (Monarch::CleanupStagedCopies, tests).
  std::uint64_t EvictChunkCopies(const FileInfoPtr& file) {
    return EvictChunks(file, std::numeric_limits<std::uint64_t>::max());
  }

  /// Forward the whole-run demand access sequence to the policy
  /// (Monarch::InstallRunSchedule; the clairvoyant policy consumes it).
  void InstallSchedule(const std::vector<std::string>& sequence);

  /// Forward one demand access to the policy (offset-0 reads only — the
  /// policy sees file visits, not chunks).
  void NoteAccess(const FileInfo& file);

  [[nodiscard]] const PlacementPolicy& policy() const noexcept {
    return *policy_;
  }

  /// Stop scheduling new placements (e.g. the integration layer signals
  /// the end of epoch 1 when tiers filled); in-flight tasks finish.
  void StopScheduling() noexcept { stopped_.store(true); }
  [[nodiscard]] bool stopped() const noexcept { return stopped_.load(); }

  /// Block until every scheduled placement finished (tests, shutdown).
  void Drain();

  [[nodiscard]] PlacementStats Stats() const;

  [[nodiscard]] const PlacementOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const ResilienceOptions& resilience() const noexcept {
    return resilience_;
  }
  [[nodiscard]] const BufferPool& buffer_pool() const noexcept {
    return pool_;
  }

  /// The resolved chunk codec (nullptr = identity / "none"). The read
  /// path decodes with exactly this codec so both sides always agree.
  [[nodiscard]] const pack::Codec* pack_codec() const noexcept {
    return codec_;
  }

 private:
  struct StagingTask {
    FileInfoPtr file;
    std::optional<std::vector<std::byte>> content;
    StagingLane lane = StagingLane::kDemand;
    /// Claimed chunk indexes (pack mode); empty = whole-file task.
    std::vector<std::uint32_t> chunks;
    /// Who this staging serves, captured from the scheduling thread's
    /// ambient tenant and re-installed on the worker (ISSUE 10).
    qos::TenantContext tenant;
  };

  /// Fair-queue class the task is served on: the prefetch lane always
  /// rides the prefetch class; demand tasks use their tenant's I/O
  /// class (interactive/training in band 0, scan in band 1).
  [[nodiscard]] static int TaskClass(const StagingTask& task) noexcept;
  /// Service cost of the task in bytes (fair-queue finish-tag units).
  [[nodiscard]] double TaskCost(const StagingTask& task) const noexcept;
  /// Enqueue on the fair queue. Caller holds mu_.
  void PushLocked(StagingTask task);
  /// Low-retention bookkeeping when a staged copy disappears (eviction,
  /// quarantine): clears the file's marking and returns the resident
  /// gauge's share.
  void NoteCopyDropped(FileInfo& file) noexcept;

  void WorkerLoop();
  /// Stage one file. Returns normally whether the copy succeeded,
  /// failed, or was parked on the in-flight cap.
  void PlaceFile(StagingTask task);
  /// Chunk loop: write the donated `prefix` (if any), then stream the
  /// rest of the file from the PFS through one pooled buffer.
  /// `crc` accumulates over every byte in file order.
  Status StreamCopy(const FileInfoPtr& file,
                    const std::optional<std::vector<std::byte>>& prefix,
                    StorageDriver& destination, std::uint32_t& crc);
  /// Chunked read-back verification against `crc` (bounded memory).
  bool VerifyStagedCopy(const FileInfoPtr& file, StorageDriver& destination,
                        std::uint32_t crc);
  /// Count one failed staging attempt and either leave the file
  /// retryable (a later access re-claims it) or mark it unplaceable once
  /// the per-file cap is hit.
  void RecordStagingFailure(const FileInfoPtr& file);
  /// Policy-driven eviction: walk the policy's victim ranking, dropping
  /// placed copies until PickLevel succeeds for `bytes` (the whole file,
  /// or one stored chunk in pack mode). Returns the reserved level, or
  /// nullopt when the lane may not evict, the policy offered no victims,
  /// or the freed space still was not enough.
  std::optional<int> EvictAndReserve(const FileInfoPtr& file,
                                     StagingLane lane, std::uint64_t bytes);
  /// Drop one placed copy: claim it (kPlaced -> kFetching), honour read
  /// pins, delete the bytes, release the quota, notify the peer view.
  /// Returns false when the claim failed or the file was pinned. A
  /// chunk-resident victim drops all of its chunks via EvictChunks.
  bool EvictOne(const FileInfoPtr& victim);

  /// Stage the claimed chunks of one task (pack mode).
  void PlaceChunks(StagingTask task);
  /// Ensure `file`'s chunk map has a tier and that tier has room for
  /// `stored_bytes` (reserving them). Evicts per the lane's rules when
  /// the assigned tier is full. Returns the level, or nullopt when no
  /// space could be made.
  std::optional<int> ReserveChunk(const FileInfoPtr& file,
                                  pack::ChunkMap& cm,
                                  std::uint64_t stored_bytes,
                                  StagingLane lane);
  /// Drop resident chunks of `victim` until at least `needed_bytes` of
  /// stored bytes were freed (or the file ran dry). Returns bytes freed.
  std::uint64_t EvictChunks(const FileInfoPtr& victim,
                            std::uint64_t needed_bytes);
  /// Policy-ranked eviction restricted to victims resident on `level`
  /// until Reserve(stored_bytes) succeeds there. Returns success.
  bool EvictForChunkOn(int level, const FileInfoPtr& incoming,
                       std::uint64_t stored_bytes, StagingLane lane);
  /// Back out of a chunk task without staging: release every claim and,
  /// if the file ended up with no resident chunks, reset its state.
  void ReleaseChunkClaims(const StagingTask& task);

  /// Take the in-flight accounting for `task`'s copy to `level`. For the
  /// prefetch lane, parks the task (moving from it) and returns false
  /// when the tier is already past the cap (progress guaranteed: parking
  /// requires another copy in flight on that tier).
  bool AdmitInflight(int level, StagingTask& task);
  void FinishInflight(int level, std::uint64_t size);

  StorageHierarchy& hierarchy_;
  MetadataContainer& metadata_;
  PlacementPolicyPtr policy_;
  PlacementOptions options_;
  ResilienceOptions resilience_;
  PeerViewPtr peer_view_;
  BufferPool pool_;

  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> scheduled_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_no_space_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> bytes_staged_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> evicted_bytes_{0};
  std::atomic<std::uint64_t> eviction_refused_{0};
  std::atomic<std::uint64_t> eviction_pinned_skips_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> abandoned_{0};
  std::atomic<std::uint64_t> prefetch_scheduled_{0};
  std::atomic<std::uint64_t> prefetch_completed_{0};
  std::atomic<std::uint64_t> prefetch_promoted_{0};
  std::atomic<std::uint64_t> prefetch_cancelled_{0};
  std::atomic<std::uint64_t> chunks_copied_{0};
  std::atomic<std::uint64_t> donated_bytes_{0};
  std::atomic<std::uint64_t> chunks_staged_{0};
  std::atomic<std::uint64_t> chunk_stored_bytes_{0};
  std::atomic<std::uint64_t> chunks_evicted_{0};
  std::atomic<std::uint64_t> chunk_failures_{0};
  std::atomic<std::uint64_t> cross_class_evictions_{0};
  std::atomic<std::uint64_t> scan_stage_refusals_{0};
  std::atomic<std::uint64_t> low_retention_resident_bytes_{0};

  /// Codec for chunk staging, resolved once from options_.pack.codec
  /// (falls back to the identity codec on an unknown name).
  const pack::Codec* codec_ = nullptr;

  /// Process-wide eviction counters (docs/OBSERVABILITY.md §1), owned
  /// like `storage.retries`: resolved once at construction so eviction
  /// activity reports through the registry like every other placement
  /// stat (the per-instance counts stay in Stats()).
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* evicted_bytes_counter_ = nullptr;
  obs::Counter* eviction_refused_counter_ = nullptr;
  obs::Counter* chunk_staged_counter_ = nullptr;
  obs::Counter* chunk_stored_bytes_counter_ = nullptr;
  obs::Counter* chunk_evicted_counter_ = nullptr;
  obs::Counter* cross_class_counter_ = nullptr;   ///< qos.cross_class_evictions
  obs::Counter* scan_refusal_counter_ = nullptr;  ///< qos.scan_stage_refusals

  // Per-class fair work queue (ISSUE 10; the original two lanes are the
  // degenerate case: every demand task on the training class, prefetch
  // on the prefetch class). `deferred_` holds prefetch tasks parked by
  // the per-tier in-flight cap; any copy completion splices them back
  // into the queue (under mu_, so no wakeup is lost).
  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< workers wait here
  std::condition_variable drain_cv_;  ///< Drain() waits here
  qos::FairQueue<StagingTask> queue_;
  std::vector<StagingTask> deferred_;
  std::vector<std::uint64_t> inflight_bytes_;  ///< per level, under mu_
  int active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace monarch::core
