// Placement policies: which writable level receives a fetched file, and
// — since ISSUE 6 — which placed files yield their space when a tier is
// full.
//
// The paper's policy (§III-A) is hierarchical first-fit: fill level 0
// until its capacity is reached, then level 1, ... until all local levels
// are full; never evict. That collapses on partial-fit datasets (fig4),
// so the interface now carries an eviction side too:
//
//   PickLevel        stage-in decision (reserves quota; race-free)
//   SelectVictims    evict-out decision: placed files to drop, best first
//   OnAccess         one demand access of a file (policy bookkeeping)
//   OnSchedule       the whole run's access sequence, when known
//
// Shipped policies (docs/PLACEMENT.md is the handbook):
//   first-fit    the paper's: fastest-tier-first, never evicts on its own
//   round-robin  ablation: spread across writable tiers
//   lru          first-fit staging + least-recently-accessed eviction
//   hotspot      first-fit staging + dm-cache-style decayed-frequency
//                eviction (cold files go first)
//   clairvoyant  first-fit staging + Belady eviction over the whole-run
//                shuffle schedule (farthest-next-access goes first); the
//                only policy whose *prefetch* lane may evict, because its
//                speculative copies are certain future reads
//
// PickLevel both selects a level and reserves the quota on it (the
// reservation is the only way the decision can be made race-free under a
// concurrent thread pool); the caller must Release on failure. The
// eviction hooks are called by the PlacementHandler, which owns the
// claim/delete/notify mechanics — a policy only ranks candidates.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metadata_container.h"
#include "core/storage_hierarchy.h"
#include "util/status.h"

namespace monarch::core {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Choose a writable level with room for `bytes` and reserve the quota.
  /// nullopt when no level can hold the file.
  virtual std::optional<int> PickLevel(StorageHierarchy& hierarchy,
                                       std::uint64_t bytes) = 0;

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Whether the DEMAND lane may evict placed files when PickLevel finds
  /// no room. The paper's policies answer no (never evict); the ISSUE 6
  /// policies answer yes.
  [[nodiscard]] virtual bool EvictsUnderPressure() const { return false; }

  /// Whether the PREFETCH lane may evict too. Only clairvoyant: its
  /// speculative copies are certain future reads, so trading a far-future
  /// file for a near-future one is a guaranteed win, not a gamble.
  [[nodiscard]] virtual bool PrefetchMayEvict() const { return false; }

  /// The whole run's demand access sequence (every epoch's shuffled file
  /// order, concatenated), when the integration layer can compute it in
  /// advance. Replaces any previous schedule. Default: ignored.
  virtual void OnSchedule(const std::vector<std::string>& /*sequence*/) {}

  /// One demand access of `file` (the read path calls this once per file
  /// visit, not per chunk). Default: ignored — FileInfo::last_access is
  /// maintained by the read path regardless.
  virtual void OnAccess(const FileInfo& /*file*/) {}

  /// Rank placed files as eviction candidates to make room for
  /// `incoming`, best victim first. `incoming_active` says a demand read
  /// of `incoming` is in flight right now (placing it also serves that
  /// read's remaining chunks — its effective next access is *now*);
  /// false means a speculative prefetch. May return files the caller
  /// cannot claim (lost races, pinned reads) — the caller walks the list
  /// until enough space is free. An empty list refuses the eviction. The
  /// default is LRU order, so any policy combined with the
  /// `enable_eviction` ablation keeps the pre-ISSUE-6 behaviour.
  virtual std::vector<FileInfoPtr> SelectVictims(
      const MetadataContainer& metadata, const FileInfo& incoming,
      bool incoming_active);
};

using PlacementPolicyPtr = std::unique_ptr<PlacementPolicy>;

/// The paper's policy: descend from level 0, take the first tier that has
/// room.
class FirstFitPolicy : public PlacementPolicy {
 public:
  std::optional<int> PickLevel(StorageHierarchy& hierarchy,
                               std::uint64_t bytes) override;
  [[nodiscard]] std::string Name() const override { return "first-fit"; }
};

/// Ablation: spread files across writable tiers round-robin instead of
/// filling the fastest first (shows why ordering by performance matters).
class RoundRobinPolicy final : public PlacementPolicy {
 public:
  std::optional<int> PickLevel(StorageHierarchy& hierarchy,
                               std::uint64_t bytes) override;
  [[nodiscard]] std::string Name() const override { return "round-robin"; }

 private:
  std::atomic<std::uint64_t> next_{0};
};

/// First-fit staging plus least-recently-accessed eviction: the
/// schedule-free baseline. Under uniform-random per-epoch access LRU
/// approximates FIFO and churns (the paper's "I/O trashing" argument),
/// which is exactly what the fig4 policy sweep quantifies.
class LruPolicy final : public FirstFitPolicy {
 public:
  [[nodiscard]] std::string Name() const override { return "lru"; }
  [[nodiscard]] bool EvictsUnderPressure() const override { return true; }
  // SelectVictims: the base-class LRU ranking.
};

/// First-fit staging plus dm-cache-style hot-spot eviction: per-file
/// access counts, halved every `decay_interval` accesses so stale heat
/// drains away; the coldest (lowest count, oldest access) files go first.
class HotspotPolicy final : public FirstFitPolicy {
 public:
  explicit HotspotPolicy(std::uint64_t decay_interval = 256);

  [[nodiscard]] std::string Name() const override { return "hotspot"; }
  [[nodiscard]] bool EvictsUnderPressure() const override { return true; }
  void OnAccess(const FileInfo& file) override;
  std::vector<FileInfoPtr> SelectVictims(const MetadataContainer& metadata,
                                         const FileInfo& incoming,
                                         bool incoming_active) override;

  /// Current decayed access count of `name` (tests).
  [[nodiscard]] std::uint64_t FrequencyOf(const std::string& name) const;

 private:
  const std::uint64_t decay_interval_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint64_t> frequency_;  ///< under mu_
  std::uint64_t accesses_since_decay_ = 0;                    ///< under mu_
};

/// Belady's algorithm over the known whole-run schedule (NoPFS-style):
/// every epoch's shuffle order derives from a seeded RNG, so the full
/// access sequence is computable before the run starts. OnSchedule
/// installs it; OnAccess advances a virtual clock through it; victims are
/// the placed files whose next access is farthest in the future — and
/// never a file needed within `protect_window` upcoming accesses, nor one
/// needed sooner than the incoming file itself. Without a schedule the
/// policy degrades to LRU (the base-class ranking).
class ClairvoyantPolicy final : public FirstFitPolicy {
 public:
  explicit ClairvoyantPolicy(std::uint64_t protect_window = 64);

  [[nodiscard]] std::string Name() const override { return "clairvoyant"; }
  [[nodiscard]] bool EvictsUnderPressure() const override { return true; }
  [[nodiscard]] bool PrefetchMayEvict() const override { return true; }
  void OnSchedule(const std::vector<std::string>& sequence) override;
  void OnAccess(const FileInfo& file) override;
  std::vector<FileInfoPtr> SelectVictims(const MetadataContainer& metadata,
                                         const FileInfo& incoming,
                                         bool incoming_active) override;

  /// Schedule position of `name`'s next unconsumed access, or nullopt
  /// when the schedule never (again) names it (tests/monarchctl).
  [[nodiscard]] std::optional<std::uint64_t> NextAccessOf(
      const std::string& name) const;
  /// Current virtual clock: schedule positions < this are consumed.
  [[nodiscard]] std::uint64_t ScheduleClock() const;

 private:
  /// Next unconsumed position of `name`, `kNever` when none. Drops
  /// positions already behind the clock. Caller holds mu_.
  std::uint64_t NextAccessLocked(const std::string& name) const;

  static constexpr std::uint64_t kNever = ~0ull;

  const std::uint64_t protect_window_;
  mutable std::mutex mu_;
  /// Per-file queue of schedule positions, ascending; fronts already
  /// behind `clock_` are lazily dropped. Under mu_.
  mutable std::unordered_map<std::string, std::deque<std::uint64_t>>
      positions_;
  /// Last consumed schedule position per file: files within
  /// `protect_window_` behind the clock are still mid-visit (chunked
  /// readers) and never evicted. Under mu_.
  std::unordered_map<std::string, std::uint64_t> last_consumed_;
  std::uint64_t clock_ = 0;        ///< under mu_
  bool schedule_installed_ = false;  ///< under mu_
};

PlacementPolicyPtr MakeFirstFitPolicy();
PlacementPolicyPtr MakeRoundRobinPolicy();
PlacementPolicyPtr MakeLruPolicy();
PlacementPolicyPtr MakeHotspotPolicy(std::uint64_t decay_interval = 256);
PlacementPolicyPtr MakeClairvoyantPolicy(std::uint64_t protect_window = 64);

/// Per-policy tuning knobs (`[placement]` INI section; docs/CONFIG.md).
struct PlacementPolicyKnobs {
  std::uint64_t hotspot_decay_interval = 256;
  std::uint64_t clairvoyant_protect_window = 64;
};

/// Construct a policy from its config name: first-fit | round-robin |
/// lru | hotspot | clairvoyant. Unknown names are errors (config typos
/// fail before a multi-hour job starts).
Result<PlacementPolicyPtr> MakePlacementPolicyByName(
    const std::string& name, const PlacementPolicyKnobs& knobs = {});

}  // namespace monarch::core
