// Placement policies: which writable level receives a fetched file.
//
// The paper's policy (§III-A) is hierarchical first-fit: fill level 0
// until its capacity is reached, then level 1, ... until all local levels
// are full; never evict. RoundRobin and the eviction variant exist for
// the ablation benches that measure *why* the paper's choice wins.
//
// PickLevel both selects a level and reserves the quota on it (the
// reservation is the only way the decision can be made race-free under a
// concurrent thread pool); the caller must Release on failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/storage_hierarchy.h"

namespace monarch::core {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Choose a writable level with room for `bytes` and reserve the quota.
  /// nullopt when no level can hold the file.
  virtual std::optional<int> PickLevel(StorageHierarchy& hierarchy,
                                       std::uint64_t bytes) = 0;

  [[nodiscard]] virtual std::string Name() const = 0;
};

using PlacementPolicyPtr = std::unique_ptr<PlacementPolicy>;

/// The paper's policy: descend from level 0, take the first tier that has
/// room.
class FirstFitPolicy final : public PlacementPolicy {
 public:
  std::optional<int> PickLevel(StorageHierarchy& hierarchy,
                               std::uint64_t bytes) override;
  [[nodiscard]] std::string Name() const override { return "first-fit"; }
};

/// Ablation: spread files across writable tiers round-robin instead of
/// filling the fastest first (shows why ordering by performance matters).
class RoundRobinPolicy final : public PlacementPolicy {
 public:
  std::optional<int> PickLevel(StorageHierarchy& hierarchy,
                               std::uint64_t bytes) override;
  [[nodiscard]] std::string Name() const override { return "round-robin"; }

 private:
  std::atomic<std::uint64_t> next_{0};
};

PlacementPolicyPtr MakeFirstFitPolicy();
PlacementPolicyPtr MakeRoundRobinPolicy();

}  // namespace monarch::core
