// StorageDriver: one level of the storage hierarchy (§III-A). Wraps a
// storage engine with the tier's governing properties — mount path
// semantics come from the engine; the driver adds the storage quota,
// race-free occupancy accounting, and the tier's fault-tolerance
// envelope: transient (kUnavailable) engine errors are retried with
// bounded backoff (core/resilience.h) and every outcome feeds the tier's
// circuit breaker (core/tier_health.h) so the read path can route around
// a persistently failing tier.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "core/resilience.h"
#include "core/tier_health.h"
#include "obs/metrics_registry.h"
#include "qos/bandwidth_broker.h"
#include "qos/tenant.h"
#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::core {

class StorageDriver {
 public:
  /// `quota_bytes == 0` means unlimited (used for the PFS level, which is
  /// a read-only data source and never receives placements).
  /// `retry`/`health` default to the stock policies of
  /// core/resilience.h; pass MonarchConfig::resilience-derived values to
  /// tune them per deployment.
  StorageDriver(std::string name, storage::StorageEnginePtr engine,
                std::uint64_t quota_bytes, bool read_only,
                RetryPolicy retry = {}, TierHealthOptions health = {});

  /// Atomically reserve `bytes` of quota. Fails (false) when the tier
  /// would overflow — the caller then tries the next level down.
  [[nodiscard]] bool Reserve(std::uint64_t bytes) noexcept;

  /// Return reserved quota (placement failed or file evicted).
  void Release(std::uint64_t bytes) noexcept;

  /// Read through the engine, retrying transient failures per the retry
  /// policy. Every attempt's outcome feeds the tier health tracker;
  /// kNotFound (a legitimate miss or an eviction race) does not.
  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst);

  /// Zero-copy read with the same retry/health envelope as Read: the
  /// engine lends (or copies, if it can't lend) up to `max_bytes` from
  /// `offset` as an immutable ReadView. `allow_zero_copy == false`
  /// forces the base copying fallback even on lending engines — the A/B
  /// lever the read-hotpath bench uses to isolate the memcpy cost.
  Result<storage::ReadView> ReadZeroCopy(std::string_view path,
                                         std::uint64_t offset,
                                         std::uint64_t max_bytes,
                                         bool allow_zero_copy = true);

  /// Write a staged copy, with the same retry/health envelope as Read.
  /// The caller must hold a successful Reserve for data.size() — the
  /// driver checks read_only but trusts the accounting.
  Status Write(const std::string& path, std::span<const std::byte> data);

  /// Chunked-staging variant of Write: land `data` at byte `offset` of
  /// `path` (same retry/health envelope). The caller must hold a Reserve
  /// covering the file's full size before the first chunk.
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data);

  Status Delete(const std::string& path);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool read_only() const noexcept { return read_only_; }
  [[nodiscard]] std::uint64_t quota_bytes() const noexcept { return quota_; }
  [[nodiscard]] std::uint64_t occupancy_bytes() const noexcept {
    return occupancy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept;

  [[nodiscard]] TierHealth& health() noexcept { return health_; }
  [[nodiscard]] const TierHealth& health() const noexcept { return health_; }

  /// Ops retried by this driver (transient errors absorbed before the
  /// caller saw them); also accumulated into the process-wide
  /// `storage.retries` counter.
  [[nodiscard]] std::uint64_t retries() const noexcept {
    return retries_local_.load(std::memory_order_relaxed);
  }

  /// Install the per-tenant bandwidth broker (ISSUE 10). Every
  /// Read/Write on this driver then charges its bytes to the calling
  /// thread's ambient tenant (qos::CurrentTenant()), falling back to
  /// `default_tenant`, BEFORE the engine op — the token-bucket wait is
  /// the enforcement. Call before the driver is shared across threads.
  void SetQosBroker(qos::BandwidthBrokerPtr broker,
                    qos::TenantContext default_tenant) {
    qos_broker_ = std::move(broker);
    default_tenant_ = std::move(default_tenant);
  }

  [[nodiscard]] storage::StorageEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] storage::IoStatsSnapshot StatsSnapshot() const {
    return engine_->Stats().Snapshot();
  }

 private:
  /// Note one absorbed retry (per-driver count + process-wide counter).
  void CountRetry() noexcept;

  /// Charge `bytes` to the ambient tenant through the broker (no-op
  /// while no broker is installed or enforcement is off).
  void ChargeQos(std::uint64_t bytes) {
    if (qos_broker_ != nullptr && qos_broker_->enabled() && bytes > 0) {
      qos_broker_->AcquireCurrent(default_tenant_, bytes);
    }
  }

  std::string name_;
  storage::StorageEnginePtr engine_;
  std::uint64_t quota_;
  bool read_only_;
  std::atomic<std::uint64_t> occupancy_{0};

  RetryPolicy retry_;
  TierHealth health_;
  std::atomic<std::uint64_t> retries_local_{0};
  obs::Counter* retries_ = nullptr;  ///< `storage.retries`

  qos::BandwidthBrokerPtr qos_broker_;  ///< null = no enforcement
  qos::TenantContext default_tenant_;
};

using StorageDriverPtr = std::unique_ptr<StorageDriver>;

}  // namespace monarch::core
