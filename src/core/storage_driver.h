// StorageDriver: one level of the storage hierarchy (§III-A). Wraps a
// storage engine with the tier's governing properties — mount path
// semantics come from the engine; the driver adds the storage quota and
// its race-free occupancy accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::core {

class StorageDriver {
 public:
  /// `quota_bytes == 0` means unlimited (used for the PFS level, which is
  /// a read-only data source and never receives placements).
  StorageDriver(std::string name, storage::StorageEnginePtr engine,
                std::uint64_t quota_bytes, bool read_only);

  /// Atomically reserve `bytes` of quota. Fails (false) when the tier
  /// would overflow — the caller then tries the next level down.
  [[nodiscard]] bool Reserve(std::uint64_t bytes) noexcept;

  /// Return reserved quota (placement failed or file evicted).
  void Release(std::uint64_t bytes) noexcept;

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) {
    return engine_->Read(path, offset, dst);
  }

  /// Write a staged copy. The caller must hold a successful Reserve for
  /// data.size() — the driver checks read_only but trusts the accounting.
  Status Write(const std::string& path, std::span<const std::byte> data);

  Status Delete(const std::string& path);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool read_only() const noexcept { return read_only_; }
  [[nodiscard]] std::uint64_t quota_bytes() const noexcept { return quota_; }
  [[nodiscard]] std::uint64_t occupancy_bytes() const noexcept {
    return occupancy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept;

  [[nodiscard]] storage::StorageEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] storage::IoStatsSnapshot StatsSnapshot() const {
    return engine_->Stats().Snapshot();
  }

 private:
  std::string name_;
  storage::StorageEnginePtr engine_;
  std::uint64_t quota_;
  bool read_only_;
  std::atomic<std::uint64_t> occupancy_{0};
};

using StorageDriverPtr = std::unique_ptr<StorageDriver>;

}  // namespace monarch::core
