#include "qos/tenant.h"

namespace monarch::qos {

namespace {
thread_local const TenantContext* g_current_tenant = nullptr;
}  // namespace

const char* IoClassName(IoClass io_class) noexcept {
  switch (io_class) {
    case IoClass::kInteractive:
      return "interactive";
    case IoClass::kTraining:
      return "training";
    case IoClass::kScan:
      return "scan";
    case IoClass::kDrain:
      return "drain";
    case IoClass::kPrefetch:
      return "prefetch";
  }
  return "unknown";
}

const TenantContext* CurrentTenant() noexcept { return g_current_tenant; }

ScopedTenant::ScopedTenant(const TenantContext& tenant) noexcept
    : previous_(g_current_tenant) {
  g_current_tenant = &tenant;
}

ScopedTenant::~ScopedTenant() { g_current_tenant = previous_; }

}  // namespace monarch::qos
