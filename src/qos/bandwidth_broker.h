// BandwidthBroker: per-tenant token-bucket bandwidth shares with
// work-conserving borrowing (ISSUE 10).
//
// One broker guards one contended resource — the shared PFS device, a
// cache tier, the interconnect. Each registered tenant gets its own
// token bucket (util/rate_limiter.h) whose rate is its weighted share
// of the broker's total:
//
//   rate_i = total * w_i / sum(w_j for j active within ~100ms)
//
// Work-conserving: the denominator covers only tenants that charged the
// broker recently, so an idle tenant's share flows to the active ones —
// a lone scan job saturates the device, and the instant the interactive
// tenant wakes up the shares snap back to the weighted split. With
// work_conserving off, the denominator is all registered tenants
// (strict reservation).
//
// Charging is attributable via qos::CurrentTenant() at the call sites
// (StorageDriver, NetworkModel, the checkpoint drain lane); the broker
// itself just takes a tenant id. Unknown tenants are auto-registered
// with the default weight so attribution gaps throttle fairly instead
// of bypassing enforcement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "qos/tenant.h"
#include "util/clock.h"
#include "util/rate_limiter.h"

namespace monarch::qos {

class BandwidthBroker {
 public:
  struct Options {
    /// Aggregate rate apportioned across tenants (bytes/s for storage
    /// brokers). 0 = enforcement disabled (all charges are free).
    double total_rate_bps = 0.0;
    bool work_conserving = true;
    /// A tenant counts as active while it charged within this window.
    Duration active_window = Millis(100);
    /// Default weight of tenants the broker discovers via charges.
    double default_weight = 1.0;
  };

  explicit BandwidthBroker(Options options);

  BandwidthBroker(const BandwidthBroker&) = delete;
  BandwidthBroker& operator=(const BandwidthBroker&) = delete;

  /// Declare a tenant and its share weight (idempotent by id; the
  /// latest context wins).
  void RegisterTenant(const TenantContext& tenant);

  /// Account `bytes` to `tenant_id` and return how long the caller must
  /// wait for its share (may run the bucket into debt; zero when the
  /// broker is disabled).
  [[nodiscard]] Duration Reserve(int tenant_id, std::uint64_t bytes);

  /// Reserve + sleep, recording throttle metrics and — when tracing is
  /// enabled and the wait was nonzero — a `qos.throttle` instant.
  void Acquire(int tenant_id, std::uint64_t bytes);

  /// Acquire attributed to the calling thread's ambient tenant, falling
  /// back to `fallback` when none is installed.
  void AcquireCurrent(const TenantContext& fallback, std::uint64_t bytes);

  [[nodiscard]] bool enabled() const noexcept {
    return options_.total_rate_bps > 0.0;
  }

  /// Per-tenant accounting snapshot (monarchctl qos-status, benches).
  struct TenantUsage {
    int tenant_id = 0;
    std::string name;
    IoClass io_class = IoClass::kTraining;
    double weight = 1.0;
    double share_bps = 0.0;          ///< current effective rate
    std::uint64_t consumed_bytes = 0;
    std::uint64_t throttle_waits = 0;
    std::uint64_t throttled_us = 0;
  };
  [[nodiscard]] std::vector<TenantUsage> Usage() const;

 private:
  struct Tenant {
    TenantContext ctx;
    std::unique_ptr<RateLimiter> limiter;  ///< null while disabled
    TimePoint last_active{};
    double share_bps = 0.0;
    std::uint64_t consumed_bytes = 0;
    std::uint64_t throttle_waits = 0;
    std::uint64_t throttled_us = 0;
  };

  /// Recompute every tenant's effective rate from the active set.
  /// Caller holds mu_.
  void RecomputeSharesLocked(TimePoint now);
  Tenant& GetTenantLocked(int tenant_id);

  Options options_;
  mutable std::mutex mu_;
  std::map<int, Tenant> tenants_;

  // Process-wide `qos.*` totals (docs/OBSERVABILITY.md §1).
  obs::Counter* consumed_ = nullptr;        ///< qos.consumed_bytes
  obs::Counter* throttle_waits_ = nullptr;  ///< qos.throttle_waits
  obs::Counter* throttled_us_ = nullptr;    ///< qos.throttled_us

  // Labeled per-tenant samples (`qos.tenant.*`, label = tenant name).
  // Last member: deregisters before tenants_ dies.
  obs::SourceRegistration source_;
};

using BandwidthBrokerPtr = std::shared_ptr<BandwidthBroker>;

}  // namespace monarch::qos
