#include "qos/admission.h"

#include <algorithm>
#include <string>

#include "obs/event_tracer.h"
#include "obs/json.h"

namespace monarch::qos {

const char* AdmissionDecisionName(AdmissionDecision decision) noexcept {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kQueue:
      return "queue";
    case AdmissionDecision::kReject:
      return "reject";
  }
  return "unknown";
}

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  admitted_counter_ = registry.GetCounter(
      "qos.admitted", "ops", "jobs admitted by the admission controller");
  queued_counter_ = registry.GetCounter(
      "qos.queued", "ops",
      "admission requests that had to queue behind committed footprints");
  rejected_counter_ = registry.GetCounter(
      "qos.rejected", "ops",
      "jobs rejected because their footprint can never fit");
  committed_gauge_ = registry.GetGauge(
      "qos.committed_bytes", "bytes",
      "placement footprint currently committed by admitted jobs");
}

AdmissionDecision AdmissionController::DecideLocked(
    std::uint64_t footprint_bytes) const {
  if (!enabled()) return AdmissionDecision::kAdmit;
  const double capacity = static_cast<double>(options_.capacity_bytes);
  if (static_cast<double>(footprint_bytes) >
      capacity * options_.reject_threshold) {
    return AdmissionDecision::kReject;
  }
  if (static_cast<double>(committed_bytes_ + footprint_bytes) >
      capacity * options_.queue_threshold) {
    return AdmissionDecision::kQueue;
  }
  return AdmissionDecision::kAdmit;
}

void AdmissionController::RecordDecision(const TenantContext& tenant,
                                         std::uint64_t footprint_bytes,
                                         AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      if (admitted_counter_ != nullptr) admitted_counter_->Increment();
      break;
    case AdmissionDecision::kQueue:
      if (queued_counter_ != nullptr) queued_counter_->Increment();
      break;
    case AdmissionDecision::kReject:
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      break;
  }
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant(
        "qos.admit", "qos",
        "\"tenant\":" + obs::JsonQuote(tenant.name) + ",\"decision\":" +
            obs::JsonQuote(AdmissionDecisionName(decision)) +
            ",\"footprint\":" + std::to_string(footprint_bytes));
  }
}

AdmissionDecision AdmissionController::Request(
    const TenantContext& tenant, std::uint64_t footprint_bytes) {
  AdmissionDecision decision;
  {
    std::lock_guard lock(mu_);
    decision = DecideLocked(footprint_bytes);
    if (decision == AdmissionDecision::kAdmit) {
      committed_[tenant.tenant_id] += footprint_bytes;
      committed_bytes_ += footprint_bytes;
      ++admitted_;
      if (committed_gauge_ != nullptr) {
        committed_gauge_->Set(static_cast<std::int64_t>(committed_bytes_));
      }
    } else if (decision == AdmissionDecision::kQueue) {
      ++queued_;
    } else {
      ++rejected_;
    }
  }
  RecordDecision(tenant, footprint_bytes, decision);
  return decision;
}

bool AdmissionController::AwaitAdmission(const TenantContext& tenant,
                                         std::uint64_t footprint_bytes) {
  bool counted_queued = false;
  std::unique_lock lock(mu_);
  for (;;) {
    if (shutdown_) return false;
    const AdmissionDecision decision = DecideLocked(footprint_bytes);
    if (decision == AdmissionDecision::kAdmit) {
      committed_[tenant.tenant_id] += footprint_bytes;
      committed_bytes_ += footprint_bytes;
      ++admitted_;
      if (committed_gauge_ != nullptr) {
        committed_gauge_->Set(static_cast<std::int64_t>(committed_bytes_));
      }
      lock.unlock();
      RecordDecision(tenant, footprint_bytes, decision);
      return true;
    }
    if (decision == AdmissionDecision::kReject) {
      ++rejected_;
      lock.unlock();
      RecordDecision(tenant, footprint_bytes, decision);
      return false;
    }
    if (!counted_queued) {
      counted_queued = true;
      ++queued_;
      lock.unlock();
      RecordDecision(tenant, footprint_bytes, decision);
      lock.lock();
      continue;  // re-check: state may have moved while unlocked
    }
    cv_.wait(lock);
  }
}

void AdmissionController::Release(int tenant_id) {
  {
    std::lock_guard lock(mu_);
    auto it = committed_.find(tenant_id);
    if (it == committed_.end()) return;
    committed_bytes_ -= std::min(committed_bytes_, it->second);
    committed_.erase(it);
    if (committed_gauge_ != nullptr) {
      committed_gauge_->Set(static_cast<std::int64_t>(committed_bytes_));
    }
  }
  cv_.notify_all();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard lock(mu_);
  Stats stats;
  stats.admitted = admitted_;
  stats.queued = queued_;
  stats.rejected = rejected_;
  stats.committed_bytes = committed_bytes_;
  return stats;
}

}  // namespace monarch::qos
