// TenantContext: who a byte belongs to (ISSUE 10, multi-tenant QoS).
//
// Every I/O the middleware performs is on behalf of some job — a trainer
// staging its working set, an inference service restoring a checkpoint,
// a data-prep pass scanning the whole dataset, the checkpoint drain lane
// pushing bytes to the PFS. The QoS layer needs that attribution on
// every byte, without threading a tenant parameter through every read
// signature in the repo. The mechanism is a thread-local ambient tenant:
//
//   qos::ScopedTenant scope(job_tenant);
//   monarch->Read(...);            // charged to job_tenant
//
// Components that hop threads (the staging pipeline's workers, the read
// ring, the checkpoint drain lane) capture the tenant at submission time
// and re-install it on the executing thread, so attribution survives the
// handoff. When no tenant is installed, components fall back to their
// own default (a StorageDriver's configured tenant, or the process-wide
// training default) — QoS-off code paths never pay for the feature.
#pragma once

#include <string>

namespace monarch::qos {

/// Per-job I/O class, ordered by urgency. Interactive and training are
/// DEMAND classes (band 0 of the fair queue): a human or a GPU is
/// waiting on them. Scan, drain and prefetch are BACKGROUND classes
/// (band 1): throughput work that must never delay demand — this
/// preserves the original two-lane invariant that demand staging always
/// runs before speculative work.
enum class IoClass {
  kInteractive = 0,  ///< inference/model-serving: latency-sensitive
  kTraining = 1,     ///< the classic training job: GPU-bound demand
  kScan = 2,         ///< full-dataset data-prep: throughput, low retention
  kDrain = 3,        ///< checkpoint write-back to the PFS
  kPrefetch = 4,     ///< look-ahead / repair staging (speculative)
};

inline constexpr int kNumIoClasses = 5;

[[nodiscard]] const char* IoClassName(IoClass io_class) noexcept;

/// Index helper for per-class arrays.
[[nodiscard]] constexpr int ClassIndex(IoClass io_class) noexcept {
  return static_cast<int>(io_class);
}

struct TenantContext {
  int tenant_id = 0;
  std::string name = "default";
  IoClass io_class = IoClass::kTraining;
  /// Bandwidth-share weight of this tenant relative to its peers
  /// (work-conserving: an idle tenant's share is lent to active ones).
  double weight = 4.0;
  /// Scan-resistance marking: this tenant's staged copies are fair game
  /// for eviction, and the tenant may only evict other low-retention
  /// copies — it can never push out a trainer's working set.
  bool low_retention = false;
};

/// The ambient tenant of the calling thread, or nullptr when none is
/// installed. The pointer stays valid for the lifetime of the enclosing
/// ScopedTenant.
[[nodiscard]] const TenantContext* CurrentTenant() noexcept;

/// RAII installer for the ambient tenant. Nests: the previous tenant is
/// restored on destruction, so a drain worker borrowing a reader thread
/// can't leak its identity.
class ScopedTenant {
 public:
  explicit ScopedTenant(const TenantContext& tenant) noexcept;
  ~ScopedTenant();

  ScopedTenant(const ScopedTenant&) = delete;
  ScopedTenant& operator=(const ScopedTenant&) = delete;

 private:
  const TenantContext* previous_;
};

}  // namespace monarch::qos
