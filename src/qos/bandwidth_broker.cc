#include "qos/bandwidth_broker.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "obs/event_tracer.h"
#include "obs/json.h"

namespace monarch::qos {

BandwidthBroker::BandwidthBroker(Options options)
    : options_(options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  consumed_ = registry.GetCounter(
      "qos.consumed_bytes", "bytes",
      "bytes charged through per-tenant bandwidth brokers");
  throttle_waits_ = registry.GetCounter(
      "qos.throttle_waits", "ops",
      "broker charges that had to wait for their tenant's share");
  throttled_us_ = registry.GetCounter(
      "qos.throttled_us", "us",
      "total time broker charges spent throttled");
  source_ = registry.AddSource([this] {
    std::vector<obs::MetricSample> out;
    for (const TenantUsage& usage : Usage()) {
      obs::MetricSample consumed;
      consumed.name = "qos.tenant.consumed_bytes";
      consumed.label = usage.name;
      consumed.unit = "bytes";
      consumed.help = "bytes this tenant charged through the broker";
      consumed.kind = obs::MetricKind::kCounter;
      consumed.value = usage.consumed_bytes;
      out.push_back(std::move(consumed));
      obs::MetricSample throttled;
      throttled.name = "qos.tenant.throttled_us";
      throttled.label = usage.name;
      throttled.unit = "us";
      throttled.help = "time this tenant's charges spent throttled";
      throttled.kind = obs::MetricKind::kCounter;
      throttled.value = usage.throttled_us;
      out.push_back(std::move(throttled));
      obs::MetricSample share;
      share.name = "qos.tenant.share_bps";
      share.label = usage.name;
      share.unit = "bytes";
      share.help =
          "this tenant's current effective bandwidth share (work-"
          "conserving: grows while peers are idle)";
      share.kind = obs::MetricKind::kGauge;
      share.gauge = static_cast<std::int64_t>(usage.share_bps);
      out.push_back(std::move(share));
    }
    return out;
  });
}

void BandwidthBroker::RegisterTenant(const TenantContext& tenant) {
  std::lock_guard lock(mu_);
  Tenant& state = tenants_[tenant.tenant_id];
  state.ctx = tenant;
  if (state.ctx.weight <= 0.0) state.ctx.weight = options_.default_weight;
  if (enabled() && state.limiter == nullptr) {
    // Start at the strict weighted share; recomputed on first charge.
    state.limiter = std::make_unique<RateLimiter>(
        std::max(options_.total_rate_bps, 1.0));
  }
  RecomputeSharesLocked(SteadyClock::now());
}

BandwidthBroker::Tenant& BandwidthBroker::GetTenantLocked(int tenant_id) {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    Tenant& state = tenants_[tenant_id];
    state.ctx.tenant_id = tenant_id;
    state.ctx.name = "tenant-" + std::to_string(tenant_id);
    state.ctx.weight = options_.default_weight;
    if (enabled()) {
      state.limiter = std::make_unique<RateLimiter>(
          std::max(options_.total_rate_bps, 1.0));
    }
    return state;
  }
  return it->second;
}

void BandwidthBroker::RecomputeSharesLocked(TimePoint now) {
  if (!enabled()) return;
  double active_weight = 0.0;
  double all_weight = 0.0;
  for (const auto& [id, tenant] : tenants_) {
    all_weight += tenant.ctx.weight;
    if (now - tenant.last_active <= options_.active_window) {
      active_weight += tenant.ctx.weight;
    }
  }
  const double denominator =
      options_.work_conserving
          ? (active_weight > 0.0 ? active_weight : all_weight)
          : all_weight;
  if (denominator <= 0.0) return;
  for (auto& [id, tenant] : tenants_) {
    const bool active =
        now - tenant.last_active <= options_.active_window;
    // Work-conserving: idle tenants keep their strict share on the
    // books (they can resume instantly at that rate; the refilled burst
    // absorbs the ramp) while active tenants split the whole pipe.
    const double share =
        options_.work_conserving && !active
            ? options_.total_rate_bps * tenant.ctx.weight /
                  std::max(all_weight, tenant.ctx.weight)
            : options_.total_rate_bps * tenant.ctx.weight / denominator;
    if (tenant.limiter != nullptr && share > 0.0 &&
        std::abs(share - tenant.share_bps) >
            0.01 * std::max(share, tenant.share_bps)) {
      tenant.limiter->SetRate(share);
    }
    tenant.share_bps = share;
  }
}

Duration BandwidthBroker::Reserve(int tenant_id, std::uint64_t bytes) {
  if (!enabled() || bytes == 0) return kZeroDuration;
  RateLimiter* limiter = nullptr;
  {
    std::lock_guard lock(mu_);
    Tenant& tenant = GetTenantLocked(tenant_id);
    const TimePoint now = SteadyClock::now();
    const bool was_idle =
        now - tenant.last_active > options_.active_window;
    tenant.last_active = now;
    tenant.consumed_bytes += bytes;
    // Joining or leaving the active set shifts everyone's share; steady
    // charging recomputes too (cheap: a handful of tenants) so shares
    // track peers going idle without a dedicated timer.
    if (was_idle || options_.work_conserving) RecomputeSharesLocked(now);
    limiter = tenant.limiter.get();
  }
  if (consumed_ != nullptr) consumed_->Increment(bytes);
  if (limiter == nullptr) return kZeroDuration;
  return limiter->Reserve(static_cast<double>(bytes));
}

void BandwidthBroker::Acquire(int tenant_id, std::uint64_t bytes) {
  const Duration wait = Reserve(tenant_id, bytes);
  if (wait <= kZeroDuration) return;
  const auto wait_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wait).count());
  std::string tenant_name;
  {
    std::lock_guard lock(mu_);
    Tenant& tenant = GetTenantLocked(tenant_id);
    ++tenant.throttle_waits;
    tenant.throttled_us += wait_us;
    tenant_name = tenant.ctx.name;
  }
  if (throttle_waits_ != nullptr) throttle_waits_->Increment();
  if (throttled_us_ != nullptr) throttled_us_->Increment(wait_us);
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant(
        "qos.throttle", "qos",
        "\"tenant\":" + obs::JsonQuote(tenant_name) +
            ",\"bytes\":" + std::to_string(bytes) +
            ",\"wait_us\":" + std::to_string(wait_us));
  }
  PreciseSleep(wait);
}

void BandwidthBroker::AcquireCurrent(const TenantContext& fallback,
                                     std::uint64_t bytes) {
  const TenantContext* current = CurrentTenant();
  Acquire(current != nullptr ? current->tenant_id : fallback.tenant_id,
          bytes);
}

std::vector<BandwidthBroker::TenantUsage> BandwidthBroker::Usage() const {
  std::vector<TenantUsage> out;
  std::lock_guard lock(mu_);
  out.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    TenantUsage usage;
    usage.tenant_id = id;
    usage.name = tenant.ctx.name;
    usage.io_class = tenant.ctx.io_class;
    usage.weight = tenant.ctx.weight;
    usage.share_bps = tenant.share_bps;
    usage.consumed_bytes = tenant.consumed_bytes;
    usage.throttle_waits = tenant.throttle_waits;
    usage.throttled_us = tenant.throttled_us;
    out.push_back(std::move(usage));
  }
  return out;
}

}  // namespace monarch::qos
