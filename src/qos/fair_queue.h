// FairQueue: starvation-free weighted fair queuing over priority bands
// (ISSUE 10). Generalizes the staging pipeline's original two-lane
// demand/prefetch design into N weighted classes:
//
//   band 0 (demand):      interactive, training
//   band 1 (background):  scan, drain, prefetch
//
// Bands are strict priority — band 1 is served only while band 0 is
// empty, which preserves the original invariant that demand staging
// always runs before speculative work. WITHIN a band, classes share
// service by start-time fair queuing (SFQ): each pushed item gets a
// finish tag
//
//   finish = max(band_virtual_time, class_last_finish) + cost / weight
//
// and Pop() serves the item with the smallest finish tag in the lowest
// non-empty band. A class with weight w therefore gets a w-proportional
// share of the band's service, and — unlike strict priority — a
// low-weight class is never starved: its tags keep pace with virtual
// time, so a backlog of heavy-class work only delays it proportionally.
//
// NOT thread-safe: callers (PlacementHandler) serialize access under
// their own mutex, exactly as the previous two-deque design did.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

namespace monarch::qos {

template <typename T>
class FairQueue {
 public:
  /// Declare a class before pushing to it. `band` orders strict
  /// priority (lower served first); `weight` apportions service within
  /// the band. Re-registering a class updates band/weight and keeps its
  /// queued items.
  void RegisterClass(int cls, int band, double weight) {
    if (cls >= static_cast<int>(classes_.size())) {
      classes_.resize(static_cast<std::size_t>(cls) + 1);
    }
    if (band >= static_cast<int>(band_vtime_.size())) {
      band_vtime_.resize(static_cast<std::size_t>(band) + 1, 0.0);
    }
    ClassState& state = classes_[static_cast<std::size_t>(cls)];
    state.registered = true;
    state.band = band;
    state.weight = weight > 0.0 ? weight : 1.0;
  }

  /// Enqueue `item` on `cls` with service cost `cost` (bytes, for the
  /// staging pipeline). Unregistered classes are auto-registered on the
  /// highest band with weight 1 — nothing is ever dropped.
  void Push(int cls, double cost, T item) {
    if (cls >= static_cast<int>(classes_.size()) ||
        !classes_[static_cast<std::size_t>(cls)].registered) {
      RegisterClass(cls, LastBand(), 1.0);
    }
    ClassState& state = classes_[static_cast<std::size_t>(cls)];
    const double start =
        std::max(band_vtime_[static_cast<std::size_t>(state.band)],
                 state.last_finish);
    const double finish = start + std::max(cost, 1.0) / state.weight;
    state.last_finish = finish;
    state.items.push_back(Entry{finish, std::move(item)});
    ++size_;
  }

  /// Dequeue the next item by (band priority, smallest finish tag), or
  /// nullopt when empty. Advances the band's virtual time to the served
  /// item's tag.
  std::optional<T> TryPop() {
    if (size_ == 0) return std::nullopt;
    ClassState* best = nullptr;
    for (ClassState& state : classes_) {
      if (state.items.empty()) continue;
      if (best == nullptr || state.band < best->band ||
          (state.band == best->band &&
           state.items.front().finish < best->items.front().finish)) {
        best = &state;
      }
    }
    if (best == nullptr) return std::nullopt;
    Entry entry = std::move(best->items.front());
    best->items.pop_front();
    --size_;
    double& vtime = band_vtime_[static_cast<std::size_t>(best->band)];
    vtime = std::max(vtime, entry.finish);
    return std::optional<T>(std::move(entry.item));
  }

  /// Remove and return the first queued item (any class) matching
  /// `pred(item)`, or nullopt. Used by demand promotion — a read
  /// overtaking a queued prefetch pulls the task out to re-push it on
  /// the reader's own class.
  template <typename Pred>
  std::optional<T> Extract(Pred pred) {
    for (ClassState& state : classes_) {
      for (auto it = state.items.begin(); it != state.items.end(); ++it) {
        if (pred(it->item)) {
          T item = std::move(it->item);
          state.items.erase(it);
          --size_;
          return std::optional<T>(std::move(item));
        }
      }
    }
    return std::nullopt;
  }

  /// Remove and return EVERY queued item matching `pred(item)`
  /// (prefetch cancellation).
  template <typename Pred>
  std::vector<T> ExtractAll(Pred pred) {
    std::vector<T> out;
    for (ClassState& state : classes_) {
      for (auto it = state.items.begin(); it != state.items.end();) {
        if (pred(it->item)) {
          out.push_back(std::move(it->item));
          it = state.items.erase(it);
          --size_;
        } else {
          ++it;
        }
      }
    }
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] std::size_t class_depth(int cls) const noexcept {
    if (cls < 0 || cls >= static_cast<int>(classes_.size())) return 0;
    return classes_[static_cast<std::size_t>(cls)].items.size();
  }

 private:
  struct Entry {
    double finish = 0.0;
    T item;
  };
  struct ClassState {
    bool registered = false;
    int band = 0;
    double weight = 1.0;
    double last_finish = 0.0;
    std::deque<Entry> items;
  };

  [[nodiscard]] int LastBand() const noexcept {
    return band_vtime_.empty() ? 0
                               : static_cast<int>(band_vtime_.size()) - 1;
  }

  std::vector<ClassState> classes_;   ///< indexed by class id
  std::vector<double> band_vtime_;    ///< per-band virtual time
  std::size_t size_ = 0;
};

}  // namespace monarch::qos
