// AdmissionController: keeps new jobs from thrashing resident working
// sets (ISSUE 10). A job declares its placement footprint (the bytes it
// wants resident on the cache tiers) before it starts reading; the
// controller compares committed footprint against tier capacity:
//
//   footprint > capacity * reject_threshold          -> kReject
//   committed + footprint > capacity * queue_threshold -> kQueue
//   otherwise                                        -> kAdmit
//
// Queued jobs wait on a condition variable and are re-evaluated every
// time an admitted job releases its footprint, so admission order is
// arrival order with no polling. capacity_bytes == 0 disables the
// controller (everything admits).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

#include "obs/metrics_registry.h"
#include "qos/tenant.h"

namespace monarch::qos {

enum class AdmissionDecision { kAdmit, kQueue, kReject };

const char* AdmissionDecisionName(AdmissionDecision decision) noexcept;

class AdmissionController {
 public:
  struct Options {
    /// Cache-tier capacity the committed footprints are measured
    /// against. 0 = admission control disabled (always admit).
    std::uint64_t capacity_bytes = 0;
    /// New work queues once committed bytes would exceed this fraction
    /// of capacity.
    double queue_threshold = 0.85;
    /// A single footprint larger than this multiple of capacity can
    /// never fit and is rejected outright.
    double reject_threshold = 1.5;
  };

  explicit AdmissionController(Options options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// One admission check. kAdmit commits `footprint_bytes` against the
  /// tenant until Release(); kQueue/kReject commit nothing.
  [[nodiscard]] AdmissionDecision Request(const TenantContext& tenant,
                                          std::uint64_t footprint_bytes);

  /// Request, blocking while the answer is kQueue. Returns true once
  /// admitted, false when rejected or the controller shut down.
  [[nodiscard]] bool AwaitAdmission(const TenantContext& tenant,
                                    std::uint64_t footprint_bytes);

  /// Return the tenant's committed footprint and wake queued waiters.
  void Release(int tenant_id);

  /// Unblock all waiters (they return false from AwaitAdmission).
  void Shutdown();

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t queued = 0;
    std::uint64_t rejected = 0;
    std::uint64_t committed_bytes = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  [[nodiscard]] bool enabled() const noexcept {
    return options_.capacity_bytes > 0;
  }

 private:
  AdmissionDecision DecideLocked(std::uint64_t footprint_bytes) const;
  void RecordDecision(const TenantContext& tenant,
                      std::uint64_t footprint_bytes,
                      AdmissionDecision decision);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::uint64_t committed_bytes_ = 0;
  std::map<int, std::uint64_t> committed_;  ///< tenant id -> footprint
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t rejected_ = 0;

  // docs/OBSERVABILITY.md §1 "Multi-tenant QoS".
  obs::Counter* admitted_counter_ = nullptr;   ///< qos.admitted
  obs::Counter* queued_counter_ = nullptr;     ///< qos.queued
  obs::Counter* rejected_counter_ = nullptr;   ///< qos.rejected
  obs::Gauge* committed_gauge_ = nullptr;      ///< qos.committed_bytes
};

}  // namespace monarch::qos
