// QosOptions: engine-free knobs of the multi-tenant QoS layer (ISSUE
// 10; `[qos]` in the INI dialect). Carried inside PlacementOptions so
// the staging pipeline, the eviction path and the config parser share
// one source of truth.
#pragma once

#include <cstdint>

#include "qos/tenant.h"

namespace monarch::qos {

struct QosOptions {
  /// Master switch. Off = the staging pipeline behaves exactly like the
  /// original two-lane demand/prefetch design (all demand classes share
  /// one weight) and no bandwidth shares are enforced.
  bool enabled = false;

  // Per-class fair-queue weights (interactive > training > scan >
  // drain; prefetch rides the background band at drain weight).
  double interactive_weight = 8.0;
  double training_weight = 4.0;
  double scan_weight = 2.0;
  double drain_weight = 1.0;

  /// Default bandwidth-share weight of a tenant that doesn't specify
  /// one (relative to its peers on the same broker).
  double tenant_share = 1.0;

  /// Aggregate byte rate the bandwidth broker apportions across tenants
  /// (bytes/s). 0 disables per-tenant bandwidth enforcement.
  double total_bandwidth_bps = 0.0;

  /// Admission control: a new job queues when its placement footprint
  /// would push committed bytes past `queue_threshold` x capacity, and
  /// is rejected outright when the footprint alone exceeds
  /// `reject_threshold` x capacity (it could never fit).
  double admission_queue_threshold = 0.85;
  double admission_reject_threshold = 1.5;

  /// Work-conserving borrowing: idle tenants' shares are lent to active
  /// ones (recomputed over a short activity window) instead of going to
  /// waste.
  bool work_conserving = true;

  /// Scan resistance: cap on the resident bytes low-retention tenants
  /// may hold on the cache tiers. Further scan stagings are refused
  /// (served straight from the PFS) instead of churning the cache.
  /// 0 = no cap beyond the eviction restriction.
  std::uint64_t scan_stage_cap_bytes = 0;

  [[nodiscard]] double ClassWeight(IoClass io_class) const noexcept {
    switch (io_class) {
      case IoClass::kInteractive:
        return interactive_weight;
      case IoClass::kTraining:
        return training_weight;
      case IoClass::kScan:
        return scan_weight;
      case IoClass::kDrain:
      case IoClass::kPrefetch:
        return drain_weight;
    }
    return training_weight;
  }
};

}  // namespace monarch::qos
