// On-PFS container format of the small-file packing tier (the FanStore
// direction, PAPERS.md): many tiny logical files are concatenated into
// a few large *extent* files plus one binary *index*, so the PFS serves
// O(extents) streams and O(1) metadata ops instead of O(files) of each.
//
// Layout under a dataset directory `D`:
//
//   D/.pack/extent-000000.mpk     raw logical payloads, concatenated
//   D/.pack/extent-000001.mpk     ...
//   D/.pack/index.mpki            the index mapping every logical name
//                                 to (extent, offset, length, CRC32C)
//
// Extents store logical bytes verbatim (compression is a *staging-side*
// transform — see pack/codec.h); the per-entry CRC32C lets any consumer
// verify a logical file end-to-end no matter which path the bytes took.
//
// Index file format (little-endian):
//
//   magic "MPKI" | version u32 | extent_count u32 | entry_count u64
//   per entry: name_len u32 | name bytes | extent u32 | offset u64
//              | length u64 | crc32c u32
//
// `PackWriter` builds all of it through a StorageEngine, one extent in
// memory at a time, so packing works against any backend (including the
// in-memory PFS models the benches use).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::pack {

inline constexpr std::string_view kPackSubdir = ".pack";
inline constexpr std::string_view kIndexMagic = "MPKI";
inline constexpr std::uint32_t kIndexVersion = 1;

/// `D/.pack/index.mpki`.
std::string IndexPath(const std::string& dataset_dir);
/// `D/.pack/extent-NNNNNN.mpk`.
std::string ExtentPath(const std::string& dataset_dir, std::uint32_t extent);
/// True for paths inside any `.pack/` container directory — the packed
/// engine hides these from namespace listings.
bool IsPackInternalPath(std::string_view path);

/// Aggregates logical files into container extents. Not thread-safe:
/// packing is a one-shot dataset-preparation step.
class PackWriter {
 public:
  /// Extents and the index land under `dataset_dir` on `engine`;
  /// `extent_bytes` is the target extent payload size (an extent is
  /// flushed once it reaches it — single files larger than the target
  /// get an extent of their own rather than being split).
  PackWriter(storage::StorageEngine& engine, std::string dataset_dir,
             std::uint64_t extent_bytes);

  /// Append one logical file. Names must be unique, non-empty, and may
  /// not contain '#' (reserved for chunk-object names) or traverse into
  /// `.pack/`.
  Status Add(const std::string& logical_name,
             std::span<const std::byte> payload);

  /// Flush the tail extent and write the index. Add() is invalid
  /// afterwards; Finish() twice is an error.
  Status Finish();

  [[nodiscard]] std::uint64_t logical_files() const {
    return static_cast<std::uint64_t>(entries_.size());
  }
  [[nodiscard]] std::uint64_t logical_bytes() const {
    return logical_bytes_;
  }
  /// Extents written so far (the tail extent counts once flushed).
  [[nodiscard]] std::uint32_t extents_written() const {
    return next_extent_;
  }

 private:
  struct Entry {
    std::string name;
    std::uint32_t extent = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint32_t crc32c = 0;
  };

  Status FlushExtent();

  storage::StorageEngine& engine_;
  const std::string dataset_dir_;
  const std::uint64_t extent_bytes_;

  std::vector<std::byte> current_;  ///< tail extent being filled
  std::uint32_t next_extent_ = 0;
  std::vector<Entry> entries_;
  std::unordered_set<std::string> names_;
  std::uint64_t logical_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace monarch::pack
