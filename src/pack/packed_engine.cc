#include "pack/packed_engine.h"

#include <algorithm>

#include "pack/pack_format.h"

namespace monarch::pack {

Result<std::size_t> PackedPfsEngine::Read(std::string_view path,
                                          std::uint64_t offset,
                                          std::span<std::byte> dst) {
  const PackEntry* entry = index_->Find(path);
  if (entry == nullptr) return base_->Read(path, offset, dst);
  if (offset >= entry->length) return std::size_t{0};  // EOF, like pread
  const std::uint64_t n =
      std::min<std::uint64_t>(dst.size(), entry->length - offset);
  return base_->Read(index_->ExtentPathOf(*entry), entry->offset + offset,
                     dst.subspan(0, static_cast<std::size_t>(n)));
}

Result<storage::ReadView> PackedPfsEngine::ReadZeroCopy(
    std::string_view path, std::uint64_t offset, std::uint64_t max_bytes) {
  const PackEntry* entry = index_->Find(path);
  if (entry == nullptr) return base_->ReadZeroCopy(path, offset, max_bytes);
  if (offset >= entry->length) return storage::ReadView{};
  const std::uint64_t n =
      std::min<std::uint64_t>(max_bytes, entry->length - offset);
  return base_->ReadZeroCopy(index_->ExtentPathOf(*entry),
                             entry->offset + offset, n);
}

Status PackedPfsEngine::Write(const std::string& path,
                              std::span<const std::byte> data) {
  if (index_->Find(path) != nullptr) {
    return FailedPreconditionError("packed logical file is immutable: " +
                                   path);
  }
  return base_->Write(path, data);
}

Status PackedPfsEngine::WriteAt(const std::string& path,
                                std::uint64_t offset,
                                std::span<const std::byte> data) {
  if (index_->Find(path) != nullptr) {
    return FailedPreconditionError("packed logical file is immutable: " +
                                   path);
  }
  return base_->WriteAt(path, offset, data);
}

Status PackedPfsEngine::Delete(const std::string& path) {
  if (index_->Find(path) != nullptr) {
    return FailedPreconditionError("packed logical file is immutable: " +
                                   path);
  }
  return base_->Delete(path);
}

Result<std::uint64_t> PackedPfsEngine::FileSize(const std::string& path) {
  const PackEntry* entry = index_->Find(path);
  if (entry == nullptr) return base_->FileSize(path);
  // One index probe replaces one PFS stat — but account it, because the
  // virtual-namespace claim is exactly "this op never hit the PFS
  // metadata server"; the bench tables read it off storage.metadata_ops
  // of the *base* engine, which stays untouched here.
  return entry->length;
}

Result<bool> PackedPfsEngine::Exists(const std::string& path) {
  if (index_->Find(path) != nullptr) return true;
  return base_->Exists(path);
}

Result<std::vector<storage::FileStat>> PackedPfsEngine::ListFiles(
    const std::string& dir) {
  auto listed = base_->ListFiles(dir);
  if (!listed.ok()) return listed.status();
  std::vector<storage::FileStat> merged;
  merged.reserve(listed.value().size() + index_->logical_files());
  for (storage::FileStat& stat : listed.value()) {
    if (!IsPackInternalPath(stat.path)) merged.push_back(std::move(stat));
  }
  const std::string prefix = dir.empty() || dir.back() == '/'
                                 ? dir
                                 : dir + "/";
  index_->ForEach([&](const std::string& name, const PackEntry& entry) {
    if (name.rfind(prefix, 0) == 0 || dir == name || dir.empty()) {
      merged.push_back(storage::FileStat{name, entry.length});
    }
  });
  std::sort(merged.begin(), merged.end(),
            [](const storage::FileStat& a, const storage::FileStat& b) {
              return a.path < b.path;
            });
  return merged;
}

}  // namespace monarch::pack
