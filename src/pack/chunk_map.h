// Per-file chunk residency state for chunk-granularity staging
// (Hoard/FanStore-style, see PAPERS.md): which fixed-size chunks of one
// logical file currently have a staged copy on a cache tier, which are
// being staged right now, and the per-chunk verification metadata the
// read path needs to serve them.
//
// Concurrency contract — the read path is lock-free, placement is not:
//
//   readers    IsResident / RangeResident / Meta / tier(): atomic loads
//              only, no mutex, no allocation (the micro_read_hotpath
//              budget).
//   claimers   TryClaim / ReleaseClaim: lock-free CAS on the claimed
//              bitmap; a set claim bit means exactly one staging task
//              owns the chunk (the dedup that stops N readers of the
//              same cold chunk from scheduling N copies).
//   mutators   Publish / TryEvict / tier transitions: serialized per
//              file by `placement_mutex()` — staging and eviction are
//              I/O-bound, a mutex there costs nothing and removes every
//              meta/residency torn-state race.
//
// A resident chunk's metadata is immutable: Publish requires the claim
// bit (one owner), TryClaim refuses resident chunks, so nobody can
// rewrite meta while a reader might be using it.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace monarch::pack {

class ChunkMap {
 public:
  /// Stored-side description of one resident chunk.
  struct ChunkMeta {
    std::uint32_t stored_bytes = 0;  ///< post-codec bytes on the tier
    std::uint32_t crc_stored = 0;    ///< CRC32C of the stored bytes
    std::uint32_t crc_logical = 0;   ///< CRC32C of the logical bytes
  };

  ChunkMap(std::uint64_t file_bytes, std::uint64_t chunk_bytes)
      : file_bytes_(file_bytes),
        chunk_bytes_(chunk_bytes),
        num_chunks_(static_cast<std::uint32_t>(
            chunk_bytes == 0 ? 0 : (file_bytes + chunk_bytes - 1) /
                                       chunk_bytes)),
        resident_bits_((num_chunks_ + 63) / 64),
        claimed_bits_((num_chunks_ + 63) / 64),
        meta_lo_(num_chunks_),
        meta_hi_(num_chunks_) {
    assert(chunk_bytes > 0);
  }

  ChunkMap(const ChunkMap&) = delete;
  ChunkMap& operator=(const ChunkMap&) = delete;

  // ------------------------------------------------------- geometry

  [[nodiscard]] std::uint64_t file_bytes() const { return file_bytes_; }
  [[nodiscard]] std::uint64_t chunk_bytes() const { return chunk_bytes_; }
  [[nodiscard]] std::uint32_t num_chunks() const { return num_chunks_; }

  [[nodiscard]] std::uint32_t ChunkOf(std::uint64_t offset) const {
    return static_cast<std::uint32_t>(offset / chunk_bytes_);
  }
  [[nodiscard]] std::uint64_t ChunkOffset(std::uint32_t index) const {
    return static_cast<std::uint64_t>(index) * chunk_bytes_;
  }
  /// Logical bytes in chunk `index` (the last chunk may be short).
  [[nodiscard]] std::uint32_t ChunkLogicalBytes(std::uint32_t index) const {
    const std::uint64_t begin = ChunkOffset(index);
    const std::uint64_t end =
        begin + chunk_bytes_ < file_bytes_ ? begin + chunk_bytes_
                                           : file_bytes_;
    return static_cast<std::uint32_t>(end - begin);
  }

  // ------------------------------------------------------ read path

  [[nodiscard]] bool IsResident(std::uint32_t index) const {
    return (resident_bits_[index / 64].load(std::memory_order_acquire) &
            Bit(index)) != 0;
  }

  /// All chunks overlapping [offset, offset+length) resident?
  [[nodiscard]] bool RangeResident(std::uint64_t offset,
                                   std::uint64_t length) const {
    if (length == 0) return true;
    const std::uint32_t first = ChunkOf(offset);
    const std::uint32_t last = ChunkOf(offset + length - 1);
    for (std::uint32_t c = first; c <= last; ++c) {
      if (!IsResident(c)) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint32_t ResidentCount() const {
    return resident_count_.load(std::memory_order_acquire);
  }

  /// Post-codec bytes currently staged (== tier quota charged).
  [[nodiscard]] std::uint64_t ResidentStoredBytes() const {
    return resident_stored_bytes_.load(std::memory_order_acquire);
  }

  /// Pre-codec bytes currently staged.
  [[nodiscard]] std::uint64_t ResidentLogicalBytes() const {
    return resident_logical_bytes_.load(std::memory_order_acquire);
  }

  /// Meta of a resident chunk. Only meaningful after IsResident(index)
  /// returned true; immutable while the chunk stays resident.
  [[nodiscard]] ChunkMeta Meta(std::uint32_t index) const {
    const std::uint64_t lo = meta_lo_[index].load(std::memory_order_acquire);
    ChunkMeta meta;
    meta.stored_bytes = static_cast<std::uint32_t>(lo >> 32u);
    meta.crc_stored = static_cast<std::uint32_t>(lo);
    meta.crc_logical = meta_hi_[index].load(std::memory_order_acquire);
    return meta;
  }

  /// Which hierarchy level holds this file's staged chunks, -1 when
  /// none is assigned. All of one file's chunks live on one level.
  [[nodiscard]] int tier() const {
    return tier_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------- claimers

  /// Claim chunk `index` for staging. Fails when the chunk is already
  /// resident or another task holds the claim.
  [[nodiscard]] bool TryClaim(std::uint32_t index) {
    if (IsResident(index)) return false;
    const std::uint64_t bit = Bit(index);
    const std::uint64_t prev = claimed_bits_[index / 64].fetch_or(
        bit, std::memory_order_acq_rel);
    if ((prev & bit) != 0) return false;
    if (IsResident(index)) {  // lost the race against a publisher
      ReleaseClaim(index);
      return false;
    }
    claims_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  /// Give up a claim without publishing (staging failed or refused).
  void ReleaseClaim(std::uint32_t index) {
    claimed_bits_[index / 64].fetch_and(~Bit(index),
                                        std::memory_order_acq_rel);
    claims_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Outstanding claims (staging tasks in flight for this file).
  [[nodiscard]] std::uint32_t Claims() const {
    return claims_.load(std::memory_order_acquire);
  }

  // -------------------------------- mutators (hold placement_mutex())

  /// Serializes Publish / TryEvict / tier transitions per file.
  [[nodiscard]] std::mutex& placement_mutex() { return placement_mu_; }

  /// Assign the file's staging level if unassigned; returns the level
  /// in force afterwards. Caller holds placement_mutex().
  int AssignTier(int level) {
    int expected = -1;
    tier_.compare_exchange_strong(expected, level,
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
    return tier_.load(std::memory_order_acquire);
  }

  /// Drop the tier assignment once nothing is resident or in flight.
  /// Caller holds placement_mutex().
  void MaybeResetTier() {
    if (ResidentCount() == 0 && Claims() == 0) {
      tier_.store(-1, std::memory_order_release);
    }
  }

  /// Publish a staged chunk: record its meta, flip the resident bit
  /// (release — readers that see the bit see the meta), drop the
  /// claim. Returns the resident count after the publish. Caller holds
  /// the claim bit and placement_mutex().
  std::uint32_t Publish(std::uint32_t index, const ChunkMeta& meta) {
    meta_lo_[index].store(
        (static_cast<std::uint64_t>(meta.stored_bytes) << 32u) |
            meta.crc_stored,
        std::memory_order_release);
    meta_hi_[index].store(meta.crc_logical, std::memory_order_release);
    resident_stored_bytes_.fetch_add(meta.stored_bytes,
                                     std::memory_order_acq_rel);
    resident_logical_bytes_.fetch_add(ChunkLogicalBytes(index),
                                      std::memory_order_acq_rel);
    resident_bits_[index / 64].fetch_or(Bit(index),
                                        std::memory_order_acq_rel);
    const std::uint32_t count =
        resident_count_.fetch_add(1, std::memory_order_acq_rel) + 1;
    ReleaseClaim(index);
    return count;
  }

  /// Claim chunk `index` for eviction by clearing its resident bit.
  /// Returns the stored bytes freed (0 = not resident / lost the
  /// race). Caller holds placement_mutex() and deletes the tier object
  /// + releases quota afterwards.
  std::uint64_t TryEvict(std::uint32_t index) {
    const std::uint64_t bit = Bit(index);
    const std::uint64_t prev = resident_bits_[index / 64].fetch_and(
        ~bit, std::memory_order_acq_rel);
    if ((prev & bit) == 0) return 0;
    const ChunkMeta meta = Meta(index);
    resident_stored_bytes_.fetch_sub(meta.stored_bytes,
                                     std::memory_order_acq_rel);
    resident_logical_bytes_.fetch_sub(ChunkLogicalBytes(index),
                                      std::memory_order_acq_rel);
    resident_count_.fetch_sub(1, std::memory_order_acq_rel);
    return meta.stored_bytes;
  }

 private:
  static std::uint64_t Bit(std::uint32_t index) {
    return std::uint64_t{1} << (index % 64);
  }

  const std::uint64_t file_bytes_;
  const std::uint64_t chunk_bytes_;
  const std::uint32_t num_chunks_;

  std::vector<std::atomic<std::uint64_t>> resident_bits_;
  std::vector<std::atomic<std::uint64_t>> claimed_bits_;
  /// Per-chunk (stored_bytes << 32 | crc_stored) — one load gives the
  /// read path a consistent pair.
  std::vector<std::atomic<std::uint64_t>> meta_lo_;
  std::vector<std::atomic<std::uint32_t>> meta_hi_;  ///< crc_logical

  std::atomic<std::uint32_t> resident_count_{0};
  std::atomic<std::uint32_t> claims_{0};
  std::atomic<std::uint64_t> resident_stored_bytes_{0};
  std::atomic<std::uint64_t> resident_logical_bytes_{0};
  std::atomic<int> tier_{-1};

  std::mutex placement_mu_;
};

/// Tier object name of one staged chunk. '#' cannot appear in pack
/// logical names (PackWriter rejects it), so chunk objects never
/// collide with whole-file staged copies.
inline std::string ChunkObjectName(const std::string& file,
                                   std::uint32_t index) {
  return file + "#c" + std::to_string(index);
}

}  // namespace monarch::pack
