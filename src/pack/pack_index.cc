#include "pack/pack_index.h"

#include <cstring>

#include "pack/pack_format.h"

namespace monarch::pack {
namespace {

struct Cursor {
  std::span<const std::byte> data;
  std::size_t pos = 0;

  [[nodiscard]] bool Have(std::size_t n) const {
    return pos + n <= data.size();
  }
  bool ReadU32(std::uint32_t& v) {
    if (!Have(sizeof(v))) return false;
    std::memcpy(&v, data.data() + pos, sizeof(v));
    pos += sizeof(v);
    return true;
  }
  bool ReadU64(std::uint64_t& v) {
    if (!Have(sizeof(v))) return false;
    std::memcpy(&v, data.data() + pos, sizeof(v));
    pos += sizeof(v);
    return true;
  }
  bool ReadString(std::size_t n, std::string& out) {
    if (!Have(n)) return false;
    out.assign(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return true;
  }
};

Status Torn(const std::string& path, const std::string& what) {
  return DataLossError("pack index " + path + ": " + what);
}

}  // namespace

Result<std::shared_ptr<const PackIndex>> PackIndex::Load(
    storage::StorageEngine& engine, const std::string& dataset_dir) {
  const std::string path = IndexPath(dataset_dir);
  auto exists = engine.Exists(path);
  if (!exists.ok()) return exists.status();
  if (!exists.value()) {
    return NotFoundError("no pack index at " + path);
  }
  auto size = engine.FileSize(path);
  if (!size.ok()) return size.status();
  std::vector<std::byte> raw(static_cast<std::size_t>(size.value()));
  auto read = engine.Read(path, 0, raw);
  if (!read.ok()) return read.status();
  if (read.value() != raw.size()) {
    return Torn(path, "short read");
  }

  Cursor cursor{raw};
  std::string magic;
  if (!cursor.ReadString(kIndexMagic.size(), magic) || magic != kIndexMagic) {
    return Torn(path, "bad magic");
  }
  std::uint32_t version = 0;
  std::uint32_t extent_count = 0;
  std::uint64_t entry_count = 0;
  if (!cursor.ReadU32(version) || !cursor.ReadU32(extent_count) ||
      !cursor.ReadU64(entry_count)) {
    return Torn(path, "truncated header");
  }
  if (version != kIndexVersion) {
    return Torn(path, "unsupported version " + std::to_string(version));
  }
  // Each entry needs at least its fixed fields, so a hostile count
  // cannot force a huge up-front reservation.
  if (entry_count > raw.size()) {
    return Torn(path, "implausible entry count");
  }

  auto index = std::shared_ptr<PackIndex>(new PackIndex());
  index->dataset_dir_ = dataset_dir;
  index->extent_paths_.reserve(extent_count);
  for (std::uint32_t e = 0; e < extent_count; ++e) {
    index->extent_paths_.push_back(ExtentPath(dataset_dir, e));
  }
  index->order_.reserve(static_cast<std::size_t>(entry_count));

  for (std::uint64_t i = 0; i < entry_count; ++i) {
    std::uint32_t name_len = 0;
    if (!cursor.ReadU32(name_len)) return Torn(path, "truncated entry");
    std::string name;
    PackEntry entry;
    if (!cursor.ReadString(name_len, name) || !cursor.ReadU32(entry.extent) ||
        !cursor.ReadU64(entry.offset) || !cursor.ReadU64(entry.length) ||
        !cursor.ReadU32(entry.crc32c)) {
      return Torn(path, "truncated entry");
    }
    if (entry.extent >= extent_count) {
      return Torn(path, "entry references extent " +
                            std::to_string(entry.extent) + " of " +
                            std::to_string(extent_count));
    }
    index->logical_bytes_ += entry.length;
    if (!index->entries_.emplace(name, entry).second) {
      return Torn(path, "duplicate logical name " + name);
    }
    index->order_.push_back(std::move(name));
  }
  if (cursor.pos != raw.size()) {
    return Torn(path, "trailing bytes");
  }
  return std::shared_ptr<const PackIndex>(std::move(index));
}

}  // namespace monarch::pack
