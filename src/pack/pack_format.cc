#include "pack/pack_format.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "util/crc32c.h"

namespace monarch::pack {
namespace {

void AppendU32(std::vector<std::byte>& out, std::uint32_t v) {
  std::byte raw[sizeof(v)];
  std::memcpy(raw, &v, sizeof(v));
  out.insert(out.end(), raw, raw + sizeof(v));
}

void AppendU64(std::vector<std::byte>& out, std::uint64_t v) {
  std::byte raw[sizeof(v)];
  std::memcpy(raw, &v, sizeof(v));
  out.insert(out.end(), raw, raw + sizeof(v));
}

}  // namespace

std::string IndexPath(const std::string& dataset_dir) {
  return dataset_dir + "/" + std::string(kPackSubdir) + "/index.mpki";
}

std::string ExtentPath(const std::string& dataset_dir,
                       std::uint32_t extent) {
  char name[32];
  std::snprintf(name, sizeof(name), "extent-%06u.mpk", extent);
  return dataset_dir + "/" + std::string(kPackSubdir) + "/" + name;
}

bool IsPackInternalPath(std::string_view path) {
  constexpr std::string_view kInner = "/.pack/";
  constexpr std::string_view kLeading = ".pack/";
  return path.find(kInner) != std::string_view::npos ||
         path.substr(0, kLeading.size()) == kLeading;
}

PackWriter::PackWriter(storage::StorageEngine& engine,
                       std::string dataset_dir, std::uint64_t extent_bytes)
    : engine_(engine),
      dataset_dir_(std::move(dataset_dir)),
      extent_bytes_(extent_bytes == 0 ? 1 : extent_bytes) {}

Status PackWriter::Add(const std::string& logical_name,
                       std::span<const std::byte> payload) {
  if (finished_) {
    return FailedPreconditionError("PackWriter::Add after Finish");
  }
  if (logical_name.empty()) {
    return InvalidArgumentError("pack: empty logical name");
  }
  if (logical_name.find('#') != std::string::npos) {
    return InvalidArgumentError("pack: '#' is reserved in logical names: " +
                                logical_name);
  }
  if (IsPackInternalPath(logical_name)) {
    return InvalidArgumentError("pack: logical name inside .pack/: " +
                                logical_name);
  }
  if (!names_.insert(logical_name).second) {
    return AlreadyExistsError("pack: duplicate logical name: " +
                              logical_name);
  }

  Entry entry;
  entry.name = logical_name;
  entry.extent = next_extent_;
  entry.offset = current_.size();
  entry.length = payload.size();
  entry.crc32c = Crc32c(payload);
  entries_.push_back(std::move(entry));
  current_.insert(current_.end(), payload.begin(), payload.end());
  logical_bytes_ += payload.size();
  if (current_.size() >= extent_bytes_) {
    MONARCH_RETURN_IF_ERROR(FlushExtent());
  }
  return Status::Ok();
}

Status PackWriter::FlushExtent() {
  if (current_.empty()) return Status::Ok();
  MONARCH_RETURN_IF_ERROR(
      engine_.Write(ExtentPath(dataset_dir_, next_extent_), current_));
  ++next_extent_;
  current_.clear();
  return Status::Ok();
}

Status PackWriter::Finish() {
  if (finished_) {
    return FailedPreconditionError("PackWriter::Finish twice");
  }
  MONARCH_RETURN_IF_ERROR(FlushExtent());
  finished_ = true;

  std::vector<std::byte> index;
  index.reserve(entries_.size() * 64 + 32);
  for (const char c : kIndexMagic) {
    index.push_back(static_cast<std::byte>(c));
  }
  AppendU32(index, kIndexVersion);
  AppendU32(index, next_extent_);
  AppendU64(index, entries_.size());
  for (const Entry& entry : entries_) {
    AppendU32(index, static_cast<std::uint32_t>(entry.name.size()));
    for (const char c : entry.name) {
      index.push_back(static_cast<std::byte>(c));
    }
    AppendU32(index, entry.extent);
    AppendU64(index, entry.offset);
    AppendU64(index, entry.length);
    AppendU32(index, entry.crc32c);
  }
  return engine_.Write(IndexPath(dataset_dir_), index);
}

}  // namespace monarch::pack
