// PackedPfsEngine: presents a packed dataset (pack_format.h) as the
// flat logical namespace the rest of MONARCH already understands. It
// wraps the raw PFS engine and a loaded PackIndex:
//
//   * reads/stat of an indexed logical name translate to extent reads
//     at `entry.offset + delta` — so `MetadataContainer::Populate`, the
//     staging pipeline's PFS reads, and every rung of the degradation
//     ladder work on packed datasets unchanged;
//   * `ListFiles` lists logical names (and hides `.pack/` internals),
//     so the namespace walk sees a million files while the PFS served
//     two metadata ops;
//   * unindexed names (checkpoints, other datasets) pass straight
//     through to the base engine;
//   * indexed names are immutable — writes/deletes against them are
//     FAILED_PRECONDITION, never silent extent corruption.
//
// IoStats are forwarded to the base engine: PFS pressure metrics keep
// measuring the physical device, which is exactly what the
// ext_smallfile bench compares across packed and naive arms.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "pack/pack_index.h"
#include "storage/storage_engine.h"

namespace monarch::pack {

class PackedPfsEngine final : public storage::StorageEngine {
 public:
  PackedPfsEngine(storage::StorageEnginePtr base, PackIndexPtr index)
      : base_(std::move(base)), index_(std::move(index)) {}

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Result<storage::ReadView> ReadZeroCopy(std::string_view path,
                                         std::uint64_t offset,
                                         std::uint64_t max_bytes) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override;
  Status Delete(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<storage::FileStat>> ListFiles(
      const std::string& dir) override;

  storage::IoStats& Stats() override { return base_->Stats(); }
  [[nodiscard]] std::string Name() const override { return base_->Name(); }

  [[nodiscard]] const PackIndexPtr& index() const { return index_; }
  [[nodiscard]] const storage::StorageEnginePtr& base() const {
    return base_;
  }

 private:
  storage::StorageEnginePtr base_;
  PackIndexPtr index_;
};

}  // namespace monarch::pack
