#include "pack/codec.h"

#include <cstring>
#include <string>

namespace monarch::pack {
namespace {

// ---------------------------------------------------------------- none

class NoneCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view Name() const override { return "none"; }

  [[nodiscard]] std::size_t MaxStoredSize(
      std::size_t logical_bytes) const override {
    return logical_bytes;
  }

  Status Encode(std::span<const std::byte> logical,
                std::vector<std::byte>& stored) const override {
    stored.assign(logical.begin(), logical.end());
    return Status::Ok();
  }

  Status Decode(std::span<const std::byte> stored,
                std::span<std::byte> logical) const override {
    if (stored.size() != logical.size()) {
      return DataLossError("none codec: stored size " +
                           std::to_string(stored.size()) +
                           " != logical size " +
                           std::to_string(logical.size()));
    }
    if (!stored.empty()) {
      std::memcpy(logical.data(), stored.data(), stored.size());
    }
    return Status::Ok();
  }
};

// ------------------------------------------------------------------ lz
//
// A self-contained LZ77 byte codec in the LZ4 token-stream dialect:
// each sequence is
//
//   token        high nibble = literal count, low nibble = match
//                length - 4; nibble value 15 means "more length bytes
//                follow" (a run of 255s plus one terminator < 255)
//   literals     copied verbatim
//   offset       2-byte little-endian back-reference distance (1..64Ki)
//   match        copied from already-decoded output (overlap legal —
//                offset 1 is run-length encoding)
//
// The final sequence is literal-only (match nibble 0, no offset
// bytes). Matching is greedy single-probe hash lookup over 4-byte
// windows — a fraction of real LZ4's ratio, but dependency-free and
// fast enough for a staging pipeline that is I/O-bound anyway.

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kTailLiterals = 5;   ///< never match into the tail
constexpr std::size_t kMaxOffset = 65535;
constexpr unsigned kHashBits = 13;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

std::uint32_t Load32(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t HashWindow(std::uint32_t v) {
  return (v * 2654435761u) >> (32u - kHashBits);
}

void PutLength(std::vector<std::byte>& out, std::size_t rest) {
  while (rest >= 255) {
    out.push_back(std::byte{255});
    rest -= 255;
  }
  out.push_back(static_cast<std::byte>(rest));
}

class LzCodec final : public Codec {
 public:
  [[nodiscard]] std::string_view Name() const override { return "lz"; }

  [[nodiscard]] std::size_t MaxStoredSize(
      std::size_t logical_bytes) const override {
    // One token + length bytes per 255-literal run, plus slack for the
    // final short sequence.
    return logical_bytes + logical_bytes / 255 + 16;
  }

  Status Encode(std::span<const std::byte> logical,
                std::vector<std::byte>& stored) const override {
    stored.clear();
    if (logical.empty()) return Status::Ok();
    stored.reserve(logical.size() / 2 + 16);

    const std::byte* src = logical.data();
    const std::size_t size = logical.size();
    const std::size_t match_end = size > kTailLiterals
                                      ? size - kTailLiterals
                                      : 0;
    std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, kNoPos);

    std::size_t anchor = 0;
    std::size_t pos = 0;
    while (pos + kMinMatch <= match_end) {
      const std::uint32_t hash = HashWindow(Load32(src + pos));
      const std::uint32_t candidate = table[hash];
      table[hash] = static_cast<std::uint32_t>(pos);
      if (candidate == kNoPos || pos - candidate > kMaxOffset ||
          Load32(src + candidate) != Load32(src + pos)) {
        ++pos;
        continue;
      }
      std::size_t match_len = kMinMatch;
      while (pos + match_len < match_end &&
             src[candidate + match_len] == src[pos + match_len]) {
        ++match_len;
      }
      EmitSequence(stored, src + anchor, pos - anchor,
                   pos - candidate, match_len);
      pos += match_len;
      anchor = pos;
    }
    EmitFinal(stored, src + anchor, size - anchor);
    return Status::Ok();
  }

  Status Decode(std::span<const std::byte> stored,
                std::span<std::byte> logical) const override {
    std::size_t in = 0;
    std::size_t out = 0;
    const std::size_t in_size = stored.size();
    const std::size_t out_size = logical.size();
    while (in < in_size) {
      const auto token = std::to_integer<unsigned>(stored[in++]);

      std::size_t literals = token >> 4u;
      if (literals == 15) {
        MONARCH_RETURN_IF_ERROR(ReadLength(stored, in, literals));
      }
      if (in + literals > in_size || out + literals > out_size) {
        return Malformed("literal run out of bounds");
      }
      if (literals > 0) {
        std::memcpy(logical.data() + out, stored.data() + in, literals);
        in += literals;
        out += literals;
      }
      if (in == in_size) {
        // Final, literal-only sequence.
        if ((token & 0xFu) != 0) return Malformed("dangling match token");
        break;
      }

      if (in + 2 > in_size) return Malformed("truncated match offset");
      const std::size_t offset =
          std::to_integer<std::size_t>(stored[in]) |
          (std::to_integer<std::size_t>(stored[in + 1]) << 8u);
      in += 2;
      if (offset == 0 || offset > out) {
        return Malformed("match offset outside decoded window");
      }
      std::size_t match_len = (token & 0xFu) + kMinMatch;
      if ((token & 0xFu) == 15) {
        std::size_t extra = 0;
        MONARCH_RETURN_IF_ERROR(ReadLength(stored, in, extra));
        match_len = 15 + kMinMatch + extra;
      }
      if (out + match_len > out_size) {
        return Malformed("match overruns logical size");
      }
      // Byte-wise copy: overlapping back-references are the RLE case.
      for (std::size_t i = 0; i < match_len; ++i, ++out) {
        logical[out] = logical[out - offset];
      }
    }
    if (out != out_size) {
      return Malformed("decoded " + std::to_string(out) + " of " +
                       std::to_string(out_size) + " logical bytes");
    }
    return Status::Ok();
  }

 private:
  static Status Malformed(std::string what) {
    return DataLossError("lz codec: " + std::move(what));
  }

  static Status ReadLength(std::span<const std::byte> stored,
                           std::size_t& in, std::size_t& length) {
    unsigned byte = 255;
    while (byte == 255) {
      if (in >= stored.size()) return Malformed("truncated length run");
      byte = std::to_integer<unsigned>(stored[in++]);
      length += byte;
    }
    return Status::Ok();
  }

  static void EmitSequence(std::vector<std::byte>& out,
                           const std::byte* literals, std::size_t lit_len,
                           std::size_t offset, std::size_t match_len) {
    const std::size_t match_code = match_len - kMinMatch;
    const unsigned lit_nibble =
        static_cast<unsigned>(lit_len >= 15 ? 15 : lit_len);
    const unsigned match_nibble =
        static_cast<unsigned>(match_code >= 15 ? 15 : match_code);
    out.push_back(static_cast<std::byte>((lit_nibble << 4u) | match_nibble));
    if (lit_len >= 15) PutLength(out, lit_len - 15);
    out.insert(out.end(), literals, literals + lit_len);
    out.push_back(static_cast<std::byte>(offset & 0xFFu));
    out.push_back(static_cast<std::byte>((offset >> 8u) & 0xFFu));
    if (match_code >= 15) PutLength(out, match_code - 15);
  }

  static void EmitFinal(std::vector<std::byte>& out,
                        const std::byte* literals, std::size_t lit_len) {
    const unsigned lit_nibble =
        static_cast<unsigned>(lit_len >= 15 ? 15 : lit_len);
    out.push_back(static_cast<std::byte>(lit_nibble << 4u));
    if (lit_len >= 15) PutLength(out, lit_len - 15);
    out.insert(out.end(), literals, literals + lit_len);
  }
};

}  // namespace

Result<const Codec*> CodecByName(std::string_view name) {
  static const NoneCodec none;
  static const LzCodec lz;
  if (name == "none") return static_cast<const Codec*>(&none);
  if (name == "lz") return static_cast<const Codec*>(&lz);
  return InvalidArgumentError("unknown pack codec '" + std::string(name) +
                              "' (expected none|lz)");
}

}  // namespace monarch::pack
