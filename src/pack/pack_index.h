// In-memory pack index: the lookup side of pack_format.h. Loaded once
// at startup from `<dataset_dir>/.pack/index.mpki`, then immutable —
// every consumer holds a shared_ptr<const PackIndex> and probes it
// lock-free (and allocation-free: the map is transparent-keyed, so a
// string_view path never materialises a std::string).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/storage_engine.h"
#include "util/sharded_map.h"  // StringHash (transparent)
#include "util/status.h"

namespace monarch::pack {

/// Where one logical file lives inside the container extents.
struct PackEntry {
  std::uint32_t extent = 0;   ///< extent id (see ExtentPath)
  std::uint64_t offset = 0;   ///< byte offset inside the extent
  std::uint64_t length = 0;   ///< logical file size
  std::uint32_t crc32c = 0;   ///< CRC32C of the logical bytes
};

class PackIndex {
 public:
  /// Load `<dataset_dir>/.pack/index.mpki` from `engine`. NOT_FOUND
  /// when no index exists (the dataset is simply not packed); DATA_LOSS
  /// on a torn or corrupt index.
  static Result<std::shared_ptr<const PackIndex>> Load(
      storage::StorageEngine& engine, const std::string& dataset_dir);

  /// Entry of `logical_name`, or nullptr. Lock- and allocation-free.
  [[nodiscard]] const PackEntry* Find(std::string_view logical_name) const {
    const auto it = entries_.find(logical_name);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Engine path of the extent holding `entry` (precomputed strings —
  /// the read hot path never rebuilds them).
  [[nodiscard]] const std::string& ExtentPathOf(
      const PackEntry& entry) const {
    return extent_paths_[entry.extent];
  }

  /// Visit every (logical name, entry) pair; iteration order is the
  /// index file's (insertion) order.
  void ForEach(const std::function<void(const std::string&,
                                        const PackEntry&)>& fn) const {
    for (const std::string& name : order_) {
      fn(name, entries_.find(name)->second);
    }
  }

  [[nodiscard]] const std::string& dataset_dir() const {
    return dataset_dir_;
  }
  [[nodiscard]] std::uint64_t logical_files() const {
    return static_cast<std::uint64_t>(entries_.size());
  }
  [[nodiscard]] std::uint32_t extent_count() const {
    return static_cast<std::uint32_t>(extent_paths_.size());
  }
  [[nodiscard]] std::uint64_t logical_bytes() const {
    return logical_bytes_;
  }

 private:
  PackIndex() = default;

  std::string dataset_dir_;
  std::unordered_map<std::string, PackEntry, StringHash, std::equal_to<>>
      entries_;
  std::vector<std::string> order_;        ///< index-file entry order
  std::vector<std::string> extent_paths_;
  std::uint64_t logical_bytes_ = 0;
};

using PackIndexPtr = std::shared_ptr<const PackIndex>;

}  // namespace monarch::pack
