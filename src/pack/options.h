// Knobs of the small-file packing tier (`[pack]` INI section;
// docs/CONFIG.md). One struct travels from the config parser through
// MonarchConfig into the placement pipeline and the read path, so the
// chunk geometry every layer sees is identical by construction.
#pragma once

#include <cstdint>
#include <string>

namespace monarch::pack {

struct PackOptions {
  /// Master switch: stage, evict and serve dataset files at chunk
  /// granularity (and look for a pack index under the dataset dir at
  /// startup). Off = the classic whole-file placement unit.
  bool enabled = false;

  /// Staging/serving granularity. Every file is split into fixed-size
  /// chunks of this many logical bytes (the last chunk may be short).
  /// Must fit in the staging buffer pool's chunk buffers.
  std::uint64_t chunk_bytes = 256 * 1024;

  /// Per-chunk stage-in codec: "none" | "lz". Staged chunks are stored
  /// post-codec, so tier quota is charged compressed bytes.
  std::string codec = "none";

  /// Target container-extent size for `PackWriter` (how much logical
  /// payload lands in one extent file on the PFS).
  std::uint64_t pack_extent_bytes = 64ull * 1024 * 1024;
};

}  // namespace monarch::pack
