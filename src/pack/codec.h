// Pluggable per-chunk staging codecs (FanStore's transparent
// compression, §PAPERS.md): staged chunks are transformed on the way
// into a cache tier and inverted on the way out. Two codecs ship:
//
//   none  identity — stored bytes == logical bytes
//   lz    an in-repo LZ77 byte codec (greedy hash-chain matcher,
//         LZ4-style token stream); no external dependency
//
// Codecs are stateless singletons — `CodecByName` hands out shared
// const instances, so the read and staging paths can keep a raw pointer
// for the process lifetime. Correctness is *not* the codec's job alone:
// callers CRC32C both the stored (post-codec) and the logical
// (pre-codec) bytes and verify on every boundary crossing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace monarch::pack {

class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string_view Name() const = 0;

  /// Worst-case stored size for `logical_bytes` of input — size staging
  /// scratch buffers with this.
  [[nodiscard]] virtual std::size_t MaxStoredSize(
      std::size_t logical_bytes) const = 0;

  /// Transform `logical` into `stored` (resized to the exact output
  /// size). Never fails for valid inputs; incompressible data may grow
  /// up to MaxStoredSize.
  virtual Status Encode(std::span<const std::byte> logical,
                        std::vector<std::byte>& stored) const = 0;

  /// Invert Encode. `logical` must be exactly the original size (the
  /// chunk map knows it). Malformed streams return DATA_LOSS — they
  /// never read or write out of bounds.
  virtual Status Decode(std::span<const std::byte> stored,
                        std::span<std::byte> logical) const = 0;
};

/// Resolve a config codec name to its process-wide singleton.
/// Unknown names are INVALID_ARGUMENT (a config typo fails at parse
/// time, not mid-run).
Result<const Codec*> CodecByName(std::string_view name);

}  // namespace monarch::pack
