#include "cluster/restage_pump.h"

#include <utility>
#include <vector>

#include "util/rate_limiter.h"

namespace monarch::cluster {

RestagePump::RestagePump(FileDirectory& directory, int node, StageFn stage)
    : RestagePump(directory, node, std::move(stage), Options{}) {}

RestagePump::RestagePump(FileDirectory& directory, int node, StageFn stage,
                         Options options)
    : directory_(directory),
      node_(node),
      stage_(std::move(stage)),
      options_(options) {
  thread_ = std::thread([this] { Run(); });
}

RestagePump::~RestagePump() { Stop(); }

void RestagePump::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

RestagePump::PumpStats RestagePump::stats() const {
  PumpStats out;
  out.staged_files = staged_files_.load(std::memory_order_relaxed);
  out.staged_bytes = staged_bytes_.load(std::memory_order_relaxed);
  out.skipped = skipped_.load(std::memory_order_relaxed);
  return out;
}

void RestagePump::Run() {
  // One bucket per pump: the cap bounds THIS node's repair pull, the
  // way drain_bandwidth bounds one node's checkpoint drain.
  RateLimiter bucket(options_.bandwidth_bps > 0 ? options_.bandwidth_bps
                                                : 1.0);
  while (!stop_.load(std::memory_order_acquire)) {
    if (!directory_.IsLive(node_)) {
      PreciseSleep(options_.poll);
      continue;
    }
    const std::vector<std::string> batch =
        directory_.TakeRestage(node_, std::max<std::size_t>(
                                          options_.batch_files, 1));
    if (batch.empty()) {
      PreciseSleep(options_.poll);
      continue;
    }
    for (const std::string& name : batch) {
      if (stop_.load(std::memory_order_acquire)) return;
      const Result<std::uint64_t> scheduled = stage_(name);
      if (!scheduled.ok() || scheduled.value() == 0) {
        skipped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t bytes = scheduled.value();
      staged_files_.fetch_add(1, std::memory_order_relaxed);
      staged_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      directory_.CountRestageCompleted(bytes);
      if (options_.bandwidth_bps > 0) {
        // Meter the repair pull: sleep this copy's bandwidth share
        // before scheduling the next one.
        PreciseSleep(bucket.Reserve(static_cast<double>(bytes)));
      }
    }
  }
}

}  // namespace monarch::cluster
