// PeerGroup: per-cluster wiring for cooperative peer caching (ISSUE 4).
//
// One PeerGroup represents the set of nodes sharing their local tiers.
// It owns the cluster FileDirectory and the simulated interconnect
// (net/NetworkModel, one shared token bucket — concurrent peer transfers
// contend for the same fabric), and hands each node the two objects its
// Monarch instance needs:
//
//   * MakePeerEngine(node) — a net/PeerEngine whose resolver looks up a
//     remote holder in the directory (excluding the node itself) and
//     serves the read from that holder's registered local engine through
//     the network model. Plug it in as MonarchConfig::peer_tier.
//   * MakePeerView(node)   — the core/PeerView gluing the node's
//     placement callbacks and staging gate to the directory. Plug it in
//     as MonarchConfig::peer_view.
//
// Usage (dlsim::RunClusterExperiment):
//   cluster::PeerGroup group(num_jobs, options);
//   for each job j:  group.RegisterNode(j, local_engine_j);
//   for each job j:  config.peer_tier = {"peer", group.MakePeerEngine(j)};
//                    config.peer_view = group.MakePeerView(j);
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "cluster/file_directory.h"
#include "core/peer_view.h"
#include "net/network_model.h"
#include "storage/storage_engine.h"
#include "util/clock.h"

namespace monarch::cluster {

struct PeerOptions {
  /// Interconnect bandwidth shared by all peer transfers.
  double interconnect_bandwidth_bps = 1.2e9;
  /// One-way hop latency charged per peer RPC/transfer.
  Duration interconnect_latency = Micros(150);
  /// Lock stripes of the cluster file directory.
  std::size_t directory_shards = 16;
  /// Distinct owner nodes staging each file (1 = no redundancy).
  int replication = 1;
};

class PeerGroup {
 public:
  explicit PeerGroup(int num_nodes, PeerOptions options = {});

  PeerGroup(const PeerGroup&) = delete;
  PeerGroup& operator=(const PeerGroup&) = delete;

  /// Install `engine` as node `node`'s local tier — the engine peer reads
  /// of that node's copies are served from. Must be called for every node
  /// before the first read; reads resolved to an unregistered node fail
  /// as kNotFound (and degrade to the PFS).
  void RegisterNode(int node, storage::StorageEnginePtr engine);

  /// The peer tier engine for node `node` (read-only; name "peer<node>").
  [[nodiscard]] storage::StorageEnginePtr MakePeerEngine(int node);

  /// The placement/staging view for node `node`.
  [[nodiscard]] core::PeerViewPtr MakePeerView(int node);

  [[nodiscard]] FileDirectory& directory() noexcept { return directory_; }
  [[nodiscard]] const FileDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] const net::NetworkModelPtr& network() const noexcept {
    return network_;
  }
  [[nodiscard]] int num_nodes() const noexcept {
    return directory_.num_nodes();
  }

  /// The engine registered for `node`, or null. Used by the resolver.
  [[nodiscard]] storage::StorageEnginePtr NodeEngine(int node) const;

 private:
  FileDirectory directory_;
  net::NetworkModelPtr network_;
  /// Guards engines_: registration races resolver lookups in tests that
  /// bring nodes up while others already read.
  mutable std::mutex engines_mu_;
  std::vector<storage::StorageEnginePtr> engines_;
};

}  // namespace monarch::cluster
