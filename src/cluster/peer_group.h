// PeerGroup: per-cluster wiring for cooperative peer caching (ISSUE 4)
// and the churn-survival machinery on top of it (ISSUE 7).
//
// One PeerGroup represents the set of nodes sharing their local tiers.
// It owns the cluster FileDirectory and the simulated interconnect
// (net/NetworkModel, one shared token bucket — concurrent peer transfers
// contend for the same fabric), and hands each node the two objects its
// Monarch instance needs:
//
//   * MakePeerEngine(node) — a net/PeerEngine whose resolver picks a
//     LIVE holder from the directory (excluding the node itself) by
//     power-of-two-choices on per-holder in-flight transfers, skips
//     holders quarantined after consecutive failures, and serves the
//     read from that holder's registered local engine through the
//     network model. Plug it in as MonarchConfig::peer_tier.
//   * MakePeerView(node)   — the core/PeerView gluing the node's
//     placement callbacks and staging gate to the directory. Plug it in
//     as MonarchConfig::peer_view.
//
// Churn control (ISSUE 7): KillNode/ReviveNode/JoinNode drive the
// directory's membership AND the fabric's reachability together, so a
// killed node both disappears from holder resolution and times out any
// RPC that races the membership change.
//
// Usage (dlsim::RunClusterExperiment):
//   cluster::PeerGroup group(num_jobs, options);
//   for each job j:  group.RegisterNode(j, local_engine_j);
//   for each job j:  config.peer_tier = {"peer", group.MakePeerEngine(j)};
//                    config.peer_view = group.MakePeerView(j);
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/file_directory.h"
#include "core/peer_view.h"
#include "net/network_model.h"
#include "storage/storage_engine.h"
#include "util/clock.h"

namespace monarch::cluster {

struct PeerOptions {
  /// Interconnect bandwidth shared by all peer transfers.
  double interconnect_bandwidth_bps = 1.2e9;
  /// One-way hop latency charged per peer RPC/transfer.
  Duration interconnect_latency = Micros(150);
  /// Lock stripes of the cluster file directory.
  std::size_t directory_shards = 16;
  /// Distinct owner nodes staging each file (1 = no redundancy).
  int replication = 1;
  /// Nodes that start OUTSIDE the ring and enter it via JoinNode().
  std::vector<int> deferred_nodes;
  /// Distinct holders a peer read tries before the failure escapes to
  /// the degradation ladder (1 = no replica failover).
  int max_failover_holders = 2;
  /// Consecutive transfer failures before a holder is quarantined from
  /// holder selection (it stays eligible when it is the only choice).
  int quarantine_failures = 3;
  Duration quarantine_cooldown = Millis(50);
};

class PeerGroup {
 public:
  explicit PeerGroup(int num_nodes, PeerOptions options = {});

  PeerGroup(const PeerGroup&) = delete;
  PeerGroup& operator=(const PeerGroup&) = delete;

  /// Install `engine` as node `node`'s local tier — the engine peer reads
  /// of that node's copies are served from. Must be called for every node
  /// before the first read; reads resolved to an unregistered node fail
  /// as kNotFound (and degrade to the PFS).
  void RegisterNode(int node, storage::StorageEnginePtr engine);

  /// The peer tier engine for node `node` (read-only; name "peer<node>").
  [[nodiscard]] storage::StorageEnginePtr MakePeerEngine(int node);

  /// The placement/staging view for node `node`.
  [[nodiscard]] core::PeerViewPtr MakePeerView(int node);

  // ---- churn control (ISSUE 7) -----------------------------------------

  /// Fail `node`: fabric RPCs to it time out, the directory retracts its
  /// ads, ownership shifts, repair work is queued for the survivors.
  MembershipDelta KillNode(int node);

  /// Bring a killed node back. Call Monarch::ReadvertisePlacedCopies()
  /// on the node FIRST so its surviving copies are in the directory
  /// before the rejoin delta decides what still needs repair.
  MembershipDelta ReviveNode(int node);

  /// A deferred member enters the ring (shard handoff gets queued).
  MembershipDelta JoinNode(int node);

  // ---- accessors --------------------------------------------------------

  [[nodiscard]] FileDirectory& directory() noexcept { return directory_; }
  [[nodiscard]] const FileDirectory& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] const net::NetworkModelPtr& network() const noexcept {
    return network_;
  }
  [[nodiscard]] int num_nodes() const noexcept {
    return directory_.num_nodes();
  }
  [[nodiscard]] const PeerOptions& options() const noexcept {
    return options_;
  }

  /// The engine registered for `node`, or null. Used by the resolver.
  [[nodiscard]] storage::StorageEnginePtr NodeEngine(int node) const;

  /// Transfers currently in flight against `node`'s copy (p2c input).
  [[nodiscard]] int InflightFor(int node) const;
  /// Whether `node` is currently quarantined from holder selection.
  [[nodiscard]] bool Quarantined(int node) const;

  // Resolver callbacks (net/PeerEngine::Resolver lifecycle).
  void OnTransferStart(int node);
  void OnTransferDone(int node, bool ok);

 private:
  /// Per-holder selection state: in-flight transfers (power-of-two-
  /// choices) and failure streaks (quarantine).
  struct HolderState {
    std::atomic<int> inflight{0};
    std::atomic<int> fail_streak{0};
    /// steady_clock::now().time_since_epoch() deadline; 0 = healthy.
    std::atomic<std::int64_t> quarantined_until_ns{0};
  };

  PeerOptions options_;
  FileDirectory directory_;
  net::NetworkModelPtr network_;
  /// Guards engines_: registration races resolver lookups in tests that
  /// bring nodes up while others already read.
  mutable std::mutex engines_mu_;
  std::vector<storage::StorageEnginePtr> engines_;
  std::vector<std::unique_ptr<HolderState>> holder_state_;
};

}  // namespace monarch::cluster
