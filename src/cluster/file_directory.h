// FileDirectory: the cluster-wide placement map behind cooperative peer
// caching (ISSUE 4). Every node runs its own Monarch instance; the
// directory is the piece they share. It answers two questions:
//
//   * ownership — which node is responsible for STAGING a file. Decided
//     by a consistent-hash ring fixed at construction, so each node
//     stages exactly its shard of the dataset and the aggregate PFS
//     staging traffic is the dataset once, not once per node.
//   * placement — which nodes currently HOLD a staged copy. Updated by
//     the placement callbacks (core/PeerView) as copies are published,
//     evicted, or quarantined, and consulted by the read path to route
//     demand reads owner-first before falling back to the PFS.
//
// Built on util/ShardedMap: lookups from every node's reader threads and
// updates from every node's placement pool proceed under striped locks.
// The ownership ring itself is immutable after construction and read
// lock-free. Entries are never erased — an evicted file keeps its row
// with an empty holder list, which keeps Mark/lookup races benign.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/sharded_map.h"

namespace monarch::cluster {

/// Per-node view of the directory for status tooling (monarchctl
/// peer-status): how much of the namespace the node owns, how many copies
/// it currently holds, and how often peers pulled from it.
struct DirectoryNodeStats {
  int node = 0;
  std::uint64_t owned = 0;        ///< entries whose primary owner is node
  std::uint64_t placed = 0;       ///< entries node currently holds
  std::uint64_t remote_hits = 0;  ///< peer reads served from node's copy
};

class FileDirectory {
 public:
  /// `num_nodes` cluster members (node ids 0..num_nodes-1), each file
  /// owned by `replication` distinct nodes (clamped to num_nodes), map
  /// striped over `shards` locks.
  explicit FileDirectory(int num_nodes, int replication = 1,
                         std::size_t shards = 16);

  FileDirectory(const FileDirectory&) = delete;
  FileDirectory& operator=(const FileDirectory&) = delete;

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] int replication() const noexcept { return replication_; }

  /// The node responsible for staging `name` (first owner on the ring).
  [[nodiscard]] int PrimaryOwner(const std::string& name) const;

  /// The `replication` distinct nodes that should stage `name`, primary
  /// first (ring walk order).
  [[nodiscard]] std::vector<int> OwnerNodes(const std::string& name) const;

  /// Whether `node` is one of OwnerNodes(name) — the staging gate each
  /// Monarch instance consults before claiming a file.
  [[nodiscard]] bool IsOwner(const std::string& name, int node) const;

  /// `node` published a readable copy of `name` on its tier `level`.
  void MarkPlaced(const std::string& name, int node, int level);

  /// `node` dropped its copy (eviction, quarantine, or cleanup).
  void MarkEvicted(const std::string& name, int node);

  /// A node currently holding a staged copy of `name`, excluding
  /// `exclude_node` (the asker — its own copies are served locally).
  /// Owners are preferred in ring order so replicas share load the same
  /// way staging did. nullopt when no peer holds the file.
  [[nodiscard]] std::optional<int> PlacedHolder(const std::string& name,
                                                int exclude_node) const;

  /// Count one peer read served from `node`'s copy (resolver callback).
  void CountRemoteHit(int node);

  /// Files known to the directory (placed at least once).
  [[nodiscard]] std::uint64_t entries() const;
  /// Currently placed (name, node) pairs across the cluster.
  [[nodiscard]] std::uint64_t placed_copies() const;

  [[nodiscard]] DirectoryNodeStats StatsFor(int node) const;

 private:
  struct Entry {
    std::vector<int> holders;  ///< nodes with a readable copy, unordered
    int level = -1;            ///< tier level at the most recent placement
  };

  /// Hash ring point for (node, replica) — stable FNV-1a, independent of
  /// std::hash so ownership is reproducible across runs and platforms.
  [[nodiscard]] static std::uint64_t RingHash(const std::string& key);

  const int num_nodes_;
  const int replication_;
  /// Immutable sorted (point, node) ring of virtual nodes; ownership
  /// lookups binary-search it lock-free.
  std::vector<std::pair<std::uint64_t, int>> ring_;

  ShardedMap<std::string, Entry> map_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> remote_hits_;

  // docs/OBSERVABILITY.md `cluster.directory.*`.
  obs::Counter* lookups_ = nullptr;
  obs::Counter* remote_hits_total_ = nullptr;
  // Last member: the source callback reads map_ and remote_hits_.
  obs::SourceRegistration obs_source_;
};

}  // namespace monarch::cluster
