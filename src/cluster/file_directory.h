// FileDirectory: the cluster-wide placement map behind cooperative peer
// caching (ISSUE 4), grown a versioned membership view (ISSUE 7). Every
// node runs its own Monarch instance; the directory is the piece they
// share. It answers three questions:
//
//   * ownership — which node is responsible for STAGING a file. Decided
//     by a consistent-hash vnode ring over the *live* membership, so each
//     node stages exactly its shard of the dataset and the aggregate PFS
//     staging traffic is the dataset once, not once per node. When a node
//     dies or joins, ownership walks past it and only ~1/N of the
//     namespace changes hands (consistent hashing).
//   * placement — which nodes currently HOLD a staged copy. Updated by
//     the placement callbacks (core/PeerView) as copies are published,
//     evicted, or quarantined, and consulted by the read path to route
//     demand reads across live holders before falling back to the PFS.
//   * repair — what must move to restore the replication factor after a
//     loss (or hand a shard to a joiner). Each membership transition
//     computes the ownership delta and feeds per-node re-staging queues
//     drained at bounded rate on the prefetch lane (cluster/RestagePump).
//
// Membership is a copy-on-write snapshot (ring + per-node state +
// version) swapped atomically on every NodeUp/NodeDown/NodeJoin: the
// instant a node is marked down, every reader's PlacedHolders() stops
// returning it — advertisements from a downed node are retracted
// atomically, readers never dial a ghost. The slower map scan that
// physically erases its holder rows and computes the re-staging delta
// follows outside the readers' path.
//
// Built on util/ShardedMap: lookups from every node's reader threads and
// updates from every node's placement pool proceed under striped locks.
// Entries are never erased — an evicted file keeps its row with an empty
// holder list, which keeps Mark/lookup races benign.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/sharded_map.h"

namespace monarch::cluster {

/// Membership state of one cluster node.
enum class NodeState : std::uint8_t {
  kAbsent = 0,  ///< not yet joined (deferred member)
  kUp = 1,      ///< live: owns its shard, serves peer reads
  kDown = 2,    ///< failed: ownership walks past it, ads retracted
};

/// What one membership transition changed — returned by NodeUp/NodeDown/
/// NodeJoin so harnesses and tests can assert the consistent-hashing
/// property (only ~1/N of files re-owned) and the repair work created.
struct MembershipDelta {
  std::uint64_t version = 0;          ///< membership version after the change
  std::uint64_t files_reowned = 0;    ///< entries whose owner set changed
  std::uint64_t restage_enqueued = 0; ///< (file, node) repair tasks queued
  bool applied = false;               ///< false: invalid transition, no-op
};

/// Cluster-wide replication health: live staged copies per file vs the
/// effective target min(replication, live nodes).
struct ReplicationHealth {
  std::uint64_t files = 0;
  std::uint64_t at_target = 0;
  std::uint64_t below_target = 0;  ///< fewer live copies than target
  std::uint64_t unhosted = 0;      ///< no live copy at all (PFS only)
};

/// Per-node view of the directory for status tooling (monarchctl
/// peer-status / cluster-status): how much of the namespace the node
/// owns, how many copies it currently holds, how often peers pulled from
/// it, and its membership/repair state.
struct DirectoryNodeStats {
  int node = 0;
  std::uint64_t owned = 0;        ///< entries whose primary owner is node
  std::uint64_t placed = 0;       ///< entries node currently holds
  std::uint64_t remote_hits = 0;  ///< peer reads served from node's copy
  NodeState state = NodeState::kUp;
  std::uint64_t restage_pending = 0;  ///< repair tasks queued for node
};

class FileDirectory {
 public:
  /// `num_nodes` cluster members (node ids 0..num_nodes-1), each file
  /// owned by `replication` distinct live nodes (clamped to num_nodes),
  /// map striped over `shards` locks. Nodes listed in `deferred_nodes`
  /// start kAbsent (no vnodes) and enter the ring via NodeJoin() — at
  /// least one node always starts up.
  explicit FileDirectory(int num_nodes, int replication = 1,
                         std::size_t shards = 16,
                         const std::vector<int>& deferred_nodes = {});

  FileDirectory(const FileDirectory&) = delete;
  FileDirectory& operator=(const FileDirectory&) = delete;

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] int replication() const noexcept { return replication_; }

  // ---- membership -------------------------------------------------------

  /// Mark `node` failed: bump the version (readers immediately stop
  /// resolving to it), retract its advertisements, recompute ownership,
  /// and enqueue re-staging for files that lost a live owner/copy.
  MembershipDelta NodeDown(int node);

  /// A previously-down member returns. Its surviving local copies are NOT
  /// assumed: the node re-advertises them itself (MarkPlaced /
  /// Monarch::ReadvertisePlacedCopies) — ideally *before* NodeUp so the
  /// rejoin delta sees them and skips redundant repair work.
  MembershipDelta NodeUp(int node);

  /// A deferred member (kAbsent) joins the ring: its vnodes are added,
  /// ownership of ~1/N of files moves to it, and the handoff is enqueued
  /// on its re-staging queue.
  MembershipDelta NodeJoin(int node);

  [[nodiscard]] NodeState StateOf(int node) const;
  [[nodiscard]] bool IsLive(int node) const {
    return StateOf(node) == NodeState::kUp;
  }
  /// Monotonic membership version (starts at 1, +1 per transition).
  [[nodiscard]] std::uint64_t membership_version() const;
  [[nodiscard]] int live_nodes() const;

  // ---- ownership --------------------------------------------------------

  /// The node responsible for staging `name` (first live owner on the
  /// ring; falls back to ring order over non-absent members if nothing is
  /// live so callers never see an empty cluster).
  [[nodiscard]] int PrimaryOwner(const std::string& name) const;

  /// The min(replication, live nodes) distinct live nodes that should
  /// stage `name`, primary first (ring walk order).
  [[nodiscard]] std::vector<int> OwnerNodes(const std::string& name) const;

  /// Whether `node` is one of OwnerNodes(name) — the staging gate each
  /// Monarch instance consults before claiming a file.
  [[nodiscard]] bool IsOwner(const std::string& name, int node) const;

  // ---- placement --------------------------------------------------------

  /// `node` published a readable copy of `name` on its tier `level`.
  void MarkPlaced(const std::string& name, int node, int level);

  /// `node` dropped its copy (eviction, quarantine, or cleanup).
  void MarkEvicted(const std::string& name, int node);

  /// Every LIVE node currently holding a staged copy of `name`, excluding
  /// `exclude_node` (the asker — its own copies are served locally).
  /// Owners come first in ring order, then other live holders; non-live
  /// holders are never returned. Empty when no live peer holds the file.
  [[nodiscard]] std::vector<int> PlacedHolders(const std::string& name,
                                               int exclude_node) const;

  /// First of PlacedHolders() — the ring-order-preferred live holder.
  [[nodiscard]] std::optional<int> PlacedHolder(const std::string& name,
                                                int exclude_node) const;

  /// Count one peer read served from `node`'s copy (resolver callback).
  void CountRemoteHit(int node);

  // ---- re-staging -------------------------------------------------------

  /// Pop up to `max_files` queued repair tasks for `node` (files it now
  /// owns but holds no live copy of). Consumed by cluster::RestagePump.
  [[nodiscard]] std::vector<std::string> TakeRestage(int node,
                                                     std::size_t max_files);

  /// Repair tasks currently queued, cluster-wide / for one node.
  [[nodiscard]] std::uint64_t RestageQueueDepth() const;
  [[nodiscard]] std::uint64_t RestageQueueDepth(int node) const;

  /// Record one finished repair copy of `bytes` (pump callback; feeds
  /// `cluster.restage.completed` / `cluster.restage.bytes`).
  void CountRestageCompleted(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t restage_enqueued_total() const noexcept {
    return restage_enqueued_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t restage_completed_total() const noexcept {
    return restage_completed_total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ReplicationHealth CheckReplication() const;

  // ---- stats ------------------------------------------------------------

  /// Files known to the directory (placed at least once).
  [[nodiscard]] std::uint64_t entries() const;
  /// Currently placed (name, node) pairs across the cluster.
  [[nodiscard]] std::uint64_t placed_copies() const;

  [[nodiscard]] DirectoryNodeStats StatsFor(int node) const;

 private:
  struct Entry {
    std::vector<int> holders;  ///< nodes with a readable copy, unordered
    int level = -1;            ///< tier level at the most recent placement
  };

  /// Copy-on-write membership snapshot: one atomic pointer swap makes a
  /// transition visible to every reader at once.
  struct Membership {
    std::uint64_t version = 1;
    std::vector<NodeState> state;  ///< indexed by node id
    /// Sorted (point, node) vnodes of every non-absent member; ownership
    /// walks it clockwise skipping kDown nodes.
    std::vector<std::pair<std::uint64_t, int>> ring;
    int live_count = 0;
  };
  using MembershipPtr = std::shared_ptr<const Membership>;

  /// Hash ring point for (node, replica) — stable FNV-1a, independent of
  /// std::hash so ownership is reproducible across runs and platforms.
  [[nodiscard]] static std::uint64_t RingHash(const std::string& key);

  [[nodiscard]] MembershipPtr membership() const;
  void Publish(MembershipPtr next);
  [[nodiscard]] std::vector<std::pair<std::uint64_t, int>> BuildRing(
      const std::vector<NodeState>& state) const;

  /// Owners of `name` under snapshot `m` (live-first walk; see
  /// PrimaryOwner for the all-down fallback).
  [[nodiscard]] std::vector<int> OwnerNodesIn(const Membership& m,
                                              const std::string& name) const;

  /// Shared transition tail: publish `next`, retract the ads of
  /// `retract_node` (or -1), diff ownership old vs new, enqueue repair.
  MembershipDelta FinishTransition(const MembershipPtr& old_m,
                                   std::shared_ptr<Membership> next,
                                   int retract_node, const char* kind,
                                   int node);

  /// Enqueue (name -> node) repair if not already queued. Caller holds
  /// restage_mu_. Returns true when freshly queued.
  bool EnqueueRestageLocked(int node, const std::string& name);

  const int num_nodes_;
  const int replication_;
  /// Precomputed vnode points per node (hash keys fixed at construction,
  /// so a node's vnodes land identically whenever it is in the ring).
  std::vector<std::vector<std::uint64_t>> vnode_points_;

  /// Serializes transitions (held across the ownership-delta scan).
  std::mutex transition_mu_;
  /// Guards the snapshot pointer only (swap/copy, never held long).
  mutable std::mutex view_mu_;
  MembershipPtr membership_;

  ShardedMap<std::string, Entry> map_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> remote_hits_;

  /// Per-node repair queues + dedup sets (a file is queued at most once
  /// per node until taken).
  mutable std::mutex restage_mu_;
  std::vector<std::deque<std::string>> restage_q_;
  std::vector<std::unordered_set<std::string>> restage_queued_;

  std::atomic<std::uint64_t> restage_enqueued_total_{0};
  std::atomic<std::uint64_t> restage_completed_total_{0};

  // docs/OBSERVABILITY.md `cluster.directory.*` / `cluster.membership.*`
  // / `cluster.restage.*`.
  obs::Counter* lookups_ = nullptr;
  obs::Counter* remote_hits_total_ = nullptr;
  obs::Counter* transitions_ = nullptr;
  obs::Counter* restage_enqueued_ = nullptr;
  obs::Counter* restage_completed_ = nullptr;
  obs::Counter* restage_bytes_ = nullptr;
  // Last member: the source callback reads map_, membership_, queues.
  obs::SourceRegistration obs_source_;
};

}  // namespace monarch::cluster
