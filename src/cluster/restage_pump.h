// RestagePump: the bounded-rate drain of one node's re-staging queue
// (ISSUE 7). Membership transitions enqueue repair work into the
// FileDirectory (files a node now owns but holds no live copy of); one
// pump per node pops that queue on a background thread and hands each
// file to a StageFn — in practice Monarch::RestageFile, which claims the
// file and schedules a PREFETCH-lane copy, so repair traffic can never
// starve demand staging.
//
// The rate bound is a token bucket over the *scheduled* bytes
// (restage_bandwidth, 0 = uncapped): after scheduling a copy the pump
// sleeps that copy's fabric share before popping the next task, keeping
// replication repair from flooding the PFS right after a failure. A pump
// whose node is not live idles — a dead node repairs nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "cluster/file_directory.h"
#include "util/clock.h"
#include "util/status.h"

namespace monarch::cluster {

class RestagePump {
 public:
  /// Stage one repair copy. Returns the bytes scheduled; 0 = nothing to
  /// do (not owned any more / already placed) — skipped, not counted.
  using StageFn = std::function<Result<std::uint64_t>(const std::string&)>;

  struct Options {
    /// Repair bandwidth cap in bytes/sec (0 = uncapped).
    double bandwidth_bps = 0;
    /// Repair tasks popped per queue visit.
    std::size_t batch_files = 4;
    /// Idle poll interval when the queue is empty or the node is down.
    Duration poll = Millis(2);
  };

  struct PumpStats {
    std::uint64_t staged_files = 0;
    std::uint64_t staged_bytes = 0;
    std::uint64_t skipped = 0;  ///< stale tasks (ownership moved on, etc.)
  };

  RestagePump(FileDirectory& directory, int node, StageFn stage);
  RestagePump(FileDirectory& directory, int node, StageFn stage,
              Options options);
  ~RestagePump();

  RestagePump(const RestagePump&) = delete;
  RestagePump& operator=(const RestagePump&) = delete;

  /// Stop draining and join the pump thread. Idempotent.
  void Stop();

  [[nodiscard]] PumpStats stats() const;

 private:
  void Run();

  FileDirectory& directory_;
  const int node_;
  StageFn stage_;
  Options options_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> staged_files_{0};
  std::atomic<std::uint64_t> staged_bytes_{0};
  std::atomic<std::uint64_t> skipped_{0};
  std::thread thread_;
};

}  // namespace monarch::cluster
