#include "cluster/peer_group.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "net/peer_engine.h"
#include "obs/event_tracer.h"
#include "obs/json.h"
#include "util/rng.h"
#include "util/status.h"

namespace monarch::cluster {

namespace {

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Resolves a peer read to a live holder's registered local engine.
/// Excludes the asking node (its own copies are served locally by its
/// hierarchy, never through the interconnect) and any holder the current
/// read already failed against. Among the remaining live holders it
/// picks by power-of-two-choices on in-flight transfer counts, so
/// replicated shards spread load instead of hammering ring-order
/// primary; quarantined holders are only used as a last resort.
class GroupResolver final : public net::PeerEngine::Resolver {
 public:
  GroupResolver(PeerGroup* group, int self)
      : group_(group),
        self_(self),
        rng_(0x9E3779B97F4A7C15ull ^ static_cast<std::uint64_t>(self + 1)) {}

  Result<Holder> ResolveHolder(const std::string& path,
                               std::span<const int> exclude) override {
    std::vector<int> candidates = group_->directory().PlacedHolders(path, self_);
    std::erase_if(candidates, [&](int node) {
      return std::find(exclude.begin(), exclude.end(), node) != exclude.end();
    });
    if (candidates.empty()) {
      return NotFoundError("no live peer holds a staged copy of '" + path +
                           "'");
    }
    // Quarantine: skip flapping holders unless they are all we have.
    std::vector<int> healthy = candidates;
    std::erase_if(healthy, [&](int node) { return group_->Quarantined(node); });
    const std::vector<int>& pool = healthy.empty() ? candidates : healthy;

    const int chosen = Pick(pool);
    storage::StorageEnginePtr engine = group_->NodeEngine(chosen);
    if (!engine) {
      return NotFoundError("peer node " + std::to_string(chosen) +
                           " holds '" + path +
                           "' but has no registered engine");
    }
    group_->directory().CountRemoteHit(chosen);
    return Holder{chosen, std::move(engine)};
  }

  void OnTransferStart(int node) override { group_->OnTransferStart(node); }
  void OnTransferDone(int node, bool ok) override {
    group_->OnTransferDone(node, ok);
  }

 private:
  int Pick(const std::vector<int>& pool) {
    if (pool.size() == 1) return pool.front();
    std::size_t a;
    std::size_t b;
    {
      std::lock_guard lock(rng_mu_);
      a = static_cast<std::size_t>(rng_.NextBounded(pool.size()));
      b = static_cast<std::size_t>(rng_.NextBounded(pool.size() - 1));
    }
    if (b >= a) ++b;  // two DISTINCT choices
    const int na = pool[a];
    const int nb = pool[b];
    const int load_a = group_->InflightFor(na);
    const int load_b = group_->InflightFor(nb);
    if (load_a != load_b) return load_a < load_b ? na : nb;
    // Tie: prefer the earlier candidate — ring order, the deterministic
    // way staging spread the copies.
    return a < b ? na : nb;
  }

  PeerGroup* group_;
  const int self_;
  std::mutex rng_mu_;
  Xoshiro256 rng_;
};

/// Glues one node's Monarch placement callbacks and staging gate to the
/// shared directory (the core-side half of the peer tier).
class DirectoryPeerView final : public core::PeerView {
 public:
  DirectoryPeerView(PeerGroup* group, int self)
      : group_(group), self_(self) {}

  bool HasRemoteCopy(const std::string& name) override {
    return group_->directory().PlacedHolder(name, self_).has_value();
  }

  bool ShouldStageLocally(const std::string& name) override {
    return group_->directory().IsOwner(name, self_);
  }

  void OnStaged(const std::string& name, int level) override {
    group_->directory().MarkPlaced(name, self_, level);
  }

  void OnDropped(const std::string& name) override {
    group_->directory().MarkEvicted(name, self_);
  }

 private:
  PeerGroup* group_;
  const int self_;
};

}  // namespace

PeerGroup::PeerGroup(int num_nodes, PeerOptions options)
    : options_(std::move(options)),
      directory_(num_nodes, options_.replication, options_.directory_shards,
                 options_.deferred_nodes) {
  net::NetworkProfile profile = net::NetworkProfile::ClusterInterconnect();
  profile.bandwidth_bps = options_.interconnect_bandwidth_bps;
  profile.hop_latency = options_.interconnect_latency;
  network_ = std::make_shared<net::NetworkModel>(profile);
  engines_.resize(static_cast<std::size_t>(directory_.num_nodes()));
  holder_state_.reserve(static_cast<std::size_t>(directory_.num_nodes()));
  for (int node = 0; node < directory_.num_nodes(); ++node) {
    holder_state_.push_back(std::make_unique<HolderState>());
  }
}

void PeerGroup::RegisterNode(int node, storage::StorageEnginePtr engine) {
  if (node < 0 || node >= num_nodes()) return;
  std::lock_guard lock(engines_mu_);
  engines_[static_cast<std::size_t>(node)] = std::move(engine);
}

storage::StorageEnginePtr PeerGroup::NodeEngine(int node) const {
  if (node < 0 || node >= num_nodes()) return nullptr;
  std::lock_guard lock(engines_mu_);
  return engines_[static_cast<std::size_t>(node)];
}

storage::StorageEnginePtr PeerGroup::MakePeerEngine(int node) {
  net::PeerEngine::Options engine_options;
  engine_options.self_node = node;
  engine_options.max_holders = std::max(1, options_.max_failover_holders);
  return std::make_shared<net::PeerEngine>(
      "peer" + std::to_string(node),
      std::make_shared<GroupResolver>(this, node), network_, engine_options);
}

core::PeerViewPtr PeerGroup::MakePeerView(int node) {
  return std::make_shared<DirectoryPeerView>(this, node);
}

MembershipDelta PeerGroup::KillNode(int node) {
  // Fabric first: any transfer racing the directory update times out
  // instead of silently reading a dead node's engine.
  network_->SetNodeDown(node, true);
  return directory_.NodeDown(node);
}

MembershipDelta PeerGroup::ReviveNode(int node) {
  network_->SetNodeDown(node, false);
  if (node >= 0 && node < num_nodes()) {
    HolderState& state = *holder_state_[static_cast<std::size_t>(node)];
    state.fail_streak.store(0, std::memory_order_relaxed);
    state.quarantined_until_ns.store(0, std::memory_order_relaxed);
  }
  return directory_.NodeUp(node);
}

MembershipDelta PeerGroup::JoinNode(int node) {
  network_->SetNodeDown(node, false);
  return directory_.NodeJoin(node);
}

int PeerGroup::InflightFor(int node) const {
  if (node < 0 || node >= num_nodes()) return 0;
  return holder_state_[static_cast<std::size_t>(node)]->inflight.load(
      std::memory_order_relaxed);
}

bool PeerGroup::Quarantined(int node) const {
  if (node < 0 || node >= num_nodes()) return false;
  const std::int64_t until =
      holder_state_[static_cast<std::size_t>(node)]->quarantined_until_ns.load(
          std::memory_order_relaxed);
  return until != 0 && SteadyNowNs() < until;
}

void PeerGroup::OnTransferStart(int node) {
  if (node < 0 || node >= num_nodes()) return;
  holder_state_[static_cast<std::size_t>(node)]->inflight.fetch_add(
      1, std::memory_order_relaxed);
}

void PeerGroup::OnTransferDone(int node, bool ok) {
  if (node < 0 || node >= num_nodes()) return;
  HolderState& state = *holder_state_[static_cast<std::size_t>(node)];
  state.inflight.fetch_sub(1, std::memory_order_relaxed);
  if (ok) {
    state.fail_streak.store(0, std::memory_order_relaxed);
    return;
  }
  const int streak =
      state.fail_streak.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= std::max(1, options_.quarantine_failures)) {
    state.quarantined_until_ns.store(
        SteadyNowNs() + options_.quarantine_cooldown.count(),
        std::memory_order_relaxed);
    state.fail_streak.store(0, std::memory_order_relaxed);
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("peer.quarantine", "cluster",
                           "\"node\":" + std::to_string(node));
    }
  }
}

}  // namespace monarch::cluster
