#include "cluster/peer_group.h"

#include <optional>
#include <string>
#include <utility>

#include "net/peer_engine.h"
#include "util/status.h"

namespace monarch::cluster {

namespace {

/// Resolves a peer read to the holder node's registered local engine.
/// Excludes the asking node: its own copies are served locally by its
/// hierarchy, never through the interconnect.
class GroupResolver final : public net::PeerEngine::Resolver {
 public:
  GroupResolver(PeerGroup* group, int self) : group_(group), self_(self) {}

  Result<storage::StorageEnginePtr> ResolveHolder(
      const std::string& path) override {
    const std::optional<int> holder =
        group_->directory().PlacedHolder(path, self_);
    if (!holder.has_value()) {
      return NotFoundError("no peer holds a staged copy of '" + path + "'");
    }
    storage::StorageEnginePtr engine = group_->NodeEngine(*holder);
    if (!engine) {
      return NotFoundError("peer node " + std::to_string(*holder) +
                           " holds '" + path +
                           "' but has no registered engine");
    }
    group_->directory().CountRemoteHit(*holder);
    return engine;
  }

 private:
  PeerGroup* group_;
  const int self_;
};

/// Glues one node's Monarch placement callbacks and staging gate to the
/// shared directory (the core-side half of the peer tier).
class DirectoryPeerView final : public core::PeerView {
 public:
  DirectoryPeerView(PeerGroup* group, int self)
      : group_(group), self_(self) {}

  bool HasRemoteCopy(const std::string& name) override {
    return group_->directory().PlacedHolder(name, self_).has_value();
  }

  bool ShouldStageLocally(const std::string& name) override {
    return group_->directory().IsOwner(name, self_);
  }

  void OnStaged(const std::string& name, int level) override {
    group_->directory().MarkPlaced(name, self_, level);
  }

  void OnDropped(const std::string& name) override {
    group_->directory().MarkEvicted(name, self_);
  }

 private:
  PeerGroup* group_;
  const int self_;
};

}  // namespace

PeerGroup::PeerGroup(int num_nodes, PeerOptions options)
    : directory_(num_nodes, options.replication, options.directory_shards) {
  net::NetworkProfile profile = net::NetworkProfile::ClusterInterconnect();
  profile.bandwidth_bps = options.interconnect_bandwidth_bps;
  profile.hop_latency = options.interconnect_latency;
  network_ = std::make_shared<net::NetworkModel>(profile);
  engines_.resize(static_cast<std::size_t>(directory_.num_nodes()));
}

void PeerGroup::RegisterNode(int node, storage::StorageEnginePtr engine) {
  if (node < 0 || node >= num_nodes()) return;
  std::lock_guard lock(engines_mu_);
  engines_[static_cast<std::size_t>(node)] = std::move(engine);
}

storage::StorageEnginePtr PeerGroup::NodeEngine(int node) const {
  if (node < 0 || node >= num_nodes()) return nullptr;
  std::lock_guard lock(engines_mu_);
  return engines_[static_cast<std::size_t>(node)];
}

storage::StorageEnginePtr PeerGroup::MakePeerEngine(int node) {
  return std::make_shared<net::PeerEngine>(
      "peer" + std::to_string(node),
      std::make_shared<GroupResolver>(this, node), network_);
}

core::PeerViewPtr PeerGroup::MakePeerView(int node) {
  return std::make_shared<DirectoryPeerView>(this, node);
}

}  // namespace monarch::cluster
