#include "cluster/file_directory.h"

#include <algorithm>

#include "obs/event_tracer.h"
#include "obs/json.h"

namespace monarch::cluster {

namespace {

/// Virtual nodes per cluster member. Enough to spread shard boundaries
/// evenly for small clusters without making the ring search noticeable.
constexpr int kVirtualNodes = 64;

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

FileDirectory::FileDirectory(int num_nodes, int replication,
                             std::size_t shards,
                             const std::vector<int>& deferred_nodes)
    : num_nodes_(std::max(num_nodes, 1)),
      replication_(std::clamp(replication, 1, std::max(num_nodes, 1))),
      map_(shards) {
  vnode_points_.resize(static_cast<std::size_t>(num_nodes_));
  for (int node = 0; node < num_nodes_; ++node) {
    auto& points = vnode_points_[static_cast<std::size_t>(node)];
    points.reserve(kVirtualNodes);
    for (int replica = 0; replica < kVirtualNodes; ++replica) {
      const std::string key =
          "node-" + std::to_string(node) + "#" + std::to_string(replica);
      points.push_back(RingHash(key));
    }
  }

  auto initial = std::make_shared<Membership>();
  initial->version = 1;
  initial->state.assign(static_cast<std::size_t>(num_nodes_), NodeState::kUp);
  for (const int node : deferred_nodes) {
    if (node >= 0 && node < num_nodes_) {
      initial->state[static_cast<std::size_t>(node)] = NodeState::kAbsent;
    }
  }
  // A cluster with zero initial members is meaningless — keep node 0.
  if (std::none_of(initial->state.begin(), initial->state.end(),
                   [](NodeState s) { return s == NodeState::kUp; })) {
    initial->state[0] = NodeState::kUp;
  }
  initial->live_count = static_cast<int>(
      std::count(initial->state.begin(), initial->state.end(), NodeState::kUp));
  initial->ring = BuildRing(initial->state);
  membership_ = std::move(initial);

  remote_hits_.reserve(static_cast<std::size_t>(num_nodes_));
  for (int node = 0; node < num_nodes_; ++node) {
    remote_hits_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  restage_q_.resize(static_cast<std::size_t>(num_nodes_));
  restage_queued_.resize(static_cast<std::size_t>(num_nodes_));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  lookups_ = registry.GetCounter(
      "cluster.directory.lookups", "ops",
      "remote-copy lookups against the cluster file directory");
  remote_hits_total_ = registry.GetCounter(
      "cluster.directory.remote_hits", "ops",
      "peer reads resolved to another node's staged copy");
  transitions_ = registry.GetCounter(
      "cluster.membership.transitions", "ops",
      "cluster membership transitions applied (up/down/join)");
  restage_enqueued_ = registry.GetCounter(
      "cluster.restage.enqueued", "files",
      "repair copies queued to restore replication after churn");
  restage_completed_ = registry.GetCounter(
      "cluster.restage.completed", "files",
      "repair copies claimed and scheduled by the re-staging pumps");
  restage_bytes_ = registry.GetCounter(
      "cluster.restage.bytes", "bytes",
      "bytes staged by replication repair after membership churn");
  obs_source_ = registry.AddSource([this] {
    std::vector<obs::MetricSample> out;
    obs::MetricSample entries;
    entries.name = "cluster.directory.entries";
    entries.kind = obs::MetricKind::kGauge;
    entries.unit = "files";
    entries.gauge = static_cast<std::int64_t>(this->entries());
    entries.help = "files the cluster directory has seen placed";
    out.push_back(std::move(entries));
    obs::MetricSample placed;
    placed.name = "cluster.directory.placed";
    placed.kind = obs::MetricKind::kGauge;
    placed.unit = "copies";
    placed.gauge = static_cast<std::int64_t>(placed_copies());
    placed.help = "staged copies currently advertised across the cluster";
    out.push_back(std::move(placed));
    obs::MetricSample version;
    version.name = "cluster.membership.version";
    version.kind = obs::MetricKind::kGauge;
    version.unit = "version";
    version.gauge = static_cast<std::int64_t>(membership_version());
    version.help = "current cluster membership version";
    out.push_back(std::move(version));
    obs::MetricSample live;
    live.name = "cluster.membership.live_nodes";
    live.kind = obs::MetricKind::kGauge;
    live.unit = "nodes";
    live.gauge = live_nodes();
    live.help = "cluster members currently up";
    out.push_back(std::move(live));
    obs::MetricSample depth;
    depth.name = "cluster.restage.queue_depth";
    depth.kind = obs::MetricKind::kGauge;
    depth.unit = "files";
    depth.gauge = static_cast<std::int64_t>(RestageQueueDepth());
    depth.help = "repair copies still queued across all nodes";
    out.push_back(std::move(depth));
    return out;
  });
}

std::uint64_t FileDirectory::RingHash(const std::string& key) {
  // FNV-1a 64-bit: stable across platforms, unlike std::hash.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

FileDirectory::MembershipPtr FileDirectory::membership() const {
  std::lock_guard lock(view_mu_);
  return membership_;
}

void FileDirectory::Publish(MembershipPtr next) {
  std::lock_guard lock(view_mu_);
  membership_ = std::move(next);
}

std::vector<std::pair<std::uint64_t, int>> FileDirectory::BuildRing(
    const std::vector<NodeState>& state) const {
  std::vector<std::pair<std::uint64_t, int>> ring;
  for (int node = 0; node < num_nodes_; ++node) {
    if (state[static_cast<std::size_t>(node)] == NodeState::kAbsent) continue;
    for (const std::uint64_t point :
         vnode_points_[static_cast<std::size_t>(node)]) {
      ring.emplace_back(point, node);
    }
  }
  std::sort(ring.begin(), ring.end());
  return ring;
}

std::vector<int> FileDirectory::OwnerNodesIn(const Membership& m,
                                             const std::string& name) const {
  std::vector<int> owners;
  if (m.ring.empty()) return owners;
  // Degenerate all-down cluster: walk ring order over the non-absent
  // members so PrimaryOwner stays defined (reads degrade to the PFS
  // anyway — no live holder ever resolves).
  const bool live_only = m.live_count > 0;
  const int target =
      live_only ? std::min(replication_, m.live_count) : replication_;
  owners.reserve(static_cast<std::size_t>(target));
  const std::uint64_t point = RingHash(name);
  auto it = std::lower_bound(
      m.ring.begin(), m.ring.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  // Walk the ring clockwise collecting distinct nodes; wraps at the end.
  for (std::size_t step = 0;
       step < m.ring.size() &&
       owners.size() < static_cast<std::size_t>(target);
       ++step, ++it) {
    if (it == m.ring.end()) it = m.ring.begin();
    if (live_only &&
        m.state[static_cast<std::size_t>(it->second)] != NodeState::kUp) {
      continue;
    }
    if (!Contains(owners, it->second)) owners.push_back(it->second);
  }
  return owners;
}

int FileDirectory::PrimaryOwner(const std::string& name) const {
  const std::vector<int> owners = OwnerNodes(name);
  return owners.empty() ? 0 : owners.front();
}

std::vector<int> FileDirectory::OwnerNodes(const std::string& name) const {
  const MembershipPtr m = membership();
  return OwnerNodesIn(*m, name);
}

bool FileDirectory::IsOwner(const std::string& name, int node) const {
  return Contains(OwnerNodes(name), node);
}

NodeState FileDirectory::StateOf(int node) const {
  if (node < 0 || node >= num_nodes_) return NodeState::kAbsent;
  const MembershipPtr m = membership();
  return m->state[static_cast<std::size_t>(node)];
}

std::uint64_t FileDirectory::membership_version() const {
  return membership()->version;
}

int FileDirectory::live_nodes() const { return membership()->live_count; }

MembershipDelta FileDirectory::NodeDown(int node) {
  std::lock_guard transition(transition_mu_);
  const MembershipPtr old_m = membership();
  if (node < 0 || node >= num_nodes_ ||
      old_m->state[static_cast<std::size_t>(node)] != NodeState::kUp) {
    return MembershipDelta{old_m->version, 0, 0, false};
  }
  auto next = std::make_shared<Membership>(*old_m);
  next->version = old_m->version + 1;
  next->state[static_cast<std::size_t>(node)] = NodeState::kDown;
  next->live_count = old_m->live_count - 1;
  // A down node keeps its vnodes (ownership walks *past* it), so the
  // ring is unchanged — only the state vector differs.
  return FinishTransition(old_m, std::move(next), node, "down", node);
}

MembershipDelta FileDirectory::NodeUp(int node) {
  std::lock_guard transition(transition_mu_);
  const MembershipPtr old_m = membership();
  if (node < 0 || node >= num_nodes_ ||
      old_m->state[static_cast<std::size_t>(node)] != NodeState::kDown) {
    return MembershipDelta{old_m->version, 0, 0, false};
  }
  auto next = std::make_shared<Membership>(*old_m);
  next->version = old_m->version + 1;
  next->state[static_cast<std::size_t>(node)] = NodeState::kUp;
  next->live_count = old_m->live_count + 1;
  return FinishTransition(old_m, std::move(next), -1, "up", node);
}

MembershipDelta FileDirectory::NodeJoin(int node) {
  std::lock_guard transition(transition_mu_);
  const MembershipPtr old_m = membership();
  if (node < 0 || node >= num_nodes_ ||
      old_m->state[static_cast<std::size_t>(node)] != NodeState::kAbsent) {
    return MembershipDelta{old_m->version, 0, 0, false};
  }
  auto next = std::make_shared<Membership>(*old_m);
  next->version = old_m->version + 1;
  next->state[static_cast<std::size_t>(node)] = NodeState::kUp;
  next->live_count = old_m->live_count + 1;
  next->ring = BuildRing(next->state);
  return FinishTransition(old_m, std::move(next), -1, "join", node);
}

MembershipDelta FileDirectory::FinishTransition(
    const MembershipPtr& old_m, std::shared_ptr<Membership> next,
    int retract_node, const char* kind, int node) {
  MembershipDelta delta;
  delta.version = next->version;
  delta.applied = true;
  // Publish FIRST: from this point no reader resolves a holder that the
  // new view says is dead — the atomic retraction the tentpole asks for.
  const MembershipPtr new_m = next;
  Publish(std::move(next));

  // Ownership-delta scan: diff the owner set of every known file under
  // the old vs new view, physically retract the downed node's rows, and
  // queue repair copies for live owners missing a copy.
  struct Row {
    std::string name;
    std::vector<int> holders;
  };
  std::vector<Row> rows;
  rows.reserve(map_.Size());
  map_.ForEach([&rows](const std::string& name, const Entry& entry) {
    rows.push_back(Row{name, entry.holders});
  });

  std::vector<std::string> retracted;
  {
    std::lock_guard lock(restage_mu_);
    for (Row& row : rows) {
      if (retract_node >= 0 && Contains(row.holders, retract_node)) {
        retracted.push_back(row.name);
        row.holders.erase(
            std::remove(row.holders.begin(), row.holders.end(), retract_node),
            row.holders.end());
      }
      const std::vector<int> old_owners = OwnerNodesIn(*old_m, row.name);
      const std::vector<int> new_owners = OwnerNodesIn(*new_m, row.name);
      const bool reowned = old_owners != new_owners;
      if (reowned) ++delta.files_reowned;

      int live_holders = 0;
      for (const int holder : row.holders) {
        if (new_m->state[static_cast<std::size_t>(holder)] == NodeState::kUp) {
          ++live_holders;
        }
      }
      const int target = std::min(replication_, std::max(new_m->live_count, 1));
      if (live_holders >= target && !reowned) continue;
      for (const int owner : new_owners) {
        if (new_m->state[static_cast<std::size_t>(owner)] != NodeState::kUp) {
          continue;
        }
        if (Contains(row.holders, owner)) continue;
        if (EnqueueRestageLocked(owner, row.name)) ++delta.restage_enqueued;
      }
    }
  }
  for (const std::string& name : retracted) {
    map_.Update(name, [retract_node](Entry& entry) {
      entry.holders.erase(
          std::remove(entry.holders.begin(), entry.holders.end(),
                      retract_node),
          entry.holders.end());
    });
  }

  if (transitions_ != nullptr) transitions_->Increment();
  if (restage_enqueued_ != nullptr && delta.restage_enqueued > 0) {
    restage_enqueued_->Increment(delta.restage_enqueued);
  }
  restage_enqueued_total_.fetch_add(delta.restage_enqueued,
                                    std::memory_order_relaxed);
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant(
        "membership.transition", "cluster",
        "\"kind\":" + obs::JsonQuote(kind) +
            ",\"node\":" + std::to_string(node) +
            ",\"version\":" + std::to_string(delta.version) +
            ",\"reowned\":" + std::to_string(delta.files_reowned) +
            ",\"restage\":" + std::to_string(delta.restage_enqueued));
  }
  return delta;
}

bool FileDirectory::EnqueueRestageLocked(int node, const std::string& name) {
  auto& queued = restage_queued_[static_cast<std::size_t>(node)];
  if (!queued.insert(name).second) return false;
  restage_q_[static_cast<std::size_t>(node)].push_back(name);
  return true;
}

std::vector<std::string> FileDirectory::TakeRestage(int node,
                                                    std::size_t max_files) {
  std::vector<std::string> out;
  if (node < 0 || node >= num_nodes_ || max_files == 0) return out;
  std::lock_guard lock(restage_mu_);
  auto& queue = restage_q_[static_cast<std::size_t>(node)];
  auto& queued = restage_queued_[static_cast<std::size_t>(node)];
  while (!queue.empty() && out.size() < max_files) {
    queued.erase(queue.front());
    out.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  return out;
}

std::uint64_t FileDirectory::RestageQueueDepth() const {
  std::lock_guard lock(restage_mu_);
  std::uint64_t total = 0;
  for (const auto& queue : restage_q_) total += queue.size();
  return total;
}

std::uint64_t FileDirectory::RestageQueueDepth(int node) const {
  if (node < 0 || node >= num_nodes_) return 0;
  std::lock_guard lock(restage_mu_);
  return restage_q_[static_cast<std::size_t>(node)].size();
}

void FileDirectory::CountRestageCompleted(std::uint64_t bytes) {
  restage_completed_total_.fetch_add(1, std::memory_order_relaxed);
  if (restage_completed_ != nullptr) restage_completed_->Increment();
  if (restage_bytes_ != nullptr && bytes > 0) {
    restage_bytes_->Increment(bytes);
  }
}

ReplicationHealth FileDirectory::CheckReplication() const {
  ReplicationHealth health;
  const MembershipPtr m = membership();
  const int target = std::min(replication_, std::max(m->live_count, 1));
  map_.ForEach([&](const std::string&, const Entry& entry) {
    ++health.files;
    int live_holders = 0;
    for (const int holder : entry.holders) {
      if (holder >= 0 && holder < num_nodes_ &&
          m->state[static_cast<std::size_t>(holder)] == NodeState::kUp) {
        ++live_holders;
      }
    }
    if (live_holders >= target) {
      ++health.at_target;
    } else {
      ++health.below_target;
      if (live_holders == 0) ++health.unhosted;
    }
  });
  return health;
}

void FileDirectory::MarkPlaced(const std::string& name, int node, int level) {
  map_.Insert(name, Entry{});
  map_.Update(name, [&](Entry& entry) {
    if (!Contains(entry.holders, node)) entry.holders.push_back(node);
    entry.level = level;
  });
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("directory.place", "cluster",
                         "\"file\":" + obs::JsonQuote(name) +
                             ",\"node\":" + std::to_string(node) +
                             ",\"level\":" + std::to_string(level));
  }
}

void FileDirectory::MarkEvicted(const std::string& name, int node) {
  const bool known = map_.Update(name, [&](Entry& entry) {
    entry.holders.erase(
        std::remove(entry.holders.begin(), entry.holders.end(), node),
        entry.holders.end());
  });
  if (!known) return;
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("directory.evict", "cluster",
                         "\"file\":" + obs::JsonQuote(name) +
                             ",\"node\":" + std::to_string(node));
  }
}

std::vector<int> FileDirectory::PlacedHolders(const std::string& name,
                                              int exclude_node) const {
  if (lookups_ != nullptr) lookups_->Increment();
  std::vector<int> out;
  const std::optional<Entry> entry = map_.Find(name);
  if (!entry.has_value() || entry->holders.empty()) return out;
  const MembershipPtr m = membership();
  const auto is_live = [&](int node) {
    return node >= 0 && node < num_nodes_ &&
           m->state[static_cast<std::size_t>(node)] == NodeState::kUp;
  };
  // Prefer holders in ring order so replicated shards spread peer load
  // the same deterministic way staging spread the copies; only LIVE
  // holders are ever returned (a downed node's ads are ghosts).
  for (const int owner : OwnerNodesIn(*m, name)) {
    if (owner == exclude_node || !is_live(owner)) continue;
    if (Contains(entry->holders, owner)) out.push_back(owner);
  }
  for (const int holder : entry->holders) {
    if (holder == exclude_node || !is_live(holder)) continue;
    if (!Contains(out, holder)) out.push_back(holder);
  }
  return out;
}

std::optional<int> FileDirectory::PlacedHolder(const std::string& name,
                                               int exclude_node) const {
  const std::vector<int> holders = PlacedHolders(name, exclude_node);
  if (holders.empty()) return std::nullopt;
  return holders.front();
}

void FileDirectory::CountRemoteHit(int node) {
  if (node < 0 || node >= num_nodes_) return;
  remote_hits_[static_cast<std::size_t>(node)]->fetch_add(
      1, std::memory_order_relaxed);
  if (remote_hits_total_ != nullptr) remote_hits_total_->Increment();
}

std::uint64_t FileDirectory::entries() const { return map_.Size(); }

std::uint64_t FileDirectory::placed_copies() const {
  std::uint64_t total = 0;
  map_.ForEach([&total](const std::string&, const Entry& entry) {
    total += entry.holders.size();
  });
  return total;
}

DirectoryNodeStats FileDirectory::StatsFor(int node) const {
  DirectoryNodeStats stats;
  stats.node = node;
  if (node < 0 || node >= num_nodes_) return stats;
  stats.state = StateOf(node);
  stats.restage_pending = RestageQueueDepth(node);
  stats.remote_hits = remote_hits_[static_cast<std::size_t>(node)]->load(
      std::memory_order_relaxed);
  map_.ForEach([&](const std::string& name, const Entry& entry) {
    if (PrimaryOwner(name) == node) ++stats.owned;
    if (Contains(entry.holders, node)) ++stats.placed;
  });
  return stats;
}

}  // namespace monarch::cluster
