#include "cluster/file_directory.h"

#include <algorithm>

#include "obs/event_tracer.h"
#include "obs/json.h"

namespace monarch::cluster {

namespace {

/// Virtual nodes per cluster member. Enough to spread shard boundaries
/// evenly for small clusters without making the ring search noticeable.
constexpr int kVirtualNodes = 64;

}  // namespace

FileDirectory::FileDirectory(int num_nodes, int replication,
                             std::size_t shards)
    : num_nodes_(std::max(num_nodes, 1)),
      replication_(std::clamp(replication, 1, std::max(num_nodes, 1))),
      map_(shards) {
  ring_.reserve(static_cast<std::size_t>(num_nodes_) * kVirtualNodes);
  for (int node = 0; node < num_nodes_; ++node) {
    for (int replica = 0; replica < kVirtualNodes; ++replica) {
      const std::string key =
          "node-" + std::to_string(node) + "#" + std::to_string(replica);
      ring_.emplace_back(RingHash(key), node);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  remote_hits_.reserve(static_cast<std::size_t>(num_nodes_));
  for (int node = 0; node < num_nodes_; ++node) {
    remote_hits_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  lookups_ = registry.GetCounter(
      "cluster.directory.lookups", "ops",
      "remote-copy lookups against the cluster file directory");
  remote_hits_total_ = registry.GetCounter(
      "cluster.directory.remote_hits", "ops",
      "peer reads resolved to another node's staged copy");
  obs_source_ = registry.AddSource([this] {
    std::vector<obs::MetricSample> out;
    obs::MetricSample entries;
    entries.name = "cluster.directory.entries";
    entries.kind = obs::MetricKind::kGauge;
    entries.unit = "files";
    entries.gauge = static_cast<std::int64_t>(this->entries());
    entries.help = "files the cluster directory has seen placed";
    out.push_back(std::move(entries));
    obs::MetricSample placed;
    placed.name = "cluster.directory.placed";
    placed.kind = obs::MetricKind::kGauge;
    placed.unit = "copies";
    placed.gauge = static_cast<std::int64_t>(placed_copies());
    placed.help = "staged copies currently advertised across the cluster";
    out.push_back(std::move(placed));
    return out;
  });
}

std::uint64_t FileDirectory::RingHash(const std::string& key) {
  // FNV-1a 64-bit: stable across platforms, unlike std::hash.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

int FileDirectory::PrimaryOwner(const std::string& name) const {
  return OwnerNodes(name).front();
}

std::vector<int> FileDirectory::OwnerNodes(const std::string& name) const {
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(replication_));
  const std::uint64_t point = RingHash(name);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  // Walk the ring clockwise collecting distinct nodes; wraps at the end.
  for (std::size_t step = 0;
       step < ring_.size() && owners.size() <
                                  static_cast<std::size_t>(replication_);
       ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(owners.begin(), owners.end(), it->second) == owners.end()) {
      owners.push_back(it->second);
    }
  }
  return owners;
}

bool FileDirectory::IsOwner(const std::string& name, int node) const {
  const std::vector<int> owners = OwnerNodes(name);
  return std::find(owners.begin(), owners.end(), node) != owners.end();
}

void FileDirectory::MarkPlaced(const std::string& name, int node, int level) {
  map_.Insert(name, Entry{});
  map_.Update(name, [&](Entry& entry) {
    if (std::find(entry.holders.begin(), entry.holders.end(), node) ==
        entry.holders.end()) {
      entry.holders.push_back(node);
    }
    entry.level = level;
  });
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("directory.place", "cluster",
                         "\"file\":" + obs::JsonQuote(name) +
                             ",\"node\":" + std::to_string(node) +
                             ",\"level\":" + std::to_string(level));
  }
}

void FileDirectory::MarkEvicted(const std::string& name, int node) {
  const bool known = map_.Update(name, [&](Entry& entry) {
    entry.holders.erase(
        std::remove(entry.holders.begin(), entry.holders.end(), node),
        entry.holders.end());
  });
  if (!known) return;
  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant("directory.evict", "cluster",
                         "\"file\":" + obs::JsonQuote(name) +
                             ",\"node\":" + std::to_string(node));
  }
}

std::optional<int> FileDirectory::PlacedHolder(const std::string& name,
                                               int exclude_node) const {
  if (lookups_ != nullptr) lookups_->Increment();
  const std::optional<Entry> entry = map_.Find(name);
  if (!entry.has_value() || entry->holders.empty()) return std::nullopt;
  // Prefer holders in ring order so replicated shards spread peer load
  // the same deterministic way staging spread the copies.
  for (const int owner : OwnerNodes(name)) {
    if (owner == exclude_node) continue;
    if (std::find(entry->holders.begin(), entry->holders.end(), owner) !=
        entry->holders.end()) {
      return owner;
    }
  }
  for (const int holder : entry->holders) {
    if (holder != exclude_node) return holder;
  }
  return std::nullopt;
}

void FileDirectory::CountRemoteHit(int node) {
  if (node < 0 || node >= num_nodes_) return;
  remote_hits_[static_cast<std::size_t>(node)]->fetch_add(
      1, std::memory_order_relaxed);
  if (remote_hits_total_ != nullptr) remote_hits_total_->Increment();
}

std::uint64_t FileDirectory::entries() const { return map_.Size(); }

std::uint64_t FileDirectory::placed_copies() const {
  std::uint64_t total = 0;
  map_.ForEach([&total](const std::string&, const Entry& entry) {
    total += entry.holders.size();
  });
  return total;
}

DirectoryNodeStats FileDirectory::StatsFor(int node) const {
  DirectoryNodeStats stats;
  stats.node = node;
  if (node < 0 || node >= num_nodes_) return stats;
  stats.remote_hits = remote_hits_[static_cast<std::size_t>(node)]->load(
      std::memory_order_relaxed);
  map_.ForEach([&](const std::string& name, const Entry& entry) {
    if (PrimaryOwner(name) == node) ++stats.owned;
    if (std::find(entry.holders.begin(), entry.holders.end(), node) !=
        entry.holders.end()) {
      ++stats.placed;
    }
  });
  return stats;
}

}  // namespace monarch::cluster
