#include "tfrecord/recordio.h"

#include "tfrecord/format.h"

namespace monarch::tfrecord {

Status RecordIoWriter::Append(std::span<const std::byte> payload) {
  if (payload.size() > kRecordIoMaxLength) {
    return InvalidArgumentError(
        "RecordIO payload exceeds the 29-bit length field");
  }
  const std::size_t start = buffer_.size();
  buffer_.resize(start + RecordIoFramedSize(payload.size()));

  std::byte* p = buffer_.data() + start;
  StoreLe32(kRecordIoMagic, p);
  // cflag 0 (complete record) in the top 3 bits.
  StoreLe32(static_cast<std::uint32_t>(payload.size()), p + 4);
  std::copy(payload.begin(), payload.end(), p + kRecordIoHeaderBytes);
  // Remaining bytes are already zero from resize() — the pad.
  ++count_;
  return Status::Ok();
}

Status RecordIoWriter::Flush(storage::StorageEngine& engine,
                             const std::string& path) {
  MONARCH_RETURN_IF_ERROR(engine.Write(path, buffer_));
  buffer_.clear();
  count_ = 0;
  return Status::Ok();
}

Result<std::vector<std::byte>> RecordIoReader::ReadRecord() {
  if (at_end_) {
    return OutOfRangeError("end of RecordIO file '" + source_.Name() + "'");
  }

  std::byte header[kRecordIoHeaderBytes];
  MONARCH_ASSIGN_OR_RETURN(const std::size_t n,
                           source_.ReadAt(offset_, header));
  if (n == 0) {
    at_end_ = true;
    return OutOfRangeError("end of RecordIO file '" + source_.Name() + "'");
  }
  if (n < kRecordIoHeaderBytes) {
    return DataLossError("torn RecordIO header at offset " +
                         std::to_string(offset_));
  }
  if (LoadLe32(header) != kRecordIoMagic) {
    return DataLossError("bad RecordIO magic at offset " +
                         std::to_string(offset_));
  }
  const std::uint32_t lrecord = LoadLe32(header + 4);
  const std::uint32_t length = lrecord & kRecordIoMaxLength;

  std::vector<std::byte> payload(length);
  if (length > 0) {
    MONARCH_ASSIGN_OR_RETURN(
        const std::size_t got,
        source_.ReadAt(offset_ + kRecordIoHeaderBytes, payload));
    if (got < length) {
      return DataLossError("torn RecordIO payload at offset " +
                           std::to_string(offset_));
    }
  }
  offset_ += RecordIoFramedSize(length);
  ++records_read_;
  return payload;
}

}  // namespace monarch::tfrecord
