// TFRecordReader: sequential record iterator over a RandomAccessSource.
//
// The reader deliberately issues I/O the way TensorFlow's RecordReader
// does — a 12-byte header read followed by a payload(+footer) read, i.e.
// many *partial* reads of a large file — because MONARCH's key first-epoch
// optimisation (fetch the whole record file in the background when a
// partial read arrives, §III-B) only matters under exactly this pattern.
// An optional read-chunk buffer coalesces small reads the way TF's
// buffered input stream does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "tfrecord/random_access_source.h"
#include "util/status.h"

namespace monarch::tfrecord {

struct ReaderOptions {
  /// When > 0, reads from the source are rounded up to this chunk size and
  /// buffered (fewer, larger I/Os). When 0, each header/payload is its own
  /// source read (maximally fragmented I/O).
  std::size_t buffer_bytes = 64 * 1024;

  /// Verify payload CRCs (TF checks record CRCs by default).
  bool verify_checksums = true;
};

class TFRecordReader {
 public:
  TFRecordReader(RandomAccessSource& source, ReaderOptions options = {});

  /// Read the next record payload. Returns:
  ///  - a payload on success,
  ///  - NOT_FOUND-free empty optional wrapped as OUT_OF_RANGE? No:
  ///    `Result` with OUT_OF_RANGE status signals clean end-of-file,
  ///  - DATA_LOSS on corruption (CRC mismatch / torn frame).
  Result<std::vector<std::byte>> ReadRecord();

  /// True once the reader has consumed the final record.
  [[nodiscard]] bool AtEnd() const noexcept { return at_end_; }

  /// Records successfully returned so far.
  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return records_read_;
  }

  /// Current byte offset into the file.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  /// Read exactly `dst.size()` bytes at offset_ (through the buffer when
  /// enabled), advancing offset_. OUT_OF_RANGE on clean EOF at a record
  /// boundary start, DATA_LOSS on EOF mid-frame.
  Status ReadExact(std::span<std::byte> dst, bool at_record_start);

  Result<std::size_t> BufferedRead(std::uint64_t offset,
                                   std::span<std::byte> dst);

  RandomAccessSource& source_;
  ReaderOptions options_;
  std::uint64_t offset_ = 0;
  std::uint64_t records_read_ = 0;
  bool at_end_ = false;

  // Read-ahead buffer state.
  std::vector<std::byte> buffer_;
  std::uint64_t buffer_start_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace monarch::tfrecord
