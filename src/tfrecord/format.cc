#include "tfrecord/format.h"

#include <cassert>

namespace monarch::tfrecord {

void StoreLe64(std::uint64_t v, std::byte* dst) noexcept {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
  }
}

void StoreLe32(std::uint32_t v, std::byte* dst) noexcept {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
  }
}

std::uint64_t LoadLe64(const std::byte* src) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | std::to_integer<std::uint64_t>(src[i]);
  }
  return v;
}

std::uint32_t LoadLe32(const std::byte* src) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | std::to_integer<std::uint32_t>(src[i]);
  }
  return v;
}

void EncodeHeader(std::uint64_t payload_size, std::span<std::byte> dst) {
  assert(dst.size() >= kHeaderBytes);
  StoreLe64(payload_size, dst.data());
  const std::uint32_t crc =
      MaskCrc(Crc32c(dst.data(), kLengthBytes));
  StoreLe32(crc, dst.data() + kLengthBytes);
}

Result<std::uint64_t> DecodeHeader(std::span<const std::byte> src) {
  if (src.size() < kHeaderBytes) {
    return OutOfRangeError("truncated TFRecord header");
  }
  const std::uint32_t stored = LoadLe32(src.data() + kLengthBytes);
  const std::uint32_t computed = MaskCrc(Crc32c(src.data(), kLengthBytes));
  if (stored != computed) {
    return DataLossError("TFRecord length CRC mismatch");
  }
  return LoadLe64(src.data());
}

std::uint32_t PayloadCrc(std::span<const std::byte> payload) {
  return MaskCrc(Crc32c(payload));
}

Status VerifyPayload(std::span<const std::byte> payload,
                     std::uint32_t stored_masked_crc) {
  if (PayloadCrc(payload) != stored_masked_crc) {
    return DataLossError("TFRecord payload CRC mismatch");
  }
  return Status::Ok();
}

}  // namespace monarch::tfrecord
