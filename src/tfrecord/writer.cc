#include "tfrecord/writer.h"

#include "tfrecord/format.h"

namespace monarch::tfrecord {

void TFRecordWriter::Append(std::span<const std::byte> payload) {
  const std::size_t start = buffer_.size();
  buffer_.resize(start + FramedSize(payload.size()));

  std::byte* p = buffer_.data() + start;
  EncodeHeader(payload.size(), {p, kHeaderBytes});
  p += kHeaderBytes;
  std::copy(payload.begin(), payload.end(), p);
  p += payload.size();
  StoreLe32(PayloadCrc(payload), p);
  ++count_;
}

Status TFRecordWriter::Flush(storage::StorageEngine& engine,
                             const std::string& path) {
  MONARCH_RETURN_IF_ERROR(engine.Write(path, buffer_));
  buffer_.clear();
  count_ = 0;
  return Status::Ok();
}

}  // namespace monarch::tfrecord
