// TFRecordWriter: buffers framed records and flushes the finished file to
// a storage engine. Files are written whole (the dataset generator packs
// a fixed sample count per file, like ImageNet->TFRecord conversion).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::tfrecord {

class TFRecordWriter {
 public:
  TFRecordWriter() = default;

  /// Frame `payload` and append it to the in-memory file image.
  void Append(std::span<const std::byte> payload);

  /// Number of records appended so far.
  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }

  /// Current file-image size in bytes.
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return buffer_.size();
  }

  /// View of the encoded file image.
  [[nodiscard]] std::span<const std::byte> contents() const noexcept {
    return buffer_;
  }

  /// Write the file image to `engine` under `path` and clear the buffer.
  Status Flush(storage::StorageEngine& engine, const std::string& path);

 private:
  std::vector<std::byte> buffer_;
  std::size_t count_ = 0;
};

}  // namespace monarch::tfrecord
