// MXNet RecordIO wire format.
//
// The paper lists MXNet's RecordIO next to TFRecords as the packed
// formats DL frameworks use (§I); MONARCH is format-agnostic because it
// intercepts below the record layer. Supporting a second real format
// demonstrates that: the same middleware serves both framings untouched.
//
// A RecordIO file is a sequence of 4-byte-aligned records:
//
//   uint32  kMagic (0xced7230a, little-endian)
//   uint32  lrecord      — cflag in the top 3 bits, payload length in
//                          the bottom 29 bits
//   byte[length] payload
//   byte[pad]    zero padding to the next 4-byte boundary
//
// Only complete records (cflag 0) are produced by the writer; the reader
// accepts any cflag but does not reassemble multi-part records (the
// dataset generator never emits them).
#pragma once

#include <cstdint>
#include <vector>

#include "storage/storage_engine.h"
#include "tfrecord/random_access_source.h"
#include "util/status.h"

namespace monarch::tfrecord {

inline constexpr std::uint32_t kRecordIoMagic = 0xCED7230AU;
inline constexpr std::size_t kRecordIoHeaderBytes = 8;
inline constexpr std::uint32_t kRecordIoMaxLength = (1U << 29) - 1;

/// Bytes a payload occupies on disk, padding included.
constexpr std::uint64_t RecordIoFramedSize(std::uint64_t payload) noexcept {
  const std::uint64_t unpadded = kRecordIoHeaderBytes + payload;
  return (unpadded + 3) & ~std::uint64_t{3};
}

/// Buffers framed records; Flush writes the file image to an engine.
class RecordIoWriter {
 public:
  /// INVALID_ARGUMENT if payload exceeds the 29-bit length field.
  Status Append(std::span<const std::byte> payload);

  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] std::span<const std::byte> contents() const noexcept {
    return buffer_;
  }

  Status Flush(storage::StorageEngine& engine, const std::string& path);

 private:
  std::vector<std::byte> buffer_;
  std::size_t count_ = 0;
};

/// Sequential record iterator; OUT_OF_RANGE at clean EOF, DATA_LOSS on a
/// bad magic / torn frame.
class RecordIoReader {
 public:
  explicit RecordIoReader(RandomAccessSource& source) : source_(source) {}

  Result<std::vector<std::byte>> ReadRecord();

  [[nodiscard]] bool AtEnd() const noexcept { return at_end_; }
  [[nodiscard]] std::uint64_t records_read() const noexcept {
    return records_read_;
  }

 private:
  RandomAccessSource& source_;
  std::uint64_t offset_ = 0;
  std::uint64_t records_read_ = 0;
  bool at_end_ = false;
};

}  // namespace monarch::tfrecord
