#include "tfrecord/reader.h"

#include <algorithm>
#include <cstring>

#include "tfrecord/format.h"

namespace monarch::tfrecord {

TFRecordReader::TFRecordReader(RandomAccessSource& source,
                               ReaderOptions options)
    : source_(source), options_(options) {
  if (options_.buffer_bytes > 0) buffer_.resize(options_.buffer_bytes);
}

Result<std::size_t> TFRecordReader::BufferedRead(std::uint64_t offset,
                                                 std::span<std::byte> dst) {
  if (options_.buffer_bytes == 0 || dst.size() >= options_.buffer_bytes) {
    return source_.ReadAt(offset, dst);
  }

  std::size_t copied = 0;
  while (copied < dst.size()) {
    const std::uint64_t want = offset + copied;
    if (want >= buffer_start_ && want < buffer_start_ + buffer_len_) {
      const std::size_t avail =
          static_cast<std::size_t>(buffer_start_ + buffer_len_ - want);
      const std::size_t n = std::min(avail, dst.size() - copied);
      std::memcpy(dst.data() + copied,
                  buffer_.data() + (want - buffer_start_), n);
      copied += n;
      continue;
    }
    // Refill the buffer at `want`.
    auto result = source_.ReadAt(want, buffer_);
    if (!result.ok()) return result.status();
    buffer_start_ = want;
    buffer_len_ = result.value();
    if (buffer_len_ == 0) break;  // EOF
  }
  return copied;
}

Status TFRecordReader::ReadExact(std::span<std::byte> dst,
                                 bool at_record_start) {
  MONARCH_ASSIGN_OR_RETURN(const std::size_t n,
                           BufferedRead(offset_, dst));
  if (n == dst.size()) {
    offset_ += n;
    return Status::Ok();
  }
  if (n == 0 && at_record_start) {
    at_end_ = true;
    return OutOfRangeError("end of record file '" + source_.Name() + "'");
  }
  return DataLossError("torn TFRecord frame in '" + source_.Name() +
                       "' at offset " + std::to_string(offset_));
}

Result<std::vector<std::byte>> TFRecordReader::ReadRecord() {
  if (at_end_) {
    return OutOfRangeError("end of record file '" + source_.Name() + "'");
  }

  std::byte header[kHeaderBytes];
  MONARCH_RETURN_IF_ERROR(ReadExact(header, /*at_record_start=*/true));
  MONARCH_ASSIGN_OR_RETURN(const std::uint64_t length,
                           DecodeHeader(header));

  std::vector<std::byte> payload(length + kFooterBytes);
  MONARCH_RETURN_IF_ERROR(ReadExact(payload, /*at_record_start=*/false));

  const std::uint32_t stored_crc = LoadLe32(payload.data() + length);
  payload.resize(length);
  if (options_.verify_checksums) {
    MONARCH_RETURN_IF_ERROR(VerifyPayload(payload, stored_crc));
  }
  ++records_read_;
  return payload;
}

}  // namespace monarch::tfrecord
