// Record index: byte offsets/sizes of every record in a TFRecord file.
// Used by the dataset generator for validation and by the trace tooling
// to map byte offsets back to sample indices.
#pragma once

#include <cstdint>
#include <vector>

#include "tfrecord/random_access_source.h"
#include "util/status.h"

namespace monarch::tfrecord {

struct RecordSpan {
  std::uint64_t offset = 0;       ///< offset of the record header
  std::uint64_t payload_size = 0;
  [[nodiscard]] std::uint64_t framed_size() const noexcept;
};

/// Scan a record file and return the span of every record, verifying
/// header CRCs (payloads are not read). DATA_LOSS on a torn/corrupt file.
Result<std::vector<RecordSpan>> BuildIndex(RandomAccessSource& source);

}  // namespace monarch::tfrecord
