// TFRecord wire format.
//
// A TFRecord file is a sequence of framed records:
//
//   uint64  length        (little-endian payload byte count)
//   uint32  masked_crc32c(length bytes)
//   byte[length] payload
//   uint32  masked_crc32c(payload)
//
// This matches TensorFlow's on-disk format bit-for-bit (including the CRC
// mask transform), so datasets generated here are real TFRecords. The
// paper's datasets are TFRecord-packed ImageNet; MONARCH's "read the full
// record file in the background on a partial read" optimisation (§III-B)
// exists precisely because frameworks stream these files in small framed
// chunks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/crc32c.h"
#include "util/status.h"

namespace monarch::tfrecord {

inline constexpr std::size_t kLengthBytes = 8;
inline constexpr std::size_t kCrcBytes = 4;
inline constexpr std::size_t kHeaderBytes = kLengthBytes + kCrcBytes;
inline constexpr std::size_t kFooterBytes = kCrcBytes;

/// Total on-disk footprint of a record with `payload_size` payload bytes.
constexpr std::uint64_t FramedSize(std::uint64_t payload_size) noexcept {
  return kHeaderBytes + payload_size + kFooterBytes;
}

/// Encode the 12-byte header (length + masked length-CRC) into `dst`.
void EncodeHeader(std::uint64_t payload_size, std::span<std::byte> dst);

/// Decode and verify a 12-byte header; returns the payload length or
/// DATA_LOSS on CRC mismatch.
Result<std::uint64_t> DecodeHeader(std::span<const std::byte> src);

/// Masked CRC of a payload, as stored in the record footer.
std::uint32_t PayloadCrc(std::span<const std::byte> payload);

/// Verify a payload against its footer CRC.
Status VerifyPayload(std::span<const std::byte> payload,
                     std::uint32_t stored_masked_crc);

/// Little-endian scalar helpers (the format is LE regardless of host).
void StoreLe64(std::uint64_t v, std::byte* dst) noexcept;
void StoreLe32(std::uint32_t v, std::byte* dst) noexcept;
std::uint64_t LoadLe64(const std::byte* src) noexcept;
std::uint32_t LoadLe32(const std::byte* src) noexcept;

}  // namespace monarch::tfrecord
