// RandomAccessSource: byte-addressable view the TFRecord reader streams
// from. Adapters exist for a raw storage engine and (in core/) for the
// MONARCH middleware, so the same reader code serves both the vanilla
// and the MONARCH-enabled pipelines — mirroring how the paper swaps only
// the pread call inside TensorFlow's file-system driver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::tfrecord {

class RandomAccessSource {
 public:
  virtual ~RandomAccessSource() = default;

  /// Read up to dst.size() bytes at `offset`; returns bytes read (0 at EOF).
  virtual Result<std::size_t> ReadAt(std::uint64_t offset,
                                     std::span<std::byte> dst) = 0;

  /// Total size of the underlying object.
  virtual Result<std::uint64_t> Size() = 0;

  [[nodiscard]] virtual std::string Name() const = 0;
};

using RandomAccessSourcePtr = std::unique_ptr<RandomAccessSource>;

/// Adapter: one file on one storage engine.
class EngineSource final : public RandomAccessSource {
 public:
  EngineSource(storage::StorageEnginePtr engine, std::string path)
      : engine_(std::move(engine)), path_(std::move(path)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             std::span<std::byte> dst) override {
    return engine_->Read(path_, offset, dst);
  }

  Result<std::uint64_t> Size() override { return engine_->FileSize(path_); }

  [[nodiscard]] std::string Name() const override { return path_; }

 private:
  storage::StorageEnginePtr engine_;
  std::string path_;
};

}  // namespace monarch::tfrecord
