// RandomAccessSource: byte-addressable view the TFRecord reader streams
// from. Adapters exist for a raw storage engine and (in core/) for the
// MONARCH middleware, so the same reader code serves both the vanilla
// and the MONARCH-enabled pipelines — mirroring how the paper swaps only
// the pread call inside TensorFlow's file-system driver.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::tfrecord {

class RandomAccessSource {
 public:
  virtual ~RandomAccessSource() = default;

  /// Read up to dst.size() bytes at `offset`; returns bytes read (0 at EOF).
  virtual Result<std::size_t> ReadAt(std::uint64_t offset,
                                     std::span<std::byte> dst) = 0;

  /// Total size of the underlying object.
  virtual Result<std::uint64_t> Size() = 0;

  [[nodiscard]] virtual std::string Name() const = 0;
};

using RandomAccessSourcePtr = std::unique_ptr<RandomAccessSource>;

/// Adapter: an in-memory byte span the caller keeps alive (a zero-copy
/// ReadLease from the async read ring, a staged buffer, a test vector).
/// The reader parses straight out of the lent pages — the only copies
/// left are the record payloads themselves.
class SpanSource final : public RandomAccessSource {
 public:
  SpanSource(std::span<const std::byte> data, std::string name)
      : data_(data), name_(std::move(name)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             std::span<std::byte> dst) override {
    if (offset >= data_.size()) return std::size_t{0};  // EOF
    const std::size_t n =
        std::min(dst.size(), data_.size() - static_cast<std::size_t>(offset));
    std::memcpy(dst.data(), data_.data() + offset, n);
    return n;
  }

  Result<std::uint64_t> Size() override { return data_.size(); }

  [[nodiscard]] std::string Name() const override { return name_; }

 private:
  std::span<const std::byte> data_;
  std::string name_;
};

/// Adapter: one file on one storage engine.
class EngineSource final : public RandomAccessSource {
 public:
  EngineSource(storage::StorageEnginePtr engine, std::string path)
      : engine_(std::move(engine)), path_(std::move(path)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             std::span<std::byte> dst) override {
    return engine_->Read(path_, offset, dst);
  }

  Result<std::uint64_t> Size() override { return engine_->FileSize(path_); }

  [[nodiscard]] std::string Name() const override { return path_; }

 private:
  storage::StorageEnginePtr engine_;
  std::string path_;
};

}  // namespace monarch::tfrecord
