#include "tfrecord/index.h"

#include "tfrecord/format.h"

namespace monarch::tfrecord {

std::uint64_t RecordSpan::framed_size() const noexcept {
  return FramedSize(payload_size);
}

Result<std::vector<RecordSpan>> BuildIndex(RandomAccessSource& source) {
  MONARCH_ASSIGN_OR_RETURN(const std::uint64_t file_size, source.Size());

  std::vector<RecordSpan> index;
  std::uint64_t offset = 0;
  std::byte header[kHeaderBytes];
  while (offset < file_size) {
    MONARCH_ASSIGN_OR_RETURN(const std::size_t n,
                             source.ReadAt(offset, header));
    if (n < kHeaderBytes) {
      return DataLossError("torn TFRecord header at offset " +
                           std::to_string(offset));
    }
    MONARCH_ASSIGN_OR_RETURN(const std::uint64_t length,
                             DecodeHeader(header));
    const std::uint64_t framed = FramedSize(length);
    if (offset + framed > file_size) {
      return DataLossError("record overruns file at offset " +
                           std::to_string(offset));
    }
    index.push_back(RecordSpan{offset, length});
    offset += framed;
  }
  return index;
}

}  // namespace monarch::tfrecord
