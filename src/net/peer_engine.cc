#include "net/peer_engine.h"

#include <utility>
#include <vector>

#include "obs/event_tracer.h"
#include "obs/json.h"

namespace monarch::net {

PeerEngine::PeerEngine(std::string name, ResolverPtr resolver,
                       NetworkModelPtr network)
    : PeerEngine(std::move(name), std::move(resolver), std::move(network),
                 Options{}) {}

PeerEngine::PeerEngine(std::string name, ResolverPtr resolver,
                       NetworkModelPtr network, Options options)
    : name_(std::move(name)),
      resolver_(std::move(resolver)),
      network_(std::move(network)),
      options_(options),
      stats_reg_(storage::RegisterIoStats(obs::MetricsRegistry::Global(),
                                          Name(), &stats_)) {
  failovers_ = obs::MetricsRegistry::Global().GetCounter(
      "net.peer_failover", "ops",
      "peer reads rescued by another live holder after a replica failed");
}

Result<PeerEngine::Resolver::Holder> PeerEngine::ResolveReachable(
    const std::string& path, std::span<const int> exclude) {
  MONARCH_ASSIGN_OR_RETURN(Resolver::Holder holder,
                           resolver_->ResolveHolder(path, exclude));
  if (!network_->Reachable(options_.self_node, holder.node)) {
    // The directory said the holder is live but the fabric disagrees
    // (partition, or a kill racing the membership update): the RPC
    // blocks for the modelled detection timeout, then gives up.
    network_->ChargeRpcTimeout();
    return UnavailableError("peer node " + std::to_string(holder.node) +
                            " unreachable serving '" + path + "'");
  }
  return holder;
}

Result<std::size_t> PeerEngine::Read(std::string_view path_view,
                                     std::uint64_t offset,
                                     std::span<std::byte> dst) {
  obs::TraceSpan span("peer.read", "net");
  const Stopwatch timer;
  // Resolver and failover bookkeeping key by owned string; one copy per
  // peer read is fine — the fabric transfer dwarfs it.
  const std::string path(path_view);
  std::vector<int> tried;
  Status last_failure = Status::Ok();
  const int max_holders = std::max(1, options_.max_holders);
  for (int attempt = 0; attempt < max_holders; ++attempt) {
    auto holder_or = resolver_->ResolveHolder(path, tried);
    if (!holder_or.ok()) {
      // No (further) live holder: the very first miss is the ladder's
      // peer_miss; after a failed attempt, surface that failure so the
      // ladder counts peer_error and falls back to the PFS.
      return attempt == 0 ? holder_or.status() : last_failure;
    }
    const Resolver::Holder holder = std::move(holder_or).value();
    resolver_->OnTransferStart(holder.node);
    if (!network_->Reachable(options_.self_node, holder.node)) {
      // The directory said the holder is live but the fabric disagrees
      // (partition, or a kill racing the membership update): the RPC
      // blocks for the modelled detection timeout, then fails over.
      network_->ChargeRpcTimeout();
      resolver_->OnTransferDone(holder.node, false);
      last_failure =
          UnavailableError("peer node " + std::to_string(holder.node) +
                           " unreachable serving '" + path + "'");
      tried.push_back(holder.node);
      continue;
    }
    auto read = holder.engine->Read(path, offset, dst);
    if (read.ok()) {
      resolver_->OnTransferDone(holder.node, true);
      // The serving node's device really does the read (its cost is
      // charged by that engine), then the bytes cross the fabric.
      const std::size_t n = read.value();
      network_->ChargeTransfer(n);
      stats_.RecordRead(n, timer.Elapsed());
      if (attempt > 0) {
        failovers_->Increment();
        obs::EventTracer& tracer = obs::EventTracer::Global();
        if (tracer.enabled()) {
          tracer.RecordInstant("peer.failover", "net",
                               "\"file\":" + obs::JsonQuote(path) +
                                   ",\"node\":" +
                                   std::to_string(holder.node) +
                                   ",\"attempt\":" + std::to_string(attempt));
        }
      }
      if (span.active()) {
        span.set_args_json("\"file\":" + obs::JsonQuote(path) +
                           ",\"bytes\":" + std::to_string(n) +
                           ",\"node\":" + std::to_string(holder.node));
      }
      return n;
    }
    resolver_->OnTransferDone(holder.node, false);
    last_failure = read.status();
    tried.push_back(holder.node);
  }
  return last_failure;
}

Result<storage::ReadView> PeerEngine::ReadZeroCopy(std::string_view path_view,
                                                   std::uint64_t offset,
                                                   std::uint64_t max_bytes) {
  obs::TraceSpan span("peer.read", "net");
  const Stopwatch timer;
  const std::string path(path_view);
  std::vector<int> tried;
  Status last_failure = Status::Ok();
  const int max_holders = std::max(1, options_.max_holders);
  for (int attempt = 0; attempt < max_holders; ++attempt) {
    auto holder_or = resolver_->ResolveHolder(path, tried);
    if (!holder_or.ok()) {
      return attempt == 0 ? holder_or.status() : last_failure;
    }
    const Resolver::Holder holder = std::move(holder_or).value();
    resolver_->OnTransferStart(holder.node);
    if (!network_->Reachable(options_.self_node, holder.node)) {
      network_->ChargeRpcTimeout();
      resolver_->OnTransferDone(holder.node, false);
      last_failure =
          UnavailableError("peer node " + std::to_string(holder.node) +
                           " unreachable serving '" + path + "'");
      tried.push_back(holder.node);
      continue;
    }
    auto view = holder.engine->ReadZeroCopy(path, offset, max_bytes);
    if (view.ok()) {
      resolver_->OnTransferDone(holder.node, true);
      const std::size_t n = view.value().size();
      network_->ChargeTransfer(n);
      stats_.RecordRead(n, timer.Elapsed());
      if (attempt > 0) failovers_->Increment();
      if (span.active()) {
        span.set_args_json("\"file\":" + obs::JsonQuote(path) +
                           ",\"bytes\":" + std::to_string(n) +
                           ",\"node\":" + std::to_string(holder.node));
      }
      return view;
    }
    resolver_->OnTransferDone(holder.node, false);
    last_failure = view.status();
    tried.push_back(holder.node);
  }
  return last_failure;
}

Status PeerEngine::Write(const std::string& path,
                         std::span<const std::byte> data) {
  (void)path;
  (void)data;
  return FailedPreconditionError("peer tier '" + name_ + "' is read-only");
}

Status PeerEngine::WriteAt(const std::string& path, std::uint64_t offset,
                           std::span<const std::byte> data) {
  (void)path;
  (void)offset;
  (void)data;
  return FailedPreconditionError("peer tier '" + name_ + "' is read-only");
}

Status PeerEngine::Delete(const std::string& path) {
  (void)path;
  return FailedPreconditionError("peer tier '" + name_ + "' is read-only");
}

Result<std::uint64_t> PeerEngine::FileSize(const std::string& path) {
  network_->ChargeRpc();
  stats_.RecordMetadataOp();
  MONARCH_ASSIGN_OR_RETURN(const Resolver::Holder holder,
                           ResolveReachable(path, {}));
  return holder.engine->FileSize(path);
}

Result<bool> PeerEngine::Exists(const std::string& path) {
  network_->ChargeRpc();
  stats_.RecordMetadataOp();
  auto holder = ResolveReachable(path, {});
  if (!holder.ok()) {
    if (holder.status().code() == StatusCode::kNotFound) return false;
    return holder.status();
  }
  return holder.value().engine->Exists(path);
}

Result<std::vector<storage::FileStat>> PeerEngine::ListFiles(
    const std::string& dir) {
  (void)dir;
  // A peer tier has no namespace of its own — the FileDirectory is the
  // cluster-wide namespace, and the local metadata container already
  // indexed the dataset from the PFS.
  return FailedPreconditionError("peer tier '" + name_ +
                                 "' does not enumerate files");
}

}  // namespace monarch::net
