#include "net/peer_engine.h"

#include <utility>

#include "obs/event_tracer.h"
#include "obs/json.h"

namespace monarch::net {

PeerEngine::PeerEngine(std::string name, ResolverPtr resolver,
                       NetworkModelPtr network)
    : name_(std::move(name)),
      resolver_(std::move(resolver)),
      network_(std::move(network)),
      stats_reg_(storage::RegisterIoStats(obs::MetricsRegistry::Global(),
                                          Name(), &stats_)) {}

Result<std::size_t> PeerEngine::Read(const std::string& path,
                                     std::uint64_t offset,
                                     std::span<std::byte> dst) {
  obs::TraceSpan span("peer.read", "net");
  const Stopwatch timer;
  MONARCH_ASSIGN_OR_RETURN(storage::StorageEnginePtr holder,
                           resolver_->ResolveHolder(path));
  // The serving node's device really does the read (its cost is charged
  // by that engine), then the bytes cross the fabric.
  MONARCH_ASSIGN_OR_RETURN(const std::size_t n,
                           holder->Read(path, offset, dst));
  network_->ChargeTransfer(n);
  stats_.RecordRead(n, timer.Elapsed());
  if (span.active()) {
    span.set_args_json("\"file\":" + obs::JsonQuote(path) +
                       ",\"bytes\":" + std::to_string(n));
  }
  return n;
}

Status PeerEngine::Write(const std::string& path,
                         std::span<const std::byte> data) {
  (void)path;
  (void)data;
  return FailedPreconditionError("peer tier '" + name_ + "' is read-only");
}

Status PeerEngine::WriteAt(const std::string& path, std::uint64_t offset,
                           std::span<const std::byte> data) {
  (void)path;
  (void)offset;
  (void)data;
  return FailedPreconditionError("peer tier '" + name_ + "' is read-only");
}

Status PeerEngine::Delete(const std::string& path) {
  (void)path;
  return FailedPreconditionError("peer tier '" + name_ + "' is read-only");
}

Result<std::uint64_t> PeerEngine::FileSize(const std::string& path) {
  network_->ChargeRpc();
  stats_.RecordMetadataOp();
  MONARCH_ASSIGN_OR_RETURN(storage::StorageEnginePtr holder,
                           resolver_->ResolveHolder(path));
  return holder->FileSize(path);
}

Result<bool> PeerEngine::Exists(const std::string& path) {
  network_->ChargeRpc();
  stats_.RecordMetadataOp();
  auto holder = resolver_->ResolveHolder(path);
  if (!holder.ok()) {
    if (holder.status().code() == StatusCode::kNotFound) return false;
    return holder.status();
  }
  return holder.value()->Exists(path);
}

Result<std::vector<storage::FileStat>> PeerEngine::ListFiles(
    const std::string& dir) {
  (void)dir;
  // A peer tier has no namespace of its own — the FileDirectory is the
  // cluster-wide namespace, and the local metadata container already
  // indexed the dataset from the PFS.
  return FailedPreconditionError("peer tier '" + name_ +
                                 "' does not enumerate files");
}

}  // namespace monarch::net
