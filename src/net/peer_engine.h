// PeerEngine: a StorageEngine whose bytes live on ANOTHER node's local
// tier, reached over the simulated interconnect (ISSUE 4, the kPeer
// hierarchy level).
//
// The engine itself knows nothing about the cluster: a Resolver —
// implemented by cluster::PeerGroup against the FileDirectory — maps a
// path to a live node currently holding a placed copy (power-of-two-
// choices across replicas, quarantining flapping holders). Reads then
// flow remote-engine -> network model, so a peer read pays BOTH the
// owner's device cost (its SSD really is busy serving us) and the
// fabric transfer, exactly like a remote read in FanStore/Hoard.
//
// Replica failover (ISSUE 7): a read that fails against one holder —
// modelled outage/partition (UNAVAILABLE after the RPC timeout) or a
// holder-side error — retries the NEXT live holder before surfacing the
// failure to the degradation ladder above. Only when every live holder
// is exhausted does the error escape, and the per-tier circuit breaker
// above then decides whether the whole peer rung gets quarantined.
//
// Peer tiers are strictly read-only caches of other nodes' staged
// copies: Write/WriteAt/Delete fail with kFailedPrecondition, and the
// StorageDriver above is constructed read-only so placement never
// reserves space here.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "net/network_model.h"
#include "storage/storage_engine.h"

namespace monarch::net {

class PeerEngine final : public storage::StorageEngine {
 public:
  /// Maps a path to a live node holding a placed copy.
  /// Implementations return kNotFound when no peer currently holds the
  /// file — the miss the degradation ladder turns into a PFS fallback —
  /// and never return a node in `exclude` (holders this read already
  /// failed against).
  class Resolver {
   public:
    struct Holder {
      int node = -1;  ///< serving node id (-1: unknown, always reachable)
      storage::StorageEnginePtr engine;
    };

    virtual ~Resolver() = default;
    virtual Result<Holder> ResolveHolder(const std::string& path,
                                         std::span<const int> exclude) = 0;
    /// Transfer lifecycle callbacks: per-holder in-flight accounting for
    /// power-of-two-choices and failure streaks for quarantine.
    virtual void OnTransferStart(int /*node*/) {}
    virtual void OnTransferDone(int /*node*/, bool /*ok*/) {}
  };
  using ResolverPtr = std::shared_ptr<Resolver>;

  struct Options {
    /// This node's id on the fabric (reachability checks); -1 = unknown.
    int self_node = -1;
    /// Distinct holders tried per read before the failure escapes to
    /// the degradation ladder (1 = no failover).
    int max_holders = 2;
  };

  PeerEngine(std::string name, ResolverPtr resolver, NetworkModelPtr network);
  PeerEngine(std::string name, ResolverPtr resolver, NetworkModelPtr network,
             Options options);

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  /// Zero-copy peer read: the holder lends its page across the (modelled)
  /// fabric — the transfer is still charged, but this node never memcpys.
  Result<storage::ReadView> ReadZeroCopy(std::string_view path,
                                         std::uint64_t offset,
                                         std::uint64_t max_bytes) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override;
  Status Delete(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<storage::FileStat>> ListFiles(
      const std::string& dir) override;

  storage::IoStats& Stats() override { return stats_; }
  [[nodiscard]] std::string Name() const override { return name_; }

  [[nodiscard]] const NetworkModelPtr& network() const noexcept {
    return network_;
  }

 private:
  /// The chosen holder for one RPC, or UNAVAILABLE after the modelled
  /// timeout when the fabric says it is unreachable.
  Result<Resolver::Holder> ResolveReachable(const std::string& path,
                                            std::span<const int> exclude);

  std::string name_;
  ResolverPtr resolver_;
  NetworkModelPtr network_;
  Options options_;
  storage::IoStats stats_;
  obs::Counter* failovers_ = nullptr;  ///< `net.peer_failover`
  // Last member: deregisters before stats_ dies.
  obs::SourceRegistration stats_reg_;
};

}  // namespace monarch::net
