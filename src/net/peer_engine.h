// PeerEngine: a StorageEngine whose bytes live on ANOTHER node's local
// tier, reached over the simulated interconnect (ISSUE 4, the kPeer
// hierarchy level).
//
// The engine itself knows nothing about the cluster: a Resolver —
// implemented by cluster::PeerGroup against the FileDirectory — maps a
// path to the engine of some node currently holding a placed copy.
// Reads then flow remote-engine -> network model, so a peer read pays
// BOTH the owner's device cost (its SSD really is busy serving us) and
// the fabric transfer, exactly like a remote read in FanStore/Hoard.
//
// Peer tiers are strictly read-only caches of other nodes' staged
// copies: Write/WriteAt/Delete fail with kFailedPrecondition, and the
// StorageDriver above is constructed read-only so placement never
// reserves space here.
#pragma once

#include <memory>
#include <string>

#include "net/network_model.h"
#include "storage/storage_engine.h"

namespace monarch::net {

class PeerEngine final : public storage::StorageEngine {
 public:
  /// Maps a path to the engine of a node holding a placed copy.
  /// Implementations return kNotFound when no peer currently holds the
  /// file — the miss the degradation ladder turns into a PFS fallback.
  class Resolver {
   public:
    virtual ~Resolver() = default;
    virtual Result<storage::StorageEnginePtr> ResolveHolder(
        const std::string& path) = 0;
  };
  using ResolverPtr = std::shared_ptr<Resolver>;

  PeerEngine(std::string name, ResolverPtr resolver, NetworkModelPtr network);

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override;
  Status Delete(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<storage::FileStat>> ListFiles(
      const std::string& dir) override;

  storage::IoStats& Stats() override { return stats_; }
  [[nodiscard]] std::string Name() const override { return name_; }

  [[nodiscard]] const NetworkModelPtr& network() const noexcept {
    return network_;
  }

 private:
  std::string name_;
  ResolverPtr resolver_;
  NetworkModelPtr network_;
  storage::IoStats stats_;
  // Last member: deregisters before stats_ dies.
  obs::SourceRegistration stats_reg_;
};

}  // namespace monarch::net
