// NetworkModel: the simulated compute-cluster interconnect behind the
// cooperative peer cache (ISSUE 4). Mirrors storage/device_model.h: a
// configured bandwidth becomes a token bucket shared by every transfer
// crossing the fabric, and each operation pays a fixed per-hop latency.
//
// One instance per interconnect; every PeerEngine in the cluster shares
// the same model (and therefore the same bandwidth), so node A pulling a
// file from node B slows node C's peer reads — the same real-contention
// trick the shared-PFS device model plays, applied to the network.
//
// Profiles are expressed at the benches' 1/1000 simulation scale, like
// DeviceProfile: what matters is the *ratio* to the storage devices —
// a node-local interconnect (Infiniband class) is far wider than one
// client's share of a saturated Lustre mount and its round trip is an
// order of magnitude cheaper than an OSS round trip, which is exactly
// why peer-served reads beat PFS re-staging.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics_registry.h"
#include "qos/bandwidth_broker.h"
#include "util/clock.h"
#include "util/rate_limiter.h"

namespace monarch::net {

struct NetworkProfile {
  std::string name = "interconnect";
  /// Aggregate fabric bandwidth shared by all peer transfers.
  double bandwidth_bps = 1.2e9;
  /// Fixed cost of one traversal (request or response) between nodes.
  Duration hop_latency = Micros(150);
  /// How long a peer RPC to a dead/partitioned node blocks before the
  /// caller gives up UNAVAILABLE (ISSUE 7 outage injection). Sized like
  /// a full PFS round trip at simulation scale: failure detection is
  /// never cheaper than the slow path it protects.
  Duration rpc_timeout = Micros(1200);

  /// HPC-cluster interconnect at simulation scale: ~3x the local-SSD
  /// read bandwidth and ~1/8 the Lustre per-op latency, so a peer hop is
  /// decisively cheaper than a PFS round trip but not free.
  static NetworkProfile ClusterInterconnect();
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkProfile profile);

  /// Block for the simulated duration of moving `bytes` across the
  /// fabric (one hop of latency plus the bandwidth share).
  void ChargeTransfer(std::uint64_t bytes);

  /// Block for one metadata round trip (directory lookup, stat).
  void ChargeRpc();

  // ---- fault injection (ISSUE 7) ---------------------------------------
  // Node outages and fabric partitions are modelled as reachability: a
  // peer RPC whose endpoint is down or on the far side of a partition
  // blocks for `rpc_timeout` (ChargeRpcTimeout) and fails UNAVAILABLE at
  // the caller. Masks cover node ids 0..63 — beyond that nodes are
  // always reachable (the virtual-time engine will widen this).

  /// Mark `node` dead (true) or alive (false) on the fabric.
  void SetNodeDown(int node, bool down);

  /// Split the fabric: nodes whose bit is set in `group_mask` can only
  /// reach each other, likewise the complement. 0 clears the partition.
  void SetPartition(std::uint64_t group_mask);

  /// Whether a transfer `from` -> `to` can currently cross the fabric.
  /// Negative ids (unknown endpoint) are always reachable.
  [[nodiscard]] bool Reachable(int from, int to) const;

  /// Block for the modelled failure-detection timeout of one dead RPC
  /// and count it (`net.rpc_timeouts`).
  void ChargeRpcTimeout();

  /// Install the per-tenant bandwidth broker (ISSUE 10): transfers then
  /// additionally charge the calling thread's ambient tenant, so one
  /// job's peer traffic cannot crowd out another's fabric share. Install
  /// before the model is shared across threads.
  void SetQosBroker(qos::BandwidthBrokerPtr broker) {
    qos_broker_ = std::move(broker);
  }

  [[nodiscard]] const NetworkProfile& profile() const noexcept {
    return profile_;
  }

  /// Expected uncontended service time for a transfer of `bytes` —
  /// calibration checks, mirroring DeviceModel::PredictRead.
  [[nodiscard]] Duration PredictTransfer(std::uint64_t bytes) const;

  [[nodiscard]] std::uint64_t transfers() const noexcept {
    return transfers_local_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_local_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rpc_timeouts() const noexcept {
    return timeouts_local_.load(std::memory_order_relaxed);
  }

 private:
  NetworkProfile profile_;
  RateLimiter bucket_;
  std::atomic<std::uint64_t> transfers_local_{0};
  std::atomic<std::uint64_t> bytes_local_{0};
  std::atomic<std::uint64_t> timeouts_local_{0};
  /// Bit n set = node n dead / in partition group (ids ≥ 64 unaffected).
  std::atomic<std::uint64_t> down_mask_{0};
  std::atomic<std::uint64_t> partition_mask_{0};
  qos::BandwidthBrokerPtr qos_broker_;      ///< null = no enforcement
  obs::Counter* transfers_ = nullptr;       ///< `net.transfers`
  obs::Counter* bytes_transferred_ = nullptr;  ///< `net.bytes_transferred`
  obs::Counter* rpc_timeouts_ = nullptr;    ///< `net.rpc_timeouts`
};

using NetworkModelPtr = std::shared_ptr<NetworkModel>;

}  // namespace monarch::net
