#include "net/network_model.h"

namespace monarch::net {

NetworkProfile NetworkProfile::ClusterInterconnect() {
  NetworkProfile p;
  p.name = "cluster-interconnect";
  // Frontera-class fat-tree share at 1/1000 byte scale: wide enough that
  // serving a 1 MiB record file costs ~1 ms of fabric time against the
  // ~6+ ms the same file costs through a contended Lustre client, and a
  // 150 us hop against Lustre's 1200 us OSS round trip.
  p.bandwidth_bps = 1.2e9;
  p.hop_latency = Micros(150);
  return p;
}

NetworkModel::NetworkModel(NetworkProfile profile)
    : profile_(std::move(profile)), bucket_(profile_.bandwidth_bps) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  transfers_ = registry.GetCounter(
      "net.transfers", "ops",
      "peer-to-peer transfers carried by the simulated interconnect");
  bytes_transferred_ = registry.GetCounter(
      "net.bytes_transferred", "bytes",
      "bytes moved across the simulated interconnect");
}

void NetworkModel::ChargeTransfer(std::uint64_t bytes) {
  const Duration wait = bucket_.Reserve(static_cast<double>(bytes));
  PreciseSleep(profile_.hop_latency + wait);
  transfers_local_.fetch_add(1, std::memory_order_relaxed);
  bytes_local_.fetch_add(bytes, std::memory_order_relaxed);
  if (transfers_ != nullptr) transfers_->Increment();
  if (bytes_transferred_ != nullptr) bytes_transferred_->Increment(bytes);
}

void NetworkModel::ChargeRpc() { PreciseSleep(profile_.hop_latency); }

Duration NetworkModel::PredictTransfer(std::uint64_t bytes) const {
  return profile_.hop_latency +
         FromSeconds(static_cast<double>(bytes) / profile_.bandwidth_bps);
}

}  // namespace monarch::net
