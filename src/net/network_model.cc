#include "net/network_model.h"

namespace monarch::net {

NetworkProfile NetworkProfile::ClusterInterconnect() {
  NetworkProfile p;
  p.name = "cluster-interconnect";
  // Frontera-class fat-tree share at 1/1000 byte scale: wide enough that
  // serving a 1 MiB record file costs ~1 ms of fabric time against the
  // ~6+ ms the same file costs through a contended Lustre client, and a
  // 150 us hop against Lustre's 1200 us OSS round trip.
  p.bandwidth_bps = 1.2e9;
  p.hop_latency = Micros(150);
  return p;
}

NetworkModel::NetworkModel(NetworkProfile profile)
    : profile_(std::move(profile)), bucket_(profile_.bandwidth_bps) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  transfers_ = registry.GetCounter(
      "net.transfers", "ops",
      "peer-to-peer transfers carried by the simulated interconnect");
  bytes_transferred_ = registry.GetCounter(
      "net.bytes_transferred", "bytes",
      "bytes moved across the simulated interconnect");
  rpc_timeouts_ = registry.GetCounter(
      "net.rpc_timeouts", "ops",
      "peer RPCs that timed out against a dead or partitioned node");
}

void NetworkModel::SetNodeDown(int node, bool down) {
  if (node < 0 || node >= 64) return;
  const std::uint64_t bit = 1ull << node;
  if (down) {
    down_mask_.fetch_or(bit, std::memory_order_relaxed);
  } else {
    down_mask_.fetch_and(~bit, std::memory_order_relaxed);
  }
}

void NetworkModel::SetPartition(std::uint64_t group_mask) {
  partition_mask_.store(group_mask, std::memory_order_relaxed);
}

bool NetworkModel::Reachable(int from, int to) const {
  const auto side = [](std::uint64_t mask, int node) {
    return node >= 0 && node < 64 && (mask & (1ull << node)) != 0;
  };
  const std::uint64_t down = down_mask_.load(std::memory_order_relaxed);
  if (side(down, from) || side(down, to)) return false;
  const std::uint64_t split = partition_mask_.load(std::memory_order_relaxed);
  if (split == 0 || from < 0 || to < 0) return true;
  return side(split, from) == side(split, to);
}

void NetworkModel::ChargeRpcTimeout() {
  PreciseSleep(profile_.rpc_timeout);
  timeouts_local_.fetch_add(1, std::memory_order_relaxed);
  if (rpc_timeouts_ != nullptr) rpc_timeouts_->Increment();
}

void NetworkModel::ChargeTransfer(std::uint64_t bytes) {
  // Per-tenant share first (who may use the fabric), then the shared
  // bucket (what the fabric can physically carry).
  if (qos_broker_ != nullptr && qos_broker_->enabled()) {
    const qos::TenantContext* tenant = qos::CurrentTenant();
    if (tenant != nullptr) qos_broker_->Acquire(tenant->tenant_id, bytes);
  }
  const Duration wait = bucket_.Reserve(static_cast<double>(bytes));
  PreciseSleep(profile_.hop_latency + wait);
  transfers_local_.fetch_add(1, std::memory_order_relaxed);
  bytes_local_.fetch_add(bytes, std::memory_order_relaxed);
  if (transfers_ != nullptr) transfers_->Increment();
  if (bytes_transferred_ != nullptr) bytes_transferred_->Increment(bytes);
}

void NetworkModel::ChargeRpc() { PreciseSleep(profile_.hop_latency); }

Duration NetworkModel::PredictTransfer(std::uint64_t bytes) const {
  return profile_.hop_latency +
         FromSeconds(static_cast<double>(bytes) / profile_.bandwidth_bps);
}

}  // namespace monarch::net
