#include "workload/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <thread>

namespace monarch::workload {

void TraceRecorder::Record(TraceOp op, const std::string& path,
                           std::uint64_t offset, std::uint64_t length) {
  TraceEvent ev;
  ev.timestamp = SteadyClock::now() - start_;
  ev.op = op;
  ev.path = path;
  ev.offset = offset;
  ev.length = length;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(events_);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::size_t TraceRecorder::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

namespace {

char OpChar(TraceOp op) {
  switch (op) {
    case TraceOp::kRead: return 'R';
    case TraceOp::kWrite: return 'W';
    case TraceOp::kStat: return 'S';
  }
  return '?';
}

Result<TraceOp> ParseOp(char c) {
  switch (c) {
    case 'R': return TraceOp::kRead;
    case 'W': return TraceOp::kWrite;
    case 'S': return TraceOp::kStat;
    default:
      return InvalidArgumentError(std::string("bad trace op '") + c + "'");
  }
}

}  // namespace

std::string SerializeTrace(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 48);
  char buf[64];
  for (const TraceEvent& ev : events) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(ev.timestamp)
            .count();
    std::snprintf(buf, sizeof buf, "%lld,%c,", static_cast<long long>(us),
                  OpChar(ev.op));
    out += buf;
    out += ev.path;
    std::snprintf(buf, sizeof buf, ",%llu,%llu\n",
                  static_cast<unsigned long long>(ev.offset),
                  static_cast<unsigned long long>(ev.length));
    out += buf;
  }
  return out;
}

Result<std::vector<TraceEvent>> ParseTrace(const std::string& text) {
  std::vector<TraceEvent> events;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty()) continue;

    // ts_us,op,path,offset,length — path may not contain commas.
    std::array<std::string, 5> fields;
    std::size_t start = 0;
    for (int f = 0; f < 5; ++f) {
      const std::size_t comma = line.find(',', start);
      if (f < 4 && comma == std::string::npos) {
        return InvalidArgumentError("trace line " + std::to_string(line_no) +
                                    ": expected 5 fields");
      }
      fields[f] = line.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      start = comma + 1;
    }

    TraceEvent ev;
    long long us = 0;
    auto [p1, ec1] = std::from_chars(
        fields[0].data(), fields[0].data() + fields[0].size(), us);
    if (ec1 != std::errc{}) {
      return InvalidArgumentError("trace line " + std::to_string(line_no) +
                                  ": bad timestamp");
    }
    ev.timestamp = Micros(us);
    if (fields[1].size() != 1) {
      return InvalidArgumentError("trace line " + std::to_string(line_no) +
                                  ": bad op");
    }
    MONARCH_ASSIGN_OR_RETURN(ev.op, ParseOp(fields[1][0]));
    ev.path = fields[2];
    std::from_chars(fields[3].data(), fields[3].data() + fields[3].size(),
                    ev.offset);
    std::from_chars(fields[4].data(), fields[4].data() + fields[4].size(),
                    ev.length);
    events.push_back(std::move(ev));
  }
  return events;
}

Result<ReplayStats> ReplayTrace(const std::vector<TraceEvent>& events,
                                storage::StorageEngine& engine,
                                int parallelism) {
  const int workers = std::max(1, parallelism);
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<bool> failed{false};

  const Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::vector<std::byte> buf;
      for (std::size_t i = static_cast<std::size_t>(w); i < events.size();
           i += static_cast<std::size_t>(workers)) {
        const TraceEvent& ev = events[i];
        if (ev.op != TraceOp::kRead) continue;
        buf.resize(ev.length);
        auto result = engine.Read(ev.path, ev.offset, buf);
        if (!result.ok()) {
          failed.store(true);
          return;
        }
        ops.fetch_add(1, std::memory_order_relaxed);
        bytes.fetch_add(result.value(), std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  if (failed.load()) {
    return InternalError("trace replay hit a read failure");
  }
  ReplayStats stats;
  stats.ops = ops.load();
  stats.bytes = bytes.load();
  stats.elapsed_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace monarch::workload
