#include "workload/small_file_dataset.h"

#include <algorithm>
#include <cstdio>

#include "pack/pack_format.h"
#include "util/rng.h"

namespace monarch::workload {

namespace {

std::uint64_t StreamSeed(std::uint64_t seed, std::uint64_t index) {
  SplitMix64 sm(seed ^ ((index + 1) * 0x9E3779B97F4A7C15ULL));
  return sm.Next();
}

}  // namespace

std::string SmallFilePath(const SmallFileSpec& spec, std::uint64_t index) {
  const std::uint64_t cls =
      spec.num_classes == 0 ? 0 : index % spec.num_classes;
  char buf[64];
  std::snprintf(buf, sizeof buf, "/class_%04llu/img_%07llu.bin",
                static_cast<unsigned long long>(cls),
                static_cast<unsigned long long>(index));
  return spec.directory + buf;
}

std::vector<std::byte> SmallFilePayload(const SmallFileSpec& spec,
                                        std::uint64_t index) {
  Xoshiro256 rng(StreamSeed(spec.seed, index));

  const double jitter =
      1.0 + spec.file_size_jitter * (2.0 * rng.NextDouble() - 1.0);
  const auto size = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(
              static_cast<double>(spec.mean_file_bytes) * jitter));

  std::vector<std::byte> payload(size);
  // Identity header: "MNRS" magic + file index, so any read path can
  // verify it got the right file (and the right slice of it).
  payload[0] = std::byte{'M'};
  payload[1] = std::byte{'N'};
  payload[2] = std::byte{'R'};
  payload[3] = std::byte{'S'};
  for (int i = 0; i < 8; ++i) {
    payload[4 + i] = static_cast<std::byte>((index >> (8 * i)) & 0xFFU);
  }

  // Body: alternating byte runs (compressible) and noise segments, mixed
  // per run_fraction. Segment lengths are jittered so chunk boundaries
  // never line up with segment boundaries.
  std::size_t pos = 20;
  while (pos < payload.size()) {
    const std::uint64_t word = rng();
    const std::size_t seg =
        std::min<std::size_t>(payload.size() - pos,
                              32 + static_cast<std::size_t>(word % 97));
    if (rng.NextDouble() < spec.run_fraction) {
      const auto fill = static_cast<std::byte>(word & 0xFFU);
      std::fill_n(payload.begin() + static_cast<std::ptrdiff_t>(pos), seg,
                  fill);
    } else {
      for (std::size_t j = 0; j < seg; ++j) {
        payload[pos + j] =
            static_cast<std::byte>((rng() >> ((j % 8) * 8)) & 0xFFU);
      }
    }
    pos += seg;
  }
  return payload;
}

Result<SmallFileManifest> GenerateSmallFiles(storage::StorageEngine& engine,
                                             const SmallFileSpec& spec) {
  if (spec.num_files == 0) {
    return InvalidArgumentError("small-file spec must have files");
  }
  SmallFileManifest manifest;
  manifest.spec = spec;
  for (std::uint64_t i = 0; i < spec.num_files; ++i) {
    const std::vector<std::byte> payload = SmallFilePayload(spec, i);
    MONARCH_RETURN_IF_ERROR(engine.Write(SmallFilePath(spec, i), payload));
    manifest.total_bytes += payload.size();
  }
  return manifest;
}

Result<SmallFileManifest> GeneratePackedSmallFiles(
    storage::StorageEngine& engine, const SmallFileSpec& spec) {
  if (spec.num_files == 0) {
    return InvalidArgumentError("small-file spec must have files");
  }
  pack::PackWriter writer(engine, spec.directory, spec.pack_extent_bytes);
  for (std::uint64_t i = 0; i < spec.num_files; ++i) {
    MONARCH_RETURN_IF_ERROR(writer.Add(SmallFilePath(spec, i),
                                       SmallFilePayload(spec, i)));
  }
  MONARCH_RETURN_IF_ERROR(writer.Finish());
  SmallFileManifest manifest;
  manifest.spec = spec;
  manifest.total_bytes = writer.logical_bytes();
  manifest.extent_count = writer.extents_written();
  return manifest;
}

}  // namespace monarch::workload
