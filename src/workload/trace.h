// I/O trace capture and replay.
//
// A trace records every (timestamp, op, path, offset, length) a pipeline
// issues. Benches use traces for two things: verifying the access pattern
// of the simulated pipeline matches the one the paper describes (random
// file order, sequential chunks inside each record file), and replaying a
// captured pattern against alternative hierarchy configurations without
// re-running the full training simulation.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/storage_engine.h"
#include "util/clock.h"
#include "util/status.h"

namespace monarch::workload {

enum class TraceOp : std::uint8_t { kRead, kWrite, kStat };

struct TraceEvent {
  Duration timestamp{};        ///< relative to trace start
  TraceOp op = TraceOp::kRead;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// Thread-safe append-only trace recorder.
class TraceRecorder {
 public:
  TraceRecorder() : start_(SteadyClock::now()) {}

  void Record(TraceOp op, const std::string& path, std::uint64_t offset,
              std::uint64_t length);

  /// Take the accumulated events (sorted by timestamp) and reset.
  [[nodiscard]] std::vector<TraceEvent> Drain();

  [[nodiscard]] std::size_t Size() const;

 private:
  TimePoint start_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Serialize/parse a trace as CSV lines: `ts_us,op,path,offset,length`.
std::string SerializeTrace(const std::vector<TraceEvent>& events);
Result<std::vector<TraceEvent>> ParseTrace(const std::string& text);

struct ReplayStats {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  double elapsed_seconds = 0;
};

/// Replay the read events of a trace against `engine` as fast as the
/// engine allows (timestamps are ignored; the replay measures the
/// engine's capacity for the pattern, not the original pacing).
/// `parallelism` reader threads split the events round-robin.
Result<ReplayStats> ReplayTrace(const std::vector<TraceEvent>& events,
                                storage::StorageEngine& engine,
                                int parallelism = 1);

/// TracingEngine: decorator that records every op into a TraceRecorder.
class TracingEngine final : public storage::StorageEngine {
 public:
  TracingEngine(storage::StorageEnginePtr inner, TraceRecorder& recorder)
      : inner_(std::move(inner)), recorder_(recorder) {}

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    recorder_.Record(TraceOp::kRead, std::string(path), offset, dst.size());
    return inner_->Read(path, offset, dst);
  }
  Status Write(const std::string& path,
               std::span<const std::byte> data) override {
    recorder_.Record(TraceOp::kWrite, path, 0, data.size());
    return inner_->Write(path, data);
  }
  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  Result<std::uint64_t> FileSize(const std::string& path) override {
    recorder_.Record(TraceOp::kStat, path, 0, 0);
    return inner_->FileSize(path);
  }
  Result<bool> Exists(const std::string& path) override {
    return inner_->Exists(path);
  }
  Result<std::vector<storage::FileStat>> ListFiles(
      const std::string& dir) override {
    return inner_->ListFiles(dir);
  }
  storage::IoStats& Stats() override { return inner_->Stats(); }
  [[nodiscard]] std::string Name() const override {
    return inner_->Name() + "+trace";
  }

 private:
  storage::StorageEnginePtr inner_;
  TraceRecorder& recorder_;
};

}  // namespace monarch::workload
