#include "workload/dataset_generator.h"

#include <algorithm>
#include <cstdio>

#include "tfrecord/writer.h"
#include "util/rng.h"

namespace monarch::workload {

namespace {

/// Stable stream seed for (dataset seed, file, sample).
std::uint64_t StreamSeed(std::uint64_t seed, std::uint64_t file_index,
                         std::uint64_t sample_index) {
  SplitMix64 sm(seed ^ (file_index * 0x9E3779B97F4A7C15ULL) ^
                (sample_index + 1));
  return sm.Next();
}

}  // namespace

DatasetSpec DatasetSpec::ImageNet100GiB(double scale) {
  DatasetSpec spec;
  spec.name = "imagenet-100g";
  spec.directory = "imagenet_100g";
  // 900k images / 100 GiB in 1024 shards in the paper; scaled we keep the
  // shard-oriented layout: 128 record files x 900 KiB-ish -> ~112 MiB of
  // payload below the 115 MiB local quota, matching "fits on the SSD".
  spec.num_files = std::max<std::uint64_t>(4, static_cast<std::uint64_t>(128 * scale));
  spec.samples_per_file = 56;
  spec.mean_sample_bytes = 16 * 1024;
  spec.sample_size_jitter = 0.30;
  spec.seed = 100;
  return spec;
}

DatasetSpec DatasetSpec::ImageNet200GiB(double scale) {
  DatasetSpec spec;
  spec.name = "imagenet-200g";
  spec.directory = "imagenet_200g";
  // 3M images / 200 GiB in the paper; scaled: twice the 100G byte volume
  // (~224 MiB) so roughly half the dataset exceeds the 115 MiB quota.
  spec.num_files = std::max<std::uint64_t>(4, static_cast<std::uint64_t>(256 * scale));
  spec.samples_per_file = 56;
  spec.mean_sample_bytes = 16 * 1024;
  spec.sample_size_jitter = 0.30;
  spec.seed = 200;
  return spec;
}

DatasetSpec DatasetSpec::Tiny() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.directory = "tiny";
  spec.num_files = 8;
  spec.samples_per_file = 4;
  spec.mean_sample_bytes = 2 * 1024;
  spec.sample_size_jitter = 0.5;
  spec.seed = 1;
  return spec;
}

std::string RecordFilePath(const DatasetSpec& spec,
                           std::uint64_t file_index) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "/train-%05llu-of-%05llu.tfrecord",
                static_cast<unsigned long long>(file_index),
                static_cast<unsigned long long>(spec.num_files));
  return spec.directory + buf;
}

std::vector<std::byte> SamplePayload(const DatasetSpec& spec,
                                     std::uint64_t file_index,
                                     std::uint64_t sample_index) {
  Xoshiro256 rng(StreamSeed(spec.seed, file_index, sample_index));

  // Jittered size, floor 64 bytes for the identity header.
  const double jitter =
      1.0 + spec.sample_size_jitter * (2.0 * rng.NextDouble() - 1.0);
  const auto size = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(
              static_cast<double>(spec.mean_sample_bytes) * jitter));

  std::vector<std::byte> payload(size);
  // Identity header: "MNRC" magic + file/sample ids, so any read path can
  // verify it got the right sample.
  payload[0] = std::byte{'M'};
  payload[1] = std::byte{'N'};
  payload[2] = std::byte{'R'};
  payload[3] = std::byte{'C'};
  for (int i = 0; i < 8; ++i) {
    payload[4 + i] =
        static_cast<std::byte>((file_index >> (8 * i)) & 0xFFU);
    payload[12 + i] =
        static_cast<std::byte>((sample_index >> (8 * i)) & 0xFFU);
  }
  // Pseudo-image body: deterministic noise (JPEG-like incompressible).
  for (std::size_t i = 20; i < payload.size(); i += 8) {
    const std::uint64_t word = rng();
    const std::size_t n = std::min<std::size_t>(8, payload.size() - i);
    for (std::size_t j = 0; j < n; ++j) {
      payload[i + j] = static_cast<std::byte>((word >> (8 * j)) & 0xFFU);
    }
  }
  return payload;
}

Result<DatasetManifest> GenerateDataset(storage::StorageEngine& engine,
                                        const DatasetSpec& spec) {
  if (spec.num_files == 0 || spec.samples_per_file == 0) {
    return InvalidArgumentError("dataset spec must have files and samples");
  }

  DatasetManifest manifest;
  manifest.spec = spec;
  manifest.file_paths.reserve(spec.num_files);
  manifest.file_sizes.reserve(spec.num_files);

  for (std::uint64_t f = 0; f < spec.num_files; ++f) {
    tfrecord::TFRecordWriter writer;
    for (std::uint64_t s = 0; s < spec.samples_per_file; ++s) {
      writer.Append(SamplePayload(spec, f, s));
    }
    const std::uint64_t framed_size = writer.byte_size();
    const std::string path = RecordFilePath(spec, f);
    MONARCH_RETURN_IF_ERROR(writer.Flush(engine, path));
    manifest.file_paths.push_back(path);
    manifest.file_sizes.push_back(framed_size);
    manifest.total_bytes += framed_size;
  }
  return manifest;
}

Result<DatasetManifest> LoadManifest(storage::StorageEngine& engine,
                                     const DatasetSpec& spec) {
  MONARCH_ASSIGN_OR_RETURN(auto files, engine.ListFiles(spec.directory));
  if (files.empty()) {
    return NotFoundError("no dataset files under '" + spec.directory + "'");
  }
  DatasetManifest manifest;
  manifest.spec = spec;
  for (const auto& st : files) {
    manifest.file_paths.push_back(st.path);
    manifest.file_sizes.push_back(st.size);
    manifest.total_bytes += st.size;
  }
  return manifest;
}

}  // namespace monarch::workload
