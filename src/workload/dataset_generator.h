// Synthetic dataset generator.
//
// Produces ImageNet-like training datasets packed into real TFRecord
// files: N samples of configurable (jittered) size distributed across M
// record files, each sample a pseudo-image payload with an embedded
// (file, sample) identity so readers can verify they received the right
// bytes regardless of which storage tier served them.
//
// The paper's two datasets map onto generator specs at 1/1000 scale:
//   - "100 GiB ImageNet-1k"  -> ~100 MiB, fits the local tier quota
//   - "200 GiB ImageNet-1k"  -> ~200 MiB, exceeds the local tier quota
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::workload {

struct DatasetSpec {
  std::string name = "dataset";
  std::string directory = "dataset";   ///< engine-relative directory
  std::uint64_t num_files = 64;        ///< record files ("shards")
  std::uint64_t samples_per_file = 32;
  std::uint64_t mean_sample_bytes = 8 * 1024;
  double sample_size_jitter = 0.25;    ///< +- fraction of the mean
  std::uint64_t seed = 7;

  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return num_files * samples_per_file;
  }
  /// Expected total payload bytes (framing overhead excluded).
  [[nodiscard]] std::uint64_t approx_total_bytes() const noexcept {
    return total_samples() * mean_sample_bytes;
  }

  /// Paper-dataset presets, scaled 1/1000. `scale` further multiplies the
  /// file count for quick tests (default 1.0 = full bench scale).
  static DatasetSpec ImageNet100GiB(double scale = 1.0);
  static DatasetSpec ImageNet200GiB(double scale = 1.0);
  /// Tiny dataset for unit tests and the quickstart example.
  static DatasetSpec Tiny();
};

struct DatasetManifest {
  DatasetSpec spec;
  std::vector<std::string> file_paths;   ///< engine-relative record files
  std::vector<std::uint64_t> file_sizes; ///< on-disk framed sizes
  std::uint64_t total_bytes = 0;

  [[nodiscard]] std::uint64_t num_files() const noexcept {
    return file_paths.size();
  }
};

/// Generate the dataset onto `engine` (typically the raw PFS directory
/// before simulation starts — dataset staging is not part of any timed
/// experiment). Deterministic in spec.seed.
Result<DatasetManifest> GenerateDataset(storage::StorageEngine& engine,
                                        const DatasetSpec& spec);

/// Rebuild a manifest for an already-generated dataset by listing
/// `spec.directory` on `engine` (sizes from stat; spec fields trusted).
Result<DatasetManifest> LoadManifest(storage::StorageEngine& engine,
                                     const DatasetSpec& spec);

/// The deterministic payload for sample `sample_index` of file
/// `file_index` — tests regenerate expected bytes with this.
std::vector<std::byte> SamplePayload(const DatasetSpec& spec,
                                     std::uint64_t file_index,
                                     std::uint64_t sample_index);

/// Engine-relative record-file path for `file_index`.
std::string RecordFilePath(const DatasetSpec& spec, std::uint64_t file_index);

}  // namespace monarch::workload
