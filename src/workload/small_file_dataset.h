// Million-small-file dataset generator (ISSUE 9).
//
// ImageNet-on-disk before sharding is the canonical metadata-killer: one
// tiny JPEG per sample, fanned out over class directories. This module
// produces that shape deterministically — `dir/class_XXXX/img_XXXXXXX.bin`
// trees of jittered tiny files — plus a WebDataset-style packed variant
// where the same logical files are aggregated into container extents via
// pack::PackWriter so the PFS sees O(extents) objects instead of
// O(samples).
//
// Unlike SamplePayload (pseudo-JPEG noise, deliberately incompressible),
// small-file payloads mix byte runs with noise so the pack codec has
// something to compress — the ext_smallfile bench gates on effective
// local-tier capacity gained by compression.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/storage_engine.h"
#include "util/status.h"

namespace monarch::workload {

struct SmallFileSpec {
  std::string directory = "smallfiles";  ///< engine-relative root
  std::uint64_t num_files = 1024;
  std::uint64_t num_classes = 16;        ///< directory fanout
  std::uint64_t mean_file_bytes = 4 * 1024;
  double file_size_jitter = 0.5;         ///< +- fraction of the mean
  /// Fraction of each payload body written as byte runs (compressible);
  /// the rest is deterministic noise. 0.5 gives the LZ codec roughly 2x.
  double run_fraction = 0.5;
  std::uint64_t seed = 9;
  /// Extent size used by GeneratePackedSmallFiles.
  std::uint64_t pack_extent_bytes = 64 * 1024 * 1024;

  [[nodiscard]] std::uint64_t approx_total_bytes() const noexcept {
    return num_files * mean_file_bytes;
  }
};

struct SmallFileManifest {
  SmallFileSpec spec;
  std::uint64_t total_bytes = 0;   ///< logical bytes across all files
  std::uint64_t extent_count = 0;  ///< 0 for the loose (unpacked) layout

  [[nodiscard]] std::uint64_t num_files() const noexcept {
    return spec.num_files;
  }
};

/// Engine-relative path of logical file `index`:
/// `<dir>/class_XXXX/img_XXXXXXX.bin` (class = index % num_classes).
std::string SmallFilePath(const SmallFileSpec& spec, std::uint64_t index);

/// Deterministic payload of logical file `index`: 20-byte identity
/// header ("MNRS" magic + index), then a run/noise body per
/// spec.run_fraction. Tests and benches regenerate expected bytes here.
std::vector<std::byte> SmallFilePayload(const SmallFileSpec& spec,
                                        std::uint64_t index);

/// Write the loose layout: one engine object per logical file.
Result<SmallFileManifest> GenerateSmallFiles(storage::StorageEngine& engine,
                                             const SmallFileSpec& spec);

/// Write the packed layout: identical logical files aggregated into
/// `.pack/` container extents (WebDataset-style shards: files appended
/// in index order, extents cut at spec.pack_extent_bytes) plus the pack
/// index PackIndex::Load reads back.
Result<SmallFileManifest> GeneratePackedSmallFiles(
    storage::StorageEngine& engine, const SmallFileSpec& spec);

}  // namespace monarch::workload
