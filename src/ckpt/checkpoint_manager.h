// CheckpointManager: the write-back checkpoint tier (ISSUE 5).
//
// MONARCH's read path flees the contended PFS; the trainer's periodic
// checkpoint burst should too. Save() lands the checkpoint on the
// fastest local tier with room (quota-reserved through the same
// PlacementPolicy the read path stages with, so checkpoints and staged
// dataset files genuinely compete for tier capacity), commits it through
// the crash-consistent manifest journal (ckpt/manifest.h), and returns —
// the training step resumes after a local write, not a PFS round trip.
// A background drain lane then pushes the bytes to the PFS:
//
//   Save -> [local, committed] -> drain -> [durable on PFS]
//                                           |-> local copy evictable
//                                           |-> keep-last-K pruning
//
// The drain lane reuses the staging pipeline's machinery: chunked copies
// through a bounded util::BufferPool, the [resilience] retry/breaker
// envelope (an internal writable StorageDriver over the PFS engine gives
// drains the same bounded-backoff retries and circuit breaker as reads),
// and a token-bucket bandwidth cap so a draining checkpoint can never
// starve demand staging of the shared PFS. Durability is mandatory:
// a drain that exhausts its driver-level retries parks with capped
// backoff and tries again until it succeeds or the manager shuts down —
// the manifest lets an interrupted drain resume across a crash.
//
// Restore() serves from the CRC-verified local copy when present and
// falls back to the (equally verified) PFS copy otherwise. A corrupt
// local copy is quarantined and the read degrades to the PFS — the same
// ladder shape as DESIGN.md §4.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/manifest.h"
#include "core/checkpoint_sink.h"
#include "core/placement_policy.h"
#include "core/resilience.h"
#include "core/storage_hierarchy.h"
#include "obs/metrics_registry.h"
#include "qos/bandwidth_broker.h"
#include "qos/tenant.h"
#include "util/buffer_pool.h"
#include "util/rate_limiter.h"

namespace monarch::ckpt {

/// Lifecycle of one committed checkpoint (docs/OBSERVABILITY.md,
/// DESIGN.md "Checkpoint write-back").
enum class CkptState {
  kLocal,     ///< committed on a cache tier, drain pending
  kDraining,  ///< drain to the PFS in progress
  kDurable,   ///< PFS copy complete and CRC-verified
};

[[nodiscard]] const char* CkptStateName(CkptState state) noexcept;

struct CheckpointOptions {
  /// Namespace prefix for checkpoint data and the manifest on every tier.
  std::string dir = "ckpt";

  /// Retain only the newest K checkpoints; older ones are pruned once
  /// durable. 0 keeps everything.
  int keep_last = 0;

  /// Drain-lane bandwidth cap in bytes/s (token bucket); 0 = uncapped.
  /// This is what keeps background drains from starving demand staging.
  std::uint64_t drain_bandwidth_bytes_per_sec = 0;

  int drain_threads = 1;

  /// Chunk size and total buffer budget of the drain lane's copies.
  std::size_t chunk_bytes = std::size_t{1} << 22;          // 4 MiB
  std::size_t buffer_bytes = std::size_t{1} << 24;         // 16 MiB

  /// Read the local copy back and CRC-verify before committing Save —
  /// the write-path twin of [resilience] verify_staged_writes.
  bool verify_local_writes = true;

  /// Read the PFS copy back and CRC-verify before declaring it durable.
  bool verify_drained_writes = true;

  /// CRC-verify the copy served by Restore.
  bool verify_on_restore = true;

  /// Retry/breaker envelope of the internal PFS drain driver.
  core::RetryPolicy retry;
  core::TierHealthOptions health;

  /// Multi-tenant QoS (ISSUE 10): the drain lane's identity. Drain
  /// workers install this tenant, so with a broker every drained byte is
  /// charged to the drain class — demand tenants keep their shares even
  /// while a checkpoint floods toward the PFS.
  qos::TenantContext tenant{/*tenant_id=*/-1, "ckpt-drain",
                            qos::IoClass::kDrain, /*weight=*/1.0,
                            /*low_retention=*/false};
  /// Broker charged by the internal PFS drain driver; null = none.
  qos::BandwidthBrokerPtr qos_broker;
};

class CheckpointManager final : public core::CheckpointSink {
 public:
  struct Stats {
    std::uint64_t saves = 0;
    std::uint64_t save_bytes = 0;
    std::uint64_t restores = 0;
    std::uint64_t restores_local = 0;
    std::uint64_t restores_pfs = 0;
    std::uint64_t drains_completed = 0;
    std::uint64_t drain_bytes = 0;       ///< bytes made durable this process
    std::uint64_t drain_retries = 0;     ///< parked/backed-off drain attempts
    std::uint64_t local_evictions = 0;   ///< durable local copies dropped
    std::uint64_t pruned = 0;            ///< checkpoints retired (keep-last-K)
    std::uint64_t direct_pfs_writes = 0; ///< Saves that bypassed the tiers
    std::uint64_t local_quarantined = 0; ///< corrupt local copies deleted
    std::uint64_t resumed_drains = 0;    ///< drains re-queued by recovery
    std::uint64_t dropped_orphans = 0;   ///< uncommitted temp copies removed
    std::uint64_t torn_tail_bytes = 0;   ///< journal bytes dropped at replay
    std::uint64_t pending_drains = 0;    ///< committed but not yet durable
    std::uint64_t local_bytes = 0;       ///< quota held by live local copies
  };

  /// One manifest entry as reported by `monarchctl ckpt-status`.
  struct EntryView {
    std::uint64_t gen = 0;
    std::string name;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
    int level = -1;             ///< -1 when no local copy exists
    CkptState state = CkptState::kLocal;
    bool local_present = false;
  };

  /// `hierarchy` must outlive the manager. Recovery runs inline: the
  /// manifest journal (on the fastest writable level) is replayed, torn
  /// tails dropped, orphan temp copies deleted, quota re-reserved for
  /// live local copies, and interrupted drains re-queued. `policy`
  /// defaults to first-fit (the paper's placement order).
  CheckpointManager(core::StorageHierarchy& hierarchy,
                    CheckpointOptions options,
                    core::PlacementPolicyPtr policy = nullptr);
  ~CheckpointManager() override;

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  Status Save(const std::string& name,
              std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> Restore(const std::string& name) override;

  /// Block until every committed checkpoint is durable on the PFS.
  /// Fails only when the manager shuts down while waiting.
  Status Flush() override;

  /// Stop the drain lane. Pending drains stay journalled and resume when
  /// a new manager recovers over the same hierarchy (the crash tests'
  /// "kill" primitive — destruction without Flush).
  void Shutdown();

  [[nodiscard]] Stats GetStats() const;

  /// Manifest snapshot, oldest first; pruned entries excluded.
  [[nodiscard]] std::vector<EntryView> ManifestView() const;

  [[nodiscard]] const CheckpointOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Entry {
    std::uint64_t gen = 0;
    std::string name;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
    int level = -1;
    CkptState state = CkptState::kLocal;
    bool local_present = false;
    /// Whether the local copy holds a quota reservation (recovery keeps
    /// an un-reservable copy alive when it is the only one with the data).
    bool quota_held = false;
    bool pruned = false;
  };

  [[nodiscard]] std::string LocalPath(const std::string& name,
                                      std::uint64_t gen) const;
  [[nodiscard]] std::string PfsPath(const std::string& name,
                                    std::uint64_t gen) const;

  void Recover();
  void DrainLoop();
  /// One full chunked local->PFS copy + verify; false on failure (the
  /// caller parks and retries).
  bool DrainOnce(const Entry& snapshot);
  /// Evict the oldest durable local copy to make room; false when none.
  bool EvictOneLocalLocked();
  void ApplyRetentionLocked();
  /// Chunked CRC32C of `path` on `driver` (pool-buffered); rate-limited
  /// when `limited` and a drain cap is configured.
  Result<std::uint32_t> ChecksumFile(core::StorageDriver& driver,
                                     const std::string& path,
                                     std::uint64_t bytes, bool limited);
  Status WriteDirectToPfs(const Entry& entry,
                          std::span<const std::byte> data);

  core::StorageHierarchy& hierarchy_;
  CheckpointOptions options_;
  core::PlacementPolicyPtr policy_;

  /// Internal writable driver over the PFS engine: drains get the same
  /// retry/breaker ladder as reads (the hierarchy's own PFS driver is
  /// read-only by construction).
  std::unique_ptr<core::StorageDriver> pfs_writer_;
  std::unique_ptr<ManifestJournal> journal_;
  BufferPool pool_;
  std::optional<RateLimiter> drain_limiter_;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;   ///< wakes drain workers
  std::condition_variable flush_cv_;   ///< wakes Flush waiters
  std::map<std::uint64_t, Entry> entries_;  ///< by gen (ordered = oldest first)
  std::deque<std::uint64_t> drain_queue_;
  std::uint64_t next_gen_ = 1;
  std::uint64_t pending_drains_ = 0;
  bool stop_ = false;

  Stats stats_;  ///< guarded by mu_ (counters mirrored process-wide below)

  std::vector<std::thread> drain_workers_;

  // `ckpt.*` instruments (docs/OBSERVABILITY.md §1); process-wide, stable
  // pointers resolved once, following the `storage.retries` pattern.
  obs::Counter* saves_ = nullptr;
  obs::Counter* save_bytes_ = nullptr;
  obs::Histogram* save_stall_us_ = nullptr;
  obs::Counter* restores_ = nullptr;
  obs::Counter* drains_ = nullptr;
  obs::Counter* drain_bytes_counter_ = nullptr;
  obs::Counter* drain_retries_ = nullptr;
  obs::Counter* local_evictions_ = nullptr;
  obs::Counter* pruned_counter_ = nullptr;
  obs::Counter* direct_pfs_writes_ = nullptr;
  obs::Counter* resumed_drains_ = nullptr;
  obs::Gauge* pending_drains_gauge_ = nullptr;
};

}  // namespace monarch::ckpt
