#include "ckpt/manifest.h"

#include <charconv>
#include <cstdio>
#include <span>
#include <string_view>
#include <vector>

#include "util/crc32c.h"

namespace monarch::ckpt {

namespace {

constexpr std::string_view kOpNames[] = {"begin",   "local", "draining",
                                         "durable", "evict", "prune"};

/// Parse one unsigned field; false on malformed input.
template <typename T>
bool ParseField(std::string_view text, T& out) {
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

/// Split `line` on single spaces (records never contain runs of spaces).
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    if (space == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return fields;
}

/// Decode one journal line into `record`; false when torn or corrupt.
bool DecodeLine(std::string_view line, ManifestRecord& record) {
  const std::size_t hash = line.rfind(" #");
  if (hash == std::string_view::npos) return false;
  const std::string_view payload = line.substr(0, hash);
  std::uint32_t stored_crc = 0;
  {
    const std::string_view trailer = line.substr(hash + 2);
    const auto result = std::from_chars(
        trailer.data(), trailer.data() + trailer.size(), stored_crc, 16);
    if (result.ec != std::errc{} ||
        result.ptr != trailer.data() + trailer.size()) {
      return false;
    }
  }
  if (Crc32c(payload.data(), payload.size()) != stored_crc) return false;

  const auto fields = SplitFields(payload);
  if (fields.size() != 6) return false;
  bool known_op = false;
  for (std::size_t i = 0; i < std::size(kOpNames); ++i) {
    if (fields[0] == kOpNames[i]) {
      record.op = static_cast<ManifestOp>(i);
      known_op = true;
      break;
    }
  }
  if (!known_op) return false;
  record.name = std::string(fields[2]);
  std::int64_t level = 0;
  if (!ParseField(fields[1], record.gen) ||
      !ParseField(fields[3], record.bytes) ||
      !ParseField(fields[4], record.crc) || !ParseField(fields[5], level)) {
    return false;
  }
  record.level = static_cast<int>(level);
  return !record.name.empty();
}

}  // namespace

const char* ManifestOpName(ManifestOp op) noexcept {
  return kOpNames[static_cast<std::size_t>(op)].data();
}

std::string ManifestJournal::Encode(const ManifestRecord& record) {
  std::string payload = std::string(ManifestOpName(record.op)) + " " +
                        std::to_string(record.gen) + " " + record.name + " " +
                        std::to_string(record.bytes) + " " +
                        std::to_string(record.crc) + " " +
                        std::to_string(record.level);
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x",
                Crc32c(payload.data(), payload.size()));
  return payload + " #" + crc_hex + "\n";
}

ManifestJournal::ManifestJournal(core::StorageDriver& driver, std::string path)
    : driver_(driver), path_(std::move(path)) {}

Result<ManifestReplay> ManifestJournal::Load() {
  std::lock_guard<std::mutex> lock(mu_);
  ManifestReplay replay;
  tail_ = 0;

  auto exists = driver_.engine().Exists(path_);
  MONARCH_RETURN_IF_ERROR(exists.status());
  if (!exists.value()) return replay;

  MONARCH_ASSIGN_OR_RETURN(const std::uint64_t size,
                           driver_.engine().FileSize(path_));
  std::vector<std::byte> raw(size);
  if (size > 0) {
    MONARCH_ASSIGN_OR_RETURN(const std::size_t read,
                             driver_.Read(path_, 0, raw));
    raw.resize(read);
  }
  const std::string_view text(reinterpret_cast<const char*>(raw.data()),
                              raw.size());

  std::size_t offset = 0;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    if (newline == std::string_view::npos) break;  // torn: no newline yet
    ManifestRecord record;
    if (!DecodeLine(text.substr(offset, newline - offset), record)) break;
    replay.records.push_back(std::move(record));
    offset = newline + 1;
  }
  replay.valid_bytes = offset;
  replay.torn_tail_bytes = text.size() - offset;
  tail_ = offset;
  return replay;
}

Status ManifestJournal::Append(const ManifestRecord& record) {
  const std::string line = Encode(record);
  std::lock_guard<std::mutex> lock(mu_);
  MONARCH_RETURN_IF_ERROR(driver_.WriteAt(
      path_, tail_,
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(line.data()), line.size())));
  tail_ += line.size();
  return Status::Ok();
}

}  // namespace monarch::ckpt
