// DirectPfsSink: the write-through baseline the write-back tier is
// measured against (bench/ext_checkpoint). Every Save is a synchronous,
// CRC-verified chunked write straight to the PFS — exactly the burst a
// vanilla framework inflicts on the shared filesystem, and exactly the
// stall the CheckpointManager hides. Same retry envelope, same
// durability guarantee (verified PFS copy on return), so the bench
// compares stall time at equal end-state safety.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint_sink.h"
#include "core/storage_driver.h"

namespace monarch::ckpt {

struct DirectPfsOptions {
  std::string dir = "ckpt";
  std::size_t chunk_bytes = std::size_t{1} << 22;  // 4 MiB
  core::RetryPolicy retry;
  core::TierHealthOptions health;
};

class DirectPfsSink final : public core::CheckpointSink {
 public:
  DirectPfsSink(storage::StorageEnginePtr pfs_engine,
                DirectPfsOptions options = {});

  Status Save(const std::string& name,
              std::span<const std::byte> data) override;
  Result<std::vector<std::byte>> Restore(const std::string& name) override;

  /// Write-through: everything is already durable.
  Status Flush() override { return Status::Ok(); }

 private:
  struct Saved {
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
  };

  [[nodiscard]] std::string PathFor(const std::string& name) const {
    return options_.dir + "/" + name;
  }

  DirectPfsOptions options_;
  core::StorageDriver driver_;
  std::mutex mu_;
  std::map<std::string, Saved> saved_;
};

}  // namespace monarch::ckpt
