#include "ckpt/checkpoint_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/event_tracer.h"
#include "obs/json.h"
#include "util/clock.h"
#include "util/crc32c.h"

namespace monarch::ckpt {

namespace {

/// Cap on the drain lane's park-and-retry backoff. Durability is
/// mandatory, so a failing drain retries until shutdown; the cap keeps
/// the lane responsive once an outage heals.
constexpr auto kMaxDrainBackoff = std::chrono::milliseconds(16);

}  // namespace

const char* CkptStateName(CkptState state) noexcept {
  switch (state) {
    case CkptState::kLocal: return "local";
    case CkptState::kDraining: return "draining";
    case CkptState::kDurable: return "durable";
  }
  return "unknown";
}

CheckpointManager::CheckpointManager(core::StorageHierarchy& hierarchy,
                                     CheckpointOptions options,
                                     core::PlacementPolicyPtr policy)
    : hierarchy_(hierarchy),
      options_(std::move(options)),
      policy_(policy != nullptr ? std::move(policy)
                                : core::MakeFirstFitPolicy()),
      pool_(options_.buffer_bytes, options_.chunk_bytes) {
  // Drains need a *writable* retry/breaker envelope around the PFS
  // engine; the hierarchy's own PFS driver is read-only by construction.
  // The aliasing shared_ptr is non-owning: the hierarchy outlives us.
  storage::StorageEnginePtr pfs_engine(storage::StorageEnginePtr{},
                                       &hierarchy_.Pfs().engine());
  pfs_writer_ = std::make_unique<core::StorageDriver>(
      hierarchy_.Pfs().name() + "-ckpt-drain", std::move(pfs_engine),
      /*quota_bytes=*/0, /*read_only=*/false, options_.retry,
      options_.health);
  journal_ =
      std::make_unique<ManifestJournal>(hierarchy_.Level(0),
                                        options_.dir + "/MANIFEST");
  if (options_.drain_bandwidth_bytes_per_sec > 0) {
    drain_limiter_.emplace(
        static_cast<double>(options_.drain_bandwidth_bytes_per_sec));
  }
  if (options_.qos_broker != nullptr) {
    // Attribute every drained byte to the drain tenant: the broker's
    // weighted shares are what keep a checkpoint flood from starving the
    // demand classes of the shared PFS (ISSUE 10).
    options_.qos_broker->RegisterTenant(options_.tenant);
    pfs_writer_->SetQosBroker(options_.qos_broker, options_.tenant);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  saves_ = registry.GetCounter("ckpt.saves", "ops",
                               "checkpoints committed by Save");
  save_bytes_ = registry.GetCounter("ckpt.save_bytes", "bytes",
                                    "checkpoint payload bytes committed");
  save_stall_us_ = registry.GetHistogram(
      "ckpt.save_stall_us", "us",
      "trainer-visible Save latency (the checkpoint stall)");
  restores_ = registry.GetCounter("ckpt.restores", "ops",
                                  "checkpoint restore requests served");
  drains_ = registry.GetCounter("ckpt.drains", "ops",
                                "checkpoints made durable by the drain lane");
  drain_bytes_counter_ = registry.GetCounter(
      "ckpt.drain_bytes", "bytes", "bytes drained to the PFS and verified");
  drain_retries_ = registry.GetCounter(
      "ckpt.drain_retries", "ops",
      "drain attempts parked by PFS errors or an open circuit breaker");
  local_evictions_ = registry.GetCounter(
      "ckpt.local_evictions", "ops",
      "durable local checkpoint copies evicted under capacity pressure");
  pruned_counter_ = registry.GetCounter(
      "ckpt.pruned", "ops", "checkpoints retired by keep-last-K retention");
  direct_pfs_writes_ = registry.GetCounter(
      "ckpt.direct_pfs_writes", "ops",
      "Saves written synchronously to the PFS (no tier had room)");
  resumed_drains_ = registry.GetCounter(
      "ckpt.resumed_drains", "ops",
      "interrupted drains re-queued by manifest recovery");
  pending_drains_gauge_ = registry.GetGauge(
      "ckpt.pending_drains", "tasks",
      "committed checkpoints not yet durable on the PFS");

  Recover();

  const int workers = std::max(1, options_.drain_threads);
  drain_workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    drain_workers_.emplace_back([this] { DrainLoop(); });
  }
}

CheckpointManager::~CheckpointManager() { Shutdown(); }

std::string CheckpointManager::LocalPath(const std::string& name,
                                         std::uint64_t gen) const {
  return options_.dir + "/" + name + ".g" + std::to_string(gen);
}

std::string CheckpointManager::PfsPath(const std::string& name,
                                       std::uint64_t gen) const {
  return options_.dir + "/" + name + ".g" + std::to_string(gen);
}

void CheckpointManager::Recover() {
  auto replay = journal_->Load();
  if (!replay.ok()) return;  // empty/unreadable journal: fresh start

  std::map<std::uint64_t, ManifestRecord> begun;
  for (const ManifestRecord& record : replay->records) {
    next_gen_ = std::max(next_gen_, record.gen + 1);
    switch (record.op) {
      case ManifestOp::kBegin:
        begun.emplace(record.gen, record);
        break;
      case ManifestOp::kLocal: {
        Entry entry;
        entry.gen = record.gen;
        entry.name = record.name;
        entry.bytes = record.bytes;
        entry.crc = record.crc;
        entry.level = record.level;
        entry.state = CkptState::kLocal;
        entry.local_present = true;
        entries_[record.gen] = std::move(entry);
        begun.erase(record.gen);
        break;
      }
      case ManifestOp::kDraining: {
        auto it = entries_.find(record.gen);
        if (it != entries_.end()) it->second.state = CkptState::kDraining;
        break;
      }
      case ManifestOp::kDurable: {
        auto it = entries_.find(record.gen);
        if (it == entries_.end()) {
          // Direct-to-PFS Save: durable without a local commit.
          Entry entry;
          entry.gen = record.gen;
          entry.name = record.name;
          entry.bytes = record.bytes;
          entry.crc = record.crc;
          it = entries_.emplace(record.gen, std::move(entry)).first;
        }
        it->second.state = CkptState::kDurable;
        begun.erase(record.gen);
        break;
      }
      case ManifestOp::kEvict: {
        auto it = entries_.find(record.gen);
        if (it != entries_.end()) it->second.local_present = false;
        break;
      }
      case ManifestOp::kPrune: {
        auto it = entries_.find(record.gen);
        if (it != entries_.end()) it->second.pruned = true;
        begun.erase(record.gen);
        break;
      }
    }
  }
  stats_.torn_tail_bytes = replay->torn_tail_bytes;

  // Uncommitted writes: a `begin` without a commit means the crash hit
  // mid-write. The partial copy was never visible (restore consults only
  // committed entries); delete whatever landed, on any tier it could
  // have landed on.
  for (const auto& [gen, record] : begun) {
    const std::string path = LocalPath(record.name, gen);
    for (int level = 0; level < hierarchy_.pfs_level(); ++level) {
      core::StorageDriver& driver = hierarchy_.Level(level);
      if (driver.read_only()) continue;
      auto exists = driver.engine().Exists(path);
      if (exists.ok() && exists.value()) (void)driver.Delete(path);
    }
    auto exists = pfs_writer_->engine().Exists(PfsPath(record.name, gen));
    if (exists.ok() && exists.value()) {
      (void)pfs_writer_->Delete(PfsPath(record.name, gen));
    }
    ++stats_.dropped_orphans;
    (void)journal_->Append(
        {ManifestOp::kPrune, gen, record.name, record.bytes, 0, -1});
  }

  // Committed entries: re-reserve quota for live local copies and
  // re-queue every drain the crash interrupted (idempotent: the copy
  // restarts from offset zero against the same gen-qualified PFS path).
  for (auto& [gen, entry] : entries_) {
    if (entry.pruned) continue;
    if (entry.local_present) {
      core::StorageDriver& driver = hierarchy_.Level(entry.level);
      auto exists = driver.engine().Exists(LocalPath(entry.name, gen));
      if (!exists.ok() || !exists.value()) {
        entry.local_present = false;
        if (entry.state != CkptState::kDurable) {
          // Both copies gone — nothing left to drain or restore.
          entry.pruned = true;
          ++stats_.dropped_orphans;
          (void)journal_->Append(
              {ManifestOp::kPrune, gen, entry.name, entry.bytes, 0, -1});
          continue;
        }
      }
    }
    if (entry.local_present) {
      if (hierarchy_.Level(entry.level).Reserve(entry.bytes)) {
        entry.quota_held = true;
        stats_.local_bytes += entry.bytes;
      } else if (entry.state == CkptState::kDurable) {
        // Quota shrank under us and the PFS already has the bytes.
        (void)hierarchy_.Level(entry.level)
            .Delete(LocalPath(entry.name, gen));
        entry.local_present = false;
        ++stats_.local_evictions;
        local_evictions_->Increment();
        (void)journal_->Append(
            {ManifestOp::kEvict, gen, entry.name, entry.bytes, 0, -1});
      }
      // else: keep the only copy alive without a reservation; the drain
      // lane still has bytes to push (quota_held stays false).
    }
    if (entry.state != CkptState::kDurable) {
      entry.state = CkptState::kLocal;  // a half-done drain restarts
      drain_queue_.push_back(gen);
      ++pending_drains_;
      ++stats_.resumed_drains;
      resumed_drains_->Increment();
    }
  }
  pending_drains_gauge_->Set(static_cast<std::int64_t>(pending_drains_));

  obs::EventTracer& tracer = obs::EventTracer::Global();
  if (tracer.enabled()) {
    tracer.RecordInstant(
        "ckpt.recover", "ckpt",
        "\"entries\":" + std::to_string(entries_.size()) +
            ",\"resumed\":" + std::to_string(stats_.resumed_drains) +
            ",\"orphans\":" + std::to_string(stats_.dropped_orphans) +
            ",\"torn_tail_bytes\":" +
            std::to_string(stats_.torn_tail_bytes));
  }
}

Status CheckpointManager::Save(const std::string& name,
                               std::span<const std::byte> data) {
  if (name.empty() || name.find_first_of(" \t\r\n") != std::string::npos) {
    return InvalidArgumentError("invalid checkpoint name '" + name + "'");
  }
  if (data.empty()) {
    return InvalidArgumentError("empty checkpoint '" + name + "'");
  }
  obs::TraceSpan span("ckpt.save", "ckpt");
  const Stopwatch stall;
  const std::uint32_t crc = Crc32c(data);

  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return FailedPreconditionError("checkpoint manager is shut down");
    }
    gen = next_gen_++;
  }
  if (span.active()) {
    span.set_args_json("\"name\":" + obs::JsonQuote(name) +
                       ",\"gen\":" + std::to_string(gen) +
                       ",\"bytes\":" + std::to_string(data.size()));
  }

  MONARCH_RETURN_IF_ERROR(journal_->Append(
      {ManifestOp::kBegin, gen, name, data.size(), crc, -1}));

  // Fastest tier with room, evicting already-durable local checkpoint
  // copies (oldest first) when the quota is tight. PickLevel reserves.
  std::optional<int> level = policy_->PickLevel(hierarchy_, data.size());
  while (!level.has_value()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!EvictOneLocalLocked()) break;
    }
    level = policy_->PickLevel(hierarchy_, data.size());
  }

  const std::string local_path = LocalPath(name, gen);
  bool landed_local = false;
  if (level.has_value()) {
    core::StorageDriver& driver = hierarchy_.Level(*level);
    Status write = Status::Ok();
    for (std::size_t offset = 0; offset < data.size();
         offset += options_.chunk_bytes) {
      const std::size_t n =
          std::min(options_.chunk_bytes, data.size() - offset);
      write = driver.WriteAt(local_path, offset, data.subspan(offset, n));
      if (!write.ok()) break;
    }
    if (write.ok() && options_.verify_local_writes) {
      auto readback =
          ChecksumFile(driver, local_path, data.size(), /*limited=*/false);
      if (!readback.ok()) {
        write = readback.status();
      } else if (readback.value() != crc) {
        write = DataLossError("checkpoint '" + name +
                              "' failed CRC verification on tier " +
                              driver.name());
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.local_quarantined;
      }
    }
    if (write.ok()) {
      landed_local = true;
    } else {
      (void)driver.Delete(local_path);
      driver.Release(data.size());
    }
  }

  Entry entry;
  entry.gen = gen;
  entry.name = name;
  entry.bytes = data.size();
  entry.crc = crc;

  if (landed_local) {
    entry.level = *level;
    entry.state = CkptState::kLocal;
    entry.local_present = true;
    entry.quota_held = true;
    // The commit point: from here the checkpoint is visible and the
    // drain lane owes the PFS a copy.
    MONARCH_RETURN_IF_ERROR(journal_->Append(
        {ManifestOp::kLocal, gen, name, data.size(), crc, *level}));
  } else {
    // Degradation ladder's last rung: no tier had room (or the write
    // failed) — pay the synchronous PFS write the write-back tier
    // normally hides.
    MONARCH_RETURN_IF_ERROR(WriteDirectToPfs(entry, data));
    entry.state = CkptState::kDurable;
    MONARCH_RETURN_IF_ERROR(journal_->Append(
        {ManifestOp::kDurable, gen, name, data.size(), crc, -1}));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.saves;
    stats_.save_bytes += entry.bytes;
    if (entry.local_present) {
      stats_.local_bytes += entry.bytes;
      entries_[gen] = entry;
      drain_queue_.push_back(gen);
      ++pending_drains_;
      pending_drains_gauge_->Set(static_cast<std::int64_t>(pending_drains_));
    } else {
      ++stats_.direct_pfs_writes;
      direct_pfs_writes_->Increment();
      entries_[gen] = entry;
    }
    ApplyRetentionLocked();
  }
  drain_cv_.notify_one();

  saves_->Increment();
  save_bytes_->Increment(entry.bytes);
  save_stall_us_->RecordMicros(
      static_cast<std::uint64_t>(stall.ElapsedSeconds() * 1e6));
  return Status::Ok();
}

Result<std::vector<std::byte>> CheckpointManager::Restore(
    const std::string& name) {
  Entry snapshot;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.restores;
    // Newest committed generation of `name` wins.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (!it->second.pruned && it->second.name == name) {
        snapshot = it->second;
        found = true;
        break;
      }
    }
  }
  restores_->Increment();
  if (!found) {
    return NotFoundError("no committed checkpoint named '" + name + "'");
  }

  std::vector<std::byte> data(snapshot.bytes);
  if (snapshot.local_present) {
    core::StorageDriver& driver = hierarchy_.Level(snapshot.level);
    auto read = driver.Read(LocalPath(name, snapshot.gen), 0, data);
    bool ok = read.ok() && read.value() == snapshot.bytes;
    if (ok && options_.verify_on_restore && Crc32c(data) != snapshot.crc) {
      // Corrupt local copy: quarantine it and degrade to the PFS (same
      // ladder shape as the read path's verify_on_read).
      ok = false;
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(snapshot.gen);
      if (it != entries_.end() && it->second.local_present) {
        (void)driver.Delete(LocalPath(name, snapshot.gen));
        if (it->second.quota_held) {
          driver.Release(it->second.bytes);
          stats_.local_bytes -= it->second.bytes;
        }
        it->second.local_present = false;
        it->second.quota_held = false;
        ++stats_.local_quarantined;
        (void)journal_->Append({ManifestOp::kEvict, snapshot.gen, name,
                                snapshot.bytes, 0, -1});
      }
    }
    if (ok) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.restores_local;
      return data;
    }
    if (snapshot.state != CkptState::kDurable) {
      return DataLossError("checkpoint '" + name +
                           "' lost its only (local) copy");
    }
  }

  // Served by the PFS copy (evicted, quarantined, or direct-written).
  auto read = pfs_writer_->Read(PfsPath(name, snapshot.gen), 0, data);
  MONARCH_RETURN_IF_ERROR(read.status());
  if (read.value() != snapshot.bytes ||
      (options_.verify_on_restore && Crc32c(data) != snapshot.crc)) {
    return DataLossError("durable checkpoint '" + name +
                         "' failed CRC verification on the PFS");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.restores_pfs;
  }
  return data;
}

Status CheckpointManager::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  flush_cv_.wait(lock, [this] { return stop_ || pending_drains_ == 0; });
  if (pending_drains_ == 0) return Status::Ok();
  return UnavailableError("checkpoint manager shut down with " +
                          std::to_string(pending_drains_) +
                          " drains pending");
}

void CheckpointManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  drain_cv_.notify_all();
  flush_cv_.notify_all();
  for (std::thread& worker : drain_workers_) {
    if (worker.joinable()) worker.join();
  }
}

void CheckpointManager::DrainLoop() {
  // Drain workers carry the drain tenant for their whole lifetime: the
  // local-tier reads in DrainOnce/ChecksumFile and the PFS writes all
  // charge the drain class, never whichever job triggered the Save.
  qos::ScopedTenant scope(options_.tenant);
  while (true) {
    std::uint64_t gen = 0;
    Entry snapshot;
    {
      std::unique_lock<std::mutex> lock(mu_);
      drain_cv_.wait(lock,
                     [this] { return stop_ || !drain_queue_.empty(); });
      if (stop_) return;
      gen = drain_queue_.front();
      drain_queue_.pop_front();
      auto it = entries_.find(gen);
      if (it == entries_.end() || it->second.pruned ||
          it->second.state == CkptState::kDurable ||
          !it->second.local_present) {
        --pending_drains_;
        pending_drains_gauge_->Set(
            static_cast<std::int64_t>(pending_drains_));
        flush_cv_.notify_all();
        continue;
      }
      it->second.state = CkptState::kDraining;
      snapshot = it->second;
    }
    (void)journal_->Append({ManifestOp::kDraining, gen, snapshot.name,
                            snapshot.bytes, snapshot.crc, snapshot.level});

    // Durability is mandatory: park with capped backoff across PFS
    // outages (the driver's bounded retries + circuit breaker decide
    // when an attempt has failed) and start the copy over — the
    // gen-qualified PFS path makes restarts idempotent.
    auto backoff = std::chrono::milliseconds(1);
    while (!DrainOnce(snapshot)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;  // pending drains stay journalled
        ++stats_.drain_retries;
      }
      drain_retries_->Increment();
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, kMaxDrainBackoff);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
      }
    }

    // Journal `durable` before publishing the state so a crash between
    // the two re-drains at worst (idempotent), never forgets durability.
    (void)journal_->Append({ManifestOp::kDurable, gen, snapshot.name,
                            snapshot.bytes, snapshot.crc, snapshot.level});
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(gen);
      if (it != entries_.end()) it->second.state = CkptState::kDurable;
      --pending_drains_;
      pending_drains_gauge_->Set(static_cast<std::int64_t>(pending_drains_));
      ++stats_.drains_completed;
      stats_.drain_bytes += snapshot.bytes;
      ApplyRetentionLocked();
    }
    drains_->Increment();
    drain_bytes_counter_->Increment(snapshot.bytes);
    flush_cv_.notify_all();
  }
}

bool CheckpointManager::DrainOnce(const Entry& snapshot) {
  // Respect the breaker before burning a retry budget against a tier the
  // resilience layer already routed around.
  if (!pfs_writer_->health().AllowRequest()) return false;

  obs::TraceSpan span("ckpt.drain", "ckpt");
  if (span.active()) {
    span.set_args_json("\"name\":" + obs::JsonQuote(snapshot.name) +
                       ",\"gen\":" + std::to_string(snapshot.gen) +
                       ",\"bytes\":" + std::to_string(snapshot.bytes));
  }

  core::StorageDriver& local = hierarchy_.Level(snapshot.level);
  const std::string local_path = LocalPath(snapshot.name, snapshot.gen);
  const std::string pfs_path = PfsPath(snapshot.name, snapshot.gen);

  std::uint32_t crc = 0;
  for (std::uint64_t offset = 0; offset < snapshot.bytes;
       offset += options_.chunk_bytes) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(options_.chunk_bytes,
                                snapshot.bytes - offset));
    if (drain_limiter_.has_value()) {
      drain_limiter_->Acquire(static_cast<double>(n));
    }
    BufferPool::Lease lease = pool_.Acquire();
    std::span<std::byte> chunk(lease.bytes().data(), n);
    auto read = local.Read(local_path, offset, chunk);
    if (!read.ok() || read.value() != n) return false;
    crc = Crc32c(chunk, crc);
    if (!pfs_writer_->WriteAt(pfs_path, offset, chunk).ok()) return false;
  }
  if (crc != snapshot.crc) return false;  // local copy did not checksum

  if (options_.verify_drained_writes) {
    auto size = pfs_writer_->engine().FileSize(pfs_path);
    if (!size.ok() || size.value() != snapshot.bytes) return false;
    auto readback =
        ChecksumFile(*pfs_writer_, pfs_path, snapshot.bytes,
                     /*limited=*/true);
    if (!readback.ok() || readback.value() != snapshot.crc) return false;
  }
  return true;
}

bool CheckpointManager::EvictOneLocalLocked() {
  for (auto& [gen, entry] : entries_) {
    if (entry.pruned || !entry.local_present ||
        entry.state != CkptState::kDurable) {
      continue;
    }
    core::StorageDriver& driver = hierarchy_.Level(entry.level);
    (void)driver.Delete(LocalPath(entry.name, gen));
    if (entry.quota_held) {
      driver.Release(entry.bytes);
      stats_.local_bytes -= entry.bytes;
    }
    entry.local_present = false;
    entry.quota_held = false;
    ++stats_.local_evictions;
    local_evictions_->Increment();
    (void)journal_->Append(
        {ManifestOp::kEvict, gen, entry.name, entry.bytes, 0, -1});
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("ckpt.evict", "ckpt",
                           "\"name\":" + obs::JsonQuote(entry.name) +
                               ",\"gen\":" + std::to_string(gen) +
                               ",\"bytes\":" + std::to_string(entry.bytes));
    }
    return true;
  }
  return false;
}

void CheckpointManager::ApplyRetentionLocked() {
  if (options_.keep_last <= 0) return;
  std::size_t live = 0;
  for (const auto& [gen, entry] : entries_) {
    if (!entry.pruned) ++live;
  }
  if (live <= static_cast<std::size_t>(options_.keep_last)) return;
  std::size_t excess = live - static_cast<std::size_t>(options_.keep_last);

  // Oldest first; a checkpoint still draining is skipped and retired the
  // next time retention runs (after its drain completes).
  for (auto& [gen, entry] : entries_) {
    if (excess == 0) break;
    if (entry.pruned) continue;
    if (entry.state != CkptState::kDurable) {
      --excess;  // counts against the window but cannot be pruned yet
      continue;
    }
    if (entry.local_present) {
      core::StorageDriver& driver = hierarchy_.Level(entry.level);
      (void)driver.Delete(LocalPath(entry.name, gen));
      if (entry.quota_held) {
        driver.Release(entry.bytes);
        stats_.local_bytes -= entry.bytes;
      }
      entry.local_present = false;
      entry.quota_held = false;
    }
    (void)pfs_writer_->Delete(PfsPath(entry.name, gen));
    entry.pruned = true;
    ++stats_.pruned;
    pruned_counter_->Increment();
    (void)journal_->Append(
        {ManifestOp::kPrune, gen, entry.name, entry.bytes, 0, -1});
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant("ckpt.prune", "ckpt",
                           "\"name\":" + obs::JsonQuote(entry.name) +
                               ",\"gen\":" + std::to_string(gen));
    }
    --excess;
  }
}

Result<std::uint32_t> CheckpointManager::ChecksumFile(
    core::StorageDriver& driver, const std::string& path,
    std::uint64_t bytes, bool limited) {
  std::uint32_t crc = 0;
  for (std::uint64_t offset = 0; offset < bytes;
       offset += options_.chunk_bytes) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(options_.chunk_bytes, bytes - offset));
    if (limited && drain_limiter_.has_value()) {
      drain_limiter_->Acquire(static_cast<double>(n));
    }
    BufferPool::Lease lease = pool_.Acquire();
    std::span<std::byte> chunk(lease.bytes().data(), n);
    MONARCH_ASSIGN_OR_RETURN(const std::size_t read,
                             driver.Read(path, offset, chunk));
    if (read != n) {
      return InternalError("short read at offset " + std::to_string(offset) +
                           " of '" + path + "'");
    }
    crc = Crc32c(chunk, crc);
  }
  return crc;
}

Status CheckpointManager::WriteDirectToPfs(const Entry& entry,
                                           std::span<const std::byte> data) {
  const std::string path = PfsPath(entry.name, entry.gen);
  for (std::size_t offset = 0; offset < data.size();
       offset += options_.chunk_bytes) {
    const std::size_t n = std::min(options_.chunk_bytes, data.size() - offset);
    MONARCH_RETURN_IF_ERROR(
        pfs_writer_->WriteAt(path, offset, data.subspan(offset, n)));
  }
  // Always prove the synchronous copy before reporting success — this is
  // the arm with no second copy to fall back on.
  MONARCH_ASSIGN_OR_RETURN(
      const std::uint32_t crc,
      ChecksumFile(*pfs_writer_, path, data.size(), /*limited=*/false));
  if (crc != entry.crc) {
    (void)pfs_writer_->Delete(path);
    return DataLossError("direct PFS write of '" + entry.name +
                         "' failed CRC verification");
  }
  return Status::Ok();
}

CheckpointManager::Stats CheckpointManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.pending_drains = pending_drains_;
  return stats;
}

std::vector<CheckpointManager::EntryView> CheckpointManager::ManifestView()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryView> views;
  views.reserve(entries_.size());
  for (const auto& [gen, entry] : entries_) {
    if (entry.pruned) continue;
    EntryView view;
    view.gen = gen;
    view.name = entry.name;
    view.bytes = entry.bytes;
    view.crc = entry.crc;
    view.level = entry.local_present ? entry.level : -1;
    view.state = entry.state;
    view.local_present = entry.local_present;
    views.push_back(std::move(view));
  }
  return views;
}

}  // namespace monarch::ckpt
