#include "ckpt/direct_pfs_sink.h"

#include <algorithm>
#include <utility>

#include "util/crc32c.h"

namespace monarch::ckpt {

DirectPfsSink::DirectPfsSink(storage::StorageEnginePtr pfs_engine,
                             DirectPfsOptions options)
    : options_(std::move(options)),
      driver_("pfs-ckpt-direct", std::move(pfs_engine),
              /*quota_bytes=*/0, /*read_only=*/false, options_.retry,
              options_.health) {}

Status DirectPfsSink::Save(const std::string& name,
                           std::span<const std::byte> data) {
  if (name.empty() || data.empty()) {
    return InvalidArgumentError("invalid checkpoint save '" + name + "'");
  }
  const std::string path = PathFor(name);
  for (std::size_t offset = 0; offset < data.size();
       offset += options_.chunk_bytes) {
    const std::size_t n = std::min(options_.chunk_bytes, data.size() - offset);
    MONARCH_RETURN_IF_ERROR(
        driver_.WriteAt(path, offset, data.subspan(offset, n)));
  }

  // Equal-durability rule: a Save only returns after the PFS copy
  // checksums (the write-back arm proves the same before `durable`).
  const std::uint32_t crc = Crc32c(data);
  std::vector<std::byte> readback(data.size());
  MONARCH_ASSIGN_OR_RETURN(const std::size_t read,
                           driver_.Read(path, 0, readback));
  if (read != data.size() || Crc32c(readback) != crc) {
    (void)driver_.Delete(path);
    return DataLossError("direct PFS checkpoint '" + name +
                         "' failed CRC verification");
  }

  std::lock_guard<std::mutex> lock(mu_);
  saved_[name] = Saved{data.size(), crc};
  return Status::Ok();
}

Result<std::vector<std::byte>> DirectPfsSink::Restore(
    const std::string& name) {
  Saved saved;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = saved_.find(name);
    if (it == saved_.end()) {
      return NotFoundError("no checkpoint named '" + name + "'");
    }
    saved = it->second;
  }
  std::vector<std::byte> data(saved.bytes);
  MONARCH_ASSIGN_OR_RETURN(const std::size_t read,
                           driver_.Read(PathFor(name), 0, data));
  if (read != saved.bytes || Crc32c(data) != saved.crc) {
    return DataLossError("checkpoint '" + name +
                         "' failed CRC verification on the PFS");
  }
  return data;
}

}  // namespace monarch::ckpt
