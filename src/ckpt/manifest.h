// Checkpoint manifest: an append-only, per-node journal that is the
// atomic commit point of every checkpoint state transition.
//
// StorageEngine has no rename, so the classic temp-file + rename commit
// is expressed one level up: checkpoint bytes stream to their data path
// first, and only a `local` journal record — carrying the byte count and
// the CRC32C of the payload — makes the copy *visible*. Restore consults
// the manifest, never the directory, so a torn data write is
// unreachable; a torn journal record is caught because every record
// carries its own CRC32C trailer and replay stops at the first record
// that fails it (the torn tail is then overwritten by the next append).
//
// Record grammar (one line per record, '#'-separated CRC trailer):
//   <op> <gen> <name> <bytes> <crc> <level> #<crc32c-of-payload-hex>
// ops:
//   begin    write started (data path may hold a partial copy)
//   local    committed on a cache tier             -> state kLocal
//   draining drain to the PFS started              -> state kDraining
//   durable  PFS copy complete and CRC-verified    -> state kDurable
//   evict    local copy deleted (quota released), PFS copy remains
//   prune    checkpoint retired (keep-last-K); all copies deleted
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/storage_driver.h"
#include "util/status.h"

namespace monarch::ckpt {

enum class ManifestOp {
  kBegin,
  kLocal,
  kDraining,
  kDurable,
  kEvict,
  kPrune,
};

[[nodiscard]] const char* ManifestOpName(ManifestOp op) noexcept;

struct ManifestRecord {
  ManifestOp op = ManifestOp::kBegin;
  std::uint64_t gen = 0;       ///< monotone per-save id; orders retention
  std::string name;            ///< checkpoint name (no whitespace)
  std::uint64_t bytes = 0;     ///< payload size (begin/local/durable)
  std::uint32_t crc = 0;       ///< payload CRC32C (local/durable)
  int level = -1;              ///< cache level of the local copy (local)
};

/// Result of replaying the journal from disk.
struct ManifestReplay {
  std::vector<ManifestRecord> records;  ///< valid records, journal order
  std::uint64_t valid_bytes = 0;        ///< offset appends resume at
  std::uint64_t torn_tail_bytes = 0;    ///< bytes dropped after the last
                                        ///< record that verified
};

/// The journal file, accessed through a StorageDriver so appends get the
/// tier's retry envelope. Appends are serialised by a mutex; a record is
/// on disk when Append returns.
class ManifestJournal {
 public:
  /// `driver` must outlive the journal; `path` is the journal file's
  /// engine path. The journal occupies no quota (metadata, a few hundred
  /// bytes per checkpoint).
  ManifestJournal(core::StorageDriver& driver, std::string path);

  /// Parse the on-disk journal. Resets the append offset to just past
  /// the last valid record, so the next Append overwrites any torn tail.
  Result<ManifestReplay> Load();

  Status Append(const ManifestRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Serialise one record (with CRC trailer and trailing newline) —
  /// exposed so crash tests can fabricate journal states.
  [[nodiscard]] static std::string Encode(const ManifestRecord& record);

 private:
  core::StorageDriver& driver_;
  const std::string path_;
  std::mutex mu_;
  std::uint64_t tail_ = 0;  ///< append offset (past the last valid record)
};

}  // namespace monarch::ckpt
