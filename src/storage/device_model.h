// Device performance model: turns configured bandwidth/latency figures
// (plus an optional contention process) into the wall-clock cost of each
// I/O request, shared fairly across threads via token buckets.
//
// Profiles are expressed at "simulation scale": the benches run datasets
// scaled 1/1000 from the paper's, so a profile's bandwidth is likewise
// scaled to keep epoch times in seconds while preserving every ratio the
// figures depend on (SSD-vs-Lustre speed, dataset-vs-quota size).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "storage/contention_model.h"
#include "util/clock.h"
#include "util/rate_limiter.h"

namespace monarch::storage {

struct DeviceProfile {
  std::string name = "device";
  double read_bandwidth_bps = 1e9;    ///< sustained sequential read
  double write_bandwidth_bps = 1e9;
  Duration read_latency = Micros(80);    ///< fixed per-op setup cost
  Duration write_latency = Micros(100);
  Duration metadata_latency = Micros(50);///< open/stat cost

  /// SSD-class local device (scaled): fast, low latency, no contention.
  static DeviceProfile LocalSsd();
  /// Lustre-class shared PFS (scaled): slower per-client, much higher
  /// per-op and metadata latency (every op crosses the network to
  /// OSS/MDS), pair with ContentionModel::SharedPfs.
  static DeviceProfile LustrePfs();
  /// DRAM-class tier for the multi-level-hierarchy experiments.
  static DeviceProfile RamDisk();
};

/// One instance per physical device; every engine wrapper that shares the
/// device shares the model (and therefore its bandwidth).
class DeviceModel {
 public:
  explicit DeviceModel(DeviceProfile profile,
                       ContentionModel contention = ContentionModel());

  /// Block for the simulated duration of a read of `bytes`.
  void ChargeRead(std::uint64_t bytes);
  /// Block for the simulated duration of a write of `bytes`.
  void ChargeWrite(std::uint64_t bytes);
  /// Block for the simulated duration of a metadata op.
  void ChargeMetadata();

  [[nodiscard]] const DeviceProfile& profile() const noexcept {
    return profile_;
  }

  /// Expected uncontended service time for a read of `bytes` — used by
  /// benches to sanity-check calibration.
  [[nodiscard]] Duration PredictRead(std::uint64_t bytes) const;

 private:
  ContentionModel::Sample Condition();

  DeviceProfile profile_;
  ContentionModel contention_;
  RateLimiter read_bucket_;
  RateLimiter write_bucket_;
};

using DeviceModelPtr = std::shared_ptr<DeviceModel>;

}  // namespace monarch::storage
