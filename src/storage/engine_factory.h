// Convenience constructors wiring engines + device models into the
// simulated storage stacks the benches and examples use.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "storage/storage_engine.h"

namespace monarch::storage {

/// Host directory behaving like a compute node's local SSD (XFS-on-SSD in
/// the paper). No contention.
StorageEnginePtr MakeLocalSsdEngine(const std::filesystem::path& root);

/// Host directory behaving like a shared Lustre mount: slower per-client,
/// expensive metadata ops, contended by other (simulated) cluster jobs.
/// `seed` drives the contention process; pass different seeds per run to
/// reproduce run-to-run variability, or `contended=false` for a quiet PFS.
StorageEnginePtr MakeLustreEngine(const std::filesystem::path& root,
                                  std::uint64_t seed, bool contended = true);

/// RAM-backed tier with DRAM-class timing (the §VI extra-layer study).
StorageEnginePtr MakeRamEngine();

/// Raw host-speed directory engine (tests, dataset generation).
StorageEnginePtr MakeRawEngine(const std::filesystem::path& root);

}  // namespace monarch::storage
