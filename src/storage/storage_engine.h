// StorageEngine: the raw backend abstraction every tier driver sits on.
//
// Engines are directory-like object stores addressed by relative path.
// Real bytes always flow (so correctness is end-to-end testable); the
// *performance* of an engine is what varies — PosixEngine talks straight
// to the host file system, ThrottledEngine overlays a device model that
// reproduces SSD- or Lustre-class behaviour, MemoryEngine keeps data in
// RAM (the §VI "more storage layers" tier).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/io_stats.h"
#include "util/status.h"

namespace monarch::storage {

struct FileStat {
  std::string path;          ///< engine-relative path
  std::uint64_t size = 0;
};

/// An immutable span of file bytes LENT by an engine (the zero-copy read
/// lane). `keepalive` pins whatever owns the bytes — for MemoryEngine the
/// file's current buffer — so the view stays valid even if the file is
/// deleted, overwritten, or the engine torn down while the view is held.
/// Engines that cannot lend (POSIX, modelled-latency decorators) return a
/// view over a private copy instead; `zero_copy()` tells the caller which
/// lane actually served the read.
class ReadView {
 public:
  ReadView() = default;
  ReadView(std::span<const std::byte> data,
           std::shared_ptr<const void> keepalive, bool zero_copy) noexcept
      : data_(data), keepalive_(std::move(keepalive)), zero_copy_(zero_copy) {}

  [[nodiscard]] std::span<const std::byte> data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  /// True when the bytes are the engine's own page, not a copy.
  [[nodiscard]] bool zero_copy() const noexcept { return zero_copy_; }

  /// Drop the view (and its pin on the underlying bytes) early.
  void Reset() noexcept {
    data_ = {};
    keepalive_.reset();
    zero_copy_ = false;
  }

 private:
  std::span<const std::byte> data_{};
  std::shared_ptr<const void> keepalive_;
  bool zero_copy_ = false;
};

class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// Read up to `dst.size()` bytes at `offset` from `path` into `dst`.
  /// Returns the byte count actually read (0 at EOF). Reading at an
  /// offset past EOF yields 0, not an error, matching POSIX pread.
  /// Takes string_view: the hot read path must not force a key copy per
  /// call (the async ring submits millions of these per epoch).
  virtual Result<std::size_t> Read(std::string_view path,
                                   std::uint64_t offset,
                                   std::span<std::byte> dst) = 0;

  /// Zero-copy read: lend up to `max_bytes` of `path` starting at
  /// `offset` as an immutable ReadView. Memory-backed engines override
  /// this to lend their own page (no memcpy); this default falls back to
  /// a copying read so every engine supports the API. A view read past
  /// EOF is empty, not an error, matching Read.
  virtual Result<ReadView> ReadZeroCopy(std::string_view path,
                                        std::uint64_t offset,
                                        std::uint64_t max_bytes) {
    auto size = FileSize(std::string(path));
    if (!size.ok()) return size.status();
    const std::uint64_t n =
        offset >= size.value()
            ? 0
            : std::min<std::uint64_t>(max_bytes, size.value() - offset);
    auto buffer = std::make_shared<std::vector<std::byte>>(
        static_cast<std::size_t>(n));
    auto read = Read(path, offset, *buffer);
    if (!read.ok()) return read.status();
    buffer->resize(read.value());
    std::span<const std::byte> data(*buffer);
    return ReadView(data, std::move(buffer), /*zero_copy=*/false);
  }

  /// Create/overwrite `path` with `data` (single atomic-ish put).
  virtual Status Write(const std::string& path,
                       std::span<const std::byte> data) = 0;

  /// Write `data` into `path` at byte `offset`, creating the file (and
  /// zero-filling any gap) as needed. The staging pipeline streams a file
  /// as a sequence of chunk-sized WriteAt calls so peak memory stays
  /// bounded by the buffer pool, not the file size. The generic fallback
  /// below is read-splice-write; engines with a cheap native partial
  /// write override it.
  virtual Status WriteAt(const std::string& path, std::uint64_t offset,
                         std::span<const std::byte> data) {
    std::vector<std::byte> whole;
    auto size = FileSize(path);
    if (size.ok()) {
      whole.resize(size.value());
      auto read = Read(path, 0, whole);
      if (!read.ok()) return read.status();
      whole.resize(read.value());
    }
    if (whole.size() < offset + data.size()) {
      whole.resize(offset + data.size());
    }
    std::copy(data.begin(), data.end(),
              whole.begin() + static_cast<std::ptrdiff_t>(offset));
    return Write(path, whole);
  }

  /// Remove `path`. NotFound if absent.
  virtual Status Delete(const std::string& path) = 0;

  /// stat(): size of `path`. Counted as a metadata op.
  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;

  virtual Result<bool> Exists(const std::string& path) = 0;

  /// Recursively enumerate files (relative paths + sizes), sorted by path.
  /// Counted as metadata ops (one per directory visited plus one per entry,
  /// approximating the PFS metadata-server traffic of a namespace walk).
  virtual Result<std::vector<FileStat>> ListFiles(const std::string& dir) = 0;

  /// Instrumentation shared by all wrappers of the same physical device.
  virtual IoStats& Stats() = 0;

  /// Human-readable engine identity for logs and reports.
  [[nodiscard]] virtual std::string Name() const = 0;
};

using StorageEnginePtr = std::shared_ptr<StorageEngine>;

}  // namespace monarch::storage
