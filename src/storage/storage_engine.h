// StorageEngine: the raw backend abstraction every tier driver sits on.
//
// Engines are directory-like object stores addressed by relative path.
// Real bytes always flow (so correctness is end-to-end testable); the
// *performance* of an engine is what varies — PosixEngine talks straight
// to the host file system, ThrottledEngine overlays a device model that
// reproduces SSD- or Lustre-class behaviour, MemoryEngine keeps data in
// RAM (the §VI "more storage layers" tier).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "util/status.h"

namespace monarch::storage {

struct FileStat {
  std::string path;          ///< engine-relative path
  std::uint64_t size = 0;
};

class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// Read up to `dst.size()` bytes at `offset` from `path` into `dst`.
  /// Returns the byte count actually read (0 at EOF). Reading at an
  /// offset past EOF yields 0, not an error, matching POSIX pread.
  virtual Result<std::size_t> Read(const std::string& path,
                                   std::uint64_t offset,
                                   std::span<std::byte> dst) = 0;

  /// Create/overwrite `path` with `data` (single atomic-ish put).
  virtual Status Write(const std::string& path,
                       std::span<const std::byte> data) = 0;

  /// Write `data` into `path` at byte `offset`, creating the file (and
  /// zero-filling any gap) as needed. The staging pipeline streams a file
  /// as a sequence of chunk-sized WriteAt calls so peak memory stays
  /// bounded by the buffer pool, not the file size. The generic fallback
  /// below is read-splice-write; engines with a cheap native partial
  /// write override it.
  virtual Status WriteAt(const std::string& path, std::uint64_t offset,
                         std::span<const std::byte> data) {
    std::vector<std::byte> whole;
    auto size = FileSize(path);
    if (size.ok()) {
      whole.resize(size.value());
      auto read = Read(path, 0, whole);
      if (!read.ok()) return read.status();
      whole.resize(read.value());
    }
    if (whole.size() < offset + data.size()) {
      whole.resize(offset + data.size());
    }
    std::copy(data.begin(), data.end(),
              whole.begin() + static_cast<std::ptrdiff_t>(offset));
    return Write(path, whole);
  }

  /// Remove `path`. NotFound if absent.
  virtual Status Delete(const std::string& path) = 0;

  /// stat(): size of `path`. Counted as a metadata op.
  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;

  virtual Result<bool> Exists(const std::string& path) = 0;

  /// Recursively enumerate files (relative paths + sizes), sorted by path.
  /// Counted as metadata ops (one per directory visited plus one per entry,
  /// approximating the PFS metadata-server traffic of a namespace walk).
  virtual Result<std::vector<FileStat>> ListFiles(const std::string& dir) = 0;

  /// Instrumentation shared by all wrappers of the same physical device.
  virtual IoStats& Stats() = 0;

  /// Human-readable engine identity for logs and reports.
  [[nodiscard]] virtual std::string Name() const = 0;
};

using StorageEnginePtr = std::shared_ptr<StorageEngine>;

}  // namespace monarch::storage
