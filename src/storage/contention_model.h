// Background-contention process for the shared-PFS device model.
//
// The paper's motivation (§II) hinges on Lustre being "concurrently
// accessed by other jobs executing in the Frontera supercomputer", which
// shows up as high run-to-run variability in training time. We model the
// aggregate load of those other jobs as a Markov-modulated process: the
// cluster sits in one of a few load states (idle / light / busy / storm),
// dwells there for an exponentially distributed interval, then jumps.
// Each state maps to a bandwidth-availability factor and a latency
// multiplier for *our* job.
//
// The process is a deterministic function of (seed, elapsed time), so a
// run is reproducible, but different seeds reproduce the paper's
// run-to-run spread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/rng.h"

namespace monarch::storage {

struct LoadState {
  std::string name;
  double bandwidth_factor;   ///< fraction of device bandwidth we get (0..1]
  double latency_multiplier; ///< per-op latency inflation (>= 1)
  double mean_dwell_seconds; ///< expected time spent in this state
  /// Relative transition weights to every state (self-weight ignored).
  std::vector<double> transition_weights;
};

class ContentionModel {
 public:
  /// Uncontended model: always returns factor 1 / multiplier 1.
  ContentionModel();

  /// Custom state machine. `states` must be non-empty and every
  /// transition_weights vector must have states.size() entries.
  ContentionModel(std::vector<LoadState> states, std::uint64_t seed,
                  std::size_t initial_state = 0);

  /// A Lustre-like default: mostly light contention with occasional busy
  /// bursts and rare storms (calibrated in bench/ to reproduce the
  /// paper's vanilla-lustre error bars).
  static ContentionModel SharedPfs(std::uint64_t seed);

  /// Movable so models can be passed by value into DeviceModel (the mutex
  /// is per-instance; moving a model mid-use is not supported).
  ContentionModel(ContentionModel&& other) noexcept
      : states_(std::move(other.states_)),
        rng_(other.rng_),
        current_(other.current_),
        next_transition_(other.next_transition_),
        started_(other.started_) {}
  ContentionModel& operator=(ContentionModel&&) = delete;
  ContentionModel(const ContentionModel&) = delete;
  ContentionModel& operator=(const ContentionModel&) = delete;

  struct Sample {
    double bandwidth_factor = 1.0;
    double latency_multiplier = 1.0;
    std::size_t state_index = 0;
  };

  /// Advance the chain to `now` and return the current condition.
  /// Thread-safe; called on every I/O request by the device model.
  Sample Current(TimePoint now);

  [[nodiscard]] bool IsStatic() const noexcept { return states_.size() <= 1; }
  [[nodiscard]] const std::vector<LoadState>& states() const noexcept {
    return states_;
  }

 private:
  void AdvanceLocked(TimePoint now);
  Duration SampleDwellLocked();
  std::size_t SampleNextStateLocked();

  std::mutex mu_;
  std::vector<LoadState> states_;
  Xoshiro256 rng_;
  std::size_t current_ = 0;
  TimePoint next_transition_{};
  bool started_ = false;
};

}  // namespace monarch::storage
