// In-RAM engine: the persistent-memory/RAM tier the paper's §VI suggests
// exploring, and the fast backend for unit tests.
#pragma once

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/storage_engine.h"

namespace monarch::storage {

class MemoryEngine final : public StorageEngine {
 public:
  explicit MemoryEngine(std::string name = "ram");

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override;
  Status Delete(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<FileStat>> ListFiles(const std::string& dir) override;

  IoStats& Stats() override { return stats_; }
  [[nodiscard]] std::string Name() const override { return name_; }

  /// Total bytes currently stored (tests assert quota accounting matches).
  [[nodiscard]] std::uint64_t TotalBytes() const;

 private:
  std::string name_;
  IoStats stats_;
  mutable std::shared_mutex mu_;
  // Ordered so ListFiles gets sorted output for free.
  std::map<std::string, std::vector<std::byte>> files_;
  // Last member: deregisters from the global MetricsRegistry before
  // stats_ (and files_) are destroyed.
  obs::SourceRegistration stats_reg_;
};

}  // namespace monarch::storage
