// In-RAM engine: the persistent-memory/RAM tier the paper's §VI suggests
// exploring, and the fast backend for unit tests.
//
// Files are held as immutable shared buffers so the zero-copy read lane
// can lend a page span to callers: a ReadView pins the buffer it was cut
// from, and writers swap in a fresh buffer instead of mutating in place,
// so a lent span is never recycled mid-read even across Delete/Write.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/storage_engine.h"

namespace monarch::storage {

class MemoryEngine final : public StorageEngine {
 public:
  explicit MemoryEngine(std::string name = "ram");

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Result<ReadView> ReadZeroCopy(std::string_view path, std::uint64_t offset,
                                std::uint64_t max_bytes) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override;
  Status Delete(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<FileStat>> ListFiles(const std::string& dir) override;

  IoStats& Stats() override { return stats_; }
  [[nodiscard]] std::string Name() const override { return name_; }

  /// Total bytes currently stored (tests assert quota accounting matches).
  [[nodiscard]] std::uint64_t TotalBytes() const;

 private:
  using Buffer = std::shared_ptr<const std::vector<std::byte>>;

  std::string name_;
  IoStats stats_;
  mutable std::shared_mutex mu_;
  // Ordered so ListFiles gets sorted output for free; transparent
  // comparator so string_view lookups don't build a temporary key.
  std::map<std::string, Buffer, std::less<>> files_;
  // Last member: deregisters from the global MetricsRegistry before
  // stats_ (and files_) are destroyed.
  obs::SourceRegistration stats_reg_;
};

}  // namespace monarch::storage
