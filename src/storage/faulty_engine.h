// FaultyEngine: failure-injection decorator for tests. Covers the whole
// StorageEngine surface:
//   - probabilistic (seeded) or explicit one-shot UNAVAILABLE failures on
//     reads, writes, and metadata ops (FileSize/Exists/ListFiles),
//   - silent corruption: a read succeeds but a byte in the returned data
//     is flipped — the case only checksums can catch,
//   - outage windows: every injectable op fails for a fixed duration (or
//     until Heal()), the scenario that trips a tier's circuit breaker.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "storage/storage_engine.h"
#include "util/clock.h"
#include "util/rng.h"

namespace monarch::storage {

class FaultyEngine final : public StorageEngine {
 public:
  struct FaultSpec {
    double read_failure_rate = 0.0;
    double write_failure_rate = 0.0;
    /// Applies to FileSize, Exists, and ListFiles.
    double metadata_failure_rate = 0.0;
    /// Probability that a successful read is silently corrupted (one byte
    /// flipped). Counted separately from failures: the caller sees OK.
    double read_corruption_rate = 0.0;
    std::uint64_t seed = 42;
  };

  FaultyEngine(StorageEnginePtr inner, FaultSpec spec)
      : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {}

  /// Make the next `n` reads fail regardless of rates.
  void FailNextReads(int n) { forced_read_failures_.store(n); }
  /// Make the next `n` writes fail regardless of rates.
  void FailNextWrites(int n) { forced_write_failures_.store(n); }
  /// Make the next `n` metadata ops (FileSize/Exists/ListFiles) fail.
  void FailNextMetadataOps(int n) { forced_metadata_failures_.store(n); }
  /// Silently corrupt the next `n` successful reads.
  void CorruptNextReads(int n) { forced_corruptions_.store(n); }

  /// Hard-down window: every injectable op fails until `duration` elapses.
  void FailFor(monarch::Duration duration) {
    outage_until_ns_.store(
        monarch::SteadyClock::now().time_since_epoch().count() +
        std::chrono::duration_cast<monarch::Duration>(duration).count());
  }
  /// Hard-down until Heal() is called.
  void FailUntilHealed() { outage_until_ns_.store(-1); }
  /// End any outage window immediately.
  void Heal() { outage_until_ns_.store(0); }
  [[nodiscard]] bool in_outage() const noexcept {
    const std::int64_t until = outage_until_ns_.load();
    if (until == 0) return false;
    if (until < 0) return true;
    return monarch::SteadyClock::now().time_since_epoch().count() < until;
  }

  /// UNAVAILABLE errors injected so far (outage + forced + probabilistic).
  [[nodiscard]] std::uint64_t injected_failures() const noexcept {
    return injected_.load();
  }
  /// Reads whose payload was silently corrupted.
  [[nodiscard]] std::uint64_t injected_corruptions() const noexcept {
    return corrupted_.load();
  }

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    if (ShouldFail(forced_read_failures_, spec_.read_failure_rate)) {
      return UnavailableError("injected read fault on '" + std::string(path) +
                              "'");
    }
    auto read = inner_->Read(path, offset, dst);
    if (read.ok() && read.value() > 0 &&
        ShouldTrigger(forced_corruptions_, spec_.read_corruption_rate)) {
      // Flip one bit somewhere in the returned payload; deterministic for
      // a given seed, invisible without a checksum.
      const std::size_t victim = NextIndex(read.value());
      dst[victim] ^= std::byte{0x20};
      corrupted_.fetch_add(1);
    }
    return read;
  }

  Result<ReadView> ReadZeroCopy(std::string_view path, std::uint64_t offset,
                                std::uint64_t max_bytes) override {
    // Corruption must never scribble on a lent page (other readers may
    // hold views of the same bytes), so when corruption is configured the
    // copying fallback routes through our own Read and flips a byte in
    // the private copy instead.
    if (spec_.read_corruption_rate > 0.0 || forced_corruptions_.load() > 0) {
      return StorageEngine::ReadZeroCopy(path, offset, max_bytes);
    }
    if (ShouldFail(forced_read_failures_, spec_.read_failure_rate)) {
      return UnavailableError("injected read fault on '" + std::string(path) +
                              "'");
    }
    return inner_->ReadZeroCopy(path, offset, max_bytes);
  }

  Status Write(const std::string& path,
               std::span<const std::byte> data) override {
    if (ShouldFail(forced_write_failures_, spec_.write_failure_rate)) {
      return UnavailableError("injected write fault on '" + path + "'");
    }
    return inner_->Write(path, data);
  }

  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override {
    if (ShouldFail(forced_write_failures_, spec_.write_failure_rate)) {
      return UnavailableError("injected write fault on '" + path + "'");
    }
    return inner_->WriteAt(path, offset, data);
  }

  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  Result<std::uint64_t> FileSize(const std::string& path) override {
    if (ShouldFail(forced_metadata_failures_, spec_.metadata_failure_rate)) {
      return UnavailableError("injected stat fault on '" + path + "'");
    }
    return inner_->FileSize(path);
  }
  Result<bool> Exists(const std::string& path) override {
    if (ShouldFail(forced_metadata_failures_, spec_.metadata_failure_rate)) {
      return UnavailableError("injected stat fault on '" + path + "'");
    }
    return inner_->Exists(path);
  }
  Result<std::vector<FileStat>> ListFiles(const std::string& dir) override {
    if (ShouldFail(forced_metadata_failures_, spec_.metadata_failure_rate)) {
      return UnavailableError("injected listing fault on '" + dir + "'");
    }
    return inner_->ListFiles(dir);
  }

  IoStats& Stats() override { return inner_->Stats(); }
  [[nodiscard]] std::string Name() const override {
    return inner_->Name() + "+faults";
  }

 private:
  /// Forced counter / probability draw, without counting an injection.
  bool ShouldTrigger(std::atomic<int>& forced, double rate) {
    int n = forced.load();
    while (n > 0) {
      if (forced.compare_exchange_weak(n, n - 1)) return true;
    }
    if (rate > 0.0) {
      std::lock_guard<std::mutex> lock(rng_mu_);
      return rng_.NextDouble() < rate;
    }
    return false;
  }

  bool ShouldFail(std::atomic<int>& forced, double rate) {
    if (in_outage() || ShouldTrigger(forced, rate)) {
      injected_.fetch_add(1);
      return true;
    }
    return false;
  }

  std::size_t NextIndex(std::size_t bound) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    return static_cast<std::size_t>(rng_.NextBounded(bound));
  }

  StorageEnginePtr inner_;
  FaultSpec spec_;
  std::mutex rng_mu_;
  Xoshiro256 rng_;
  std::atomic<int> forced_read_failures_{0};
  std::atomic<int> forced_write_failures_{0};
  std::atomic<int> forced_metadata_failures_{0};
  std::atomic<int> forced_corruptions_{0};
  /// 0 = no outage, -1 = until Heal(), >0 = steady-clock deadline (ns).
  std::atomic<std::int64_t> outage_until_ns_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> corrupted_{0};
};

}  // namespace monarch::storage
