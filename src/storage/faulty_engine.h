// FaultyEngine: failure-injection decorator for tests. Fails operations
// either probabilistically (seeded) or via an explicit one-shot trigger,
// returning UNAVAILABLE — the transient-error path tier drivers and the
// placement handler must survive.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "storage/storage_engine.h"
#include "util/rng.h"

namespace monarch::storage {

class FaultyEngine final : public StorageEngine {
 public:
  struct FaultSpec {
    double read_failure_rate = 0.0;
    double write_failure_rate = 0.0;
    std::uint64_t seed = 42;
  };

  FaultyEngine(StorageEnginePtr inner, FaultSpec spec)
      : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {}

  /// Make the next `n` reads fail regardless of rates.
  void FailNextReads(int n) { forced_read_failures_.store(n); }
  /// Make the next `n` writes fail regardless of rates.
  void FailNextWrites(int n) { forced_write_failures_.store(n); }

  [[nodiscard]] std::uint64_t injected_failures() const noexcept {
    return injected_.load();
  }

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    if (ShouldFail(forced_read_failures_, spec_.read_failure_rate)) {
      return UnavailableError("injected read fault on '" + path + "'");
    }
    return inner_->Read(path, offset, dst);
  }

  Status Write(const std::string& path,
               std::span<const std::byte> data) override {
    if (ShouldFail(forced_write_failures_, spec_.write_failure_rate)) {
      return UnavailableError("injected write fault on '" + path + "'");
    }
    return inner_->Write(path, data);
  }

  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  Result<std::uint64_t> FileSize(const std::string& path) override {
    return inner_->FileSize(path);
  }
  Result<bool> Exists(const std::string& path) override {
    return inner_->Exists(path);
  }
  Result<std::vector<FileStat>> ListFiles(const std::string& dir) override {
    return inner_->ListFiles(dir);
  }

  IoStats& Stats() override { return inner_->Stats(); }
  [[nodiscard]] std::string Name() const override {
    return inner_->Name() + "+faults";
  }

 private:
  bool ShouldFail(std::atomic<int>& forced, double rate) {
    int n = forced.load();
    while (n > 0) {
      if (forced.compare_exchange_weak(n, n - 1)) {
        injected_.fetch_add(1);
        return true;
      }
    }
    if (rate > 0.0) {
      std::lock_guard<std::mutex> lock(rng_mu_);
      if (rng_.NextDouble() < rate) {
        injected_.fetch_add(1);
        return true;
      }
    }
    return false;
  }

  StorageEnginePtr inner_;
  FaultSpec spec_;
  std::mutex rng_mu_;
  Xoshiro256 rng_;
  std::atomic<int> forced_read_failures_{0};
  std::atomic<int> forced_write_failures_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace monarch::storage
