// ThrottledEngine: decorates any StorageEngine with a DeviceModel, so a
// plain host directory behaves like a local SSD partition or a shared
// Lustre mount at simulation scale. Bytes and semantics pass through
// untouched; only timing is added.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "storage/device_model.h"
#include "storage/storage_engine.h"

namespace monarch::storage {

class ThrottledEngine final : public StorageEngine {
 public:
  ThrottledEngine(StorageEnginePtr inner, DeviceModelPtr device)
      : inner_(std::move(inner)),
        device_(std::move(device)),
        stats_reg_(RegisterIoStats(obs::MetricsRegistry::Global(), Name(),
                                   &stats_)) {}

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    const Stopwatch timer;
    auto result = inner_->Read(path, offset, dst);
    if (result.ok()) {
      device_->ChargeRead(result.value());
      // Re-attribute the op to this engine's stats with the modelled
      // latency (the inner engine recorded raw host latency; reporting
      // uses ours).
      stats_.RecordRead(result.value(), timer.Elapsed());
    }
    return result;
  }

  Result<ReadView> ReadZeroCopy(std::string_view path, std::uint64_t offset,
                                std::uint64_t max_bytes) override {
    const Stopwatch timer;
    auto result = inner_->ReadZeroCopy(path, offset, max_bytes);
    if (result.ok()) {
      // The device still served the bytes even if no memcpy happened —
      // zero-copy removes the CPU copy, not the device transfer.
      device_->ChargeRead(result.value().size());
      stats_.RecordRead(result.value().size(), timer.Elapsed());
    }
    return result;
  }

  Status Write(const std::string& path,
               std::span<const std::byte> data) override {
    MONARCH_RETURN_IF_ERROR(inner_->Write(path, data));
    device_->ChargeWrite(data.size());
    stats_.RecordWrite(data.size());
    return Status::Ok();
  }

  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override {
    MONARCH_RETURN_IF_ERROR(inner_->WriteAt(path, offset, data));
    device_->ChargeWrite(data.size());
    stats_.RecordWrite(data.size());
    return Status::Ok();
  }

  Status Delete(const std::string& path) override {
    device_->ChargeMetadata();
    stats_.RecordMetadataOp();
    return inner_->Delete(path);
  }

  Result<std::uint64_t> FileSize(const std::string& path) override {
    device_->ChargeMetadata();
    stats_.RecordMetadataOp();
    return inner_->FileSize(path);
  }

  Result<bool> Exists(const std::string& path) override {
    device_->ChargeMetadata();
    stats_.RecordMetadataOp();
    return inner_->Exists(path);
  }

  Result<std::vector<FileStat>> ListFiles(const std::string& dir) override {
    auto result = inner_->ListFiles(dir);
    if (result.ok()) {
      // A namespace walk costs one metadata round trip per entry (the MDS
      // traffic that makes PFS metadata walks expensive in the paper).
      for (std::size_t i = 0; i <= result.value().size(); ++i) {
        device_->ChargeMetadata();
        stats_.RecordMetadataOp();
      }
    }
    return result;
  }

  IoStats& Stats() override { return stats_; }
  [[nodiscard]] std::string Name() const override {
    return inner_->Name() + "@" + device_->profile().name;
  }

  [[nodiscard]] const DeviceModelPtr& device() const noexcept {
    return device_;
  }
  [[nodiscard]] const StorageEnginePtr& inner() const noexcept {
    return inner_;
  }

 private:
  StorageEnginePtr inner_;
  DeviceModelPtr device_;
  IoStats stats_;
  // Last member: deregisters before stats_ dies.
  obs::SourceRegistration stats_reg_;
};

}  // namespace monarch::storage
