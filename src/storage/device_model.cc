#include "storage/device_model.h"

#include <algorithm>

namespace monarch::storage {

DeviceProfile DeviceProfile::LocalSsd() {
  DeviceProfile p;
  p.name = "local-ssd";
  // Frontera node SSD ~500 MB/s; at 1/1000 byte scale an epoch moves
  // ~100 MiB, so 400 MB/s keeps local-served epochs well under a second
  // of pure I/O, matching the paper's compute-bound-when-local regime.
  p.read_bandwidth_bps = 400e6;
  p.write_bandwidth_bps = 600e6;
  p.read_latency = Micros(60);
  p.write_latency = Micros(80);
  p.metadata_latency = Micros(15);
  return p;
}

DeviceProfile DeviceProfile::LustrePfs() {
  DeviceProfile p;
  p.name = "lustre-pfs";
  // Per-client share of a saturated shared PFS. Two calibration targets
  // (EXPERIMENTS.md): the paper's LeNet runs show lustre ~1.9x slower
  // than local overall, and MONARCH's epoch 1 *undercuts* vanilla-lustre
  // because its single streaming whole-file fetch replaces many
  // high-latency chunked preads — so the per-op latency term must carry
  // a large share of the PFS cost, as it does on real Lustre clients.
  p.read_bandwidth_bps = 200e6;
  p.write_bandwidth_bps = 120e6;
  p.read_latency = Micros(1200);    // network + OSS round trip
  p.write_latency = Micros(1600);
  p.metadata_latency = Micros(400); // MDS round trip
  return p;
}

DeviceProfile DeviceProfile::RamDisk() {
  DeviceProfile p;
  p.name = "ram";
  p.read_bandwidth_bps = 4e9;
  p.write_bandwidth_bps = 4e9;
  p.read_latency = Micros(2);
  p.write_latency = Micros(2);
  p.metadata_latency = Micros(1);
  return p;
}

DeviceModel::DeviceModel(DeviceProfile profile, ContentionModel contention)
    : profile_(std::move(profile)),
      contention_(std::move(contention)),
      read_bucket_(profile_.read_bandwidth_bps),
      write_bucket_(profile_.write_bandwidth_bps) {}

ContentionModel::Sample DeviceModel::Condition() {
  return contention_.Current(SteadyClock::now());
}

void DeviceModel::ChargeRead(std::uint64_t bytes) {
  const auto cond = Condition();
  // Latency component, inflated by contention.
  const Duration latency = std::chrono::duration_cast<Duration>(
      profile_.read_latency * cond.latency_multiplier);
  // Bandwidth component: reserve tokens at base rate, then stretch the
  // wait by the unavailable fraction (other jobs consuming the device).
  Duration transfer = read_bucket_.Reserve(static_cast<double>(bytes));
  if (cond.bandwidth_factor < 1.0) {
    const Duration nominal =
        FromSeconds(static_cast<double>(bytes) / profile_.read_bandwidth_bps);
    const Duration stretched = FromSeconds(
        ToSeconds(std::max(transfer, nominal)) / cond.bandwidth_factor);
    transfer = stretched;
  }
  PreciseSleep(latency + transfer);
}

void DeviceModel::ChargeWrite(std::uint64_t bytes) {
  const auto cond = Condition();
  const Duration latency = std::chrono::duration_cast<Duration>(
      profile_.write_latency * cond.latency_multiplier);
  Duration transfer = write_bucket_.Reserve(static_cast<double>(bytes));
  if (cond.bandwidth_factor < 1.0) {
    const Duration nominal = FromSeconds(static_cast<double>(bytes) /
                                         profile_.write_bandwidth_bps);
    transfer = FromSeconds(ToSeconds(std::max(transfer, nominal)) /
                           cond.bandwidth_factor);
  }
  PreciseSleep(latency + transfer);
}

void DeviceModel::ChargeMetadata() {
  const auto cond = Condition();
  PreciseSleep(std::chrono::duration_cast<Duration>(
      profile_.metadata_latency * cond.latency_multiplier));
}

Duration DeviceModel::PredictRead(std::uint64_t bytes) const {
  return profile_.read_latency +
         FromSeconds(static_cast<double>(bytes) / profile_.read_bandwidth_bps);
}

}  // namespace monarch::storage
