#include "storage/posix_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "obs/event_tracer.h"
#include "util/clock.h"

namespace monarch::storage {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  const std::string msg = op + " '" + path + "': " + std::strerror(err);
  switch (err) {
    case ENOENT: return NotFoundError(msg);
    case EEXIST: return AlreadyExistsError(msg);
    case ENOSPC: return ResourceExhaustedError(msg);
    default: return InternalError(msg);
  }
}

/// RAII fd.
class UniqueFd {
 public:
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }

 private:
  int fd_;
};

}  // namespace

PosixEngine::PosixEngine(fs::path root, std::string name)
    : root_(std::move(root)),
      name_(std::move(name)),
      stats_reg_(RegisterIoStats(obs::MetricsRegistry::Global(), name_,
                                 &stats_)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

fs::path PosixEngine::Resolve(std::string_view path) const {
  return root_ / path;
}

Result<std::size_t> PosixEngine::Read(std::string_view path,
                                      std::uint64_t offset,
                                      std::span<std::byte> dst) {
  const obs::TraceSpan span("storage.read", "storage");
  const Stopwatch timer;
  const fs::path full = Resolve(path);
  UniqueFd fd(::open(full.c_str(), O_RDONLY));
  if (fd.get() < 0) return ErrnoStatus("open", std::string(path), errno);

  std::size_t total = 0;
  while (total < dst.size()) {
    const ssize_t n =
        ::pread(fd.get(), dst.data() + total, dst.size() - total,
                static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", std::string(path), errno);
    }
    if (n == 0) break;  // EOF
    total += static_cast<std::size_t>(n);
  }
  stats_.RecordRead(total, timer.Elapsed());
  return total;
}

Status PosixEngine::Write(const std::string& path,
                          std::span<const std::byte> data) {
  const obs::TraceSpan span("storage.write", "storage");
  const fs::path full = Resolve(path);
  std::error_code ec;
  fs::create_directories(full.parent_path(), ec);

  UniqueFd fd(::open(full.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  if (fd.get() < 0) return ErrnoStatus("open", path, errno);

  std::size_t total = 0;
  while (total < data.size()) {
    const ssize_t n =
        ::write(fd.get(), data.data() + total, data.size() - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path, errno);
    }
    total += static_cast<std::size_t>(n);
  }
  stats_.RecordWrite(data.size());
  return Status::Ok();
}

Status PosixEngine::WriteAt(const std::string& path, std::uint64_t offset,
                            std::span<const std::byte> data) {
  const obs::TraceSpan span("storage.write", "storage");
  const fs::path full = Resolve(path);
  std::error_code ec;
  fs::create_directories(full.parent_path(), ec);

  // O_CREAT without O_TRUNC: earlier chunks of the same staged copy must
  // survive this write.
  UniqueFd fd(::open(full.c_str(), O_WRONLY | O_CREAT, 0644));
  if (fd.get() < 0) return ErrnoStatus("open", path, errno);

  std::size_t total = 0;
  while (total < data.size()) {
    const ssize_t n =
        ::pwrite(fd.get(), data.data() + total, data.size() - total,
                 static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path, errno);
    }
    total += static_cast<std::size_t>(n);
  }
  stats_.RecordWrite(data.size());
  return Status::Ok();
}

Status PosixEngine::Delete(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(Resolve(path), ec)) {
    if (ec) return InternalError("remove '" + path + "': " + ec.message());
    return NotFoundError("remove '" + path + "'");
  }
  stats_.RecordMetadataOp();
  return Status::Ok();
}

Result<std::uint64_t> PosixEngine::FileSize(const std::string& path) {
  stats_.RecordMetadataOp();
  std::error_code ec;
  const auto size = fs::file_size(Resolve(path), ec);
  if (ec) return NotFoundError("stat '" + path + "': " + ec.message());
  return static_cast<std::uint64_t>(size);
}

Result<bool> PosixEngine::Exists(const std::string& path) {
  stats_.RecordMetadataOp();
  std::error_code ec;
  const bool exists = fs::exists(Resolve(path), ec);
  if (ec) return InternalError("exists '" + path + "': " + ec.message());
  return exists;
}

Result<std::vector<FileStat>> PosixEngine::ListFiles(const std::string& dir) {
  const fs::path base = Resolve(dir);
  stats_.RecordMetadataOp();
  std::error_code ec;
  if (!fs::exists(base, ec) || ec) {
    return NotFoundError("list '" + dir + "'");
  }

  std::vector<FileStat> out;
  for (auto it = fs::recursive_directory_iterator(base, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    stats_.RecordMetadataOp();
    FileStat st;
    st.path = fs::relative(it->path(), root_, ec).generic_string();
    st.size = static_cast<std::uint64_t>(it->file_size(ec));
    out.push_back(std::move(st));
  }
  if (ec) return InternalError("list '" + dir + "': " + ec.message());
  std::sort(out.begin(), out.end(),
            [](const FileStat& a, const FileStat& b) { return a.path < b.path; });
  return out;
}

}  // namespace monarch::storage
