#include "storage/io_stats.h"

#include <cstdio>

#include "util/byte_units.h"

namespace monarch::storage {

IoStatsSnapshot& IoStatsSnapshot::operator+=(
    const IoStatsSnapshot& other) noexcept {
  read_ops += other.read_ops;
  write_ops += other.write_ops;
  metadata_ops += other.metadata_ops;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  return *this;
}

IoStatsSnapshot operator-(IoStatsSnapshot a,
                          const IoStatsSnapshot& b) noexcept {
  a.read_ops -= b.read_ops;
  a.write_ops -= b.write_ops;
  a.metadata_ops -= b.metadata_ops;
  a.bytes_read -= b.bytes_read;
  a.bytes_written -= b.bytes_written;
  return a;
}

std::string IoStatsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "reads=%llu writes=%llu meta=%llu read=%s written=%s",
                static_cast<unsigned long long>(read_ops),
                static_cast<unsigned long long>(write_ops),
                static_cast<unsigned long long>(metadata_ops),
                FormatByteSize(bytes_read).c_str(),
                FormatByteSize(bytes_written).c_str());
  return buf;
}

}  // namespace monarch::storage
