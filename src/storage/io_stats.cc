#include "storage/io_stats.h"

#include <cstdio>

#include "util/byte_units.h"

namespace monarch::storage {

IoStatsSnapshot& IoStatsSnapshot::operator+=(
    const IoStatsSnapshot& other) noexcept {
  read_ops += other.read_ops;
  write_ops += other.write_ops;
  metadata_ops += other.metadata_ops;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  return *this;
}

IoStatsSnapshot operator-(IoStatsSnapshot a,
                          const IoStatsSnapshot& b) noexcept {
  a.read_ops -= b.read_ops;
  a.write_ops -= b.write_ops;
  a.metadata_ops -= b.metadata_ops;
  a.bytes_read -= b.bytes_read;
  a.bytes_written -= b.bytes_written;
  return a;
}

std::string IoStatsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "reads=%llu writes=%llu meta=%llu read=%s written=%s",
                static_cast<unsigned long long>(read_ops),
                static_cast<unsigned long long>(write_ops),
                static_cast<unsigned long long>(metadata_ops),
                FormatByteSize(bytes_read).c_str(),
                FormatByteSize(bytes_written).c_str());
  return buf;
}

obs::SourceRegistration RegisterIoStats(obs::MetricsRegistry& registry,
                                        std::string_view engine_name,
                                        const IoStats* stats) {
  return registry.AddSource([label = std::string(engine_name), stats]() {
    const IoStatsSnapshot s = stats->Snapshot();
    auto counter = [&label](std::string name, std::string unit,
                            std::string help, std::uint64_t value) {
      obs::MetricSample sample;
      sample.name = std::move(name);
      sample.label = label;
      sample.unit = std::move(unit);
      sample.help = std::move(help);
      sample.kind = obs::MetricKind::kCounter;
      sample.value = value;
      return sample;
    };
    std::vector<obs::MetricSample> samples;
    samples.reserve(6);
    samples.push_back(counter("storage.read_ops", "ops",
                              "read operations served by this engine",
                              s.read_ops));
    samples.push_back(counter("storage.write_ops", "ops",
                              "write operations served by this engine",
                              s.write_ops));
    samples.push_back(counter(
        "storage.metadata_ops", "ops",
        "open/stat/list operations (PFS metadata-server traffic)",
        s.metadata_ops));
    samples.push_back(counter("storage.bytes_read", "bytes",
                              "payload bytes read from this engine",
                              s.bytes_read));
    samples.push_back(counter("storage.bytes_written", "bytes",
                              "payload bytes written to this engine",
                              s.bytes_written));
    obs::MetricSample latency;
    latency.name = "storage.read_latency_us";
    latency.label = label;
    latency.unit = "us";
    latency.help = "per-read latency distribution of this engine";
    latency.kind = obs::MetricKind::kHistogram;
    latency.histogram = stats->ReadLatency();
    samples.push_back(std::move(latency));
    return samples;
  });
}

}  // namespace monarch::storage
