#include "storage/memory_engine.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "obs/event_tracer.h"
#include "util/clock.h"

namespace monarch::storage {

MemoryEngine::MemoryEngine(std::string name)
    : name_(std::move(name)),
      stats_reg_(RegisterIoStats(obs::MetricsRegistry::Global(), name_,
                                 &stats_)) {}

Result<std::size_t> MemoryEngine::Read(std::string_view path,
                                       std::uint64_t offset,
                                       std::span<std::byte> dst) {
  const obs::TraceSpan span("storage.read", "storage");
  const Stopwatch timer;
  Buffer buffer;
  {
    std::shared_lock lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return NotFoundError("read '" + std::string(path) + "'");
    }
    buffer = it->second;  // pin outside the lock; writers swap, not mutate
  }
  const auto& data = *buffer;
  if (offset >= data.size()) {
    stats_.RecordRead(0, timer.Elapsed());
    return static_cast<std::size_t>(0);
  }
  const std::size_t n =
      std::min<std::size_t>(dst.size(), data.size() - offset);
  if (n > 0) {  // an empty span has a null data() — UB to pass to memcpy
    std::memcpy(dst.data(), data.data() + offset, n);
  }
  stats_.RecordRead(n, timer.Elapsed());
  return n;
}

Result<ReadView> MemoryEngine::ReadZeroCopy(std::string_view path,
                                            std::uint64_t offset,
                                            std::uint64_t max_bytes) {
  const obs::TraceSpan span("storage.read", "storage");
  const Stopwatch timer;
  Buffer buffer;
  {
    std::shared_lock lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return NotFoundError("read '" + std::string(path) + "'");
    }
    buffer = it->second;
  }
  const auto& data = *buffer;
  std::span<const std::byte> lent;
  if (offset < data.size()) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_bytes, data.size() - offset));
    lent = std::span<const std::byte>(data.data() + offset, n);
  }
  stats_.RecordRead(lent.size(), timer.Elapsed());
  return ReadView(lent, std::move(buffer), /*zero_copy=*/true);
}

Status MemoryEngine::Write(const std::string& path,
                           std::span<const std::byte> data) {
  const obs::TraceSpan span("storage.write", "storage");
  auto buffer = std::make_shared<std::vector<std::byte>>(data.begin(),
                                                         data.end());
  std::unique_lock lock(mu_);
  files_[path] = std::move(buffer);
  stats_.RecordWrite(data.size());
  return Status::Ok();
}

Status MemoryEngine::WriteAt(const std::string& path, std::uint64_t offset,
                             std::span<const std::byte> data) {
  const obs::TraceSpan span("storage.write", "storage");
  std::unique_lock lock(mu_);
  auto& slot = files_[path];
  // Copy-on-write: outstanding ReadViews pin the old buffer, so never
  // mutate a buffer that might be lent out — build the new version aside
  // and swap it in.
  auto next = slot ? std::make_shared<std::vector<std::byte>>(*slot)
                   : std::make_shared<std::vector<std::byte>>();
  if (next->size() < offset + data.size()) {
    next->resize(offset + data.size());
  }
  if (!data.empty()) {
    std::memcpy(next->data() + offset, data.data(), data.size());
  }
  slot = std::move(next);
  stats_.RecordWrite(data.size());
  return Status::Ok();
}

Status MemoryEngine::Delete(const std::string& path) {
  std::unique_lock lock(mu_);
  stats_.RecordMetadataOp();
  if (files_.erase(path) == 0) return NotFoundError("remove '" + path + "'");
  return Status::Ok();
}

Result<std::uint64_t> MemoryEngine::FileSize(const std::string& path) {
  std::shared_lock lock(mu_);
  stats_.RecordMetadataOp();
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("stat '" + path + "'");
  return static_cast<std::uint64_t>(it->second->size());
}

Result<bool> MemoryEngine::Exists(const std::string& path) {
  std::shared_lock lock(mu_);
  stats_.RecordMetadataOp();
  return files_.contains(path);
}

Result<std::vector<FileStat>> MemoryEngine::ListFiles(const std::string& dir) {
  std::shared_lock lock(mu_);
  stats_.RecordMetadataOp();
  // Interpret `dir` as a path prefix; "" or "." lists everything.
  std::string prefix = dir;
  if (prefix == "." || prefix == "/") prefix.clear();
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';

  std::vector<FileStat> out;
  for (const auto& [path, data] : files_) {
    if (prefix.empty() || path.starts_with(prefix)) {
      stats_.RecordMetadataOp();
      out.push_back(FileStat{path, data->size()});
    }
  }
  // A key-value namespace has no empty directories: a prefix with no
  // entries is indistinguishable from a missing directory, and NotFound
  // matches PosixEngine's behaviour for the same situation.
  if (out.empty() && !prefix.empty()) {
    return NotFoundError("list '" + dir + "'");
  }
  return out;
}

std::uint64_t MemoryEngine::TotalBytes() const {
  std::shared_lock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [path, data] : files_) total += data->size();
  return total;
}

}  // namespace monarch::storage
