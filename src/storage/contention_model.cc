#include "storage/contention_model.h"

#include <cassert>
#include <cmath>

#include "obs/event_tracer.h"
#include "obs/json.h"

namespace monarch::storage {

ContentionModel::ContentionModel()
    : states_{LoadState{"steady", 1.0, 1.0, 1.0, {1.0}}}, rng_(0) {}

ContentionModel::ContentionModel(std::vector<LoadState> states,
                                 std::uint64_t seed,
                                 std::size_t initial_state)
    : states_(std::move(states)), rng_(seed), current_(initial_state) {
  assert(!states_.empty());
  assert(current_ < states_.size());
  for ([[maybe_unused]] const LoadState& s : states_) {
    assert(s.transition_weights.size() == states_.size());
    assert(s.bandwidth_factor > 0.0 && s.bandwidth_factor <= 1.0);
    assert(s.latency_multiplier >= 1.0);
    assert(s.mean_dwell_seconds > 0.0);
  }
}

ContentionModel ContentionModel::SharedPfs(std::uint64_t seed) {
  // Four-state cluster-load model. Dwell times are short relative to an
  // epoch so several transitions happen per epoch (intra-run variability)
  // while different seeds land in different mixes (run-to-run spread).
  std::vector<LoadState> states{
      //  name      bw    lat   dwell   -> idle light busy storm
      {"idle",     1.00, 1.0,  2.0, {0.0, 1.0, 0.25, 0.02}},
      {"light",    0.75, 1.3,  3.0, {0.5, 0.0, 0.50, 0.05}},
      {"busy",     0.45, 2.0,  2.5, {0.2, 1.0, 0.00, 0.15}},
      {"storm",    0.20, 4.0,  1.0, {0.1, 0.6, 0.80, 0.00}},
  };
  return ContentionModel(std::move(states), seed, /*initial_state=*/1);
}

ContentionModel::Sample ContentionModel::Current(TimePoint now) {
  if (IsStatic()) {
    return Sample{states_[0].bandwidth_factor, states_[0].latency_multiplier,
                  0};
  }
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(now);
  const LoadState& s = states_[current_];
  return Sample{s.bandwidth_factor, s.latency_multiplier, current_};
}

void ContentionModel::AdvanceLocked(TimePoint now) {
  if (!started_) {
    started_ = true;
    next_transition_ = now + SampleDwellLocked();
    return;
  }
  // Catch up through any transitions that elapsed since the last call.
  const std::size_t before = current_;
  while (now >= next_transition_) {
    current_ = SampleNextStateLocked();
    next_transition_ += SampleDwellLocked();
  }
  if (current_ != before) {
    obs::EventTracer& tracer = obs::EventTracer::Global();
    if (tracer.enabled()) {
      tracer.RecordInstant(
          "contention.state", "storage",
          "\"state\":" + obs::JsonQuote(states_[current_].name));
    }
  }
}

Duration ContentionModel::SampleDwellLocked() {
  // Exponential dwell with the state's mean.
  const double u = rng_.NextDouble();
  const double dwell =
      -states_[current_].mean_dwell_seconds * std::log(1.0 - u);
  // Clamp so a pathological draw can't freeze the chain.
  return FromSeconds(std::min(dwell, 60.0));
}

std::size_t ContentionModel::SampleNextStateLocked() {
  const std::vector<double>& weights = states_[current_].transition_weights;
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (i != current_) total += weights[i];
  }
  if (total <= 0.0) return current_;
  double draw = rng_.NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (i == current_) continue;
    draw -= weights[i];
    if (draw <= 0.0) return i;
  }
  return current_;
}

}  // namespace monarch::storage
