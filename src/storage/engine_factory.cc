#include "storage/engine_factory.h"

#include "storage/device_model.h"
#include "storage/memory_engine.h"
#include "storage/posix_engine.h"
#include "storage/throttled_engine.h"

namespace monarch::storage {

StorageEnginePtr MakeLocalSsdEngine(const std::filesystem::path& root) {
  auto inner = std::make_shared<PosixEngine>(root, "local");
  auto device = std::make_shared<DeviceModel>(DeviceProfile::LocalSsd());
  return std::make_shared<ThrottledEngine>(std::move(inner),
                                           std::move(device));
}

StorageEnginePtr MakeLustreEngine(const std::filesystem::path& root,
                                  std::uint64_t seed, bool contended) {
  auto inner = std::make_shared<PosixEngine>(root, "pfs");
  auto device = std::make_shared<DeviceModel>(
      DeviceProfile::LustrePfs(),
      contended ? ContentionModel::SharedPfs(seed) : ContentionModel());
  return std::make_shared<ThrottledEngine>(std::move(inner),
                                           std::move(device));
}

StorageEnginePtr MakeRamEngine() {
  auto inner = std::make_shared<MemoryEngine>("ram");
  auto device = std::make_shared<DeviceModel>(DeviceProfile::RamDisk());
  return std::make_shared<ThrottledEngine>(std::move(inner),
                                           std::move(device));
}

StorageEnginePtr MakeRawEngine(const std::filesystem::path& root) {
  return std::make_shared<PosixEngine>(root, "raw");
}

}  // namespace monarch::storage
