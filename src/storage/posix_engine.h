// Directory-backed engine using POSIX I/O (open/pread/write), the layer
// MONARCH intercepts in the paper. No performance model — raw host speed.
#pragma once

#include <filesystem>
#include <string>

#include "storage/storage_engine.h"

namespace monarch::storage {

class PosixEngine final : public StorageEngine {
 public:
  /// All paths are resolved relative to `root`; the directory is created
  /// if missing.
  explicit PosixEngine(std::filesystem::path root, std::string name = "posix");

  Result<std::size_t> Read(std::string_view path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status WriteAt(const std::string& path, std::uint64_t offset,
                 std::span<const std::byte> data) override;
  Status Delete(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Result<std::vector<FileStat>> ListFiles(const std::string& dir) override;

  IoStats& Stats() override { return stats_; }
  [[nodiscard]] std::string Name() const override { return name_; }

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

 private:
  [[nodiscard]] std::filesystem::path Resolve(std::string_view path) const;

  std::filesystem::path root_;
  std::string name_;
  IoStats stats_;
  // Last member: deregisters from the global MetricsRegistry before
  // stats_ is destroyed, so a concurrent snapshot never reads a dead
  // IoStats.
  obs::SourceRegistration stats_reg_;
};

}  // namespace monarch::storage
