// Per-backend I/O instrumentation.
//
// The paper's second evaluation question is "can MONARCH reduce the I/O
// pressure on the PFS backend?" — answered entirely in terms of the
// counters below (data ops, metadata ops, bytes moved), so every storage
// engine updates an IoStats and the bench harnesses diff them.
//
// Measuring an interval: take a Snapshot() before, a Snapshot() after,
// and subtract (`after - before`) — that is what every bench harness
// does. Avoid Reset() for interval measurement; see its comment for why.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics_registry.h"
#include "util/histogram.h"

namespace monarch::storage {

/// Point-in-time copy of the counters (plain integers, safe to subtract).
struct IoStatsSnapshot {
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t metadata_ops = 0;   ///< open/stat/list
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  [[nodiscard]] std::uint64_t data_ops() const noexcept {
    return read_ops + write_ops;
  }
  [[nodiscard]] std::uint64_t total_ops() const noexcept {
    return data_ops() + metadata_ops;
  }

  IoStatsSnapshot& operator+=(const IoStatsSnapshot& other) noexcept;
  friend IoStatsSnapshot operator-(IoStatsSnapshot a,
                                   const IoStatsSnapshot& b) noexcept;

  [[nodiscard]] std::string ToString() const;
};

/// Wait-free concurrent counters + a read-latency histogram.
class IoStats {
 public:
  void RecordRead(std::uint64_t bytes, Duration latency) noexcept {
    read_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_latency_.Record(latency);
  }
  void RecordWrite(std::uint64_t bytes) noexcept {
    write_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordMetadataOp() noexcept {
    metadata_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] IoStatsSnapshot Snapshot() const noexcept {
    IoStatsSnapshot s;
    s.read_ops = read_ops_.load(std::memory_order_relaxed);
    s.write_ops = write_ops_.load(std::memory_order_relaxed);
    s.metadata_ops = metadata_ops_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] LatencyHistogram::Snapshot ReadLatency() const {
    return read_latency_.TakeSnapshot();
  }

  /// Zero every counter and the latency histogram.
  ///
  /// NOT atomic as a whole: each counter is cleared individually, so a
  /// Snapshot() (or a writer) racing a Reset() observes a MIX of pre-
  /// and post-reset values — e.g. `read_ops` already zeroed but
  /// `bytes_read` not yet — and an op recorded during the race may be
  /// half-erased (its op count cleared, its bytes kept). That skew is
  /// unbounded relative to the counter magnitudes, unlike the benign
  /// per-counter approximation of Snapshot() itself.
  ///
  /// Reset() is therefore only safe while no reader or writer is active
  /// (e.g. test setup). To measure an interval on a live engine, diff
  /// two Snapshots instead — the header comment's pattern, used by all
  /// bench harnesses.
  void Reset() noexcept {
    read_ops_.store(0, std::memory_order_relaxed);
    write_ops_.store(0, std::memory_order_relaxed);
    metadata_ops_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    read_latency_.Reset();
  }

 private:
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<std::uint64_t> write_ops_{0};
  std::atomic<std::uint64_t> metadata_ops_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  LatencyHistogram read_latency_;
};

/// Export `stats` through `registry` as the `storage.*` metric family
/// (docs/OBSERVABILITY.md §1), labelled with the engine's name. Pull-
/// based: nothing is copied until a snapshot asks. The caller must keep
/// `stats` alive until the returned handle is destroyed — engines hold
/// the handle as their last member so it deregisters first.
[[nodiscard]] obs::SourceRegistration RegisterIoStats(
    obs::MetricsRegistry& registry, std::string_view engine_name,
    const IoStats* stats);

}  // namespace monarch::storage
