// EventTracer: timestamped span/instant recording with Chrome trace_event
// JSON export, viewable in chrome://tracing or https://ui.perfetto.dev.
//
// Purpose (docs/OBSERVABILITY.md §2): the registry's counters answer "how
// much", spans answer "when and for how long" — the time dimension behind
// the paper's first-vs-later-epoch claims. Instrumented spans: storage
// engine reads/writes, Monarch::Read, placement schedule→complete,
// evictions, contention-state changes, trainer epochs.
//
// Design:
//  * Disabled by default. A disabled tracer costs one relaxed atomic load
//    per potential event — cheap enough to leave the instrumentation
//    compiled into every hot path.
//  * When enabled, each thread records into its OWN fixed-capacity ring
//    buffer (registered on first use, kept alive by shared_ptr past
//    thread exit so export still sees short-lived pool threads). A full
//    ring overwrites the oldest event and counts the drop — tracing
//    never blocks or unboundedly grows; you lose history, not progress,
//    and dropped_events() tells you how much.
//  * Each ring is guarded by its own mutex. The owning thread is the
//    only writer, so the lock is uncontended except against a concurrent
//    export — this keeps export racing writers TSan-clean without
//    needing a lock-free SPSC queue. (The "no locks on the read path"
//    guarantee concerns METRICS, which are pure relaxed atomics; tracing
//    is opt-in and its per-thread lock is uncontended in steady state.)
//
// Export format — the Chrome trace_event "JSON object format":
//   {"displayTimeUnit":"ms","traceEvents":[
//     {"name":"monarch.read","cat":"core","ph":"X","ts":12,"dur":34,
//      "pid":1,"tid":2,"args":{"file":"data/f0"}}, ...]}
// ph "X" = complete event (start ts + dur), ph "i" = instant. Timestamps
// are microseconds since Enable().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace monarch::obs {

/// One recorded event. `args_json` is a pre-rendered JSON object body
/// (e.g. `"file":"a/b"`), empty when the event has no args.
struct TraceEvent {
  std::string name;
  const char* category = "";  ///< must point at a string literal
  char phase = 'X';           ///< 'X' complete, 'i' instant
  std::uint64_t ts_us = 0;    ///< microseconds since Enable()
  std::uint64_t dur_us = 0;   ///< complete events only
  std::uint32_t tid = 0;
  std::string args_json;
};

class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  ///< per thread

  /// The process-wide tracer every instrumented component records into.
  static EventTracer& Global();

  /// Instantiable for tests; production code uses Global().
  EventTracer() = default;
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Start recording. Resets the clock epoch, clears previously recorded
  /// events, and sizes each thread's ring at `events_per_thread`.
  void Enable(std::size_t events_per_thread = kDefaultCapacity);

  /// Stop recording; buffered events stay exportable.
  void Disable() noexcept {
    enabled_.store(false, std::memory_order_release);
  }

  /// Acquire load: pairs with Enable()'s release store so a thread that
  /// sees `true` also sees the reset clock epoch and ring capacity.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Record a complete ('X') event. `category` must be a string literal.
  /// No-op when disabled.
  void RecordComplete(std::string name, const char* category,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      std::string args_json = {});

  /// Record an instant ('i') event at the current time. No-op when
  /// disabled.
  void RecordInstant(std::string name, const char* category,
                     std::string args_json = {});

  /// Microseconds since Enable() (span start timestamps).
  [[nodiscard]] std::uint64_t NowMicros() const noexcept;

  /// Events currently buffered across all threads.
  [[nodiscard]] std::size_t recorded_events() const;

  /// Events overwritten because a thread's ring was full, across all
  /// threads, since Enable().
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Write the Chrome trace_event JSON document. Safe to call while
  /// other threads are still recording (their in-flight events may or
  /// may not be included). Events within one thread appear in recording
  /// order; drops are reported as a process metadata event.
  void ExportChromeJson(std::ostream& os) const;

  /// ExportChromeJson to `path`; fails if the file cannot be written.
  Status ExportChromeJsonToFile(const std::string& path) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::uint32_t tid_in) : tid(tid_in) {}
    const std::uint32_t tid;
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;   ///< capacity-bounded
    std::size_t capacity = 0;
    std::size_t next = 0;           ///< ring write index
    std::uint64_t epoch = 0;        ///< tracer epoch the ring belongs to
    std::uint64_t dropped = 0;
  };

  ThreadBuffer& LocalBuffer();
  void Push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  TimePoint epoch_start_{};
  std::atomic<std::uint64_t> epoch_{0};  ///< bumped by Enable()
  std::size_t capacity_ = kDefaultCapacity;

  mutable std::mutex buffers_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: captures the start time at construction, records one
/// complete event at destruction. When the tracer is disabled at
/// construction the span is inert (no allocation, no clock read).
///
///   obs::TraceSpan span("monarch.read", "core");        // hot path
///   obs::TraceSpan span(tracer, "placement.stage", "placement",
///                       "\"file\":" + JsonQuote(name)); // cold path
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : TraceSpan(EventTracer::Global(), name, category) {}

  TraceSpan(EventTracer& tracer, const char* name, const char* category,
            std::string args_json = {})
      : tracer_(tracer), name_(name), category_(category),
        args_json_(std::move(args_json)), active_(tracer.enabled()) {
    if (active_) start_us_ = tracer_.NowMicros();
  }

  ~TraceSpan() {
    if (active_) {
      tracer_.RecordComplete(name_, category_, start_us_,
                             tracer_.NowMicros() - start_us_,
                             std::move(args_json_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Whether the span will record — callers gate arg construction on
  /// this so disabled tracing stays allocation-free.
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Attach/replace the span's args (pre-rendered JSON object body).
  void set_args_json(std::string args_json) {
    args_json_ = std::move(args_json);
  }

 private:
  EventTracer& tracer_;
  const char* name_;
  const char* category_;
  std::string args_json_;
  std::uint64_t start_us_ = 0;
  const bool active_;
};

}  // namespace monarch::obs
