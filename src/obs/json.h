// Minimal JSON string escaping shared by the metrics and trace exporters.
// Only what the Chrome trace_event format and the metrics dump need:
// correct escaping of quotes, backslashes and control characters so file
// names with arbitrary bytes cannot break the emitted document.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace monarch::obs {

inline void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

/// `text` rendered as a quoted JSON string literal.
[[nodiscard]] inline std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  AppendJsonEscaped(out, text);
  out += '"';
  return out;
}

}  // namespace monarch::obs
