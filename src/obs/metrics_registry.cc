#include "obs/metrics_registry.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace monarch::obs {

std::string_view MetricKindName(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void SourceRegistration::Release() noexcept {
  if (registry_ != nullptr) {
    registry_->RemoveSource(id_);
    registry_ = nullptr;
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrument pointers handed to components never dangle,
  // even during static destruction of late-exiting threads.
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view unit,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    return it->second.kind == MetricKind::kCounter ? it->second.counter.get()
                                                   : nullptr;
  }
  Instrument instrument{MetricKind::kCounter, std::string(unit),
                        std::string(help), std::make_unique<Counter>(),
                        nullptr, nullptr};
  Counter* raw = instrument.counter.get();
  instruments_.emplace(std::string(name), std::move(instrument));
  return raw;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view unit,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    return it->second.kind == MetricKind::kGauge ? it->second.gauge.get()
                                                 : nullptr;
  }
  Instrument instrument{MetricKind::kGauge, std::string(unit),
                        std::string(help), nullptr, std::make_unique<Gauge>(),
                        nullptr};
  Gauge* raw = instrument.gauge.get();
  instruments_.emplace(std::string(name), std::move(instrument));
  return raw;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view unit,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    return it->second.kind == MetricKind::kHistogram
               ? it->second.histogram.get()
               : nullptr;
  }
  Instrument instrument{MetricKind::kHistogram, std::string(unit),
                        std::string(help), nullptr, nullptr,
                        std::make_unique<Histogram>()};
  Histogram* raw = instrument.histogram.get();
  instruments_.emplace(std::string(name), std::move(instrument));
  return raw;
}

SourceRegistration MetricsRegistry::AddSource(SourceFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_source_id_++;
  sources_.emplace(id, std::move(fn));
  return SourceRegistration(this, id);
}

void MetricsRegistry::RemoveSource(std::uint64_t id) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(id);
}

std::vector<MetricSample> MetricsRegistry::SnapshotLocked() const {
  std::vector<MetricSample> samples;
  samples.reserve(instruments_.size());
  for (const auto& [name, instrument] : instruments_) {
    MetricSample sample;
    sample.name = name;
    sample.unit = instrument.unit;
    sample.help = instrument.help;
    sample.kind = instrument.kind;
    switch (instrument.kind) {
      case MetricKind::kCounter:
        sample.value = instrument.counter->Value();
        break;
      case MetricKind::kGauge:
        sample.gauge = instrument.gauge->Value();
        break;
      case MetricKind::kHistogram:
        sample.histogram = instrument.histogram->TakeSnapshot();
        break;
    }
    samples.push_back(std::move(sample));
  }
  for (const auto& [id, source] : sources_) {
    (void)id;
    std::vector<MetricSample> produced = source();
    samples.insert(samples.end(),
                   std::make_move_iterator(produced.begin()),
                   std::make_move_iterator(produced.end()));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return std::tie(a.name, a.label) < std::tie(b.name, b.label);
            });
  return samples;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<MetricSample> samples = Snapshot();
  std::vector<std::string> names;
  names.reserve(samples.size());
  for (MetricSample& sample : samples) names.push_back(std::move(sample.name));
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void MetricsRegistry::PrintText(std::ostream& os) const {
  for (const MetricSample& s : Snapshot()) {
    os << s.name;
    if (!s.label.empty()) os << "{" << s.label << "}";
    os << " " << MetricKindName(s.kind) << " ";
    switch (s.kind) {
      case MetricKind::kCounter: os << s.value; break;
      case MetricKind::kGauge: os << s.gauge; break;
      case MetricKind::kHistogram:
        os << "count=" << s.histogram.count << " p50=" << s.histogram.p50_us
           << " p90=" << s.histogram.p90_us << " p99=" << s.histogram.p99_us
           << " p999=" << s.histogram.p999_us << " max=" << s.histogram.max_us;
        break;
    }
    if (!s.unit.empty()) os << " " << s.unit;
    if (!s.help.empty()) os << "  # " << s.help;
    os << "\n";
  }
}

void MetricsRegistry::PrintJson(std::ostream& os) const {
  std::string out = "[\n";
  bool first = true;
  for (const MetricSample& s : Snapshot()) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\":" + JsonQuote(s.name);
    out += ",\"label\":" + JsonQuote(s.label);
    out += ",\"kind\":" + JsonQuote(MetricKindName(s.kind));
    out += ",\"unit\":" + JsonQuote(s.unit);
    switch (s.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(s.value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(s.gauge);
        break;
      case MetricKind::kHistogram:
        out += ",\"count\":" + std::to_string(s.histogram.count);
        out += ",\"mean_us\":" + std::to_string(s.histogram.mean_us);
        out += ",\"p50_us\":" + std::to_string(s.histogram.p50_us);
        out += ",\"p90_us\":" + std::to_string(s.histogram.p90_us);
        out += ",\"p99_us\":" + std::to_string(s.histogram.p99_us);
        out += ",\"p999_us\":" + std::to_string(s.histogram.p999_us);
        out += ",\"max_us\":" + std::to_string(s.histogram.max_us);
        break;
    }
    out += ",\"help\":" + JsonQuote(s.help) + "}";
  }
  out += "\n]\n";
  os << out;
}

std::size_t MetricsRegistry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

}  // namespace monarch::obs
