#include "obs/event_tracer.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/json.h"

namespace monarch::obs {
namespace {

// Distinguishes tracer generations process-wide: Enable() stamps the
// tracer with a fresh value, so a thread's cached buffer association can
// never survive a re-Enable (or accidentally match a new tracer reusing
// a destroyed one's address).
std::atomic<std::uint64_t> g_tracer_generation{0};

/// Per-thread association (tracer, generation) -> ring buffer. A single
/// entry suffices: production code records into one Global() tracer;
/// tests that alternate tracers within one thread just pay a re-lookup
/// (and a fresh ring) per switch.
struct LocalCache {
  const void* tracer = nullptr;
  std::uint64_t generation = 0;
  std::shared_ptr<void> buffer;  ///< actually ThreadBuffer
};

thread_local LocalCache t_cache;

}  // namespace

EventTracer& EventTracer::Global() {
  static EventTracer* const kGlobal = new EventTracer();
  return *kGlobal;
}

void EventTracer::Enable(std::size_t events_per_thread) {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(buffers_mu_);
  buffers_.clear();  // threads still holding old rings write into limbo
  next_tid_ = 1;
  capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
  epoch_start_ = SteadyClock::now();
  epoch_.store(g_tracer_generation.fetch_add(1, std::memory_order_relaxed) + 1,
               std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

std::uint64_t EventTracer::NowMicros() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - epoch_start_)
          .count());
}

EventTracer::ThreadBuffer& EventTracer::LocalBuffer() {
  const std::uint64_t generation = epoch_.load(std::memory_order_acquire);
  if (t_cache.tracer != this || t_cache.generation != generation ||
      !t_cache.buffer) {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    auto buffer = std::make_shared<ThreadBuffer>(next_tid_++);
    buffer->capacity = capacity_;
    buffer->epoch = generation;
    buffer->ring.reserve(std::min<std::size_t>(buffer->capacity, 1024));
    buffers_.push_back(buffer);
    t_cache = LocalCache{this, generation, buffer};
  }
  return *static_cast<ThreadBuffer*>(t_cache.buffer.get());
}

void EventTracer::Push(TraceEvent event) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  event.tid = buffer.tid;
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.push_back(std::move(event));
    buffer.next = buffer.ring.size() % buffer.capacity;
  } else {
    // Full: overwrite the oldest event and account for the loss.
    buffer.ring[buffer.next] = std::move(event);
    buffer.next = (buffer.next + 1) % buffer.capacity;
    ++buffer.dropped;
  }
}

void EventTracer::RecordComplete(std::string name, const char* category,
                                 std::uint64_t ts_us, std::uint64_t dur_us,
                                 std::string args_json) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args_json = std::move(args_json);
  Push(std::move(event));
}

void EventTracer::RecordInstant(std::string name, const char* category,
                                std::string args_json) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.ts_us = NowMicros();
  event.args_json = std::move(args_json);
  Push(std::move(event));
}

std::size_t EventTracer::recorded_events() const {
  std::lock_guard<std::mutex> lock(buffers_mu_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->ring.size();
  }
  return total;
}

std::uint64_t EventTracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(buffers_mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void EventTracer::ExportChromeJson(std::ostream& os) const {
  // Copy the event lists out under the locks, then render unlocked.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->dropped;
    if (buffer->ring.size() < buffer->capacity) {
      events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
    } else {
      // Ring wrapped: oldest surviving event sits at `next`.
      events.insert(events.end(), buffer->ring.begin() +
                                      static_cast<std::ptrdiff_t>(buffer->next),
                    buffer->ring.end());
      events.insert(events.end(), buffer->ring.begin(),
                    buffer->ring.begin() +
                        static_cast<std::ptrdiff_t>(buffer->next));
    }
  }

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto append_event = [&out, &first](const TraceEvent& e) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":" + JsonQuote(e.name);
    out += ",\"cat\":" + JsonQuote(e.category);
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + std::to_string(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (!e.args_json.empty()) out += ",\"args\":{" + e.args_json + "}";
    out += "}";
  };
  for (const TraceEvent& e : events) append_event(e);
  // Report losses inside the trace itself so a viewer sees them.
  TraceEvent drop_note;
  drop_note.name = "trace.dropped_events";
  drop_note.category = "obs";
  drop_note.phase = 'i';
  drop_note.ts_us = 0;
  drop_note.tid = 0;
  drop_note.args_json = "\"count\":" + std::to_string(dropped);
  append_event(drop_note);
  out += "\n]}\n";
  os << out;
}

Status EventTracer::ExportChromeJsonToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return UnavailableError("cannot open '" + path + "' for writing");
  ExportChromeJson(out);
  out.flush();
  if (!out) return UnavailableError("write to '" + path + "' failed");
  return Status::Ok();
}

}  // namespace monarch::obs
