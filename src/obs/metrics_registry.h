// MetricsRegistry: the process-wide metric surface of the MONARCH
// reproduction (see docs/OBSERVABILITY.md for the full catalogue).
//
// The paper's whole evaluation is argued through observables — per-tier
// read shares, PFS pressure counters, staging progress, first-vs-later
// epoch timings (§IV) — so this module makes those observables a
// first-class, self-describing subsystem instead of ad-hoc structs.
//
// Two kinds of metric feed one export path:
//
//  * OWNED INSTRUMENTS (Counter / Gauge / Histogram): registered once by
//    name, never removed, updated with relaxed atomics. Components cache
//    the returned pointer and update it on their hot paths — no lock is
//    ever taken after registration, which is what keeps Monarch::Read's
//    instrumentation overhead to a couple of relaxed fetch_adds (asserted
//    by the TSan CI run; see scripts/check.sh).
//
//  * PULL SOURCES: a callback producing MetricSamples at snapshot time,
//    registered with an RAII handle so per-instance state (a storage
//    engine's IoStats, a Monarch instance's per-tier counters) can be
//    exported without copying it into the registry and without dangling
//    when the instance dies. Sources pay nothing until someone snapshots.
//
// Naming convention: metric names are fixed, dotted, lowercase strings
// ("monarch.placement.completed"); the variable dimension (tier name,
// engine name) goes into the sample's `label`, never into the name. The
// doc-catalogue test (tests/obs/doc_catalogue_test.cc) diffs every name
// the registry exposes at runtime against docs/OBSERVABILITY.md, so a new
// metric without a catalogue entry fails CI.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"

namespace monarch::obs {

/// Monotonic event count (ops, bytes, errors). Increment is wait-free.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed level (occupancy, queue depth). Set/Add are
/// wait-free.
class Gauge {
 public:
  void Set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency distribution; a thin named wrapper over util's wait-free
/// log-bucketed LatencyHistogram.
class Histogram {
 public:
  void Record(Duration latency) noexcept { hist_.Record(latency); }
  void RecordMicros(std::uint64_t us) noexcept { hist_.RecordMicros(us); }
  [[nodiscard]] LatencyHistogram::Snapshot TakeSnapshot() const {
    return hist_.TakeSnapshot();
  }

 private:
  LatencyHistogram hist_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view MetricKindName(MetricKind kind) noexcept;

/// One exported time-series point. For counters `value` is set, for
/// gauges `gauge`, for histograms `histogram`; the other fields are
/// zero-initialised.
struct MetricSample {
  std::string name;   ///< fixed catalogue name ("storage.read_ops")
  std::string label;  ///< variable dimension ("lustre", "local-ssd"), may be empty
  std::string unit;   ///< "ops", "bytes", "us", ...
  std::string help;   ///< one-line meaning, mirrored in docs/OBSERVABILITY.md
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;
  std::int64_t gauge = 0;
  LatencyHistogram::Snapshot histogram;
};

class MetricsRegistry;

/// RAII handle for a pull source: unregisters on destruction, so a
/// component whose lifetime is shorter than the process (a storage
/// engine, a Monarch instance) can export its stats safely. Move-only;
/// a default-constructed handle is inert.
class SourceRegistration {
 public:
  SourceRegistration() = default;
  SourceRegistration(MetricsRegistry* registry, std::uint64_t id) noexcept
      : registry_(registry), id_(id) {}
  ~SourceRegistration() { Release(); }

  SourceRegistration(SourceRegistration&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
  }
  SourceRegistration& operator=(SourceRegistration&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  SourceRegistration(const SourceRegistration&) = delete;
  SourceRegistration& operator=(const SourceRegistration&) = delete;

  /// Unregister now (idempotent).
  void Release() noexcept;

 private:
  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every production component registers into.
  /// Never destroyed (leaked singleton), so instrument pointers obtained
  /// from it stay valid for the life of the process.
  static MetricsRegistry& Global();

  /// Registries are also instantiable for tests and embedders that want
  /// an isolated metric namespace.
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create the named instrument. The returned pointer is stable
  /// until the registry is destroyed (forever, for Global()) — cache it
  /// and update lock-free. Re-requesting an existing name returns the
  /// same instrument (so two Monarch instances share one process-wide
  /// counter); requesting a name that exists AS A DIFFERENT KIND is a
  /// registration error and returns nullptr (the duplicate-name
  /// rejection tested by tests/obs/metrics_registry_test.cc). `unit` and
  /// `help` are recorded on first registration and not validated after.
  Counter* GetCounter(std::string_view name, std::string_view unit,
                      std::string_view help);
  Gauge* GetGauge(std::string_view name, std::string_view unit,
                  std::string_view help);
  Histogram* GetHistogram(std::string_view name, std::string_view unit,
                          std::string_view help);

  using SourceFn = std::function<std::vector<MetricSample>()>;

  /// Register a pull source. `fn` is called under the registry mutex at
  /// snapshot time and must stay valid until the returned handle is
  /// released — hold the handle as the LAST member of the exporting
  /// object so it unregisters before the state the callback reads dies.
  [[nodiscard]] SourceRegistration AddSource(SourceFn fn);

  /// All current samples: owned instruments first, then every source's
  /// output, sorted by (name, label). Sources run under the registry
  /// lock; values are relaxed-atomic reads, so a snapshot taken under
  /// concurrent updates is approximate per-metric (never torn).
  [[nodiscard]] std::vector<MetricSample> Snapshot() const;

  /// Sorted unique metric NAMES currently exposed (owned + sources).
  /// This is the set docs/OBSERVABILITY.md must cover.
  [[nodiscard]] std::vector<std::string> Names() const;

  /// Human-readable dump: one line per sample,
  /// `name{label} kind value unit  # help`.
  void PrintText(std::ostream& os) const;

  /// Machine-readable dump: a JSON array of sample objects (schema in
  /// docs/OBSERVABILITY.md).
  void PrintJson(std::ostream& os) const;

  [[nodiscard]] std::size_t instrument_count() const;

 private:
  friend class SourceRegistration;
  void RemoveSource(std::uint64_t id) noexcept;

  struct Instrument {
    MetricKind kind;
    std::string unit;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  [[nodiscard]] std::vector<MetricSample> SnapshotLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, Instrument, std::less<>> instruments_;
  std::map<std::uint64_t, SourceFn> sources_;
  std::uint64_t next_source_id_ = 1;
};

}  // namespace monarch::obs
