// Time helpers: monotonic stopwatch, precise sleeping, and duration types
// shared by the device models and the training simulator.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace monarch {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = std::chrono::nanoseconds;

inline constexpr Duration kZeroDuration = Duration::zero();

inline Duration Micros(std::int64_t us) {
  return std::chrono::duration_cast<Duration>(std::chrono::microseconds(us));
}
inline Duration Millis(std::int64_t ms) {
  return std::chrono::duration_cast<Duration>(std::chrono::milliseconds(ms));
}
inline double ToSeconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}
inline Duration FromSeconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

/// Monotonic elapsed-time measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyClock::now()) {}

  void Restart() { start_ = SteadyClock::now(); }

  [[nodiscard]] Duration Elapsed() const { return SteadyClock::now() - start_; }
  [[nodiscard]] double ElapsedSeconds() const { return ToSeconds(Elapsed()); }

 private:
  TimePoint start_;
};

/// Sleep that stays accurate for sub-millisecond waits: sleeps the bulk,
/// spins the tail. Device models issue many ~10-100us waits where plain
/// sleep_for overshoots badly under CFS.
inline void PreciseSleep(Duration d) {
  if (d <= kZeroDuration) return;
  const TimePoint deadline = SteadyClock::now() + d;
  constexpr Duration kSpinThreshold = std::chrono::microseconds(120);
  if (d > kSpinThreshold) {
    std::this_thread::sleep_for(d - kSpinThreshold);
  }
  while (SteadyClock::now() < deadline) {
    std::this_thread::yield();
  }
}

}  // namespace monarch
