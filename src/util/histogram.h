// Lock-free-ish latency histogram with log-spaced buckets, plus a simple
// running-summary accumulator. Used by the storage engines to report
// per-operation latency distributions (the paper's variability claims are
// about exactly these distributions).
#pragma once

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.h"

namespace monarch {

/// Histogram over microsecond latencies. Buckets are base-2 log-spaced
/// with 4 sub-buckets per octave, covering [1us, ~68s]. Record() is
/// wait-free (relaxed atomics); Snapshot() is approximate under
/// concurrent writes, which is fine for reporting.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBuckets = 4;
  static constexpr std::size_t kOctaves = 27;  // 2^27 us ~ 134 s
  static constexpr std::size_t kBucketCount = kOctaves * kSubBuckets;

  void Record(Duration latency) noexcept;
  void RecordMicros(std::uint64_t us) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double mean_us = 0;
    std::uint64_t min_us = 0;
    std::uint64_t max_us = 0;
    std::uint64_t p50_us = 0;
    std::uint64_t p90_us = 0;
    std::uint64_t p99_us = 0;
    std::uint64_t p999_us = 0;

    [[nodiscard]] std::string ToString() const;
  };

  [[nodiscard]] Snapshot TakeSnapshot() const;

  void Reset() noexcept;

 private:
  static std::size_t BucketIndex(std::uint64_t us) noexcept;
  static std::uint64_t BucketUpperBoundUs(std::size_t index) noexcept;

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> min_us_{UINT64_MAX};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Welford mean/stddev accumulator for run-to-run summaries (the paper
/// reports mean +/- stddev over 7 runs).
class RunningSummary {
 public:
  void Add(double sample) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace monarch
