// Deterministic, fast random number generation for simulations.
//
// Every stochastic component in the repo (contention model, dataset
// generator, shuffling) takes an explicit seed so experiments are
// reproducible run-to-run; nothing reads global entropy.
#pragma once

#include <cstdint>
#include <limits>

namespace monarch {

/// SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it plugs into <random> and
/// std::shuffle.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply-shift keeps the distribution exact for our use
    // (bounds are far below 2^63, so the rare rejection loop is cheap).
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace monarch
