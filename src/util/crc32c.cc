#include "util/crc32c.h"

#include <array>

namespace monarch {

namespace {

// 8 tables of 256 entries, generated at static-init time: table[0] is the
// plain bytewise table; table[k][b] = effect of byte b followed by k zero
// bytes, enabling 8-bytes-at-a-time processing.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Crc32cTables() noexcept {
    constexpr std::uint32_t kPolyReflected = 0x82F63B78U;  // 0x1EDC6F41 reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1U) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFU] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() noexcept {
  static const Crc32cTables tables;
  return tables;
}

inline std::uint32_t LoadLe32(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[0])) |
         static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[1])) << 8 |
         static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[2])) << 16 |
         static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[3])) << 24;
}

}  // namespace

std::uint32_t Crc32c(std::span<const std::byte> data,
                     std::uint32_t crc) noexcept {
  const auto& t = Tables().t;
  crc = ~crc;

  const std::byte* p = data.data();
  std::size_t n = data.size();

  // Align-free slice-by-8 main loop.
  while (n >= 8) {
    const std::uint32_t lo = LoadLe32(p) ^ crc;
    const std::uint32_t hi = LoadLe32(p + 4);
    crc = t[7][lo & 0xFFU] ^ t[6][(lo >> 8) & 0xFFU] ^
          t[5][(lo >> 16) & 0xFFU] ^ t[4][lo >> 24] ^
          t[3][hi & 0xFFU] ^ t[2][(hi >> 8) & 0xFFU] ^
          t[1][(hi >> 16) & 0xFFU] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ std::to_integer<std::uint8_t>(*p++)) & 0xFFU] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace monarch
