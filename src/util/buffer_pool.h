// BufferPool: a bounded pool of reusable, chunk-sized byte buffers.
//
// The staging pipeline streams files tier-to-tier in fixed-size chunks;
// this pool is what makes its peak memory a configuration constant
// (`[placement] staging_buffer_bytes`) instead of a function of file
// sizes. Acquire() blocks when every buffer is leased, so a burst of
// concurrent copies degrades to queueing — never to an allocation spike.
//
// Buffers are created lazily (first Acquire that finds the free list
// empty) and retained for reuse, so a steady-state pipeline performs no
// allocation at all.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace monarch {

class BufferPool {
 public:
  /// `capacity_bytes` is the total budget; the pool holds
  /// max(1, capacity_bytes / chunk_bytes) buffers of `chunk_bytes` each.
  BufferPool(std::size_t capacity_bytes, std::size_t chunk_bytes)
      : chunk_bytes_(std::max<std::size_t>(std::size_t{1}, chunk_bytes)),
        max_buffers_(std::max<std::size_t>(std::size_t{1},
                                           capacity_bytes / chunk_bytes_)) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII lease of one buffer; returns it to the pool on destruction.
  class Lease {
   public:
    Lease(BufferPool* pool, std::vector<std::byte> buffer)
        : pool_(pool), buffer_(std::move(buffer)) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->Return(std::move(buffer_));
    }
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          buffer_(std::move(other.buffer_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] std::vector<std::byte>& bytes() noexcept { return buffer_; }

   private:
    BufferPool* pool_;
    std::vector<std::byte> buffer_;
  };

  /// Take a buffer, blocking until one is free when the whole budget is
  /// leased out.
  Lease Acquire() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] {
      return !free_.empty() || created_ < max_buffers_;
    });
    std::vector<std::byte> buffer;
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
      buffer.resize(chunk_bytes_);
    }
    ++outstanding_;
    peak_outstanding_ = std::max(peak_outstanding_, outstanding_);
    return Lease(this, std::move(buffer));
  }

  [[nodiscard]] std::size_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return max_buffers_ * chunk_bytes_;
  }
  [[nodiscard]] std::size_t in_use_bytes() const {
    std::lock_guard lock(mu_);
    return outstanding_ * chunk_bytes_;
  }
  /// High-water mark of leased bytes — what the bounded-memory test
  /// asserts against capacity_bytes().
  [[nodiscard]] std::size_t peak_in_use_bytes() const {
    std::lock_guard lock(mu_);
    return peak_outstanding_ * chunk_bytes_;
  }

 private:
  void Return(std::vector<std::byte> buffer) {
    {
      std::lock_guard lock(mu_);
      buffer.resize(chunk_bytes_);
      free_.push_back(std::move(buffer));
      --outstanding_;
    }
    cv_.notify_one();
  }

  const std::size_t chunk_bytes_;
  const std::size_t max_buffers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::vector<std::byte>> free_;
  std::size_t created_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t peak_outstanding_ = 0;
};

}  // namespace monarch
