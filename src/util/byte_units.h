// Byte-size literals, parsing, and formatting ("115MiB" <-> 120586240).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace monarch {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kTiB = 1024ULL * kGiB;

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

/// Parse "512", "64KiB", "100 MiB", "1.5GiB" (case-insensitive, optional
/// space, optional trailing "B"). Fractional values are rounded down.
Result<std::uint64_t> ParseByteSize(std::string_view text);

/// Render a byte count with a binary-unit suffix, e.g. "100.0 MiB".
std::string FormatByteSize(std::uint64_t bytes);

}  // namespace monarch
