// Lightweight Status / Result<T> error propagation for I/O paths.
//
// MONARCH's data path crosses thread-pool boundaries where exceptions are
// awkward to propagate, so the middleware reports recoverable I/O failures
// through value types (in the spirit of absl::Status / std::expected).
// Programming errors still assert.
#pragma once

#include <cassert>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace monarch {

/// Canonical error space, modelled after absl::StatusCode. Only the codes
/// the storage stack actually produces are defined.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,          ///< file or tier does not exist
  kAlreadyExists,     ///< create of an existing file
  kOutOfRange,        ///< read past EOF / bad offset
  kResourceExhausted, ///< tier quota exceeded
  kFailedPrecondition,///< call sequencing violated (e.g. read after close)
  kUnavailable,       ///< transient backend failure, retryable
  kDataLoss,          ///< checksum mismatch / torn record
  kInvalidArgument,
  kInternal,
};

/// Human-readable name for a status code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A cheap, movable (code, message) pair. `Status::Ok()` carries no message
/// and never allocates.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return {}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "NOT_FOUND: dataset/file-004.tfrecord" style rendering.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Factory helpers mirroring absl's.
inline Status NotFoundError(std::string m) {
  return {StatusCode::kNotFound, std::move(m)};
}
inline Status AlreadyExistsError(std::string m) {
  return {StatusCode::kAlreadyExists, std::move(m)};
}
inline Status OutOfRangeError(std::string m) {
  return {StatusCode::kOutOfRange, std::move(m)};
}
inline Status ResourceExhaustedError(std::string m) {
  return {StatusCode::kResourceExhausted, std::move(m)};
}
inline Status FailedPreconditionError(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
inline Status UnavailableError(std::string m) {
  return {StatusCode::kUnavailable, std::move(m)};
}
inline Status DataLossError(std::string m) {
  return {StatusCode::kDataLoss, std::move(m)};
}
inline Status InvalidArgumentError(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
inline Status InternalError(std::string m) {
  return {StatusCode::kInternal, std::move(m)};
}

/// Result<T>: either a value or a non-OK Status. Accessing the value of a
/// failed result asserts, so callers must branch on ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return value;`
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic `return status;`
  Result(Status status) : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(payload_);
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  [[nodiscard]] T& value() & {
    assert(ok() && "value() on failed Result");
    return std::get<T>(payload_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok() && "value() on failed Result");
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok() && "value() on failed Result");
    return std::get<T>(std::move(payload_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace monarch

/// Propagate a non-OK Status to the caller.
#define MONARCH_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::monarch::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                         \
  } while (0)

/// Bind `lhs` to the value of a Result-returning expression or propagate
/// its status. `lhs` may include a declaration: MONARCH_ASSIGN_OR_RETURN(auto x, F());
#define MONARCH_ASSIGN_OR_RETURN(lhs, expr)            \
  MONARCH_ASSIGN_OR_RETURN_IMPL_(                      \
      MONARCH_CONCAT_(_monarch_result_, __LINE__), lhs, expr)

#define MONARCH_CONCAT_INNER_(a, b) a##b
#define MONARCH_CONCAT_(a, b) MONARCH_CONCAT_INNER_(a, b)
#define MONARCH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()
