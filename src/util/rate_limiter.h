// Token-bucket rate limiter. The device models use one bucket per storage
// device to turn a configured bandwidth (bytes/s) into the wall-clock
// delay a request of N bytes experiences, shared fairly across all
// threads hitting that device.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/clock.h"

namespace monarch {

class RateLimiter {
 public:
  /// `rate_per_sec`: sustained token refill rate (e.g. device bytes/s).
  /// `burst`: bucket capacity; requests up to `burst` tokens can proceed
  /// immediately after an idle period. Defaults to 1/20 s worth of rate.
  explicit RateLimiter(double rate_per_sec, double burst = 0.0);

  /// Compute the time at which `tokens` tokens become available and
  /// reserve them. Returns how long the caller must wait (zero when the
  /// bucket covers the request). Never blocks by itself.
  [[nodiscard]] Duration Reserve(double tokens);

  /// Reserve then PreciseSleep the returned wait.
  void Acquire(double tokens);

  /// Change the refill rate (used when contention squeezes PFS
  /// bandwidth, and by the QoS broker when tenant shares shift). A
  /// defaulted burst is rescaled to 1/20 s of the new rate and the
  /// current balance clamped to it; an explicit burst is kept.
  void SetRate(double rate_per_sec);

  [[nodiscard]] double rate_per_sec() const;

 private:
  void RefillLocked(TimePoint now);

  mutable std::mutex mu_;
  double rate_;         ///< tokens per second
  double burst_;        ///< bucket capacity
  bool default_burst_;  ///< burst was derived from rate (tracks SetRate)
  double available_;    ///< current tokens; may go negative (debt model)
  TimePoint last_refill_;
};

}  // namespace monarch
