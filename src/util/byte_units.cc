#include "util/byte_units.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace monarch {

namespace {

struct Unit {
  std::string_view suffix;
  std::uint64_t multiplier;
};

// Longest-match-first so "KiB" wins over "B".
constexpr std::array<Unit, 9> kUnits{{
    {"TIB", kTiB}, {"GIB", kGiB}, {"MIB", kMiB}, {"KIB", kKiB},
    {"T", kTiB},   {"G", kGiB},   {"M", kMiB},   {"K", kKiB},
    {"B", 1},
}};

std::string ToUpperAscii(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    out.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

Result<std::uint64_t> ParseByteSize(std::string_view text) {
  // Trim surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) {
    return InvalidArgumentError("empty byte-size string");
  }

  double magnitude = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [rest, ec] = std::from_chars(begin, end, magnitude);
  if (ec != std::errc{} || magnitude < 0.0) {
    return InvalidArgumentError("bad byte-size magnitude: '" +
                                std::string(text) + "'");
  }

  std::string_view suffix(rest, static_cast<std::size_t>(end - rest));
  while (!suffix.empty() &&
         std::isspace(static_cast<unsigned char>(suffix.front()))) {
    suffix.remove_prefix(1);
  }
  if (suffix.empty()) {
    return static_cast<std::uint64_t>(magnitude);
  }

  const std::string upper = ToUpperAscii(suffix);
  for (const Unit& unit : kUnits) {
    if (upper == unit.suffix) {
      return static_cast<std::uint64_t>(
          magnitude * static_cast<double>(unit.multiplier));
    }
  }
  return InvalidArgumentError("unknown byte-size suffix: '" +
                              std::string(suffix) + "'");
}

std::string FormatByteSize(std::uint64_t bytes) {
  constexpr std::array<std::string_view, 5> kNames{"B", "KiB", "MiB", "GiB",
                                                   "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < kNames.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[48];
  if (idx == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kNames[idx].data());
  }
  return buf;
}

}  // namespace monarch
