#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace monarch {

void LatencyHistogram::Record(Duration latency) noexcept {
  const auto us = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(latency)
             .count()));
  RecordMicros(us);
}

void LatencyHistogram::RecordMicros(std::uint64_t us) noexcept {
  buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);

  std::uint64_t prev = min_us_.load(std::memory_order_relaxed);
  while (us < prev &&
         !min_us_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
  }
  prev = max_us_.load(std::memory_order_relaxed);
  while (us > prev &&
         !max_us_.compare_exchange_weak(prev, us, std::memory_order_relaxed)) {
  }
}

std::size_t LatencyHistogram::BucketIndex(std::uint64_t us) noexcept {
  if (us < kSubBuckets) return static_cast<std::size_t>(us);
  const int msb = 63 - std::countl_zero(us);
  const int octave = msb - 1;  // values >= kSubBuckets=4 start at octave 1
  const std::uint64_t sub = (us >> (msb - 2)) & (kSubBuckets - 1);
  const std::size_t index =
      static_cast<std::size_t>(octave) * kSubBuckets + sub;
  return std::min(index, kBucketCount - 1);
}

std::uint64_t LatencyHistogram::BucketUpperBoundUs(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::size_t octave = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  return ((sub + 1) << octave) + ((1ULL << octave) - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;

  snap.mean_us = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
                 static_cast<double>(snap.count);
  snap.min_us = min_us_.load(std::memory_order_relaxed);
  snap.max_us = max_us_.load(std::memory_order_relaxed);

  // Percentiles from bucket counts.
  std::vector<std::uint64_t> counts(kBucketCount);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  auto percentile = [&](double q) -> std::uint64_t {
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += counts[i];
      if (seen > target) return BucketUpperBoundUs(i);
    }
    return snap.max_us;
  };
  snap.p50_us = percentile(0.50);
  snap.p90_us = percentile(0.90);
  snap.p99_us = percentile(0.99);
  snap.p999_us = percentile(0.999);
  return snap;
}

void LatencyHistogram::Reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
  min_us_.store(UINT64_MAX, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::Snapshot::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1fus p50=%lluus p90=%lluus p99=%lluus "
                "p999=%lluus min=%lluus max=%lluus",
                static_cast<unsigned long long>(count), mean_us,
                static_cast<unsigned long long>(p50_us),
                static_cast<unsigned long long>(p90_us),
                static_cast<unsigned long long>(p99_us),
                static_cast<unsigned long long>(p999_us),
                static_cast<unsigned long long>(min_us),
                static_cast<unsigned long long>(max_us));
  return buf;
}

void RunningSummary::Add(double sample) noexcept {
  if (n_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++n_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (sample - mean_);
}

double RunningSummary::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningSummary::stddev() const noexcept {
  return std::sqrt(variance());
}

}  // namespace monarch
