// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — software slice-by-8.
//
// The TFRecord wire format frames every record with masked CRC32C
// checksums of both the length field and the payload; this module provides
// the checksum and the mask/unmask transform TensorFlow applies so our
// files are bit-compatible with real TFRecords.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace monarch {

/// CRC32C of `data`, optionally extending a previous crc (pass the prior
/// return value as `crc` to checksum data in chunks).
std::uint32_t Crc32c(std::span<const std::byte> data,
                     std::uint32_t crc = 0) noexcept;

inline std::uint32_t Crc32c(const void* data, std::size_t n,
                            std::uint32_t crc = 0) noexcept {
  return Crc32c(
      std::span<const std::byte>(static_cast<const std::byte*>(data), n), crc);
}

/// TensorFlow's masked CRC: rotate and add a constant so that CRCs stored
/// alongside the data they cover don't collide with CRCs *of* that data.
constexpr std::uint32_t kCrcMaskDelta = 0xA282EAD8U;

constexpr std::uint32_t MaskCrc(std::uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

constexpr std::uint32_t UnmaskCrc(std::uint32_t masked) noexcept {
  const std::uint32_t rot = masked - kCrcMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace monarch
