// Fixed-size thread pool in the style of CTPL (the library the MONARCH
// prototype used for its placement handler, §III-C), re-implemented with
// C++20 primitives.
//
// Semantics the placement handler relies on:
//  - Submit() never blocks the caller; tasks queue unboundedly.
//  - Tasks run in FIFO order across the worker set.
//  - Drain() blocks until every task submitted so far has finished —
//    used by tests and by Monarch shutdown so no background copy is torn.
//  - The destructor drains by default (fail-safe against lost writes).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace monarch {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue fire-and-forget work.
  void Submit(std::function<void()> task);

  /// Enqueue work and get a future for its result.
  template <typename F, typename R = std::invoke_result_t<F&>>
  std::future<R> Async(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Submit([task]() mutable { (*task)(); });
    return result;
  }

  /// Block until the queue is empty and no task is executing.
  void Drain();

  /// Stop accepting work, finish queued tasks, join workers. Idempotent.
  void Shutdown();

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// Tasks currently queued (excludes tasks mid-execution). Monitoring only.
  [[nodiscard]] std::size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;    ///< tasks currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace monarch
