// ASCII table / CSV rendering for the benchmark harnesses. Every figure
// and table reproduction prints both a human-readable table and a CSV
// block so results can be re-plotted.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace monarch {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append a row; it must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double value, int precision = 1);
  static std::string Pct(double fraction, int precision = 1);

  /// Boxed, column-aligned rendering.
  void PrintAscii(std::ostream& os) const;

  /// `header1,header2,...` then one line per row.
  void PrintCsv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used by bench binaries: `==== title ====`.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace monarch
