#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace monarch {

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size() && "row width != header width");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::PrintAscii(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_line(headers_);
  for (const auto& row : rows_) print_line(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace monarch
