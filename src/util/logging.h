// Minimal leveled logging. Thread-safe line-at-a-time emission to stderr;
// level settable at runtime (MONARCH_LOG_LEVEL env var or SetLogLevel).
#pragma once

#include <sstream>
#include <string>

namespace monarch {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {

/// Accumulates one log line and emits it (with timestamp, level, and
/// source location) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
struct LogSink {
  template <typename T>
  LogSink& operator<<(const T&) { return *this; }
};

}  // namespace internal
}  // namespace monarch

#define MONARCH_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::monarch::GetLogLevel()))

#define MONARCH_LOG(level)                                     \
  if (!MONARCH_LOG_ENABLED(::monarch::LogLevel::level))        \
    ::monarch::internal::LogSink{};                            \
  else                                                         \
    ::monarch::internal::LogMessage(::monarch::LogLevel::level, __FILE__, \
                                    __LINE__)

#define MLOG_DEBUG MONARCH_LOG(kDebug)
#define MLOG_INFO MONARCH_LOG(kInfo)
#define MLOG_WARN MONARCH_LOG(kWarning)
#define MLOG_ERROR MONARCH_LOG(kError)
