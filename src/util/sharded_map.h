// Thread-safe sharded hash map — the lookup-table substitute for the
// Abseil containers the MONARCH prototype used for its metadata container
// (§III-C). Striped locking keeps concurrent lookups from the DL
// framework's reader threads and updates from the placement thread pool
// from serialising on one mutex.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace monarch {

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedMap {
 public:
  /// `shard_count` is rounded up to a power of two (default 16).
  explicit ShardedMap(std::size_t shard_count = 16) {
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    shards_ = std::vector<Shard>(n);
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  /// Insert if absent. Returns true when the value was inserted.
  bool Insert(const K& key, V value) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    return shard.map.emplace(key, std::move(value)).second;
  }

  /// Insert or overwrite.
  void InsertOrAssign(const K& key, V value) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    shard.map.insert_or_assign(key, std::move(value));
  }

  /// Copy out the value for `key`, if present.
  [[nodiscard]] std::optional<V> Find(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::shared_lock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool Contains(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::shared_lock lock(shard.mu);
    return shard.map.contains(key);
  }

  /// Remove `key`. Returns true if it was present.
  bool Erase(const K& key) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    return shard.map.erase(key) > 0;
  }

  /// Apply `fn(V&)` to the mapped value under the shard's exclusive lock.
  /// Returns false when the key is absent (fn not called).
  template <typename Fn>
  bool Update(const K& key, Fn&& fn) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    std::forward<Fn>(fn)(it->second);
    return true;
  }

  /// Apply `fn(const K&, const V&)` to every entry. Shards are visited in
  /// order, each under its shared lock; do not call map methods from fn.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::shared_lock lock(shard.mu);
      for (const auto& [k, v] : shard.map) fn(k, v);
    }
  }

  [[nodiscard]] std::size_t Size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::shared_lock lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  [[nodiscard]] bool Empty() const { return Size() == 0; }

  void Clear() {
    for (Shard& shard : shards_) {
      std::unique_lock lock(shard.mu);
      shard.map.clear();
    }
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<K, V, Hash> map;
  };

  Shard& ShardFor(const K& key) {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }
  const Shard& ShardFor(const K& key) const {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace monarch
