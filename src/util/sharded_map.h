// Thread-safe sharded hash map — the lookup-table substitute for the
// Abseil containers the MONARCH prototype used for its metadata container
// (§III-C). Striped locking keeps concurrent lookups from the DL
// framework's reader threads and updates from the placement thread pool
// from serialising on one mutex.
//
// On top of the striped locks each shard publishes an RCU-style immutable
// snapshot of its table: FindFast() loads it with one atomic acquire and
// probes without taking any mutex. Mutators invalidate the snapshot; the
// next FindFast rebuilds it under the shared lock. Because the metadata
// namespace is append-mostly (files register once, then only their
// atomics change), the steady-state read path is mutex-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace monarch {

/// Transparent string hash: lets unordered_map keyed by std::string be
/// probed with a string_view (or char*) without building a temporary
/// std::string — the per-read allocation the hot path must not pay.
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class ShardedMap {
 public:
  /// `shard_count` is rounded up to a power of two (default 16).
  explicit ShardedMap(std::size_t shard_count = 16) {
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    shards_ = std::vector<Shard>(n);
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  /// Insert if absent. Returns true when the value was inserted.
  bool Insert(const K& key, V value) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    const bool inserted = shard.map.emplace(key, std::move(value)).second;
    if (inserted) shard.snapshot.store(nullptr, std::memory_order_release);
    return inserted;
  }

  /// Insert or overwrite.
  void InsertOrAssign(const K& key, V value) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    shard.map.insert_or_assign(key, std::move(value));
    shard.snapshot.store(nullptr, std::memory_order_release);
  }

  /// Copy out the value for `key`, if present.
  [[nodiscard]] std::optional<V> Find(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::shared_lock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  /// Mutex-free lookup on the RCU snapshot. `key` can be any type the
  /// map's (transparent) Hash/Eq accept — a string_view probes a
  /// string-keyed map with no temporary. When the snapshot is stale
  /// (first call after a mutation) it is rebuilt under the shared lock;
  /// quiescent callers touch no lock at all.
  template <typename Key>
  [[nodiscard]] std::optional<V> FindFast(const Key& key) const {
    const Shard& shard = ShardFor(key);
    SnapshotPtr snap = shard.snapshot.load(std::memory_order_acquire);
    if (!snap) snap = RebuildSnapshot(shard);
    auto it = snap->find(key);
    if (it == snap->end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool Contains(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::shared_lock lock(shard.mu);
    return shard.map.contains(key);
  }

  /// Remove `key`. Returns true if it was present.
  bool Erase(const K& key) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    const bool erased = shard.map.erase(key) > 0;
    if (erased) shard.snapshot.store(nullptr, std::memory_order_release);
    return erased;
  }

  /// Apply `fn(V&)` to the mapped value under the shard's exclusive lock.
  /// Returns false when the key is absent (fn not called).
  /// NOTE: this mutates the mapped value in place, so it also invalidates
  /// the shard snapshot. Values that only need atomic-field updates (the
  /// FileInfoPtr pattern) should Find/FindFast the shared_ptr and mutate
  /// through it instead — that leaves the snapshot intact.
  template <typename Fn>
  bool Update(const K& key, Fn&& fn) {
    Shard& shard = ShardFor(key);
    std::unique_lock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    std::forward<Fn>(fn)(it->second);
    shard.snapshot.store(nullptr, std::memory_order_release);
    return true;
  }

  /// Apply `fn(const K&, const V&)` to every entry. Shards are visited in
  /// order, each under its shared lock; do not call map methods from fn.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::shared_lock lock(shard.mu);
      for (const auto& [k, v] : shard.map) fn(k, v);
    }
  }

  [[nodiscard]] std::size_t Size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::shared_lock lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  [[nodiscard]] bool Empty() const { return Size() == 0; }

  void Clear() {
    for (Shard& shard : shards_) {
      std::unique_lock lock(shard.mu);
      shard.map.clear();
      shard.snapshot.store(nullptr, std::memory_order_release);
    }
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  using Map = std::unordered_map<K, V, Hash, Eq>;
  using SnapshotPtr = std::shared_ptr<const Map>;

  struct Shard {
    mutable std::shared_mutex mu;
    Map map;
    // RCU publication point: an immutable copy of `map`, or nullptr when
    // a mutation has invalidated it. Readers retire the old copy via
    // shared_ptr refcounting — the grace period falls out for free.
    mutable std::atomic<std::shared_ptr<const Map>> snapshot;

    Shard() = default;
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;
    Shard(Shard&&) noexcept {}
    Shard& operator=(Shard&&) noexcept { return *this; }
  };

  [[nodiscard]] SnapshotPtr RebuildSnapshot(const Shard& shard) const {
    std::shared_lock lock(shard.mu);
    auto snap = std::make_shared<const Map>(shard.map);
    shard.snapshot.store(snap, std::memory_order_release);
    return snap;
  }

  template <typename Key>
  Shard& ShardFor(const Key& key) {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }
  template <typename Key>
  const Shard& ShardFor(const Key& key) const {
    return shards_[Hash{}(key) & (shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace monarch
