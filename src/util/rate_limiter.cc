#include "util/rate_limiter.h"

#include <algorithm>
#include <cassert>

namespace monarch {

RateLimiter::RateLimiter(double rate_per_sec, double burst)
    : rate_(rate_per_sec),
      burst_(burst > 0.0 ? burst : rate_per_sec / 20.0),
      default_burst_(burst <= 0.0),
      available_(burst_),
      last_refill_(SteadyClock::now()) {
  assert(rate_per_sec > 0.0 && "rate must be positive");
}

void RateLimiter::RefillLocked(TimePoint now) {
  const double elapsed = ToSeconds(now - last_refill_);
  if (elapsed <= 0.0) return;
  available_ = std::min(burst_, available_ + elapsed * rate_);
  last_refill_ = now;
}

Duration RateLimiter::Reserve(double tokens) {
  if (tokens <= 0.0) return kZeroDuration;
  std::lock_guard<std::mutex> lock(mu_);
  const TimePoint now = SteadyClock::now();
  RefillLocked(now);
  available_ -= tokens;
  if (available_ >= 0.0) return kZeroDuration;
  // Debt model: the caller waits until its share of the deficit refills.
  return FromSeconds(-available_ / rate_);
}

void RateLimiter::Acquire(double tokens) { PreciseSleep(Reserve(tokens)); }

void RateLimiter::SetRate(double rate_per_sec) {
  assert(rate_per_sec > 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(SteadyClock::now());
  rate_ = rate_per_sec;
  // A defaulted burst tracks the rate (1/20 s worth); an explicit burst
  // is the caller's contract and stays put. Either way the balance must
  // not exceed the cap, or a big rate-down leaves a stale free bucket —
  // with many per-tenant limiters that adds up to a leaky total.
  if (default_burst_) burst_ = rate_ / 20.0;
  available_ = std::min(available_, burst_);
}

double RateLimiter::rate_per_sec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_;
}

}  // namespace monarch
