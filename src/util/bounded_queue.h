// Bounded blocking MPMC queue — the prefetch buffer of the simulated
// tf.data pipeline. Push blocks when full (backpressure onto the reader
// threads, exactly how a prefetch stage throttles I/O), Pop blocks when
// empty. Close() releases all waiters.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace monarch {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (and drops the item) if the queue
  /// was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed *and*
  /// drained, so consumers see every pushed item.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wake all blocked producers/consumers; subsequent pushes fail, pops
  /// drain remaining items then return nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace monarch
