#include "util/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace monarch {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  assert(task && "Submit of empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stopping_ && "Submit after Shutdown");
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ is set and nothing is queued: exit after the last task
        // finishes (queued tasks still run to completion on shutdown).
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace monarch
