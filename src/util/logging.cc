#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace monarch {

namespace {

std::atomic<int>& LevelFlag() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("MONARCH_LOG_LEVEL")) {
      if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
      if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
      if (std::strcmp(env, "warning") == 0) return static_cast<int>(LogLevel::kWarning);
      if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
    }
    return static_cast<int>(LogLevel::kWarning);
  }();
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  LevelFlag().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(LevelFlag().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = time_point_cast<seconds>(now);
  const auto ms = duration_cast<milliseconds>(now - secs).count();
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);

  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "%s%02d:%02d:%02d.%03d %s:%d] %s\n", LevelTag(level_),
               tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
               static_cast<int>(ms), Basename(file_), line_,
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace monarch
