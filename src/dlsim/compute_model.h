// ComputeModel: batch-level step-time models for the paper's three
// networks, run data-parallel across the node's (simulated) GPUs.
//
// We do not train networks — the figures depend only on how long a
// training step occupies the accelerators versus how long the input
// pipeline takes to produce a batch. Profiles are calibrated (see
// bench/fig1_motivation.cc and EXPERIMENTS.md) so that, at simulation
// scale, LeNet is strongly I/O-bound, AlexNet mildly I/O-bound, and
// ResNet-50 compute-bound — the regimes the paper's utilisation numbers
// establish (§II-A).
#pragma once

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace monarch::dlsim {

struct ModelProfile {
  std::string name = "model";
  /// Wall time one global batch spends on the GPUs (all-GPU data-parallel
  /// step, gradient sync included).
  Duration step_time = Millis(10);
  /// CPU cost to decode/augment ONE sample (runs in the reader threads,
  /// like tf.data's parallel map).
  Duration preprocess_per_sample = Micros(100);

  static ModelProfile LeNet();
  static ModelProfile AlexNet();
  static ModelProfile ResNet50();
};

/// Occupies the simulated GPUs for one step per batch and accounts GPU
/// busy time. Single consumer thread drives it (the framework's training
/// loop); data parallelism is folded into the profile's step_time.
class ComputeEngine {
 public:
  ComputeEngine(ModelProfile profile, int num_gpus)
      : profile_(std::move(profile)), num_gpus_(num_gpus) {}

  /// Run one training step on a batch of `batch_size` samples.
  void Step(std::uint64_t batch_size);

  [[nodiscard]] const ModelProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] int num_gpus() const noexcept { return num_gpus_; }
  [[nodiscard]] Duration busy_time() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

  void ResetAccounting() noexcept {
    busy_ = kZeroDuration;
    steps_ = 0;
  }

 private:
  ModelProfile profile_;
  int num_gpus_;
  Duration busy_ = kZeroDuration;
  std::uint64_t steps_ = 0;
};

}  // namespace monarch::dlsim
