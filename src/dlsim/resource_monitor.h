// ResourceMonitor: busy-time accounting that stands in for the paper's
// node-level CPU/GPU utilisation measurements (§II-A, §IV-B).
//
// Pipeline stages report the time they spend doing work (reading,
// preprocessing, GPU steps) against categories; utilisation over a window
// is busy_time / (wall_time * slot_count) — the same busy/wall ratio an
// OS-level sampler converges to for this pipeline.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/clock.h"

namespace monarch::dlsim {

enum class Resource : int { kCpu = 0, kGpu = 1, kCount = 2 };

class ResourceMonitor {
 public:
  /// `cpu_slots`: CPU worker threads in the pipeline (readers; preprocess
  /// runs on them). `gpu_slots`: number of GPUs.
  ResourceMonitor(int cpu_slots, int gpu_slots)
      : cpu_slots_(cpu_slots), gpu_slots_(gpu_slots) {}

  void AddBusy(Resource r, Duration d) noexcept {
    busy_ns_[static_cast<int>(r)].fetch_add(
        static_cast<std::uint64_t>(d.count()), std::memory_order_relaxed);
  }

  /// Track the prefetch buffer's memory footprint (paper: memory usage is
  /// flat ~10 GiB across setups; ours is flat at the buffer size).
  void AddMemory(std::int64_t delta_bytes) noexcept {
    const std::int64_t now =
        mem_bytes_.fetch_add(delta_bytes, std::memory_order_relaxed) +
        delta_bytes;
    std::int64_t peak = mem_peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !mem_peak_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
    }
  }

  struct Utilisation {
    double cpu = 0;          ///< 0..1 fraction of CPU slot time busy
    double gpu = 0;          ///< 0..1 fraction of GPU slot time busy
    std::int64_t peak_memory_bytes = 0;
  };

  [[nodiscard]] Utilisation Report(Duration wall) const {
    Utilisation u;
    const double wall_s = ToSeconds(wall);
    if (wall_s <= 0) return u;
    u.cpu = Busy(Resource::kCpu) / (wall_s * cpu_slots_);
    u.gpu = Busy(Resource::kGpu) / (wall_s * gpu_slots_);
    u.peak_memory_bytes = mem_peak_.load(std::memory_order_relaxed);
    return u;
  }

  void Reset() noexcept {
    for (auto& b : busy_ns_) b.store(0, std::memory_order_relaxed);
    mem_peak_.store(mem_bytes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] double Busy(Resource r) const noexcept {
    return static_cast<double>(
               busy_ns_[static_cast<int>(r)].load(std::memory_order_relaxed)) *
           1e-9;
  }

  int cpu_slots_;
  int gpu_slots_;
  std::atomic<std::uint64_t> busy_ns_[static_cast<int>(Resource::kCount)]{};
  std::atomic<std::int64_t> mem_bytes_{0};
  std::atomic<std::int64_t> mem_peak_{0};
};

}  // namespace monarch::dlsim
