// MonarchOpener: the framework-side MONARCH integration.
//
// This file is the repo's analogue of the paper's 6-LoC TensorFlow patch
// (§III-C): the framework keeps its whole input pipeline, and only the
// byte source behind each record file changes — pread becomes
// Monarch.read(filename, ...). The optional epoch hook mirrors the
// framework signalling the end of the first epoch so MONARCH can stop
// scheduling placements once the dataset is staged (or the tiers filled).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/monarch.h"
#include "core/monarch_source.h"
#include "dlsim/record_opener.h"
#include "qos/tenant.h"

namespace monarch::dlsim {

/// RandomAccessSource decorator that installs a tenant around every read
/// (ISSUE 10): reader threads the framework owns never see qos::, yet the
/// bytes they pull still attribute to the job's bandwidth share.
class TenantSource final : public tfrecord::RandomAccessSource {
 public:
  TenantSource(tfrecord::RandomAccessSourcePtr inner,
               qos::TenantContext tenant)
      : inner_(std::move(inner)), tenant_(std::move(tenant)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             std::span<std::byte> dst) override {
    qos::ScopedTenant scope(tenant_);
    return inner_->ReadAt(offset, dst);
  }

  Result<std::uint64_t> Size() override {
    qos::ScopedTenant scope(tenant_);
    return inner_->Size();
  }

  [[nodiscard]] std::string Name() const override { return inner_->Name(); }

 private:
  tfrecord::RandomAccessSourcePtr inner_;
  qos::TenantContext tenant_;
};

class MonarchOpener final : public RecordFileOpener {
 public:
  explicit MonarchOpener(core::Monarch& monarch,
                         bool stop_placement_after_first_epoch = false)
      : monarch_(monarch),
        stop_after_first_epoch_(stop_placement_after_first_epoch) {}

  /// Attribute every source this opener hands out (and the epoch-hint
  /// scheduling it triggers) to `tenant`.
  void SetTenant(qos::TenantContext tenant) { tenant_ = std::move(tenant); }

  Result<tfrecord::RandomAccessSourcePtr> Open(
      const std::string& path) override {
    tfrecord::RandomAccessSourcePtr source =
        std::make_unique<core::MonarchSource>(monarch_, path);
    if (tenant_.has_value()) {
      source = std::make_unique<TenantSource>(std::move(source), *tenant_);
    }
    return source;
  }

  void OnEpochStart(int epoch) override {
    if (stop_after_first_epoch_ && epoch > 1) monarch_.StopPlacement();
  }

  void OnEpochOrder(const std::vector<std::string>& order) override {
    // The shuffled order is exactly the upcoming read sequence — feed it
    // to the look-ahead cursor (a no-op unless prefetch_lookahead > 0).
    // The tenant is installed so the prefetch stagings this schedules
    // carry the job's identity into the fair queue.
    std::optional<qos::ScopedTenant> scope;
    if (tenant_.has_value()) scope.emplace(*tenant_);
    monarch_.HintUpcoming(order);
  }

  void OnRunSchedule(
      const std::vector<std::vector<std::string>>& epochs) override {
    // The whole run's access sequence, for Belady-style placement — a
    // no-op unless the configured policy consumes schedules.
    std::optional<qos::ScopedTenant> scope;
    if (tenant_.has_value()) scope.emplace(*tenant_);
    monarch_.InstallRunSchedule(epochs);
  }

  [[nodiscard]] core::ReadRing* read_ring() override {
    return &monarch_.read_ring();
  }

  [[nodiscard]] std::string Name() const override { return "monarch"; }

 private:
  core::Monarch& monarch_;
  bool stop_after_first_epoch_;
  std::optional<qos::TenantContext> tenant_;
};

}  // namespace monarch::dlsim
