// MonarchOpener: the framework-side MONARCH integration.
//
// This file is the repo's analogue of the paper's 6-LoC TensorFlow patch
// (§III-C): the framework keeps its whole input pipeline, and only the
// byte source behind each record file changes — pread becomes
// Monarch.read(filename, ...). The optional epoch hook mirrors the
// framework signalling the end of the first epoch so MONARCH can stop
// scheduling placements once the dataset is staged (or the tiers filled).
#pragma once

#include <string>

#include "core/monarch.h"
#include "core/monarch_source.h"
#include "dlsim/record_opener.h"

namespace monarch::dlsim {

class MonarchOpener final : public RecordFileOpener {
 public:
  explicit MonarchOpener(core::Monarch& monarch,
                         bool stop_placement_after_first_epoch = false)
      : monarch_(monarch),
        stop_after_first_epoch_(stop_placement_after_first_epoch) {}

  Result<tfrecord::RandomAccessSourcePtr> Open(
      const std::string& path) override {
    return tfrecord::RandomAccessSourcePtr(
        std::make_unique<core::MonarchSource>(monarch_, path));
  }

  void OnEpochStart(int epoch) override {
    if (stop_after_first_epoch_ && epoch > 1) monarch_.StopPlacement();
  }

  void OnEpochOrder(const std::vector<std::string>& order) override {
    // The shuffled order is exactly the upcoming read sequence — feed it
    // to the look-ahead cursor (a no-op unless prefetch_lookahead > 0).
    monarch_.HintUpcoming(order);
  }

  void OnRunSchedule(
      const std::vector<std::vector<std::string>>& epochs) override {
    // The whole run's access sequence, for Belady-style placement — a
    // no-op unless the configured policy consumes schedules.
    monarch_.InstallRunSchedule(epochs);
  }

  [[nodiscard]] core::ReadRing* read_ring() override {
    return &monarch_.read_ring();
  }

  [[nodiscard]] std::string Name() const override { return "monarch"; }

 private:
  core::Monarch& monarch_;
  bool stop_after_first_epoch_;
};

}  // namespace monarch::dlsim
