// Multi-job cluster simulation.
//
// The paper's motivation is that a *shared* PFS saturates when several
// I/O-intensive jobs run concurrently (§I), and its future-work section
// asks how MONARCH behaves beyond a single node (§VI). This module
// simulates exactly that: K training jobs on K simulated compute nodes
// (each with its own local tier and its own MONARCH instance) all
// pulling from ONE shared PFS device — one bandwidth token bucket, so
// the jobs contend with each other instead of with a synthetic
// contention process.
//
// The experiment this enables (bench/ext_multijob): per-job epoch time
// as a function of job count, with and without MONARCH. Vanilla jobs
// keep hammering the PFS every epoch, so each added job slows everyone;
// MONARCH jobs drop off the PFS after epoch 1 and largely decouple.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/file_directory.h"
#include "core/monarch.h"
#include "dlsim/trainer.h"
#include "qos/options.h"
#include "qos/tenant.h"
#include "workload/dataset_generator.h"

namespace monarch::dlsim {

/// One scripted membership transition for the chaos harness (ISSUE 7).
/// Events fire in schedule order once the cluster-wide cumulative
/// file-open count reaches `after_opens` — a deterministic clock (wall
/// time varies run to run; the number of record files opened does not).
enum class ChurnKind { kKill, kRevive, kJoin };

struct ChurnEvent {
  ChurnKind kind = ChurnKind::kKill;
  int node = 0;
  std::uint64_t after_opens = 0;
};

/// What a job DOES (ISSUE 10). kTraining is the classic epoch loop;
/// kInference restores a model from the checkpoint tier and serves
/// latency-sensitive point reads; kScan is a full-dataset data-prep pass
/// that must never evict a trainer's working set.
enum class JobWorkload { kTraining, kInference, kScan };

/// Per-job QoS identity. Jobs without a spec default to training.
struct JobSpec {
  JobWorkload workload = JobWorkload::kTraining;
  qos::IoClass io_class = qos::IoClass::kTraining;
  /// Bandwidth-share weight; 0 = the class default from QosOptions
  /// scaled by tenant_share.
  double weight = 0;
};

struct ClusterConfig {
  int num_jobs = 2;
  bool use_monarch = true;
  workload::DatasetSpec dataset;     ///< each job trains the same dataset
  ModelProfile model;
  int epochs = 3;
  std::uint64_t batch_size = 256;
  int num_gpus = 4;
  int reader_threads = 6;
  std::size_t read_chunk_bytes = 64 * 1024;
  std::uint64_t local_quota_bytes = 115ULL * 1024 * 1024;
  int placement_threads = 6;
  std::uint64_t seed = 1;

  /// Cooperative peer caching (ISSUE 4; `[peer]` in the INI dialect).
  /// When set (monarch jobs only), the K nodes share one cluster
  /// FileDirectory: each stages only its consistent-hash shard of the
  /// dataset, and demand reads of the other shards go to the owning
  /// node's local tier over a simulated interconnect before falling back
  /// to the PFS. Aggregate PFS staging traffic drops from K× the dataset
  /// to ~1×.
  bool peer_sharing = false;
  double interconnect_bandwidth_bps = 1.2e9;
  std::uint64_t interconnect_latency_us = 150;
  std::size_t directory_shards = 16;
  int peer_replication = 1;

  /// Node churn (ISSUE 7; `[peer]` churn_* keys). While a node is down
  /// its reads gate — the trainer pauses and resumes on revive — so every
  /// job still consumes every sample and per-epoch digests stay
  /// comparable against a churn-free run. Killed nodes vanish from
  /// holder resolution; survivors repair replication through per-node
  /// RestagePumps on the prefetch lane.
  std::vector<ChurnEvent> churn_schedule;
  /// Extra seeded random kill/revive pairs appended to the schedule.
  int churn_random_kills = 0;
  std::uint64_t churn_seed = 42;
  /// Nodes that start OUTSIDE the ring and enter it via a kJoin event
  /// (their reads gate until the join fires).
  std::vector<int> deferred_join_nodes;
  /// Per-node repair-copy bandwidth cap in bytes/sec (0 = uncapped).
  double restage_bandwidth_bps = 0;
  /// Failure-detection lag: a kill takes the node off the fabric
  /// immediately but retracts it from the directory only this much
  /// later — the window where survivors still dial the dead holder,
  /// time out, and exercise the replica-failover rung.
  std::uint64_t churn_detection_lag_us = 0;

  /// Multi-tenant QoS (ISSUE 10; `[qos]` in the INI dialect). When
  /// qos.enabled each job becomes a tenant: its class rides the staging
  /// fair queue, its bytes charge a weighted share of one shared
  /// BandwidthBroker (qos.total_bandwidth_bps > 0), and scan-class jobs
  /// are scan-resistant (they can never evict demand working sets).
  qos::QosOptions qos;
  /// Admission control: cluster cache capacity the committed footprints
  /// are checked against (0 = admit everything).
  std::uint64_t admission_capacity_bytes = 0;
  /// Per-job identity/workload; jobs beyond the vector are training.
  std::vector<JobSpec> job_specs;
};

struct JobResult {
  int job_index = 0;
  TrainingResult training;
  storage::IoStatsSnapshot pfs_stats;   ///< this job's PFS traffic
  core::MonarchStats monarch_stats;     ///< zero-initialised for vanilla
  /// Directory view of this node (zero when peer_sharing is off).
  cluster::DirectoryNodeStats peer_stats;

  // Multi-tenant QoS (ISSUE 10).
  qos::IoClass io_class = qos::IoClass::kTraining;
  /// False when admission control rejected the job (training is empty).
  bool admitted = true;
  /// Inference jobs: p99 of per-read service latency, microseconds.
  double read_p99_us = 0;
};

struct ClusterResult {
  std::vector<JobResult> jobs;
  /// Interconnect totals (zero when peer_sharing is off).
  std::uint64_t peer_transfers = 0;
  std::uint64_t peer_bytes = 0;

  // Churn outcome (defaults without churn / peer sharing).
  std::uint64_t churn_events_fired = 0;
  std::uint64_t membership_version = 0;
  std::uint64_t restage_enqueued = 0;
  std::uint64_t restage_completed = 0;
  std::uint64_t restage_queue_end = 0;   ///< repair tasks left after drain
  std::uint64_t rpc_timeouts = 0;        ///< RPCs that dialed a dead node
  std::uint64_t peer_failovers = 0;      ///< reads rescued by a replica
  cluster::ReplicationHealth replication;  ///< post-run, post-repair

  // Admission-control outcome (zero when admission is off).
  std::uint64_t qos_admitted = 0;
  std::uint64_t qos_queued = 0;
  std::uint64_t qos_rejected = 0;

  [[nodiscard]] double MeanEpochSeconds() const;
  [[nodiscard]] double MeanTotalSeconds() const;
  [[nodiscard]] std::uint64_t TotalPfsReadOps() const;
  /// Bytes every job together pulled from the shared PFS (reads +
  /// staging) — the ≤1.3×-dataset acceptance number for peer sharing.
  [[nodiscard]] std::uint64_t TotalPfsReadBytes() const;
};

/// Run `config.num_jobs` training jobs concurrently (one host thread
/// each) against a shared PFS device rooted at `pfs_root`. Per-job local
/// tiers live under `local_root`/job<i>. The dataset is generated under
/// `pfs_root` if missing. Jobs see *real* cross-job contention through
/// the shared device's token bucket.
Result<ClusterResult> RunClusterExperiment(
    const std::filesystem::path& pfs_root,
    const std::filesystem::path& local_root, const ClusterConfig& config);

}  // namespace monarch::dlsim
