#include "dlsim/trainer.h"

#include <utility>

#include "obs/event_tracer.h"
#include "util/crc32c.h"

namespace monarch::dlsim {

Trainer::Trainer(std::vector<std::string> files, RecordFileOpenerPtr opener,
                 TrainerConfig config)
    : files_(std::move(files)),
      opener_(std::move(opener)),
      config_(std::move(config)) {
  config_.loader.preprocess_per_sample = config_.model.preprocess_per_sample;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  epochs_completed_ = registry.GetCounter(
      "trainer.epochs_completed", "epochs", "training epochs finished");
  samples_ = registry.GetCounter(
      "trainer.samples", "samples", "samples consumed by the training loop");
  steps_ = registry.GetCounter(
      "trainer.steps", "steps", "GPU batch steps executed");
}

Result<TrainingResult> Trainer::Train() {
  TrainingResult result;
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    opener_->OnEpochStart(epoch);
    MONARCH_ASSIGN_OR_RETURN(EpochResult epoch_result, RunEpoch(epoch));
    result.total_seconds += epoch_result.wall_seconds;
    result.epochs.push_back(epoch_result);
  }
  return result;
}

Result<EpochResult> Trainer::RunEpoch(int epoch) {
  obs::TraceSpan span("trainer.epoch", "dlsim");
  if (span.active()) {
    span.set_args_json("\"epoch\":" + std::to_string(epoch));
  }
  ResourceMonitor monitor(config_.loader.reader_threads, config_.num_gpus);
  ComputeEngine compute(config_.model, config_.num_gpus);

  const Stopwatch wall;
  EpochLoader loader(files_, epoch, *opener_, monitor, config_.loader);

  // The framework's training loop: pop samples, form global batches, run
  // one GPU step per batch. The bounded queue overlaps this with the
  // reader threads, so epoch time converges to max(I/O+preproc, compute).
  std::uint64_t samples = 0;
  std::uint64_t in_batch = 0;
  std::uint64_t digest = 0;
  while (auto sample = loader.queue().Pop()) {
    monitor.AddMemory(-static_cast<std::int64_t>(sample->payload.size()));
    ++samples;
    digest += Crc32c(sample->payload);
    if (++in_batch == config_.batch_size) {
      compute.Step(in_batch);
      in_batch = 0;
    }
  }
  if (in_batch > 0) compute.Step(in_batch);  // final partial batch
  loader.Finish();
  MONARCH_RETURN_IF_ERROR(loader.status());

  monitor.AddBusy(Resource::kGpu,
                  compute.busy_time() * static_cast<std::int64_t>(
                                            config_.num_gpus));

  EpochResult result;
  result.epoch = epoch;
  result.wall_seconds = wall.ElapsedSeconds();
  result.samples = samples;
  result.steps = compute.steps();
  result.sample_digest = digest;
  if (epochs_completed_ != nullptr) epochs_completed_->Increment();
  if (samples_ != nullptr) samples_->Increment(samples);
  if (steps_ != nullptr) steps_->Increment(compute.steps());
  const auto usage = monitor.Report(wall.Elapsed());
  result.cpu_utilisation = usage.cpu;
  result.gpu_utilisation = usage.gpu;
  result.peak_memory_bytes = usage.peak_memory_bytes;
  return result;
}

}  // namespace monarch::dlsim
