#include "dlsim/trainer.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/event_tracer.h"
#include "util/crc32c.h"

namespace monarch::dlsim {

namespace {

/// Deterministic model-state bytes for checkpoint (epoch, ordinal):
/// splitmix64 stream over a seed derived from both, so every sink —
/// direct-PFS or write-back — receives byte-identical checkpoints and
/// the benches can compare end-state CRCs across arms.
std::vector<std::byte> CheckpointPayload(std::uint64_t bytes, int epoch,
                                         std::uint64_t ordinal) {
  std::vector<std::byte> payload(bytes);
  std::uint64_t state =
      (static_cast<std::uint64_t>(epoch) << 32 | ordinal) + 0x9E3779B97F4A7C15ull;
  for (std::byte& b : payload) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    b = static_cast<std::byte>((z ^ (z >> 31)) >> 56);
  }
  return payload;
}

}  // namespace

Trainer::Trainer(std::vector<std::string> files, RecordFileOpenerPtr opener,
                 TrainerConfig config)
    : files_(std::move(files)),
      opener_(std::move(opener)),
      config_(std::move(config)) {
  config_.loader.preprocess_per_sample = config_.model.preprocess_per_sample;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  epochs_completed_ = registry.GetCounter(
      "trainer.epochs_completed", "epochs", "training epochs finished");
  samples_ = registry.GetCounter(
      "trainer.samples", "samples", "samples consumed by the training loop");
  steps_ = registry.GetCounter(
      "trainer.steps", "steps", "GPU batch steps executed");
  checkpoints_ = registry.GetCounter(
      "trainer.checkpoints", "ckpts",
      "checkpoints the training loop saved through its sink");
}

Result<TrainingResult> Trainer::Train() {
  // Whole-run schedule export (ISSUE 6): every epoch's shuffle order is
  // deterministic given (seed, epoch), so the full access sequence is
  // knowable before the first read. Publish it through the opener — the
  // MONARCH integration feeds it to the clairvoyant placement policy;
  // every other opener ignores it.
  {
    std::vector<std::vector<std::string>> run_schedule;
    run_schedule.reserve(static_cast<std::size_t>(
        std::max(0, config_.epochs)));
    for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
      run_schedule.push_back(
          ShuffledFileOrder(files_, config_.loader.shuffle_seed, epoch));
    }
    opener_->OnRunSchedule(run_schedule);
  }

  TrainingResult result;
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    opener_->OnEpochStart(epoch);
    MONARCH_ASSIGN_OR_RETURN(EpochResult epoch_result, RunEpoch(epoch));
    result.total_seconds += epoch_result.wall_seconds;
    result.epochs.push_back(epoch_result);
  }
  return result;
}

Result<EpochResult> Trainer::RunEpoch(int epoch) {
  obs::TraceSpan span("trainer.epoch", "dlsim");
  if (span.active()) {
    span.set_args_json("\"epoch\":" + std::to_string(epoch));
  }
  ResourceMonitor monitor(config_.loader.reader_threads, config_.num_gpus);
  ComputeEngine compute(config_.model, config_.num_gpus);

  const Stopwatch wall;
  EpochLoader loader(files_, epoch, *opener_, monitor, config_.loader);

  // The framework's training loop: pop samples, form global batches, run
  // one GPU step per batch. The bounded queue overlaps this with the
  // reader threads, so epoch time converges to max(I/O+preproc, compute).
  std::uint64_t samples = 0;
  std::uint64_t in_batch = 0;
  std::uint64_t digest = 0;
  double checkpoint_seconds = 0;
  std::uint64_t checkpoints_written = 0;
  const bool checkpointing =
      config_.checkpoint_sink != nullptr && config_.checkpoint_every_steps > 0;
  // Synchronous saver, like the framework hooks the paper targets: the
  // loop stalls until Save returns (write-back sinks return once the
  // bytes land locally; direct-PFS sinks block for the full PFS write).
  auto maybe_checkpoint = [&]() -> Status {
    if (!checkpointing ||
        compute.steps() % config_.checkpoint_every_steps != 0) {
      return Status::Ok();
    }
    const std::uint64_t ordinal = ++checkpoints_written;
    const std::string name = config_.checkpoint_prefix + "-e" +
                             std::to_string(epoch) + "-s" +
                             std::to_string(compute.steps());
    const std::vector<std::byte> payload =
        CheckpointPayload(config_.checkpoint_bytes, epoch, ordinal);
    const Stopwatch stall;
    MONARCH_RETURN_IF_ERROR(config_.checkpoint_sink->Save(name, payload));
    checkpoint_seconds += stall.ElapsedSeconds();
    if (checkpoints_ != nullptr) checkpoints_->Increment();
    return Status::Ok();
  };
  while (auto sample = loader.queue().Pop()) {
    monitor.AddMemory(-static_cast<std::int64_t>(sample->payload.size()));
    ++samples;
    digest += Crc32c(sample->payload);
    if (++in_batch == config_.batch_size) {
      compute.Step(in_batch);
      in_batch = 0;
      MONARCH_RETURN_IF_ERROR(maybe_checkpoint());
    }
  }
  if (in_batch > 0) {  // final partial batch
    compute.Step(in_batch);
    MONARCH_RETURN_IF_ERROR(maybe_checkpoint());
  }
  loader.Finish();
  MONARCH_RETURN_IF_ERROR(loader.status());

  monitor.AddBusy(Resource::kGpu,
                  compute.busy_time() * static_cast<std::int64_t>(
                                            config_.num_gpus));

  EpochResult result;
  result.epoch = epoch;
  result.wall_seconds = wall.ElapsedSeconds();
  result.samples = samples;
  result.steps = compute.steps();
  result.sample_digest = digest;
  result.compute_seconds =
      std::chrono::duration<double>(compute.busy_time()).count();
  result.checkpoint_seconds = checkpoint_seconds;
  result.read_stall_seconds =
      std::max(0.0, result.wall_seconds - result.compute_seconds -
                        result.checkpoint_seconds);
  result.checkpoints_written = checkpoints_written;
  if (epochs_completed_ != nullptr) epochs_completed_->Increment();
  if (samples_ != nullptr) samples_->Increment(samples);
  if (steps_ != nullptr) steps_->Increment(compute.steps());
  const auto usage = monitor.Report(wall.Elapsed());
  result.cpu_utilisation = usage.cpu;
  result.gpu_utilisation = usage.gpu;
  result.peak_memory_bytes = usage.peak_memory_bytes;
  return result;
}

}  // namespace monarch::dlsim
