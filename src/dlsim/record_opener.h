// RecordFileOpener: how the simulated framework's reader threads obtain a
// byte source for a record file. Swapping the opener is the framework-
// integration seam — the analogue of the paper's 6-LoC TensorFlow patch:
//
//   vanilla setups  -> EngineOpener   (plain POSIX pread on one backend)
//   vanilla-caching -> CachingOpener  (tf.data Dataset.cache semantics)
//   MONARCH         -> MonarchOpener  (Monarch.read replaces pread)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/storage_engine.h"
#include "tfrecord/random_access_source.h"
#include "util/status.h"

namespace monarch::core {
class ReadRing;
}  // namespace monarch::core

namespace monarch::dlsim {

class RecordFileOpener {
 public:
  virtual ~RecordFileOpener() = default;

  /// Open `path` for the current epoch.
  virtual Result<tfrecord::RandomAccessSourcePtr> Open(
      const std::string& path) = 0;

  /// Epoch boundary notification (1-based epoch about to start). Openers
  /// with epoch-dependent behaviour (cache stage) hook this.
  virtual void OnEpochStart(int /*epoch*/) {}

  /// The loader publishes the epoch's shuffled file order before its
  /// readers start. Openers backed by a prefetching store (MONARCH's
  /// look-ahead cursor) hook this; the default ignores it.
  virtual void OnEpochOrder(const std::vector<std::string>& /*order*/) {}

  /// The trainer publishes the WHOLE run's access order — one shuffled
  /// file list per epoch, epoch order — before the first epoch starts
  /// (the per-epoch shuffles are seeded, so the full sequence is
  /// computable up front). Openers backed by a schedule-aware store
  /// (MONARCH's clairvoyant placement policy, ISSUE 6) hook this; the
  /// default ignores it.
  virtual void OnRunSchedule(
      const std::vector<std::vector<std::string>>& /*epochs*/) {}

  /// Async submission ring behind this opener's store, or nullptr when
  /// the backend has none. A loader with `use_read_ring` set pumps
  /// whole-file lease reads through it instead of calling Open().
  [[nodiscard]] virtual core::ReadRing* read_ring() { return nullptr; }

  [[nodiscard]] virtual std::string Name() const = 0;
};

using RecordFileOpenerPtr = std::unique_ptr<RecordFileOpener>;

/// Reads every file straight from one storage engine (vanilla-lustre when
/// given the PFS engine, vanilla-local when given the local engine).
class EngineOpener final : public RecordFileOpener {
 public:
  explicit EngineOpener(storage::StorageEnginePtr engine)
      : engine_(std::move(engine)) {}

  Result<tfrecord::RandomAccessSourcePtr> Open(
      const std::string& path) override {
    return tfrecord::RandomAccessSourcePtr(
        std::make_unique<tfrecord::EngineSource>(engine_, path));
  }

  [[nodiscard]] std::string Name() const override {
    return "engine:" + engine_->Name();
  }

 private:
  storage::StorageEnginePtr engine_;
};

}  // namespace monarch::dlsim
