#include "dlsim/caching_opener.h"

#include <algorithm>
#include <cstring>

namespace monarch::dlsim {

Result<RecordFileOpenerPtr> CachingOpener::Create(
    storage::StorageEnginePtr source, storage::StorageEnginePtr cache,
    std::uint64_t dataset_bytes, std::uint64_t cache_capacity_bytes) {
  if (dataset_bytes > cache_capacity_bytes) {
    return InvalidArgumentError(
        "Dataset.cache requires the full dataset to fit on the cache "
        "medium (dataset " + std::to_string(dataset_bytes) + "B > capacity " +
        std::to_string(cache_capacity_bytes) + "B)");
  }
  return RecordFileOpenerPtr(
      new CachingOpener(std::move(source), std::move(cache)));
}

Result<tfrecord::RandomAccessSourcePtr> CachingOpener::Open(
    const std::string& path) {
  if (epoch_.load() <= 1) {
    return tfrecord::RandomAccessSourcePtr(
        std::make_unique<WriteThroughSource>(source_, cache_, path));
  }
  return tfrecord::RandomAccessSourcePtr(
      std::make_unique<tfrecord::EngineSource>(cache_, path));
}

Result<std::uint64_t> WriteThroughSource::Size() {
  if (!size_known_) {
    MONARCH_ASSIGN_OR_RETURN(expected_size_, source_->FileSize(path_));
    size_known_ = true;
    accumulated_.resize(expected_size_);
  }
  return expected_size_;
}

Result<std::size_t> WriteThroughSource::ReadAt(std::uint64_t offset,
                                               std::span<std::byte> dst) {
  MONARCH_ASSIGN_OR_RETURN(const std::size_t n,
                           source_->Read(path_, offset, dst));
  MONARCH_RETURN_IF_ERROR(Size().status());  // ensure buffer sized

  // Mirror the bytes into the accumulation buffer; when the sequential
  // read pattern reaches EOF, flush the whole file to the cache backend
  // *inline* — this synchronous copy is the epoch-1 overhead the paper
  // measures for vanilla-caching.
  if (offset + n <= accumulated_.size() && n > 0) {
    std::memcpy(accumulated_.data() + offset, dst.data(), n);
  }
  const bool reached_end = offset + n >= expected_size_;
  if (reached_end && !flushed_ && expected_size_ > 0) {
    flushed_ = true;
    MONARCH_RETURN_IF_ERROR(cache_->Write(path_, accumulated_));
  }
  return n;
}

}  // namespace monarch::dlsim
