// Trainer: the simulated training job. Runs E epochs of
// (shuffle -> parallel read+preprocess -> prefetch -> batched GPU steps)
// against whatever RecordFileOpener it is given, and reports per-epoch
// wall time, utilisation and sample counts — the measurements behind
// every figure in the paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint_sink.h"
#include "dlsim/compute_model.h"
#include "dlsim/data_loader.h"
#include "dlsim/record_opener.h"
#include "dlsim/resource_monitor.h"
#include "obs/metrics_registry.h"
#include "util/status.h"

namespace monarch::dlsim {

struct TrainerConfig {
  ModelProfile model;
  int epochs = 3;
  std::uint64_t batch_size = 256;   ///< global batch across all GPUs
  int num_gpus = 4;                 ///< the Frontera node's 4 GPUs
  LoaderConfig loader;

  // Checkpoint cadence (ISSUE 5). When `checkpoint_sink` is set and
  // `checkpoint_every_steps` > 0 the training loop emits a model
  // checkpoint every N GPU steps through the sink — synchronously, the
  // way framework savers stall the loop — so the per-epoch stall split
  // below shows exactly what the write-back tier buys. The payload is
  // derived deterministically from (epoch, step), so two trainers with
  // different sinks (direct-PFS vs write-back) produce byte-identical
  // checkpoint streams.
  core::CheckpointSink* checkpoint_sink = nullptr;  ///< borrowed; may be null
  std::uint64_t checkpoint_every_steps = 0;         ///< 0 = checkpoints off
  std::uint64_t checkpoint_bytes = 64ull << 20;     ///< model-state size
  std::string checkpoint_prefix = "model";          ///< sink file-name prefix
};

struct EpochResult {
  int epoch = 0;                    ///< 1-based
  double wall_seconds = 0;
  std::uint64_t samples = 0;
  std::uint64_t steps = 0;
  double cpu_utilisation = 0;       ///< 0..1
  double gpu_utilisation = 0;       ///< 0..1
  std::int64_t peak_memory_bytes = 0;
  /// Order-insensitive content digest of every sample consumed this
  /// epoch: the commutative sum of per-sample CRC32Cs (the loader queue's
  /// pop order is nondeterministic, so a sequential hash would not be
  /// comparable across runs). Equal digests == byte-identical batches,
  /// whatever tier or peer served the reads.
  std::uint64_t sample_digest = 0;
  /// Stall split (ISSUE 5): wall time divides into GPU compute, time the
  /// loop spent blocked inside checkpoint Save calls, and the remainder
  /// attributed to input stalls (reads + preprocessing the prefetch
  /// pipeline failed to hide; clamped at zero).
  double compute_seconds = 0;
  double checkpoint_seconds = 0;
  double read_stall_seconds = 0;
  std::uint64_t checkpoints_written = 0;
};

struct TrainingResult {
  std::vector<EpochResult> epochs;
  double total_seconds = 0;

  [[nodiscard]] double EpochSeconds(int epoch_1based) const {
    return epochs.at(static_cast<std::size_t>(epoch_1based - 1)).wall_seconds;
  }
};

class Trainer {
 public:
  Trainer(std::vector<std::string> files, RecordFileOpenerPtr opener,
          TrainerConfig config);

  /// Run the configured number of epochs. Returns per-epoch results or
  /// the first pipeline error.
  Result<TrainingResult> Train();

  [[nodiscard]] RecordFileOpener& opener() noexcept { return *opener_; }

 private:
  Result<EpochResult> RunEpoch(int epoch);

  std::vector<std::string> files_;
  RecordFileOpenerPtr opener_;
  TrainerConfig config_;

  // `trainer.*` instruments (docs/OBSERVABILITY.md §1); process-wide, so
  // several Trainer instances accumulate into the same counters.
  obs::Counter* epochs_completed_ = nullptr;
  obs::Counter* samples_ = nullptr;
  obs::Counter* steps_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
};

}  // namespace monarch::dlsim
