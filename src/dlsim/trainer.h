// Trainer: the simulated training job. Runs E epochs of
// (shuffle -> parallel read+preprocess -> prefetch -> batched GPU steps)
// against whatever RecordFileOpener it is given, and reports per-epoch
// wall time, utilisation and sample counts — the measurements behind
// every figure in the paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dlsim/compute_model.h"
#include "dlsim/data_loader.h"
#include "dlsim/record_opener.h"
#include "dlsim/resource_monitor.h"
#include "obs/metrics_registry.h"
#include "util/status.h"

namespace monarch::dlsim {

struct TrainerConfig {
  ModelProfile model;
  int epochs = 3;
  std::uint64_t batch_size = 256;   ///< global batch across all GPUs
  int num_gpus = 4;                 ///< the Frontera node's 4 GPUs
  LoaderConfig loader;
};

struct EpochResult {
  int epoch = 0;                    ///< 1-based
  double wall_seconds = 0;
  std::uint64_t samples = 0;
  std::uint64_t steps = 0;
  double cpu_utilisation = 0;       ///< 0..1
  double gpu_utilisation = 0;       ///< 0..1
  std::int64_t peak_memory_bytes = 0;
  /// Order-insensitive content digest of every sample consumed this
  /// epoch: the commutative sum of per-sample CRC32Cs (the loader queue's
  /// pop order is nondeterministic, so a sequential hash would not be
  /// comparable across runs). Equal digests == byte-identical batches,
  /// whatever tier or peer served the reads.
  std::uint64_t sample_digest = 0;
};

struct TrainingResult {
  std::vector<EpochResult> epochs;
  double total_seconds = 0;

  [[nodiscard]] double EpochSeconds(int epoch_1based) const {
    return epochs.at(static_cast<std::size_t>(epoch_1based - 1)).wall_seconds;
  }
};

class Trainer {
 public:
  Trainer(std::vector<std::string> files, RecordFileOpenerPtr opener,
          TrainerConfig config);

  /// Run the configured number of epochs. Returns per-epoch results or
  /// the first pipeline error.
  Result<TrainingResult> Train();

  [[nodiscard]] RecordFileOpener& opener() noexcept { return *opener_; }

 private:
  Result<EpochResult> RunEpoch(int epoch);

  std::vector<std::string> files_;
  RecordFileOpenerPtr opener_;
  TrainerConfig config_;

  // `trainer.*` instruments (docs/OBSERVABILITY.md §1); process-wide, so
  // several Trainer instances accumulate into the same counters.
  obs::Counter* epochs_completed_ = nullptr;
  obs::Counter* samples_ = nullptr;
  obs::Counter* steps_ = nullptr;
};

}  // namespace monarch::dlsim
