#include "dlsim/setups.h"

#include <utility>

#include "dlsim/caching_opener.h"
#include "dlsim/monarch_opener.h"
#include "storage/engine_factory.h"
#include "storage/posix_engine.h"

namespace monarch::dlsim {

namespace fs = std::filesystem;

namespace {

TrainerConfig MakeTrainerConfig(const ExperimentConfig& config) {
  TrainerConfig tc;
  tc.model = config.model;
  tc.epochs = config.epochs;
  tc.batch_size = config.batch_size;
  tc.num_gpus = config.num_gpus;
  tc.loader.reader_threads = config.reader_threads;
  tc.loader.read_chunk_bytes = config.read_chunk_bytes;
  tc.loader.shuffle_seed = config.run_seed;
  return tc;
}

/// Copy the dataset to the local root at host speed (the manual staging
/// step of vanilla-local; deliberately untimed, as in the paper).
Status StageDatasetLocally(const fs::path& pfs_root,
                           const fs::path& local_root,
                           const workload::DatasetManifest& manifest) {
  storage::PosixEngine source(pfs_root, "stage-src");
  storage::PosixEngine destination(local_root, "stage-dst");
  std::vector<std::byte> buffer;
  for (std::size_t i = 0; i < manifest.file_paths.size(); ++i) {
    const std::string& path = manifest.file_paths[i];
    buffer.resize(manifest.file_sizes[i]);
    MONARCH_ASSIGN_OR_RETURN(const std::size_t n,
                             source.Read(path, 0, buffer));
    buffer.resize(n);
    MONARCH_RETURN_IF_ERROR(destination.Write(path, buffer));
  }
  return Status::Ok();
}

}  // namespace

Result<workload::DatasetManifest> EnsureDataset(
    const fs::path& pfs_root, const workload::DatasetSpec& spec) {
  storage::PosixEngine raw(pfs_root, "dataset-gen");
  auto existing = workload::LoadManifest(raw, spec);
  if (existing.ok() &&
      existing.value().num_files() == spec.num_files) {
    return existing;
  }
  return workload::GenerateDataset(raw, spec);
}

Result<Setup> MakeVanillaLustreSetup(const fs::path& pfs_root,
                                     const ExperimentConfig& config) {
  MONARCH_ASSIGN_OR_RETURN(const auto manifest,
                           EnsureDataset(pfs_root, config.dataset));

  Setup setup;
  setup.pfs_engine = storage::MakeLustreEngine(pfs_root, config.run_seed,
                                               config.contended_pfs);
  setup.files = manifest.file_paths;
  setup.trainer = std::make_unique<Trainer>(
      manifest.file_paths,
      std::make_unique<EngineOpener>(setup.pfs_engine),
      MakeTrainerConfig(config));
  return setup;
}

Result<Setup> MakeVanillaLocalSetup(const fs::path& pfs_root,
                                    const fs::path& local_root,
                                    const ExperimentConfig& config) {
  MONARCH_ASSIGN_OR_RETURN(const auto manifest,
                           EnsureDataset(pfs_root, config.dataset));
  if (manifest.total_bytes > config.local_quota_bytes) {
    return InvalidArgumentError(
        "vanilla-local needs the dataset to fit the local medium");
  }
  MONARCH_RETURN_IF_ERROR(
      StageDatasetLocally(pfs_root, local_root, manifest));

  Setup setup;
  setup.local_engine = storage::MakeLocalSsdEngine(local_root);
  setup.files = manifest.file_paths;
  setup.trainer = std::make_unique<Trainer>(
      manifest.file_paths,
      std::make_unique<EngineOpener>(setup.local_engine),
      MakeTrainerConfig(config));
  return setup;
}

Result<Setup> MakeVanillaCachingSetup(const fs::path& pfs_root,
                                      const fs::path& local_root,
                                      const ExperimentConfig& config) {
  MONARCH_ASSIGN_OR_RETURN(const auto manifest,
                           EnsureDataset(pfs_root, config.dataset));

  Setup setup;
  setup.pfs_engine = storage::MakeLustreEngine(pfs_root, config.run_seed,
                                               config.contended_pfs);
  setup.local_engine = storage::MakeLocalSsdEngine(local_root);
  MONARCH_ASSIGN_OR_RETURN(
      auto opener,
      CachingOpener::Create(setup.pfs_engine, setup.local_engine,
                            manifest.total_bytes,
                            config.local_quota_bytes));
  setup.files = manifest.file_paths;
  setup.trainer = std::make_unique<Trainer>(
      manifest.file_paths, std::move(opener), MakeTrainerConfig(config));
  return setup;
}

Result<Setup> MakeMonarchSetup(const fs::path& pfs_root,
                               const fs::path& local_root,
                               const ExperimentConfig& config) {
  MONARCH_ASSIGN_OR_RETURN(const auto manifest,
                           EnsureDataset(pfs_root, config.dataset));

  Setup setup;
  setup.pfs_engine = storage::MakeLustreEngine(pfs_root, config.run_seed,
                                               config.contended_pfs);
  setup.local_engine = storage::MakeLocalSsdEngine(local_root);

  core::MonarchConfig monarch_config;
  monarch_config.cache_tiers.push_back(core::TierSpec{
      "local-ssd", setup.local_engine, config.local_quota_bytes});
  monarch_config.pfs = core::TierSpec{"lustre", setup.pfs_engine, 0};
  monarch_config.dataset_dir = config.dataset.directory;
  monarch_config.placement.num_threads = config.placement_threads;
  monarch_config.placement.prefetch_lookahead = config.prefetch_lookahead;
  monarch_config.placement.tier_inflight_cap_bytes =
      config.tier_inflight_cap_bytes;
  if (config.staging_buffer_bytes != 0) {
    monarch_config.placement.staging_buffer_bytes = config.staging_buffer_bytes;
  }
  if (config.staging_chunk_bytes != 0) {
    monarch_config.placement.staging_chunk_bytes = config.staging_chunk_bytes;
  }
  MONARCH_ASSIGN_OR_RETURN(
      monarch_config.policy,
      core::MakePlacementPolicyByName(config.placement_policy,
                                      config.policy_knobs));
  MONARCH_ASSIGN_OR_RETURN(setup.monarch,
                           core::Monarch::Create(std::move(monarch_config)));

  setup.files = manifest.file_paths;
  setup.trainer = std::make_unique<Trainer>(
      manifest.file_paths, std::make_unique<MonarchOpener>(*setup.monarch),
      MakeTrainerConfig(config));
  return setup;
}

}  // namespace monarch::dlsim
