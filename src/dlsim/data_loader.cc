#include "dlsim/data_loader.h"

#include <algorithm>
#include <deque>
#include <future>
#include <utility>

#include "core/read_ring.h"
#include "util/rng.h"

namespace monarch::dlsim {

std::vector<std::string> ShuffledFileOrder(std::vector<std::string> files,
                                           std::uint64_t shuffle_seed,
                                           int epoch) {
  // Per-epoch reshuffle (tf.data reshuffle_each_iteration): mix the epoch
  // index into the seed so each epoch sees a fresh random file order but
  // the whole run stays reproducible.
  Xoshiro256 rng(shuffle_seed * 0x9E3779B97F4A7C15ULL +
                 static_cast<std::uint64_t>(epoch));
  std::shuffle(files.begin(), files.end(), rng);
  return files;
}

EpochLoader::EpochLoader(const std::vector<std::string>& files, int epoch,
                         RecordFileOpener& opener, ResourceMonitor& monitor,
                         LoaderConfig config)
    : shuffled_files_(ShuffledFileOrder(files, config.shuffle_seed, epoch)),
      opener_(opener),
      monitor_(monitor),
      config_(config),
      queue_(config.prefetch_samples) {
  // Publish the order before any reader starts — a prefetching opener
  // (MONARCH look-ahead) wants the hints installed ahead of the first
  // demand read.
  opener_.OnEpochOrder(shuffled_files_);

  const int readers = std::max(1, config_.reader_threads);
  active_readers_.store(readers);
  readers_.reserve(static_cast<std::size_t>(readers));
  for (int i = 0; i < readers; ++i) {
    readers_.emplace_back([this] { ReaderLoop(); });
  }
}

EpochLoader::~EpochLoader() {
  queue_.Close();  // release any blocked producer
  Finish();
}

void EpochLoader::Finish() {
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
}

Status EpochLoader::status() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

void EpochLoader::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = status;
}

bool EpochLoader::PumpRecords(tfrecord::RandomAccessSource& source,
                              const tfrecord::ReaderOptions& reader_options) {
  tfrecord::TFRecordReader reader(source, reader_options);
  for (;;) {
    auto record = reader.ReadRecord();
    if (!record.ok()) {
      if (record.status().code() == StatusCode::kOutOfRange) return true;
      RecordError(record.status());
      queue_.Close();
      return false;
    }
    // Parallel preprocessing on the reader thread (tf.data map): decode
    // / augmentation cost proportional to nothing but the profile.
    if (config_.preprocess_per_sample > kZeroDuration) {
      PreciseSleep(config_.preprocess_per_sample);
      monitor_.AddBusy(Resource::kCpu, config_.preprocess_per_sample);
    }

    Sample sample{std::move(record).value()};
    const auto sample_bytes = static_cast<std::int64_t>(sample.payload.size());
    monitor_.AddMemory(sample_bytes);
    if (!queue_.Push(std::move(sample))) {
      monitor_.AddMemory(-sample_bytes);
      return false;  // queue closed (consumer aborted)
    }
    samples_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EpochLoader::ReaderLoop() {
  tfrecord::ReaderOptions reader_options;
  reader_options.buffer_bytes = config_.read_chunk_bytes;
  reader_options.verify_checksums = config_.verify_checksums;

  if (config_.use_read_ring) {
    if (core::ReadRing* ring = opener_.read_ring()) {
      RingReaderLoop(*ring);
      if (active_readers_.fetch_sub(1) == 1) queue_.Close();
      return;
    }
    // Opener has no ring (vanilla setups): fall through to the sync path.
  }

  for (;;) {
    const std::size_t index =
        next_file_.fetch_add(1, std::memory_order_relaxed);
    if (index >= shuffled_files_.size()) break;
    const std::string& path = shuffled_files_[index];

    const Stopwatch file_timer;
    auto source = opener_.Open(path);
    if (!source.ok()) {
      RecordError(source.status());
      break;
    }
    if (!PumpRecords(**source, reader_options)) return;
    files_read_.fetch_add(1, std::memory_order_relaxed);
    // Reading/decoding occupied this CPU thread for the file's wall time
    // minus what we already attributed to preprocess (approximation: I/O
    // wait is not CPU-busy, so only count a fixed decode share).
    monitor_.AddBusy(Resource::kCpu, file_timer.Elapsed() / 8);
  }

  if (active_readers_.fetch_sub(1) == 1) {
    queue_.Close();  // last reader out: signal end of epoch
  }
}

void EpochLoader::RingReaderLoop(core::ReadRing& ring) {
  tfrecord::ReaderOptions reader_options;
  reader_options.buffer_bytes = config_.read_chunk_bytes;
  reader_options.verify_checksums = config_.verify_checksums;

  // Per-reader pipeline: keep `ring_window` whole-file lease reads in
  // flight, parse the oldest completed file while the ring prefetches
  // the rest. Completions are routed through per-op futures so readers
  // never steal each other's results from the shared completion queue.
  struct InFlight {
    std::string path;
    std::future<core::ReadCompletion> done;
  };
  std::deque<InFlight> window;

  auto submit_next = [&]() -> bool {
    const std::size_t index =
        next_file_.fetch_add(1, std::memory_order_relaxed);
    if (index >= shuffled_files_.size()) return false;
    const std::string& path = shuffled_files_[index];
    auto promise = std::make_shared<std::promise<core::ReadCompletion>>();
    InFlight entry{path, promise->get_future()};
    std::vector<core::ReadOp> ops(1);
    ops[0].name = path;
    ops[0].lease = true;
    if (ring.Submit(std::move(ops), [promise](core::ReadCompletion c) {
          promise->set_value(std::move(c));
        }) == 0) {
      return false;  // ring shut down mid-epoch; drop the claimed index
    }
    window.push_back(std::move(entry));
    return true;
  };

  const int depth = std::max(1, config_.ring_window);
  for (int i = 0; i < depth && submit_next(); ++i) {
  }

  while (!window.empty()) {
    InFlight current = std::move(window.front());
    window.pop_front();
    const Stopwatch file_timer;
    core::ReadCompletion completion = current.done.get();
    submit_next();  // refill the window before parsing

    if (!completion.bytes.ok()) {
      RecordError(completion.bytes.status());
      queue_.Close();
      return;
    }
    // Parse straight out of the leased pages; the lease's read pin keeps
    // eviction away from the staged copy until the file is consumed.
    tfrecord::SpanSource source(completion.lease.data(), current.path);
    if (!PumpRecords(source, reader_options)) return;
    files_read_.fetch_add(1, std::memory_order_relaxed);
    monitor_.AddBusy(Resource::kCpu, file_timer.Elapsed() / 8);
  }
}

}  // namespace monarch::dlsim
