// DataLoader: the simulated tf.data input pipeline.
//
// Reproduces the optimisations the paper's TensorFlow setup enables
// (§II "I/O parallelism, prefetching and parallel preprocessing"):
//
//   file list --(per-epoch shuffle)--> parallel interleave readers
//     each reader: open record file -> stream framed records in buffered
//     chunks -> preprocess each sample (CPU cost) -> push into a bounded
//     prefetch queue
//   training loop: pop samples, assemble batches.
//
// The random *file* order plus sequential chunked reads *within* a file
// is exactly the access pattern MONARCH's placement logic is designed
// around (§III-A: every file equally likely per epoch; §III-B: partial
// reads of large record files).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dlsim/record_opener.h"
#include "dlsim/resource_monitor.h"
#include "tfrecord/reader.h"
#include "util/bounded_queue.h"
#include "util/clock.h"
#include "util/status.h"

namespace monarch::dlsim {

struct LoaderConfig {
  int reader_threads = 6;          ///< parallel interleave width
  std::size_t prefetch_samples = 512;  ///< bounded queue capacity
  std::size_t read_chunk_bytes = 64 * 1024;  ///< buffered-read granularity
  bool verify_checksums = true;
  std::uint64_t shuffle_seed = 1;  ///< per-run seed; epoch index is mixed in
  /// Simulated per-sample preprocess cost; taken from the model profile.
  Duration preprocess_per_sample = kZeroDuration;
  /// Pump whole-file lease reads through the opener's async ReadRing
  /// (no-op for openers without one): each reader keeps `ring_window`
  /// files in flight and parses records straight out of the lent pages.
  bool use_read_ring = false;
  int ring_window = 2;  ///< per-reader files in flight when ring-fed
};

struct Sample {
  std::vector<std::byte> payload;
};

/// The deterministic per-epoch file order: `files` shuffled with the
/// epoch index mixed into the seed (tf.data reshuffle_each_iteration).
/// EpochLoader uses this for its reading order, and the Trainer uses the
/// same function to precompute the WHOLE run's access sequence for the
/// clairvoyant placement policy (ISSUE 6) — one definition, so the
/// exported schedule can never drift from what the loader actually reads.
std::vector<std::string> ShuffledFileOrder(std::vector<std::string> files,
                                           std::uint64_t shuffle_seed,
                                           int epoch);

/// One epoch's worth of sample production. Construction starts the reader
/// threads; the consumer pops from queue() until nullopt.
class EpochLoader {
 public:
  EpochLoader(const std::vector<std::string>& files, int epoch,
              RecordFileOpener& opener, ResourceMonitor& monitor,
              LoaderConfig config);
  ~EpochLoader();

  EpochLoader(const EpochLoader&) = delete;
  EpochLoader& operator=(const EpochLoader&) = delete;

  [[nodiscard]] BoundedQueue<Sample>& queue() noexcept { return queue_; }

  /// Join the readers (queue closes when all files are consumed).
  void Finish();

  /// First error any reader hit (OK when the epoch was clean).
  [[nodiscard]] Status status() const;

  [[nodiscard]] std::uint64_t samples_produced() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t files_read() const noexcept {
    return files_read_.load(std::memory_order_relaxed);
  }

 private:
  void ReaderLoop();
  /// Ring-fed variant of ReaderLoop: pipelines lease-mode reads through
  /// `ring`, parsing each completed file from its leased span.
  void RingReaderLoop(core::ReadRing& ring);
  /// Stream one opened file's records into the sample queue. Returns
  /// false when the reader thread must exit (error or queue closed).
  bool PumpRecords(tfrecord::RandomAccessSource& source,
                   const tfrecord::ReaderOptions& reader_options);
  void RecordError(const Status& status);

  std::vector<std::string> shuffled_files_;
  RecordFileOpener& opener_;
  ResourceMonitor& monitor_;
  LoaderConfig config_;

  BoundedQueue<Sample> queue_;
  std::atomic<std::size_t> next_file_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> files_read_{0};
  std::atomic<int> active_readers_{0};

  mutable std::mutex error_mu_;
  Status first_error_;

  std::vector<std::thread> readers_;
};

}  // namespace monarch::dlsim
