// Map-style (PyTorch-like) data loading.
//
// The paper's §VI names PyTorch integration as the next validation step
// for MONARCH's portability. PyTorch's DataLoader differs from tf.data
// in the I/O pattern it generates: a map-style dataset is an indexed
// collection, the sampler permutes SAMPLE indices (not files), and each
// worker fetches individual samples by random access — so the storage
// layer sees small reads at random offsets spread across all record
// files for the entire epoch, not sequential streams per file.
//
// That pattern is the hardest case for MONARCH's first-epoch staging
// (every read is partial, no file is ever streamed to its end), which is
// exactly why the §III-B full-file-fetch optimisation matters: the first
// random sample read out of a file stages the whole file, and every
// later sample from it is local.
//
// Pipeline shape mirrors torch.utils.data.DataLoader(num_workers=N):
//   index build (once) -> per-epoch permutation of sample indices ->
//   N workers fetch+decode samples -> bounded prefetch queue -> consumer.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dlsim/data_loader.h"
#include "dlsim/record_opener.h"
#include "dlsim/resource_monitor.h"
#include "tfrecord/index.h"
#include "util/bounded_queue.h"
#include "util/status.h"

namespace monarch::dlsim {

/// One addressable sample: which file, where in it, how big.
struct SampleRef {
  std::uint32_t file_index = 0;
  std::uint64_t offset = 0;        ///< record header offset in the file
  std::uint64_t payload_size = 0;
};

/// Indexed view over a set of record files (the PyTorch `Dataset`).
/// Building the index costs one metadata+header pass per file (PyTorch
/// users typically ship a precomputed .idx; both paths are supported).
class IndexedDataset {
 public:
  /// Scan every file through `opener` and build the sample index.
  static Result<IndexedDataset> Build(const std::vector<std::string>& files,
                                      RecordFileOpener& opener);

  [[nodiscard]] std::uint64_t size() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] const SampleRef& at(std::uint64_t i) const {
    return samples_[i];
  }
  [[nodiscard]] const std::string& file(std::uint32_t index) const {
    return files_[index];
  }
  [[nodiscard]] const std::vector<std::string>& files() const noexcept {
    return files_;
  }

 private:
  std::vector<std::string> files_;
  std::vector<SampleRef> samples_;
};

struct MapLoaderConfig {
  int num_workers = 4;
  std::size_t prefetch_samples = 256;
  std::uint64_t shuffle_seed = 1;
  bool verify_checksums = true;
  Duration preprocess_per_sample = kZeroDuration;
};

/// One epoch of map-style loading: a fresh permutation of all sample
/// indices, fetched by `num_workers` threads. Consume via queue() until
/// nullopt, then Finish().
class MapStyleEpoch {
 public:
  MapStyleEpoch(const IndexedDataset& dataset, int epoch,
                RecordFileOpener& opener, ResourceMonitor& monitor,
                MapLoaderConfig config);
  ~MapStyleEpoch();

  MapStyleEpoch(const MapStyleEpoch&) = delete;
  MapStyleEpoch& operator=(const MapStyleEpoch&) = delete;

  [[nodiscard]] BoundedQueue<Sample>& queue() noexcept { return queue_; }

  void Finish();
  [[nodiscard]] Status status() const;
  [[nodiscard]] std::uint64_t samples_produced() const noexcept {
    return produced_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  void RecordError(const Status& status);

  const IndexedDataset& dataset_;
  RecordFileOpener& opener_;
  ResourceMonitor& monitor_;
  MapLoaderConfig config_;

  std::vector<std::uint64_t> permutation_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> produced_{0};
  std::atomic<int> active_workers_{0};
  BoundedQueue<Sample> queue_;

  mutable std::mutex error_mu_;
  Status first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace monarch::dlsim
