// CachingOpener: tf.data `Dataset.cache` semantics at file granularity —
// the *vanilla-caching* baseline (§II).
//
// Epoch 1: every record file is read from the source backend and, inline
// on the reader thread (this is the "extra data copying" that makes the
// paper's first caching epoch slower), written whole to the cache
// backend. Epochs 2+: files are served from the cache.
//
// Exactly like TensorFlow's mechanism, this is only sound when the FULL
// dataset fits the cache medium: the constructor takes the dataset size
// and the cache capacity and refuses oversized datasets (the paper's
// 200 GiB case, where vanilla-caching "is not included because it
// requires the full dataset to fit into the local medium").
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "dlsim/record_opener.h"

namespace monarch::dlsim {

class CachingOpener final : public RecordFileOpener {
 public:
  /// Fails (INVALID_ARGUMENT) when `dataset_bytes > cache_capacity_bytes`.
  static Result<RecordFileOpenerPtr> Create(
      storage::StorageEnginePtr source, storage::StorageEnginePtr cache,
      std::uint64_t dataset_bytes, std::uint64_t cache_capacity_bytes);

  Result<tfrecord::RandomAccessSourcePtr> Open(
      const std::string& path) override;

  void OnEpochStart(int epoch) override { epoch_.store(epoch); }

  [[nodiscard]] std::string Name() const override { return "caching"; }

 private:
  CachingOpener(storage::StorageEnginePtr source,
                storage::StorageEnginePtr cache)
      : source_(std::move(source)), cache_(std::move(cache)) {}

  storage::StorageEnginePtr source_;
  storage::StorageEnginePtr cache_;
  std::atomic<int> epoch_{1};
};

/// Source wrapper used during epoch 1: streams from the origin and writes
/// the whole file to the cache once the caller has read it to the end
/// (TF's cache finalises an element only when fully consumed).
class WriteThroughSource final : public tfrecord::RandomAccessSource {
 public:
  WriteThroughSource(storage::StorageEnginePtr source,
                     storage::StorageEnginePtr cache, std::string path)
      : source_(std::move(source)), cache_(std::move(cache)),
        path_(std::move(path)) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             std::span<std::byte> dst) override;
  Result<std::uint64_t> Size() override;
  [[nodiscard]] std::string Name() const override { return path_; }

 private:
  storage::StorageEnginePtr source_;
  storage::StorageEnginePtr cache_;
  std::string path_;
  std::vector<std::byte> accumulated_;
  std::uint64_t expected_size_ = 0;
  bool size_known_ = false;
  bool flushed_ = false;
};

}  // namespace monarch::dlsim
