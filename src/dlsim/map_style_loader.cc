#include "dlsim/map_style_loader.h"

#include <algorithm>
#include <numeric>

#include "tfrecord/format.h"
#include "util/rng.h"

namespace monarch::dlsim {

Result<IndexedDataset> IndexedDataset::Build(
    const std::vector<std::string>& files, RecordFileOpener& opener) {
  IndexedDataset dataset;
  dataset.files_ = files;
  for (std::uint32_t f = 0; f < files.size(); ++f) {
    MONARCH_ASSIGN_OR_RETURN(auto source, opener.Open(files[f]));
    MONARCH_ASSIGN_OR_RETURN(const auto spans, tfrecord::BuildIndex(*source));
    for (const tfrecord::RecordSpan& span : spans) {
      dataset.samples_.push_back(
          SampleRef{f, span.offset, span.payload_size});
    }
  }
  return dataset;
}

MapStyleEpoch::MapStyleEpoch(const IndexedDataset& dataset, int epoch,
                             RecordFileOpener& opener,
                             ResourceMonitor& monitor,
                             MapLoaderConfig config)
    : dataset_(dataset),
      opener_(opener),
      monitor_(monitor),
      config_(config),
      permutation_(dataset.size()),
      queue_(config.prefetch_samples) {
  // The sampler: a fresh permutation of SAMPLE indices each epoch —
  // torch's RandomSampler with a per-epoch generator seed.
  std::iota(permutation_.begin(), permutation_.end(), 0ULL);
  Xoshiro256 rng(config_.shuffle_seed * 0x2545F4914F6CDD1DULL +
                 static_cast<std::uint64_t>(epoch));
  std::shuffle(permutation_.begin(), permutation_.end(), rng);

  const int workers = std::max(1, config_.num_workers);
  active_workers_.store(workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MapStyleEpoch::~MapStyleEpoch() {
  queue_.Close();
  Finish();
}

void MapStyleEpoch::Finish() {
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Status MapStyleEpoch::status() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

void MapStyleEpoch::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = status;
}

void MapStyleEpoch::WorkerLoop() {
  std::vector<std::byte> frame;
  for (;;) {
    const std::uint64_t slot =
        next_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= permutation_.size()) break;
    const SampleRef& ref = dataset_.at(permutation_[slot]);

    // One random-access fetch per sample: header+payload+footer in a
    // single pread of the framed span (how an indexed RecordReader
    // fetches when it already knows offsets).
    auto source = opener_.Open(dataset_.file(ref.file_index));
    if (!source.ok()) {
      RecordError(source.status());
      queue_.Close();
      return;
    }
    const std::uint64_t framed =
        tfrecord::FramedSize(ref.payload_size);
    frame.resize(framed);
    auto read = (*source)->ReadAt(ref.offset, frame);
    if (!read.ok() || read.value() != framed) {
      RecordError(read.ok() ? DataLossError("short sample read")
                            : read.status());
      queue_.Close();
      return;
    }

    // Validate the frame (length CRC + payload CRC when enabled).
    auto length = tfrecord::DecodeHeader(frame);
    if (!length.ok() || length.value() != ref.payload_size) {
      RecordError(length.ok() ? DataLossError("index/frame length mismatch")
                              : length.status());
      queue_.Close();
      return;
    }
    std::vector<std::byte> payload(
        frame.begin() + tfrecord::kHeaderBytes,
        frame.begin() + tfrecord::kHeaderBytes +
            static_cast<std::ptrdiff_t>(ref.payload_size));
    if (config_.verify_checksums) {
      const std::uint32_t stored = tfrecord::LoadLe32(
          frame.data() + tfrecord::kHeaderBytes + ref.payload_size);
      if (Status verified = tfrecord::VerifyPayload(payload, stored);
          !verified.ok()) {
        RecordError(verified);
        queue_.Close();
        return;
      }
    }

    if (config_.preprocess_per_sample > kZeroDuration) {
      PreciseSleep(config_.preprocess_per_sample);
      monitor_.AddBusy(Resource::kCpu, config_.preprocess_per_sample);
    }
    const auto bytes = static_cast<std::int64_t>(payload.size());
    monitor_.AddMemory(bytes);
    if (!queue_.Push(Sample{std::move(payload)})) {
      monitor_.AddMemory(-bytes);
      return;  // consumer aborted
    }
    produced_.fetch_add(1, std::memory_order_relaxed);
  }

  if (active_workers_.fetch_sub(1) == 1) {
    queue_.Close();
  }
}

}  // namespace monarch::dlsim
