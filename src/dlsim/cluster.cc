#include "dlsim/cluster.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <span>
#include <thread>

#include "ckpt/checkpoint_manager.h"
#include "cluster/peer_group.h"
#include "cluster/restage_pump.h"
#include "dlsim/monarch_opener.h"
#include "dlsim/record_opener.h"
#include "qos/admission.h"
#include "qos/bandwidth_broker.h"
#include "storage/device_model.h"
#include "storage/engine_factory.h"
#include "storage/posix_engine.h"
#include "storage/throttled_engine.h"
#include "util/clock.h"
#include "util/rng.h"

namespace monarch::dlsim {

namespace fs = std::filesystem;

namespace {

/// Shared churn state: the cluster-wide file-open counter the schedule
/// keys off, and a per-node read gate. A down node's reader threads park
/// in AwaitUp — the trainer pauses mid-epoch and resumes on revive, so it
/// still consumes every sample (digest-comparable against no-churn runs).
class ChurnGate {
 public:
  explicit ChurnGate(int nodes) : down_(static_cast<std::size_t>(nodes), 0) {}

  void CountOpen() {
    opens_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t opens() const {
    return opens_.load(std::memory_order_relaxed);
  }

  void SetDown(int node, bool down) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      down_[static_cast<std::size_t>(node)] = down ? 1 : 0;
    }
    cv_.notify_all();
  }

  void AwaitUp(int node) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return released_ || down_[static_cast<std::size_t>(node)] == 0;
    });
  }

  /// End-of-run failsafe: unblock every parked reader unconditionally.
  void ReleaseAll() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::atomic<std::uint64_t> opens_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> down_;
  bool released_ = false;
};

/// Byte-source wrapper parking every ReadAt while the node is down: a
/// crashed trainer freezes instantly, mid-file included — it must not
/// keep dialing the dead fabric from sources opened before the kill.
class GatedSource final : public tfrecord::RandomAccessSource {
 public:
  GatedSource(tfrecord::RandomAccessSourcePtr inner,
              std::shared_ptr<ChurnGate> gate, int node)
      : inner_(std::move(inner)), gate_(std::move(gate)), node_(node) {}

  Result<std::size_t> ReadAt(std::uint64_t offset,
                             std::span<std::byte> dst) override {
    gate_->AwaitUp(node_);
    return inner_->ReadAt(offset, dst);
  }
  Result<std::uint64_t> Size() override { return inner_->Size(); }
  [[nodiscard]] std::string Name() const override { return inner_->Name(); }

 private:
  tfrecord::RandomAccessSourcePtr inner_;
  std::shared_ptr<ChurnGate> gate_;
  const int node_;
};

/// Wraps a node's opener with its churn gate: every Open first waits out
/// any outage of the node, then ticks the cluster-wide open counter that
/// drives the event schedule.
class GatedOpener final : public RecordFileOpener {
 public:
  GatedOpener(RecordFileOpenerPtr inner, std::shared_ptr<ChurnGate> gate,
              int node)
      : inner_(std::move(inner)), gate_(std::move(gate)), node_(node) {}

  Result<tfrecord::RandomAccessSourcePtr> Open(
      const std::string& path) override {
    gate_->AwaitUp(node_);
    gate_->CountOpen();
    MONARCH_ASSIGN_OR_RETURN(tfrecord::RandomAccessSourcePtr source,
                             inner_->Open(path));
    return tfrecord::RandomAccessSourcePtr(std::make_unique<GatedSource>(
        std::move(source), gate_, node_));
  }

  void OnEpochStart(int epoch) override { inner_->OnEpochStart(epoch); }
  void OnEpochOrder(const std::vector<std::string>& order) override {
    inner_->OnEpochOrder(order);
  }
  void OnRunSchedule(
      const std::vector<std::vector<std::string>>& epochs) override {
    inner_->OnRunSchedule(epochs);
  }

  [[nodiscard]] std::string Name() const override {
    return "gated:" + inner_->Name();
  }

 private:
  RecordFileOpenerPtr inner_;
  std::shared_ptr<ChurnGate> gate_;
  const int node_;
};

/// Data-prep workload (ISSUE 10): `passes` sequential full-dataset
/// sweeps, every byte of every file in manifest order. The classic cache
/// killer — under QoS the scan tenant's low-retention marking keeps it
/// from evicting any trainer's working set.
Result<TrainingResult> RunScanJob(const std::vector<std::string>& files,
                                  RecordFileOpener& opener, int passes,
                                  std::size_t chunk_bytes) {
  TrainingResult result;
  std::vector<std::byte> buffer(std::max<std::size_t>(chunk_bytes, 1));
  const Stopwatch total;
  for (int pass = 1; pass <= std::max(passes, 1); ++pass) {
    opener.OnEpochStart(pass);
    EpochResult epoch;
    epoch.epoch = pass;
    const Stopwatch watch;
    for (const std::string& path : files) {
      MONARCH_ASSIGN_OR_RETURN(tfrecord::RandomAccessSourcePtr source,
                               opener.Open(path));
      MONARCH_ASSIGN_OR_RETURN(const std::uint64_t size, source->Size());
      std::uint64_t offset = 0;
      while (offset < size) {
        MONARCH_ASSIGN_OR_RETURN(
            const std::size_t n,
            source->ReadAt(offset, std::span<std::byte>(buffer)));
        if (n == 0) break;
        offset += n;
      }
      ++epoch.samples;
    }
    epoch.wall_seconds = watch.ElapsedSeconds();
    result.epochs.push_back(epoch);
  }
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

/// Model-serving workload (ISSUE 10): restore the model from the
/// write-back checkpoint tier, then serve latency-sensitive point reads
/// (one small read per "request"). Reports the per-request p99 — the
/// number the interactive class's isolation gate is judged on.
Result<TrainingResult> RunInferenceJob(const std::vector<std::string>& files,
                                       RecordFileOpener& opener,
                                       ckpt::CheckpointManager* ckpt,
                                       std::uint64_t model_bytes,
                                       int iterations, std::size_t read_bytes,
                                       std::uint64_t seed, double* p99_us) {
  if (ckpt != nullptr) {
    // Publish the model once, as training would have; every iteration
    // below restores it the way a (re)starting replica does.
    std::vector<std::byte> model(model_bytes);
    for (std::size_t i = 0; i < model.size(); ++i) {
      model[i] = static_cast<std::byte>((i * 131) & 0xff);
    }
    MONARCH_RETURN_IF_ERROR(ckpt->Save("serving-model", model));
    MONARCH_RETURN_IF_ERROR(ckpt->Flush());
  }
  TrainingResult result;
  std::vector<double> latencies_us;
  std::vector<std::byte> buffer(std::max<std::size_t>(read_bytes, 1));
  Xoshiro256 rng(seed);
  const Stopwatch total;
  for (int it = 1; it <= std::max(iterations, 1); ++it) {
    EpochResult epoch;
    epoch.epoch = it;
    const Stopwatch watch;
    if (ckpt != nullptr) {
      MONARCH_RETURN_IF_ERROR(ckpt->Restore("serving-model").status());
    }
    for (std::size_t request = 0; request < files.size(); ++request) {
      const std::string& path =
          files[rng.NextBounded(static_cast<std::uint64_t>(files.size()))];
      const Stopwatch request_watch;
      MONARCH_ASSIGN_OR_RETURN(tfrecord::RandomAccessSourcePtr source,
                               opener.Open(path));
      MONARCH_RETURN_IF_ERROR(
          source->ReadAt(0, std::span<std::byte>(buffer)).status());
      latencies_us.push_back(request_watch.ElapsedSeconds() * 1e6);
      ++epoch.samples;
    }
    epoch.wall_seconds = watch.ElapsedSeconds();
    result.epochs.push_back(epoch);
  }
  result.total_seconds = total.ElapsedSeconds();
  if (p99_us != nullptr && !latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    const std::size_t idx = std::min(
        latencies_us.size() - 1,
        static_cast<std::size_t>(0.99 * static_cast<double>(
                                            latencies_us.size())));
    *p99_us = latencies_us[idx];
  }
  return result;
}

}  // namespace

double ClusterResult::MeanEpochSeconds() const {
  double total = 0;
  std::size_t epochs = 0;
  for (const JobResult& job : jobs) {
    for (const EpochResult& epoch : job.training.epochs) {
      total += epoch.wall_seconds;
      ++epochs;
    }
  }
  return epochs == 0 ? 0 : total / static_cast<double>(epochs);
}

double ClusterResult::MeanTotalSeconds() const {
  double total = 0;
  for (const JobResult& job : jobs) total += job.training.total_seconds;
  return jobs.empty() ? 0 : total / static_cast<double>(jobs.size());
}

std::uint64_t ClusterResult::TotalPfsReadOps() const {
  std::uint64_t total = 0;
  for (const JobResult& job : jobs) total += job.pfs_stats.read_ops;
  return total;
}

std::uint64_t ClusterResult::TotalPfsReadBytes() const {
  std::uint64_t total = 0;
  for (const JobResult& job : jobs) total += job.pfs_stats.bytes_read;
  return total;
}

Result<ClusterResult> RunClusterExperiment(const fs::path& pfs_root,
                                           const fs::path& local_root,
                                           const ClusterConfig& config) {
  if (config.num_jobs < 1) {
    return InvalidArgumentError("cluster needs at least one job");
  }

  // Stage the dataset once at host speed.
  {
    storage::PosixEngine raw(pfs_root, "dataset-gen");
    auto existing = workload::LoadManifest(raw, config.dataset);
    if (!existing.ok()) {
      MONARCH_RETURN_IF_ERROR(
          workload::GenerateDataset(raw, config.dataset).status());
    }
  }
  storage::PosixEngine listing(pfs_root, "listing");
  MONARCH_ASSIGN_OR_RETURN(const auto manifest,
                           workload::LoadManifest(listing, config.dataset));

  // ONE shared PFS device: every job's engine wrapper shares this token
  // bucket, so job B's reads slow job A's — real cross-job contention,
  // no synthetic process needed.
  auto shared_pfs_device =
      std::make_shared<storage::DeviceModel>(storage::DeviceProfile::LustrePfs());

  // Cooperative peer caching: one directory + one interconnect shared by
  // every monarch job. Outlives the Monarch instances below (their read
  // paths hold PeerViews pointing into the group).
  std::unique_ptr<cluster::PeerGroup> peer_group;
  if (config.use_monarch && config.peer_sharing) {
    cluster::PeerOptions peer_options;
    peer_options.interconnect_bandwidth_bps = config.interconnect_bandwidth_bps;
    peer_options.interconnect_latency =
        Micros(static_cast<std::int64_t>(config.interconnect_latency_us));
    peer_options.directory_shards = config.directory_shards;
    peer_options.replication = config.peer_replication;
    peer_options.deferred_nodes = config.deferred_join_nodes;
    peer_group =
        std::make_unique<cluster::PeerGroup>(config.num_jobs, peer_options);
  }

  // The chaos schedule: scripted events plus seeded random kill/revive
  // pairs, all keyed to the cluster-wide open counter. Random kills land
  // between 15% and 70% of the run's expected opens and revive half an
  // epoch's worth of opens later.
  std::vector<ChurnEvent> schedule = config.churn_schedule;
  if (peer_group && config.churn_random_kills > 0) {
    Xoshiro256 rng(config.churn_seed);
    const std::uint64_t opens_per_epoch =
        manifest.file_paths.size() *
        static_cast<std::uint64_t>(config.num_jobs);
    const std::uint64_t total_opens =
        opens_per_epoch * static_cast<std::uint64_t>(config.epochs);
    for (int i = 0; i < config.churn_random_kills; ++i) {
      ChurnEvent kill;
      kill.kind = ChurnKind::kKill;
      kill.node = static_cast<int>(
          rng.NextBounded(static_cast<std::uint64_t>(config.num_jobs)));
      kill.after_opens =
          total_opens * 15 / 100 +
          rng.NextBounded(std::max<std::uint64_t>(total_opens * 55 / 100, 1));
      ChurnEvent revive;
      revive.kind = ChurnKind::kRevive;
      revive.node = kill.node;
      revive.after_opens = kill.after_opens + opens_per_epoch / 2;
      schedule.push_back(kill);
      schedule.push_back(revive);
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const ChurnEvent& a, const ChurnEvent& b) {
                       return a.after_opens < b.after_opens;
                     });
  }
  const bool churn_active =
      peer_group && (!schedule.empty() || !config.deferred_join_nodes.empty());
  std::shared_ptr<ChurnGate> gate;
  if (churn_active) {
    gate = std::make_shared<ChurnGate>(config.num_jobs);
    // Deferred members read nothing until their join event fires.
    for (const int node : config.deferred_join_nodes) {
      gate->SetDown(node, true);
    }
  }

  // Multi-tenant QoS (ISSUE 10): one shared broker + admission gate for
  // the whole cluster; every job becomes a tenant.
  qos::BandwidthBrokerPtr broker;
  if (config.qos.enabled && config.qos.total_bandwidth_bps > 0) {
    qos::BandwidthBroker::Options broker_options;
    broker_options.total_rate_bps = config.qos.total_bandwidth_bps;
    broker_options.work_conserving = config.qos.work_conserving;
    broker = std::make_shared<qos::BandwidthBroker>(broker_options);
  }
  std::unique_ptr<qos::AdmissionController> admission;
  if (config.qos.enabled && config.admission_capacity_bytes > 0) {
    qos::AdmissionController::Options admission_options;
    admission_options.capacity_bytes = config.admission_capacity_bytes;
    admission_options.queue_threshold = config.qos.admission_queue_threshold;
    admission_options.reject_threshold = config.qos.admission_reject_threshold;
    admission = std::make_unique<qos::AdmissionController>(admission_options);
  }
  // A job's placement footprint: the dataset it will try to keep
  // resident (every job here trains/scans the same shared dataset).
  const std::uint64_t job_footprint_bytes = manifest.total_bytes;

  struct Job {
    storage::StorageEnginePtr pfs_engine;
    storage::StorageEnginePtr local_engine;
    std::unique_ptr<core::Monarch> monarch;
    std::unique_ptr<Trainer> trainer;
    JobSpec spec;                       ///< workload + QoS identity
    qos::TenantContext tenant;
    /// Set for non-training workloads (the trainer owns it otherwise).
    RecordFileOpenerPtr opener;
    /// Inference jobs restore from here (monarch jobs only).
    std::unique_ptr<ckpt::CheckpointManager> ckpt;
    bool admitted = true;               ///< written only by the job thread
    double read_p99_us = 0;
  };
  std::vector<Job> jobs(static_cast<std::size_t>(config.num_jobs));

  for (int j = 0; j < config.num_jobs; ++j) {
    Job& job = jobs[static_cast<std::size_t>(j)];
    if (static_cast<std::size_t>(j) < config.job_specs.size()) {
      job.spec = config.job_specs[static_cast<std::size_t>(j)];
    }
    job.tenant.tenant_id = j;
    job.tenant.name = "job" + std::to_string(j);
    job.tenant.io_class = job.spec.io_class;
    job.tenant.weight = job.spec.weight > 0
                            ? job.spec.weight
                            : config.qos.ClassWeight(job.spec.io_class) *
                                  config.qos.tenant_share;
    job.tenant.low_retention = job.spec.io_class == qos::IoClass::kScan;
    job.pfs_engine = std::make_shared<storage::ThrottledEngine>(
        std::make_shared<storage::PosixEngine>(pfs_root,
                                               "pfs-job" + std::to_string(j)),
        shared_pfs_device);

    TrainerConfig tc;
    tc.model = config.model;
    tc.epochs = config.epochs;
    tc.batch_size = config.batch_size;
    tc.num_gpus = config.num_gpus;
    tc.loader.reader_threads = config.reader_threads;
    tc.loader.read_chunk_bytes = config.read_chunk_bytes;
    tc.loader.shuffle_seed = config.seed * 97 + static_cast<std::uint64_t>(j);

    RecordFileOpenerPtr opener;
    if (config.use_monarch) {
      job.local_engine = storage::MakeLocalSsdEngine(
          local_root / ("job" + std::to_string(j)));
      core::MonarchConfig monarch_config;
      monarch_config.cache_tiers.push_back(core::TierSpec{
          "local-ssd", job.local_engine, config.local_quota_bytes});
      monarch_config.pfs = core::TierSpec{"lustre", job.pfs_engine, 0};
      monarch_config.dataset_dir = config.dataset.directory;
      monarch_config.placement.num_threads = config.placement_threads;
      if (config.qos.enabled) {
        monarch_config.placement.qos = config.qos;
        monarch_config.qos_broker = broker;
        monarch_config.tenant = job.tenant;
      }
      if (peer_group) {
        // Register this node's local tier as a peer-read source, then
        // give its Monarch the peer tier + the directory-backed view.
        peer_group->RegisterNode(j, job.local_engine);
        monarch_config.peer_tier =
            core::TierSpec{"peer", peer_group->MakePeerEngine(j), 0};
        monarch_config.peer_view = peer_group->MakePeerView(j);
      }
      MONARCH_ASSIGN_OR_RETURN(
          job.monarch, core::Monarch::Create(std::move(monarch_config)));
      auto monarch_opener = std::make_unique<MonarchOpener>(*job.monarch);
      if (config.qos.enabled) monarch_opener->SetTenant(job.tenant);
      opener = std::move(monarch_opener);
      if (gate) {
        opener = std::make_unique<GatedOpener>(std::move(opener), gate, j);
      }
      if (job.spec.workload == JobWorkload::kInference) {
        ckpt::CheckpointOptions ckpt_options;
        ckpt_options.qos_broker = broker;
        job.ckpt = std::make_unique<ckpt::CheckpointManager>(
            job.monarch->hierarchy(), std::move(ckpt_options));
      }
    } else {
      opener = std::make_unique<EngineOpener>(job.pfs_engine);
    }
    if (job.spec.workload == JobWorkload::kTraining) {
      job.trainer = std::make_unique<Trainer>(manifest.file_paths,
                                              std::move(opener), tc);
    } else {
      job.opener = std::move(opener);
    }
  }

  // Replication repair: one bounded-rate pump per node drains the
  // directory's re-staging queue through that node's prefetch lane.
  std::vector<std::unique_ptr<cluster::RestagePump>> pumps;
  if (peer_group) {
    cluster::RestagePump::Options pump_options;
    pump_options.bandwidth_bps = config.restage_bandwidth_bps;
    for (int j = 0; j < config.num_jobs; ++j) {
      core::Monarch* monarch = jobs[static_cast<std::size_t>(j)].monarch.get();
      if (monarch == nullptr) continue;
      pumps.push_back(std::make_unique<cluster::RestagePump>(
          peer_group->directory(), j,
          [monarch](const std::string& name) {
            return monarch->RestageFile(name);
          },
          pump_options));
    }
  }

  obs::Counter* failover_counter = obs::MetricsRegistry::Global().GetCounter(
      "net.peer_failover", "ops",
      "peer reads rescued by another live holder after a replica failed");
  const std::uint64_t failovers_before = failover_counter->Value();

  // Run every job on its own host thread (a "compute node").
  std::vector<Result<TrainingResult>> outcomes(
      static_cast<std::size_t>(config.num_jobs),
      Result<TrainingResult>(InternalError("not run")));
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    threads.emplace_back([&, j] {
      Job& job = jobs[j];
      // Install the job's tenant on its host thread: direct monarch calls
      // (scan/inference) attribute here; the trainer's reader threads get
      // theirs from the opener's TenantSource wrapper.
      std::optional<qos::ScopedTenant> scope;
      if (config.qos.enabled) scope.emplace(job.tenant);
      if (admission != nullptr) {
        if (!admission->AwaitAdmission(job.tenant, job_footprint_bytes)) {
          job.admitted = false;
          outcomes[j] = TrainingResult{};  // rejected: the job does no I/O
          return;
        }
      }
      switch (job.spec.workload) {
        case JobWorkload::kTraining:
          outcomes[j] = job.trainer->Train();
          break;
        case JobWorkload::kScan:
          outcomes[j] = RunScanJob(manifest.file_paths, *job.opener,
                                   config.epochs, config.read_chunk_bytes);
          break;
        case JobWorkload::kInference:
          outcomes[j] = RunInferenceJob(
              manifest.file_paths, *job.opener, job.ckpt.get(),
              /*model_bytes=*/std::uint64_t{4} << 20, config.epochs,
              config.read_chunk_bytes,
              config.seed * 131 + static_cast<std::uint64_t>(j),
              &job.read_p99_us);
          break;
      }
      if (admission != nullptr) admission->Release(job.tenant.tenant_id);
    });
  }

  // The chaos driver: fires each scheduled event once the open counter
  // crosses its threshold. If the counter stalls (every remaining reader
  // is parked behind a gate, or training already finished) the next event
  // fires anyway — a revive must not deadlock against the outage it ends.
  std::uint64_t events_fired = 0;
  std::thread churn_driver;
  std::atomic<bool> training_done{false};
  if (churn_active) {
    churn_driver = std::thread([&] {
      using namespace std::chrono_literals;
      constexpr auto kStallWindow = 700ms;
      for (const ChurnEvent& event : schedule) {
        std::uint64_t last_opens = gate->opens();
        auto last_progress = std::chrono::steady_clock::now();
        while (gate->opens() < event.after_opens &&
               !training_done.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(2ms);
          const std::uint64_t now_opens = gate->opens();
          const auto now = std::chrono::steady_clock::now();
          if (now_opens != last_opens) {
            last_opens = now_opens;
            last_progress = now;
          } else if (now - last_progress > kStallWindow) {
            break;  // stalled: fire the event to unwedge the cluster
          }
        }
        switch (event.kind) {
          case ChurnKind::kKill:
            // Park the node's readers and take it off the fabric FIRST;
            // the directory retraction follows after the modelled
            // detection lag — in that window survivors still resolve the
            // dead holder, time out, and fail over to a replica.
            gate->SetDown(event.node, true);
            peer_group->network()->SetNodeDown(event.node, true);
            if (config.churn_detection_lag_us > 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(
                  config.churn_detection_lag_us));
            }
            peer_group->KillNode(event.node);
            break;
          case ChurnKind::kRevive: {
            // Re-advertise the copies that survived on the node's local
            // tier BEFORE rejoining, so the rejoin delta only repairs
            // what was actually lost.
            core::Monarch* monarch =
                jobs[static_cast<std::size_t>(event.node)].monarch.get();
            if (monarch != nullptr) monarch->ReadvertisePlacedCopies();
            peer_group->ReviveNode(event.node);
            gate->SetDown(event.node, false);
            break;
          }
          case ChurnKind::kJoin:
            peer_group->JoinNode(event.node);
            gate->SetDown(event.node, false);
            break;
        }
        ++events_fired;
      }
    });
  }

  for (std::thread& t : threads) t.join();
  training_done.store(true, std::memory_order_release);
  if (churn_driver.joinable()) churn_driver.join();
  if (gate) gate->ReleaseAll();

  // Let the repair pumps finish the queued re-staging before stopping
  // them — replication should be restored by the time we report health.
  if (peer_group) {
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (peer_group->directory().RestageQueueDepth() > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (auto& pump : pumps) pump->Stop();
  }

  ClusterResult result;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    MONARCH_RETURN_IF_ERROR(outcomes[j].status());
    JobResult job_result;
    job_result.job_index = static_cast<int>(j);
    job_result.training = std::move(outcomes[j]).value();
    job_result.pfs_stats = jobs[j].pfs_engine->Stats().Snapshot();
    job_result.io_class = jobs[j].tenant.io_class;
    job_result.admitted = jobs[j].admitted;
    job_result.read_p99_us = jobs[j].read_p99_us;
    if (jobs[j].ckpt) jobs[j].ckpt->Shutdown();
    if (jobs[j].monarch) {
      jobs[j].monarch->DrainPlacements();
      job_result.monarch_stats = jobs[j].monarch->Stats();
    }
    if (peer_group) {
      job_result.peer_stats =
          peer_group->directory().StatsFor(static_cast<int>(j));
    }
    result.jobs.push_back(std::move(job_result));
  }
  if (peer_group) {
    result.peer_transfers = peer_group->network()->transfers();
    result.peer_bytes = peer_group->network()->bytes_transferred();
    result.churn_events_fired = events_fired;
    result.membership_version = peer_group->directory().membership_version();
    result.restage_enqueued =
        peer_group->directory().restage_enqueued_total();
    result.restage_completed =
        peer_group->directory().restage_completed_total();
    result.restage_queue_end = peer_group->directory().RestageQueueDepth();
    result.rpc_timeouts = peer_group->network()->rpc_timeouts();
    result.peer_failovers = failover_counter->Value() - failovers_before;
    result.replication = peer_group->directory().CheckReplication();
  }
  if (admission != nullptr) {
    const qos::AdmissionController::Stats admission_stats =
        admission->GetStats();
    result.qos_admitted = admission_stats.admitted;
    result.qos_queued = admission_stats.queued;
    result.qos_rejected = admission_stats.rejected;
  }
  return result;
}

}  // namespace monarch::dlsim
