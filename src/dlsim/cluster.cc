#include "dlsim/cluster.h"

#include <mutex>
#include <thread>

#include "cluster/peer_group.h"
#include "dlsim/monarch_opener.h"
#include "dlsim/record_opener.h"
#include "storage/device_model.h"
#include "storage/engine_factory.h"
#include "storage/posix_engine.h"
#include "storage/throttled_engine.h"

namespace monarch::dlsim {

namespace fs = std::filesystem;

double ClusterResult::MeanEpochSeconds() const {
  double total = 0;
  std::size_t epochs = 0;
  for (const JobResult& job : jobs) {
    for (const EpochResult& epoch : job.training.epochs) {
      total += epoch.wall_seconds;
      ++epochs;
    }
  }
  return epochs == 0 ? 0 : total / static_cast<double>(epochs);
}

double ClusterResult::MeanTotalSeconds() const {
  double total = 0;
  for (const JobResult& job : jobs) total += job.training.total_seconds;
  return jobs.empty() ? 0 : total / static_cast<double>(jobs.size());
}

std::uint64_t ClusterResult::TotalPfsReadOps() const {
  std::uint64_t total = 0;
  for (const JobResult& job : jobs) total += job.pfs_stats.read_ops;
  return total;
}

std::uint64_t ClusterResult::TotalPfsReadBytes() const {
  std::uint64_t total = 0;
  for (const JobResult& job : jobs) total += job.pfs_stats.bytes_read;
  return total;
}

Result<ClusterResult> RunClusterExperiment(const fs::path& pfs_root,
                                           const fs::path& local_root,
                                           const ClusterConfig& config) {
  if (config.num_jobs < 1) {
    return InvalidArgumentError("cluster needs at least one job");
  }

  // Stage the dataset once at host speed.
  {
    storage::PosixEngine raw(pfs_root, "dataset-gen");
    auto existing = workload::LoadManifest(raw, config.dataset);
    if (!existing.ok()) {
      MONARCH_RETURN_IF_ERROR(
          workload::GenerateDataset(raw, config.dataset).status());
    }
  }
  storage::PosixEngine listing(pfs_root, "listing");
  MONARCH_ASSIGN_OR_RETURN(const auto manifest,
                           workload::LoadManifest(listing, config.dataset));

  // ONE shared PFS device: every job's engine wrapper shares this token
  // bucket, so job B's reads slow job A's — real cross-job contention,
  // no synthetic process needed.
  auto shared_pfs_device =
      std::make_shared<storage::DeviceModel>(storage::DeviceProfile::LustrePfs());

  // Cooperative peer caching: one directory + one interconnect shared by
  // every monarch job. Outlives the Monarch instances below (their read
  // paths hold PeerViews pointing into the group).
  std::unique_ptr<cluster::PeerGroup> peer_group;
  if (config.use_monarch && config.peer_sharing) {
    cluster::PeerOptions peer_options;
    peer_options.interconnect_bandwidth_bps = config.interconnect_bandwidth_bps;
    peer_options.interconnect_latency =
        Micros(static_cast<std::int64_t>(config.interconnect_latency_us));
    peer_options.directory_shards = config.directory_shards;
    peer_options.replication = config.peer_replication;
    peer_group =
        std::make_unique<cluster::PeerGroup>(config.num_jobs, peer_options);
  }

  struct Job {
    storage::StorageEnginePtr pfs_engine;
    storage::StorageEnginePtr local_engine;
    std::unique_ptr<core::Monarch> monarch;
    std::unique_ptr<Trainer> trainer;
  };
  std::vector<Job> jobs(static_cast<std::size_t>(config.num_jobs));

  for (int j = 0; j < config.num_jobs; ++j) {
    Job& job = jobs[static_cast<std::size_t>(j)];
    job.pfs_engine = std::make_shared<storage::ThrottledEngine>(
        std::make_shared<storage::PosixEngine>(pfs_root,
                                               "pfs-job" + std::to_string(j)),
        shared_pfs_device);

    TrainerConfig tc;
    tc.model = config.model;
    tc.epochs = config.epochs;
    tc.batch_size = config.batch_size;
    tc.num_gpus = config.num_gpus;
    tc.loader.reader_threads = config.reader_threads;
    tc.loader.read_chunk_bytes = config.read_chunk_bytes;
    tc.loader.shuffle_seed = config.seed * 97 + static_cast<std::uint64_t>(j);

    RecordFileOpenerPtr opener;
    if (config.use_monarch) {
      job.local_engine = storage::MakeLocalSsdEngine(
          local_root / ("job" + std::to_string(j)));
      core::MonarchConfig monarch_config;
      monarch_config.cache_tiers.push_back(core::TierSpec{
          "local-ssd", job.local_engine, config.local_quota_bytes});
      monarch_config.pfs = core::TierSpec{"lustre", job.pfs_engine, 0};
      monarch_config.dataset_dir = config.dataset.directory;
      monarch_config.placement.num_threads = config.placement_threads;
      if (peer_group) {
        // Register this node's local tier as a peer-read source, then
        // give its Monarch the peer tier + the directory-backed view.
        peer_group->RegisterNode(j, job.local_engine);
        monarch_config.peer_tier =
            core::TierSpec{"peer", peer_group->MakePeerEngine(j), 0};
        monarch_config.peer_view = peer_group->MakePeerView(j);
      }
      MONARCH_ASSIGN_OR_RETURN(
          job.monarch, core::Monarch::Create(std::move(monarch_config)));
      opener = std::make_unique<MonarchOpener>(*job.monarch);
    } else {
      opener = std::make_unique<EngineOpener>(job.pfs_engine);
    }
    job.trainer = std::make_unique<Trainer>(manifest.file_paths,
                                            std::move(opener), tc);
  }

  // Run every job on its own host thread (a "compute node").
  std::vector<Result<TrainingResult>> outcomes(
      static_cast<std::size_t>(config.num_jobs),
      Result<TrainingResult>(InternalError("not run")));
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    threads.emplace_back(
        [&, j] { outcomes[j] = jobs[j].trainer->Train(); });
  }
  for (std::thread& t : threads) t.join();

  ClusterResult result;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    MONARCH_RETURN_IF_ERROR(outcomes[j].status());
    JobResult job_result;
    job_result.job_index = static_cast<int>(j);
    job_result.training = std::move(outcomes[j]).value();
    job_result.pfs_stats = jobs[j].pfs_engine->Stats().Snapshot();
    if (jobs[j].monarch) {
      jobs[j].monarch->DrainPlacements();
      job_result.monarch_stats = jobs[j].monarch->Stats();
    }
    if (peer_group) {
      job_result.peer_stats =
          peer_group->directory().StatsFor(static_cast<int>(j));
    }
    result.jobs.push_back(std::move(job_result));
  }
  if (peer_group) {
    result.peer_transfers = peer_group->network()->transfers();
    result.peer_bytes = peer_group->network()->bytes_transferred();
  }
  return result;
}

}  // namespace monarch::dlsim
