// Experiment setups: one constructor per scenario in the paper's
// evaluation, wiring storage engines, openers and (for MONARCH) the
// middleware into a ready-to-run Trainer. Benches and examples share
// these so every figure is produced by identical plumbing.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/monarch.h"
#include "dlsim/trainer.h"
#include "workload/dataset_generator.h"

namespace monarch::dlsim {

/// Shared experiment parameters (§II/§IV experimental setup).
struct ExperimentConfig {
  workload::DatasetSpec dataset;
  ModelProfile model;
  int epochs = 3;
  std::uint64_t batch_size = 256;
  int num_gpus = 4;
  int reader_threads = 6;
  std::size_t read_chunk_bytes = 64 * 1024;
  /// Local-tier capacity: the Frontera node's 115 GiB SSD partition at
  /// 1/1000 scale.
  std::uint64_t local_quota_bytes = 115ULL * 1024 * 1024;
  /// MONARCH placement-pool width (paper configuration: 6).
  int placement_threads = 6;
  /// MONARCH look-ahead: hinted files kept staging ahead of the read
  /// position (0 = demand-only, the paper's baseline behaviour).
  int prefetch_lookahead = 0;
  /// MONARCH staging pipeline: chunk-buffer-pool budget and granularity
  /// (0 = keep the PlacementOptions defaults).
  std::uint64_t staging_buffer_bytes = 0;
  std::uint64_t staging_chunk_bytes = 0;
  /// MONARCH per-tier prefetch in-flight byte cap (0 = uncapped).
  std::uint64_t tier_inflight_cap_bytes = 0;
  /// MONARCH placement policy by config name (first-fit | round-robin |
  /// lru | hotspot | clairvoyant); empty = first-fit. The fig4 policy
  /// sweep varies this; docs/PLACEMENT.md is the handbook.
  std::string placement_policy;
  /// Per-policy eviction knobs (hotspot decay, clairvoyant window).
  core::PlacementPolicyKnobs policy_knobs;
  /// Seed for PFS contention + shuffling; vary per run for error bars.
  std::uint64_t run_seed = 1;
  /// Disable the PFS contention process (fast deterministic tests).
  bool contended_pfs = true;
};

/// A fully-wired scenario: a trainer plus handles to the backends so the
/// caller can diff I/O stats (PFS pressure tables) after training.
struct Setup {
  std::unique_ptr<Trainer> trainer;
  storage::StorageEnginePtr pfs_engine;     ///< null for vanilla-local
  storage::StorageEnginePtr local_engine;   ///< null for vanilla-lustre
  std::unique_ptr<core::Monarch> monarch;   ///< only for MakeMonarchSetup
  std::vector<std::string> files;
};

/// Stage the dataset into `pfs_root` (raw host speed, untimed) unless it
/// is already there; returns the manifest either way.
Result<workload::DatasetManifest> EnsureDataset(
    const std::filesystem::path& pfs_root,
    const workload::DatasetSpec& spec);

/// §II vanilla-lustre: every read from the (contended) PFS.
Result<Setup> MakeVanillaLustreSetup(const std::filesystem::path& pfs_root,
                                     const ExperimentConfig& config);

/// §II vanilla-local: dataset pre-copied to the local SSD (untimed copy,
/// as the paper does manually); every read local.
Result<Setup> MakeVanillaLocalSetup(const std::filesystem::path& pfs_root,
                                    const std::filesystem::path& local_root,
                                    const ExperimentConfig& config);

/// §II vanilla-caching: TensorFlow Dataset.cache — epoch 1 from the PFS
/// with an inline write-through to local, epochs 2+ from local. Fails
/// (like TF) when the dataset exceeds the local capacity.
Result<Setup> MakeVanillaCachingSetup(const std::filesystem::path& pfs_root,
                                      const std::filesystem::path& local_root,
                                      const ExperimentConfig& config);

/// §IV MONARCH: two-level hierarchy (local SSD + PFS), background
/// placement with full-file fetch.
Result<Setup> MakeMonarchSetup(const std::filesystem::path& pfs_root,
                               const std::filesystem::path& local_root,
                               const ExperimentConfig& config);

}  // namespace monarch::dlsim
