#include "dlsim/compute_model.h"

namespace monarch::dlsim {

// Calibration notes (targets from the paper's Figures 1/3/4 and the §II
// resource-usage numbers; the bench README maps these to measured output):
//   - the scaled dataset is ~112 MiB / ~7k samples per epoch;
//   - a PFS-served epoch costs ~1.5-2.0s of I/O, a local-served epoch
//     ~0.35s (device profiles in storage/device_model.cc);
//   - epoch time ~= max(input-pipeline time, compute time).
// LeNet: tiny GPU step, visible CPU preprocess -> local runs are
// preprocess-bound (~0.8s), PFS runs I/O-bound (~1.9s): the 46% gap of
// Fig. 1. AlexNet: heavier step (~1.2s/epoch GPU) -> smaller 18% gap.
// ResNet-50: step time above the worst PFS epoch -> flat across setups.

ModelProfile ModelProfile::LeNet() {
  ModelProfile p;
  p.name = "lenet";
  p.step_time = Millis(8);
  p.preprocess_per_sample = Micros(600);
  return p;
}

ModelProfile ModelProfile::AlexNet() {
  ModelProfile p;
  p.name = "alexnet";
  p.step_time = Millis(35);
  p.preprocess_per_sample = Micros(380);
  return p;
}

ModelProfile ModelProfile::ResNet50() {
  ModelProfile p;
  p.name = "resnet50";
  p.step_time = Millis(62);
  p.preprocess_per_sample = Micros(300);
  return p;
}

void ComputeEngine::Step(std::uint64_t batch_size) {
  // Step time is per global batch; partial final batches scale down.
  const double fraction =
      batch_size == 0 ? 0.0 : 1.0;  // frameworks pad the last batch
  const Duration duration = std::chrono::duration_cast<Duration>(
      profile_.step_time * fraction);
  PreciseSleep(duration);
  busy_ += duration;
  ++steps_;
}

}  // namespace monarch::dlsim
