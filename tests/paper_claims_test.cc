// Paper-claims suite: each test pins one *qualitative sentence* from the
// paper to an executable assertion at miniature scale. These are the
// claims the bench harness reproduces quantitatively; here they gate CI.
#include <gtest/gtest.h>

#include <memory>

#include "core/monarch.h"
#include "dlsim/monarch_opener.h"
#include "dlsim/setups.h"
#include "storage/memory_engine.h"
#include "storage/posix_engine.h"
#include "test_support.h"

namespace monarch {
namespace {

using monarch::testing::TempDir;

class PaperClaimsTest : public ::testing::Test {
 protected:
  PaperClaimsTest() : dir_("claims") {}

  dlsim::ExperimentConfig MiniConfig() {
    dlsim::ExperimentConfig config;
    config.dataset = workload::DatasetSpec::Tiny();
    config.model.name = "mini";
    config.model.step_time = Micros(100);
    config.model.preprocess_per_sample = Micros(10);
    config.epochs = 3;
    config.batch_size = 8;
    config.num_gpus = 2;
    config.reader_threads = 2;
    config.read_chunk_bytes = 2048;
    config.local_quota_bytes = 10ULL * 1024 * 1024;
    config.placement_threads = 2;
    config.contended_pfs = false;
    return config;
  }

  TempDir dir_;
};

// §III-A: "this strategy requires the same number of operations to the
// PFS backend as the first one [staging before training], thus not
// adding additional I/O pressure on the shared file system."
TEST_F(PaperClaimsTest, DuringTrainingPlacementAddsNoExtraPfsPressure) {
  const auto config = MiniConfig();

  // Arm 1: pre-stage everything, then train (no PFS traffic expected
  // during training beyond the staging reads).
  auto prestage_arm =
      dlsim::MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("l1"), config);
  ASSERT_OK(prestage_arm);
  prestage_arm->monarch->Prestage();
  const auto prestage_pfs_after_staging =
      prestage_arm->pfs_engine->Stats().Snapshot();
  ASSERT_OK(prestage_arm->trainer->Train());
  const auto prestage_total = prestage_arm->pfs_engine->Stats().Snapshot();
  EXPECT_EQ(prestage_pfs_after_staging.read_ops, prestage_total.read_ops)
      << "after pre-staging, training must not touch the PFS";

  // Arm 2: the paper's choice — place during epoch 1.
  auto during_arm =
      dlsim::MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("l2"), config);
  ASSERT_OK(during_arm);
  ASSERT_OK(during_arm->trainer->Train());
  during_arm->monarch->DrainPlacements();
  const auto during_total = during_arm->pfs_engine->Stats().Snapshot();

  // Baseline for "not adding additional I/O pressure": what the
  // framework alone (vanilla, no MONARCH) puts on the PFS in the same
  // 3-epoch run.
  auto vanilla_arm = dlsim::MakeVanillaLustreSetup(dir_.Sub("pfs"), config);
  ASSERT_OK(vanilla_arm);
  ASSERT_OK(vanilla_arm->trainer->Train());
  const auto vanilla_total = vanilla_arm->pfs_engine->Stats().Snapshot();

  // During-training placement overlaps the framework's own chunked
  // epoch-1 reads with its full-file staging reads, so it costs slightly
  // more than pre-staging's single pass over the dataset — but it must
  // never exceed TWO passes, and must stay strictly below the pressure
  // the framework alone generates.
  EXPECT_LT(during_total.read_ops, vanilla_total.read_ops);
  EXPECT_LT(during_total.bytes_read, vanilla_total.bytes_read);
  EXPECT_LT(during_total.bytes_read, 2 * prestage_total.bytes_read);
}

// §III-B: "subsequent requests to the same file [are] served from a
// top-level tier instead of the PFS" — after the first epoch, a
// fitting dataset generates zero further PFS reads.
TEST_F(PaperClaimsTest, SteadyStateIssuesZeroPfsReadsWhenDatasetFits) {
  auto setup =
      dlsim::MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("fits"), MiniConfig());
  ASSERT_OK(setup);

  dlsim::TrainerConfig tc;
  tc.model = MiniConfig().model;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.loader.reader_threads = 2;
  tc.loader.read_chunk_bytes = 2048;

  dlsim::Trainer epoch1(setup->files,
                        std::make_unique<dlsim::MonarchOpener>(*setup->monarch),
                        tc);
  ASSERT_OK(epoch1.Train());
  setup->monarch->DrainPlacements();
  const auto after_epoch1 = setup->pfs_engine->Stats().Snapshot();

  dlsim::Trainer epoch2(setup->files,
                        std::make_unique<dlsim::MonarchOpener>(*setup->monarch),
                        tc);
  ASSERT_OK(epoch2.Train());
  const auto after_epoch2 = setup->pfs_engine->Stats().Snapshot();
  EXPECT_EQ(after_epoch1.read_ops, after_epoch2.read_ops);
  EXPECT_EQ(after_epoch1.bytes_read, after_epoch2.bytes_read);
}

// §II summary: "the current implementation of this [TensorFlow caching]
// mechanism is only applicable when the full dataset fits on the local
// disk" — while MONARCH (Abstract) supports "datasets with variable
// sizes that may or may not be cached entirely".
TEST_F(PaperClaimsTest, MonarchAcceptsWhatDatasetCacheRefuses) {
  auto config = MiniConfig();
  config.local_quota_bytes = 40 * 1024;  // roughly half the tiny dataset

  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     dlsim::MakeVanillaCachingSetup(
                         dir_.Sub("pfs"), dir_.Sub("vc"), config));

  auto monarch_setup =
      dlsim::MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("mn"), config);
  ASSERT_OK(monarch_setup);
  ASSERT_OK(monarch_setup->trainer->Train());
  monarch_setup->monarch->DrainPlacements();
  const auto stats = monarch_setup->monarch->Stats();
  EXPECT_GT(stats.placement.completed, 0u) << "partial caching happened";
  EXPECT_GT(stats.placement.rejected_no_space, 0u)
      << "and the overflow stayed on the PFS";
}

// §III-A: "no evictions are made at any level of the storage hierarchy"
// under the default policy, even when the dataset overflows every tier.
TEST_F(PaperClaimsTest, DefaultPolicyNeverEvicts) {
  auto config = MiniConfig();
  config.local_quota_bytes = 30 * 1024;
  auto setup =
      dlsim::MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("ne"), config);
  ASSERT_OK(setup);
  ASSERT_OK(setup->trainer->Train());
  setup->monarch->DrainPlacements();
  EXPECT_EQ(0u, setup->monarch->Stats().placement.evictions);

  // Whatever was placed in epoch 1 is still placed after epoch 3 — the
  // occupancy high-water mark never recedes.
  const auto stats = setup->monarch->Stats();
  EXPECT_EQ(stats.placement.bytes_staged,
            stats.levels[0].occupancy_bytes);
}

// §III: MONARCH "resides at the POSIX layer... not impacting the
// internal operation model of the targeted framework" — the same
// pipeline code runs unmodified over all openers and yields identical
// sample counts.
TEST_F(PaperClaimsTest, FrameworkPipelineIsOpenerAgnostic) {
  const auto config = MiniConfig();
  const auto expected = config.dataset.total_samples();

  auto vanilla = dlsim::MakeVanillaLustreSetup(dir_.Sub("pfs"), config);
  ASSERT_OK(vanilla);
  auto vanilla_result = vanilla->trainer->Train();
  ASSERT_OK(vanilla_result);

  auto monarch =
      dlsim::MakeMonarchSetup(dir_.Sub("pfs"), dir_.Sub("oa"), config);
  ASSERT_OK(monarch);
  auto monarch_result = monarch->trainer->Train();
  ASSERT_OK(monarch_result);

  for (const auto& epoch : vanilla_result->epochs) {
    EXPECT_EQ(expected, epoch.samples);
  }
  for (const auto& epoch : monarch_result->epochs) {
    EXPECT_EQ(expected, epoch.samples);
  }
}

}  // namespace
}  // namespace monarch
