// Drain-lane behaviour (ISSUE 5 acceptance): the background drain rides
// the retry/circuit-breaker ladder through PFS outages, and a
// bandwidth-capped drain never starves demand reads of the shared PFS.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../test_support.h"
#include "ckpt/checkpoint_manager.h"
#include "storage/faulty_engine.h"
#include "storage/memory_engine.h"
#include "util/clock.h"

namespace monarch::ckpt {
namespace {

std::vector<std::byte> Payload(std::size_t bytes) {
  std::vector<std::byte> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>(i & 0xFF);
  }
  return data;
}

TEST(CheckpointDrainTest, PfsOutageAbsorbedByRetryLadder) {
  auto local = std::make_shared<storage::MemoryEngine>("local");
  auto pfs_inner = std::make_shared<storage::MemoryEngine>("pfs");
  auto pfs = std::make_shared<storage::FaultyEngine>(
      pfs_inner, storage::FaultyEngine::FaultSpec{});
  std::vector<core::StorageDriverPtr> drivers;
  drivers.push_back(std::make_unique<core::StorageDriver>(
      "local", local, 1 << 20, /*read_only=*/false));
  drivers.push_back(std::make_unique<core::StorageDriver>(
      "pfs", pfs, 0, /*read_only=*/true));
  auto hierarchy =
      std::move(core::StorageHierarchy::Create(std::move(drivers))).value();

  pfs->FailUntilHealed();
  CheckpointManager manager(*hierarchy, {});
  const auto data = Payload(20'000);
  // Save succeeds instantly — the outage is the drain lane's problem.
  ASSERT_OK(manager.Save("model", data));
  EXPECT_EQ(1u, manager.GetStats().pending_drains);

  // Let the drain burn through a few retry rounds against the dead PFS,
  // then heal it; Flush must converge without any caller-visible error.
  while (manager.GetStats().drain_retries < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pfs->Heal();
  ASSERT_OK(manager.Flush());

  const auto stats = manager.GetStats();
  EXPECT_EQ(1u, stats.drains_completed);
  EXPECT_GE(stats.drain_retries, 3u);
  EXPECT_GT(pfs->injected_failures(), 0u);

  std::vector<std::byte> out(data.size());
  ASSERT_OK(pfs_inner->Read("ckpt/model.g1", 0, out));
  EXPECT_EQ(data, out);
}

TEST(CheckpointDrainTest, CappedDrainDoesNotStarveDemandReads) {
  auto local = std::make_shared<storage::MemoryEngine>("local");
  auto pfs = std::make_shared<storage::MemoryEngine>("pfs");
  const auto dataset = Payload(64 * 1024);
  ASSERT_OK(pfs->Write("data/train.rec", dataset));

  std::vector<core::StorageDriverPtr> drivers;
  drivers.push_back(std::make_unique<core::StorageDriver>(
      "local", local, 8 << 20, /*read_only=*/false));
  drivers.push_back(std::make_unique<core::StorageDriver>(
      "pfs", pfs, 0, /*read_only=*/true));
  auto hierarchy =
      std::move(core::StorageHierarchy::Create(std::move(drivers))).value();

  // A 2 MiB checkpoint behind a 2 MiB/s cap: the drain (copy + verify
  // read-back, both metered) occupies the lane for upwards of a second.
  CheckpointOptions options;
  options.drain_bandwidth_bytes_per_sec = 2 << 20;
  options.chunk_bytes = 64 * 1024;
  CheckpointManager manager(*hierarchy, options);
  ASSERT_OK(manager.Save("model", Payload(2 << 20)));

  // Demand reads against the same PFS driver while the capped drain is
  // active: they must proceed at full speed — the cap throttles the
  // drain lane, not the tier.
  const Stopwatch wall;
  std::vector<std::byte> buffer(dataset.size());
  constexpr int kReads = 200;
  for (int i = 0; i < kReads; ++i) {
    auto read = hierarchy->Pfs().Read("data/train.rec", 0, buffer);
    ASSERT_OK(read);
    ASSERT_EQ(dataset.size(), read.value());
  }
  const double demand_seconds = wall.ElapsedSeconds();

  // The drain must still be in flight (proving the reads overlapped an
  // active capped drain), and the demand reads must not have been
  // slowed to anywhere near the drain's bandwidth: 200 reads of 64 KiB
  // at the 2 MiB/s cap would alone take ~6 s.
  EXPECT_EQ(1u, manager.GetStats().pending_drains)
      << "drain finished before the demand reads — cap not exercised";
  EXPECT_LT(demand_seconds, 2.0);

  ASSERT_OK(manager.Flush());
  EXPECT_EQ(1u, manager.GetStats().drains_completed);
}

}  // namespace
}  // namespace monarch::ckpt
