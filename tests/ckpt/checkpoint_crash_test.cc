// Crash consistency (ISSUE 5 acceptance): the manifest journal is the
// commit point, so whatever instant the process dies at, a recovering
// manager serves either the previous or the new checkpoint — never a
// mix — interrupted drains resume, torn journal tails are dropped, and
// bytes drained reconcile with bytes durable.
//
// The "kill" primitive: destroying a CheckpointManager without Flush.
// Shutdown stops the drain lane wherever it happens to be; the engines
// (the "disks") survive into the next manager, which recovers from the
// journal exactly as a restarted node would.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_support.h"
#include "ckpt/checkpoint_manager.h"
#include "ckpt/manifest.h"
#include "storage/faulty_engine.h"
#include "storage/memory_engine.h"
#include "util/crc32c.h"

namespace monarch::ckpt {
namespace {

using monarch::testing::Bytes;

/// The surviving "disks": engines outlive manager instances. Each Boot()
/// builds a fresh hierarchy (fresh quota ledger, as after a restart) over
/// the same engines.
struct Node {
  std::shared_ptr<storage::MemoryEngine> local =
      std::make_shared<storage::MemoryEngine>("local");
  std::shared_ptr<storage::MemoryEngine> pfs_inner =
      std::make_shared<storage::MemoryEngine>("pfs");
  std::shared_ptr<storage::FaultyEngine> pfs =
      std::make_shared<storage::FaultyEngine>(
          pfs_inner, storage::FaultyEngine::FaultSpec{});
  std::unique_ptr<core::StorageHierarchy> hierarchy;

  std::unique_ptr<CheckpointManager> Boot(std::uint64_t quota = 1 << 20,
                                          CheckpointOptions options = {}) {
    std::vector<core::StorageDriverPtr> drivers;
    drivers.push_back(std::make_unique<core::StorageDriver>(
        "local", local, quota, /*read_only=*/false));
    drivers.push_back(std::make_unique<core::StorageDriver>(
        "pfs", pfs, 0, /*read_only=*/true));
    hierarchy =
        std::move(core::StorageHierarchy::Create(std::move(drivers))).value();
    return std::make_unique<CheckpointManager>(*hierarchy, options);
  }

  /// Append raw bytes to the journal file, as a torn/fabricated record.
  void AppendToJournal(const std::string& text) {
    std::uint64_t offset = 0;
    if (auto size = local->FileSize("ckpt/MANIFEST"); size.ok()) {
      offset = size.value();
    }
    ASSERT_OK(local->WriteAt("ckpt/MANIFEST", offset, Bytes(text)));
  }
};

std::vector<std::byte> Payload(std::size_t bytes, int tag) {
  std::vector<std::byte> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>((i * 13 + static_cast<std::size_t>(tag)) &
                                     0xFF);
  }
  return data;
}

TEST(CheckpointCrashTest, TornJournalTailDroppedAndOverwritten) {
  Node node;
  const auto data = Payload(6'000, 1);
  {
    auto manager = node.Boot();
    ASSERT_OK(manager->Save("model", data));
    ASSERT_OK(manager->Flush());
  }
  // The crash tore the tail mid-append: half a record, no CRC trailer.
  node.AppendToJournal("local 99 half-written-rec");

  {
    auto manager = node.Boot();
    EXPECT_GT(manager->GetStats().torn_tail_bytes, 0u);
    auto restored = manager->Restore("model");
    ASSERT_OK(restored);
    EXPECT_EQ(data, restored.value());
    // The next append lands over the torn tail...
    ASSERT_OK(manager->Save("model2", Payload(2'000, 2)));
    ASSERT_OK(manager->Flush());
  }
  {
    // ...so the next recovery sees a clean journal with both entries.
    auto manager = node.Boot();
    EXPECT_EQ(0u, manager->GetStats().torn_tail_bytes);
    EXPECT_EQ(2u, manager->ManifestView().size());
  }
}

TEST(CheckpointCrashTest, MidWriteCrashNeverExposesPartialCheckpoint) {
  Node node;
  const auto v1 = Payload(5'000, 1);
  {
    auto manager = node.Boot();
    ASSERT_OK(manager->Save("model", v1));
    ASSERT_OK(manager->Flush());
  }

  // Crash mid-write of generation 2: `begin` journalled, a *partial* new
  // payload on the local tier, no commit record.
  const auto v2 = Payload(5'000, 2);
  node.AppendToJournal(ManifestJournal::Encode(
      {ManifestOp::kBegin, 2, "model", v2.size(), Crc32c(v2), -1}));
  ASSERT_OK(node.local->Write(
      "ckpt/model.g2",
      std::span<const std::byte>(v2).first(1'000)));  // torn data write

  auto manager = node.Boot();
  // Never a mix: restore returns the previous checkpoint, whole.
  auto restored = manager->Restore("model");
  ASSERT_OK(restored);
  EXPECT_EQ(v1, restored.value());
  EXPECT_EQ(1u, manager->GetStats().dropped_orphans);
  // The orphaned partial copy is gone.
  auto exists = node.local->Exists("ckpt/model.g2");
  ASSERT_OK(exists);
  EXPECT_FALSE(exists.value());
}

TEST(CheckpointCrashTest, CommittedButLostLocalCopyIsPrunedNotServed) {
  Node node;
  node.pfs->FailUntilHealed();  // hold the drain down until the kill
  {
    auto manager = node.Boot();
    ASSERT_OK(manager->Save("model", Payload(3'000, 1)));
    // Killed before the drain finished (no Flush).
  }
  node.pfs->Heal();
  // The "disk" lost the committed local copy too (worst case: the tier
  // died with the node). Nothing is durable and nothing is mixed.
  ASSERT_OK(node.local->Delete("ckpt/model.g1"));

  auto manager = node.Boot();
  EXPECT_STATUS_CODE(StatusCode::kNotFound, manager->Restore("model"));
  EXPECT_GE(manager->GetStats().dropped_orphans, 1u);
}

TEST(CheckpointCrashTest, InterruptedDrainResumesAndReconciles) {
  Node node;
  const auto a = Payload(8'000, 1);
  const auto b = Payload(9'000, 2);
  node.pfs->FailUntilHealed();  // PFS outage: drains cannot complete
  {
    auto manager = node.Boot();
    ASSERT_OK(manager->Save("ckpt-a", a));
    ASSERT_OK(manager->Save("ckpt-b", b));
    // Kill mid-drain: both checkpoints committed locally, neither
    // durable. Shutdown leaves them journalled.
    EXPECT_EQ(2u, manager->GetStats().pending_drains);
  }

  node.pfs->Heal();
  auto manager = node.Boot();
  EXPECT_EQ(2u, manager->GetStats().resumed_drains);
  ASSERT_OK(manager->Flush());

  // Reconciliation: bytes drained == bytes durable on the PFS, and the
  // durable copies checksum exactly.
  const auto stats = manager->GetStats();
  EXPECT_EQ(a.size() + b.size(), stats.drain_bytes);
  std::vector<std::byte> out_a(a.size());
  ASSERT_OK(node.pfs_inner->Read("ckpt/ckpt-a.g1", 0, out_a));
  EXPECT_EQ(a, out_a);
  std::vector<std::byte> out_b(b.size());
  ASSERT_OK(node.pfs_inner->Read("ckpt/ckpt-b.g2", 0, out_b));
  EXPECT_EQ(b, out_b);

  for (const auto& entry : manager->ManifestView()) {
    EXPECT_EQ(CkptState::kDurable, entry.state) << entry.name;
  }
}

TEST(CheckpointCrashTest, CrashAfterDurableRecordIsIdempotent) {
  Node node;
  const auto data = Payload(4'000, 1);
  {
    auto manager = node.Boot();
    ASSERT_OK(manager->Save("model", data));
    ASSERT_OK(manager->Flush());
  }
  // Crash landed *between* the drain's `durable` journal append and
  // anything after it — replay a second `draining` record as if the
  // next boot's drain restarted and died again; durability must win.
  node.AppendToJournal(ManifestJournal::Encode(
      {ManifestOp::kDraining, 1, "model", data.size(), Crc32c(data), 0}));

  auto manager = node.Boot();
  // `durable` was journalled before the crash, so the re-drain either
  // already happened or is re-run idempotently; either way restore
  // serves complete bytes and Flush converges.
  ASSERT_OK(manager->Flush());
  auto restored = manager->Restore("model");
  ASSERT_OK(restored);
  EXPECT_EQ(data, restored.value());
}

}  // namespace
}  // namespace monarch::ckpt
