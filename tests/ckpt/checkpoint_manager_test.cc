// CheckpointManager happy paths (ISSUE 5): save/restore roundtrips,
// state transitions, keep-last-K retention, eviction under quota
// pressure, quota interplay with the shared placement ledger, and the
// direct-to-PFS last rung.
#include "ckpt/checkpoint_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../test_support.h"
#include "storage/memory_engine.h"
#include "util/crc32c.h"

namespace monarch::ckpt {
namespace {

using monarch::testing::Bytes;

struct Rig {
  std::shared_ptr<storage::MemoryEngine> local_engine =
      std::make_shared<storage::MemoryEngine>("local");
  std::shared_ptr<storage::MemoryEngine> pfs_engine =
      std::make_shared<storage::MemoryEngine>("pfs");
  std::unique_ptr<core::StorageHierarchy> hierarchy;

  explicit Rig(std::uint64_t local_quota) {
    std::vector<core::StorageDriverPtr> drivers;
    drivers.push_back(std::make_unique<core::StorageDriver>(
        "local", local_engine, local_quota, /*read_only=*/false));
    drivers.push_back(std::make_unique<core::StorageDriver>(
        "pfs", pfs_engine, 0, /*read_only=*/true));
    hierarchy =
        std::move(core::StorageHierarchy::Create(std::move(drivers))).value();
  }
};

std::vector<std::byte> Payload(std::size_t bytes, int tag) {
  std::vector<std::byte> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>((i * 7 + static_cast<std::size_t>(tag)) &
                                     0xFF);
  }
  return data;
}

TEST(CheckpointManagerTest, SaveRestoreRoundtripServedLocally) {
  Rig rig(1 << 20);
  CheckpointManager manager(*rig.hierarchy, {});
  const auto data = Payload(10'000, 1);
  ASSERT_OK(manager.Save("model", data));

  auto restored = manager.Restore("model");
  ASSERT_OK(restored);
  EXPECT_EQ(data, restored.value());

  const auto stats = manager.GetStats();
  EXPECT_EQ(1u, stats.saves);
  EXPECT_EQ(data.size(), stats.save_bytes);
  EXPECT_EQ(1u, stats.restores_local);
  EXPECT_EQ(0u, stats.restores_pfs);
  EXPECT_EQ(0u, stats.direct_pfs_writes);
}

TEST(CheckpointManagerTest, FlushDrainsToDurablePfsCopy) {
  Rig rig(1 << 20);
  CheckpointManager manager(*rig.hierarchy, {});
  const auto data = Payload(50'000, 2);
  ASSERT_OK(manager.Save("model", data));
  ASSERT_OK(manager.Flush());

  const auto view = manager.ManifestView();
  ASSERT_EQ(1u, view.size());
  EXPECT_EQ(CkptState::kDurable, view[0].state);
  EXPECT_TRUE(view[0].local_present);
  EXPECT_EQ(Crc32c(data), view[0].crc);

  // The gen-qualified PFS copy really exists and holds the exact bytes.
  auto exists = rig.pfs_engine->Exists("ckpt/model.g1");
  ASSERT_OK(exists);
  EXPECT_TRUE(exists.value());
  std::vector<std::byte> pfs_copy(data.size());
  ASSERT_OK(rig.pfs_engine->Read("ckpt/model.g1", 0, pfs_copy));
  EXPECT_EQ(data, pfs_copy);

  const auto stats = manager.GetStats();
  EXPECT_EQ(1u, stats.drains_completed);
  EXPECT_EQ(data.size(), stats.drain_bytes);
  EXPECT_EQ(0u, stats.pending_drains);
}

TEST(CheckpointManagerTest, RestoreReturnsNewestGeneration) {
  Rig rig(1 << 20);
  CheckpointManager manager(*rig.hierarchy, {});
  const auto v1 = Payload(4'000, 1);
  const auto v2 = Payload(4'000, 2);
  ASSERT_OK(manager.Save("model", v1));
  ASSERT_OK(manager.Save("model", v2));
  auto restored = manager.Restore("model");
  ASSERT_OK(restored);
  EXPECT_EQ(v2, restored.value());
}

TEST(CheckpointManagerTest, KeepLastKPrunesOldDurableCheckpoints) {
  Rig rig(1 << 20);
  CheckpointOptions options;
  options.keep_last = 2;
  CheckpointManager manager(*rig.hierarchy, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(manager.Save("step-" + std::to_string(i), Payload(2'000, i)));
    ASSERT_OK(manager.Flush());  // make it durable so retention can act
  }

  const auto view = manager.ManifestView();
  ASSERT_EQ(2u, view.size());
  EXPECT_EQ("step-3", view[0].name);
  EXPECT_EQ("step-4", view[1].name);
  EXPECT_GE(manager.GetStats().pruned, 3u);

  // Pruned checkpoints are gone everywhere: manifest, local tier, PFS.
  auto pfs0 = rig.pfs_engine->Exists("ckpt/step-0.g1");
  ASSERT_OK(pfs0);
  EXPECT_FALSE(pfs0.value());
  EXPECT_STATUS_CODE(StatusCode::kNotFound, manager.Restore("step-0"));
}

TEST(CheckpointManagerTest, EvictsDurableLocalCopiesUnderQuotaPressure) {
  constexpr std::size_t kBytes = 10'000;
  Rig rig(kBytes * 2 + kBytes / 2);  // room for two and a half checkpoints
  CheckpointManager manager(*rig.hierarchy, {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(manager.Save("step-" + std::to_string(i), Payload(kBytes, i)));
    // Flush so older checkpoints become durable — i.e. evictable.
    ASSERT_OK(manager.Flush());
  }
  const auto stats = manager.GetStats();
  EXPECT_GE(stats.local_evictions, 1u);
  EXPECT_EQ(4u, stats.saves);
  EXPECT_EQ(0u, stats.direct_pfs_writes);  // eviction kept Save local

  // An evicted checkpoint restores from its durable PFS copy.
  auto restored = manager.Restore("step-0");
  ASSERT_OK(restored);
  EXPECT_EQ(Payload(kBytes, 0), restored.value());
  EXPECT_GE(manager.GetStats().restores_pfs, 1u);
}

TEST(CheckpointManagerTest, QuotaReservationsTrackLocalCopies) {
  constexpr std::uint64_t kQuota = 100'000;
  constexpr std::size_t kBytes = 30'000;
  Rig rig(kQuota);
  CheckpointManager manager(*rig.hierarchy, {});
  const std::uint64_t free_before = rig.hierarchy->Level(0).free_bytes();
  ASSERT_OK(manager.Save("model", Payload(kBytes, 1)));
  // The local copy holds a real reservation in the shared ledger — the
  // same one the read path's placements draw from.
  EXPECT_EQ(free_before - kBytes, rig.hierarchy->Level(0).free_bytes());
  EXPECT_EQ(kBytes, manager.GetStats().local_bytes);
}

TEST(CheckpointManagerTest, FallsBackToDirectPfsWhenNoTierHasRoom) {
  Rig rig(/*local_quota=*/100);  // smaller than any checkpoint
  CheckpointManager manager(*rig.hierarchy, {});
  const auto data = Payload(5'000, 3);
  ASSERT_OK(manager.Save("model", data));

  const auto stats = manager.GetStats();
  EXPECT_EQ(1u, stats.direct_pfs_writes);
  EXPECT_EQ(0u, stats.pending_drains);  // already durable, nothing to drain

  const auto view = manager.ManifestView();
  ASSERT_EQ(1u, view.size());
  EXPECT_EQ(CkptState::kDurable, view[0].state);
  EXPECT_FALSE(view[0].local_present);

  auto restored = manager.Restore("model");
  ASSERT_OK(restored);
  EXPECT_EQ(data, restored.value());
  EXPECT_EQ(1u, manager.GetStats().restores_pfs);
}

TEST(CheckpointManagerTest, CorruptLocalCopyQuarantinedAndServedFromPfs) {
  Rig rig(1 << 20);
  CheckpointManager manager(*rig.hierarchy, {});
  const auto data = Payload(8'000, 4);
  ASSERT_OK(manager.Save("model", data));
  ASSERT_OK(manager.Flush());

  // Flip bytes in the local copy behind the manager's back.
  ASSERT_OK(rig.local_engine->WriteAt("ckpt/model.g1", 100, Bytes("garbage")));

  auto restored = manager.Restore("model");
  ASSERT_OK(restored);
  EXPECT_EQ(data, restored.value());  // the verified PFS copy won

  const auto stats = manager.GetStats();
  EXPECT_EQ(1u, stats.local_quarantined);
  EXPECT_EQ(1u, stats.restores_pfs);
  auto local = rig.local_engine->Exists("ckpt/model.g1");
  ASSERT_OK(local);
  EXPECT_FALSE(local.value());  // quarantined copy deleted
}

TEST(CheckpointManagerTest, RejectsInvalidNamesAndEmptyPayloads) {
  Rig rig(1 << 20);
  CheckpointManager manager(*rig.hierarchy, {});
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     manager.Save("", Payload(10, 0)));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument,
                     manager.Save("bad name", Payload(10, 0)));
  EXPECT_STATUS_CODE(StatusCode::kInvalidArgument, manager.Save("ok", {}));
  EXPECT_STATUS_CODE(StatusCode::kNotFound, manager.Restore("missing"));
}

}  // namespace
}  // namespace monarch::ckpt
