#include "dlsim/compute_model.h"

#include <gtest/gtest.h>

#include "util/clock.h"

namespace monarch::dlsim {
namespace {

TEST(ModelProfileTest, PresetsEstablishPaperRegimes) {
  const auto lenet = ModelProfile::LeNet();
  const auto alexnet = ModelProfile::AlexNet();
  const auto resnet = ModelProfile::ResNet50();

  // Step-time ordering: LeNet << AlexNet << ResNet-50 — the axis that
  // makes LeNet I/O-bound and ResNet-50 compute-bound in the paper.
  EXPECT_LT(lenet.step_time, alexnet.step_time);
  EXPECT_LT(alexnet.step_time, resnet.step_time);

  // LeNet leans hardest on CPU preprocessing (highest CPU% in §II).
  EXPECT_GE(lenet.preprocess_per_sample, alexnet.preprocess_per_sample);
  EXPECT_GT(alexnet.preprocess_per_sample, resnet.preprocess_per_sample);

  EXPECT_EQ("lenet", lenet.name);
  EXPECT_EQ("alexnet", alexnet.name);
  EXPECT_EQ("resnet50", resnet.name);
}

TEST(ComputeEngineTest, StepOccupiesStepTime) {
  ModelProfile profile;
  profile.step_time = Millis(20);
  ComputeEngine engine(profile, 4);

  const Stopwatch timer;
  engine.Step(256);
  EXPECT_GE(timer.Elapsed(), Millis(18));
  EXPECT_EQ(1u, engine.steps());
  EXPECT_EQ(Millis(20), engine.busy_time());
}

TEST(ComputeEngineTest, BusyTimeAccumulates) {
  ModelProfile profile;
  profile.step_time = Millis(1);
  ComputeEngine engine(profile, 4);
  for (int i = 0; i < 5; ++i) engine.Step(32);
  EXPECT_EQ(5u, engine.steps());
  EXPECT_EQ(Millis(5), engine.busy_time());
}

TEST(ComputeEngineTest, ResetAccountingClears) {
  ModelProfile profile;
  profile.step_time = Millis(1);
  ComputeEngine engine(profile, 2);
  engine.Step(8);
  engine.ResetAccounting();
  EXPECT_EQ(0u, engine.steps());
  EXPECT_EQ(kZeroDuration, engine.busy_time());
}

TEST(ComputeEngineTest, ReportsGpuCount) {
  ComputeEngine engine(ModelProfile::LeNet(), 4);
  EXPECT_EQ(4, engine.num_gpus());
}

}  // namespace
}  // namespace monarch::dlsim
