#include "dlsim/cluster.h"

#include <gtest/gtest.h>

#include "../test_support.h"

namespace monarch::dlsim {
namespace {

using monarch::testing::TempDir;

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : dir_("cluster") {}

  ClusterConfig MiniConfig(int jobs, bool use_monarch) {
    ClusterConfig config;
    config.num_jobs = jobs;
    config.use_monarch = use_monarch;
    config.dataset = workload::DatasetSpec::Tiny();
    config.model.name = "mini";
    config.model.step_time = Micros(100);
    config.model.preprocess_per_sample = Micros(10);
    config.epochs = 2;
    config.batch_size = 8;
    config.num_gpus = 2;
    config.reader_threads = 2;
    config.read_chunk_bytes = 2048;
    config.local_quota_bytes = 8ULL * 1024 * 1024;
    config.placement_threads = 2;
    return config;
  }

  TempDir dir_;
};

TEST_F(ClusterTest, RejectsZeroJobs) {
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("local"),
                           MiniConfig(0, false)));
}

TEST_F(ClusterTest, SingleVanillaJobTrainsFully) {
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("v1"),
                                     MiniConfig(1, false));
  ASSERT_OK(result);
  ASSERT_EQ(1u, result.value().jobs.size());
  const auto& job = result.value().jobs[0];
  EXPECT_EQ(2u, job.training.epochs.size());
  for (const auto& epoch : job.training.epochs) {
    EXPECT_EQ(workload::DatasetSpec::Tiny().total_samples(), epoch.samples);
  }
  EXPECT_GT(job.pfs_stats.read_ops, 0u);
  EXPECT_EQ(0u, job.monarch_stats.files_indexed) << "vanilla has no monarch";
}

TEST_F(ClusterTest, ConcurrentJobsAllComplete) {
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("v3"),
                                     MiniConfig(3, false));
  ASSERT_OK(result);
  ASSERT_EQ(3u, result.value().jobs.size());
  for (const auto& job : result.value().jobs) {
    for (const auto& epoch : job.training.epochs) {
      EXPECT_EQ(workload::DatasetSpec::Tiny().total_samples(), epoch.samples)
          << "job " << job.job_index;
    }
  }
  EXPECT_GT(result.value().MeanEpochSeconds(), 0.0);
  EXPECT_GT(result.value().TotalPfsReadOps(), 0u);
}

TEST_F(ClusterTest, MonarchJobsStageAndDecouple) {
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("m2"),
                                     MiniConfig(2, true));
  ASSERT_OK(result);
  ASSERT_EQ(2u, result.value().jobs.size());
  for (const auto& job : result.value().jobs) {
    // Every job staged the full (tiny) dataset to its own local tier.
    EXPECT_EQ(workload::DatasetSpec::Tiny().num_files,
              job.monarch_stats.placement.completed)
        << "job " << job.job_index;
    EXPECT_GT(job.monarch_stats.levels[0].reads, 0u);
  }
}

TEST_F(ClusterTest, MonarchClusterIssuesFewerPfsReadsThanVanilla) {
  auto vanilla = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("cv"),
                                      MiniConfig(2, false));
  ASSERT_OK(vanilla);
  auto monarch = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("cm"),
                                      MiniConfig(2, true));
  ASSERT_OK(monarch);
  EXPECT_LT(monarch.value().TotalPfsReadOps(),
            vanilla.value().TotalPfsReadOps());
}

TEST_F(ClusterTest, JobsShufflesDiffer) {
  // Different seeds per job: both jobs train the same files but in
  // different orders; just verify both consumed everything (ordering is
  // covered by loader tests) and that per-job stats are independent.
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("ind"),
                                     MiniConfig(2, false));
  ASSERT_OK(result);
  const auto& a = result.value().jobs[0].pfs_stats;
  const auto& b = result.value().jobs[1].pfs_stats;
  EXPECT_GT(a.read_ops, 0u);
  EXPECT_GT(b.read_ops, 0u);
}

}  // namespace
}  // namespace monarch::dlsim
