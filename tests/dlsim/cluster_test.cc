#include "dlsim/cluster.h"

#include <gtest/gtest.h>

#include "../test_support.h"

namespace monarch::dlsim {
namespace {

using monarch::testing::TempDir;

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : dir_("cluster") {}

  ClusterConfig MiniConfig(int jobs, bool use_monarch) {
    ClusterConfig config;
    config.num_jobs = jobs;
    config.use_monarch = use_monarch;
    config.dataset = workload::DatasetSpec::Tiny();
    config.model.name = "mini";
    config.model.step_time = Micros(100);
    config.model.preprocess_per_sample = Micros(10);
    config.epochs = 2;
    config.batch_size = 8;
    config.num_gpus = 2;
    config.reader_threads = 2;
    config.read_chunk_bytes = 2048;
    config.local_quota_bytes = 8ULL * 1024 * 1024;
    config.placement_threads = 2;
    return config;
  }

  TempDir dir_;
};

TEST_F(ClusterTest, RejectsZeroJobs) {
  EXPECT_STATUS_CODE(
      StatusCode::kInvalidArgument,
      RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("local"),
                           MiniConfig(0, false)));
}

TEST_F(ClusterTest, SingleVanillaJobTrainsFully) {
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("v1"),
                                     MiniConfig(1, false));
  ASSERT_OK(result);
  ASSERT_EQ(1u, result.value().jobs.size());
  const auto& job = result.value().jobs[0];
  EXPECT_EQ(2u, job.training.epochs.size());
  for (const auto& epoch : job.training.epochs) {
    EXPECT_EQ(workload::DatasetSpec::Tiny().total_samples(), epoch.samples);
  }
  EXPECT_GT(job.pfs_stats.read_ops, 0u);
  EXPECT_EQ(0u, job.monarch_stats.files_indexed) << "vanilla has no monarch";
}

TEST_F(ClusterTest, ConcurrentJobsAllComplete) {
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("v3"),
                                     MiniConfig(3, false));
  ASSERT_OK(result);
  ASSERT_EQ(3u, result.value().jobs.size());
  for (const auto& job : result.value().jobs) {
    for (const auto& epoch : job.training.epochs) {
      EXPECT_EQ(workload::DatasetSpec::Tiny().total_samples(), epoch.samples)
          << "job " << job.job_index;
    }
  }
  EXPECT_GT(result.value().MeanEpochSeconds(), 0.0);
  EXPECT_GT(result.value().TotalPfsReadOps(), 0u);
}

TEST_F(ClusterTest, MonarchJobsStageAndDecouple) {
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("m2"),
                                     MiniConfig(2, true));
  ASSERT_OK(result);
  ASSERT_EQ(2u, result.value().jobs.size());
  for (const auto& job : result.value().jobs) {
    // Every job staged the full (tiny) dataset to its own local tier.
    EXPECT_EQ(workload::DatasetSpec::Tiny().num_files,
              job.monarch_stats.placement.completed)
        << "job " << job.job_index;
    EXPECT_GT(job.monarch_stats.levels[0].reads, 0u);
  }
}

TEST_F(ClusterTest, MonarchClusterIssuesFewerPfsReadsThanVanilla) {
  auto vanilla = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("cv"),
                                      MiniConfig(2, false));
  ASSERT_OK(vanilla);
  auto monarch = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("cm"),
                                      MiniConfig(2, true));
  ASSERT_OK(monarch);
  EXPECT_LT(monarch.value().TotalPfsReadOps(),
            vanilla.value().TotalPfsReadOps());
}

TEST_F(ClusterTest, JobsShufflesDiffer) {
  // Different seeds per job: both jobs train the same files but in
  // different orders; just verify both consumed everything (ordering is
  // covered by loader tests) and that per-job stats are independent.
  auto result = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("ind"),
                                     MiniConfig(2, false));
  ASSERT_OK(result);
  const auto& a = result.value().jobs[0].pfs_stats;
  const auto& b = result.value().jobs[1].pfs_stats;
  EXPECT_GT(a.read_ops, 0u);
  EXPECT_GT(b.read_ops, 0u);
}

// ---------------------------------------------------------------------
// ISSUE 4 satellite (c): seeded 2-job runs must deliver byte-identical
// batches whichever storage path serves them, and every job's PFS
// traffic must reconcile against its MONARCH accounting.

TEST_F(ClusterTest, SeededRunsDeliverByteIdenticalBatchesAcrossArms) {
  // Same seed, three arms: vanilla, monarch, monarch+peer. The trainer
  // digests every sample payload (order-insensitive CRC sum), so equal
  // digests mean every epoch consumed exactly the same bytes regardless
  // of which tier — PFS, local, or a peer's local over the fabric —
  // served each read.
  ClusterConfig vanilla_config = MiniConfig(2, false);
  vanilla_config.seed = 77;
  ClusterConfig monarch_config = MiniConfig(2, true);
  monarch_config.seed = 77;
  ClusterConfig peer_config = MiniConfig(2, true);
  peer_config.seed = 77;
  peer_config.peer_sharing = true;

  auto vanilla = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("dv"),
                                      vanilla_config);
  ASSERT_OK(vanilla);
  auto monarch = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("dm"),
                                      monarch_config);
  ASSERT_OK(monarch);
  auto peer = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("dp"),
                                   peer_config);
  ASSERT_OK(peer);

  for (std::size_t j = 0; j < 2; ++j) {
    const auto& v_epochs = vanilla.value().jobs[j].training.epochs;
    const auto& m_epochs = monarch.value().jobs[j].training.epochs;
    const auto& p_epochs = peer.value().jobs[j].training.epochs;
    ASSERT_EQ(v_epochs.size(), m_epochs.size());
    ASSERT_EQ(v_epochs.size(), p_epochs.size());
    for (std::size_t e = 0; e < v_epochs.size(); ++e) {
      EXPECT_NE(0u, v_epochs[e].sample_digest);
      EXPECT_EQ(v_epochs[e].sample_digest, m_epochs[e].sample_digest)
          << "job " << j << " epoch " << e << ": monarch diverged";
      EXPECT_EQ(v_epochs[e].sample_digest, p_epochs[e].sample_digest)
          << "job " << j << " epoch " << e << ": monarch-peer diverged";
    }
  }
}

TEST_F(ClusterTest, PerJobPfsTrafficReconcilesWithMonarchAccounting) {
  for (const bool peer_sharing : {false, true}) {
    ClusterConfig config = MiniConfig(2, true);
    config.peer_sharing = peer_sharing;
    auto result = RunClusterExperiment(
        dir_.Sub("pfs"), dir_.Sub(peer_sharing ? "rp" : "rm"), config);
    ASSERT_OK(result);
    for (const auto& job : result.value().jobs) {
      // Everything this job pulled from the shared PFS is either a
      // demand read served by the PFS level or a staging copy (minus the
      // chunks donated by the triggering demand read).
      const auto& stats = job.monarch_stats;
      EXPECT_EQ(job.pfs_stats.bytes_read,
                stats.levels.back().bytes + stats.placement.bytes_staged -
                    stats.placement.donated_bytes)
          << "job " << job.job_index << " peer_sharing=" << peer_sharing;
      EXPECT_EQ(0u, stats.degraded_fallbacks)
          << "clean run must not exercise the degradation ladder";
    }
  }
}

TEST_F(ClusterTest, PeerSharingShardsStagingAndCutsPfsTraffic) {
  ClusterConfig config = MiniConfig(2, true);
  auto solo = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("ns"), config);
  ASSERT_OK(solo);
  config.peer_sharing = true;
  auto shared = RunClusterExperiment(dir_.Sub("pfs"), dir_.Sub("ps"), config);
  ASSERT_OK(shared);

  // Without peer sharing every node stages the whole dataset; with it
  // the shards partition the namespace, so the cluster pulls fewer bytes
  // from the PFS and moves the difference over the interconnect.
  EXPECT_LT(shared.value().TotalPfsReadBytes(),
            solo.value().TotalPfsReadBytes());
  EXPECT_GT(shared.value().peer_transfers, 0u);
  EXPECT_GT(shared.value().peer_bytes, 0u);

  const std::uint64_t num_files = workload::DatasetSpec::Tiny().num_files;
  std::uint64_t owned = 0;
  std::uint64_t placed = 0;
  for (const auto& job : shared.value().jobs) {
    owned += job.peer_stats.owned;
    placed += job.peer_stats.placed;
    // Each node staged exactly its shard, nothing else.
    EXPECT_EQ(job.peer_stats.placed, job.monarch_stats.placement.completed)
        << "job " << job.job_index;
  }
  EXPECT_EQ(num_files, owned);
  EXPECT_EQ(num_files, placed);

  // The non-peer arm reports no directory or fabric activity.
  EXPECT_EQ(0u, solo.value().peer_transfers);
  for (const auto& job : solo.value().jobs) {
    EXPECT_EQ(0u, job.peer_stats.owned + job.peer_stats.placed +
                      job.peer_stats.remote_hits);
  }
}

}  // namespace
}  // namespace monarch::dlsim
