#include "dlsim/trainer.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "../test_support.h"
#include "storage/memory_engine.h"
#include "workload/dataset_generator.h"

namespace monarch::dlsim {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_shared<storage::MemoryEngine>();
    spec_ = workload::DatasetSpec::Tiny();
    auto manifest = workload::GenerateDataset(*engine_, spec_);
    ASSERT_OK(manifest);
    files_ = manifest.value().file_paths;
  }

  TrainerConfig FastConfig(int epochs = 2) {
    TrainerConfig config;
    config.model.name = "test-model";
    config.model.step_time = Micros(100);
    config.model.preprocess_per_sample = Micros(10);
    config.epochs = epochs;
    config.batch_size = 8;
    config.num_gpus = 2;
    config.loader.reader_threads = 2;
    config.loader.prefetch_samples = 16;
    return config;
  }

  std::shared_ptr<storage::MemoryEngine> engine_;
  workload::DatasetSpec spec_;
  std::vector<std::string> files_;
};

TEST_F(TrainerTest, RunsConfiguredEpochs) {
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_),
                  FastConfig(3));
  auto result = trainer.Train();
  ASSERT_OK(result);
  ASSERT_EQ(3u, result.value().epochs.size());
  for (int e = 0; e < 3; ++e) {
    const auto& epoch = result.value().epochs[static_cast<std::size_t>(e)];
    EXPECT_EQ(e + 1, epoch.epoch);
    EXPECT_EQ(spec_.total_samples(), epoch.samples);
    EXPECT_GT(epoch.wall_seconds, 0.0);
  }
  EXPECT_NEAR(result.value().total_seconds,
              result.value().EpochSeconds(1) + result.value().EpochSeconds(2) +
                  result.value().EpochSeconds(3),
              1e-9);
}

TEST_F(TrainerTest, StepCountMatchesBatchMath) {
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_),
                  FastConfig(1));
  auto result = trainer.Train();
  ASSERT_OK(result);
  // 32 samples at batch 8 = exactly 4 steps.
  EXPECT_EQ(4u, result.value().epochs[0].steps);
}

TEST_F(TrainerTest, PartialFinalBatchStillSteps) {
  auto config = FastConfig(1);
  config.batch_size = 5;  // 32 samples -> 6 full + 1 partial = 7 steps
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_), config);
  auto result = trainer.Train();
  ASSERT_OK(result);
  EXPECT_EQ(7u, result.value().epochs[0].steps);
}

TEST_F(TrainerTest, UtilisationsWithinBounds) {
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_),
                  FastConfig(1));
  auto result = trainer.Train();
  ASSERT_OK(result);
  const auto& epoch = result.value().epochs[0];
  EXPECT_GE(epoch.cpu_utilisation, 0.0);
  EXPECT_LE(epoch.cpu_utilisation, 1.05);
  EXPECT_GT(epoch.gpu_utilisation, 0.0);
  EXPECT_LE(epoch.gpu_utilisation, 1.05);
  EXPECT_GE(epoch.peak_memory_bytes, 0);
}

TEST_F(TrainerTest, ComputeBoundModelDominatedByStepTime) {
  auto config = FastConfig(1);
  config.model.step_time = Millis(20);  // 4 steps x 20ms = 80ms floor
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_), config);
  auto result = trainer.Train();
  ASSERT_OK(result);
  EXPECT_GE(result.value().epochs[0].wall_seconds, 0.078);
  EXPECT_GT(result.value().epochs[0].gpu_utilisation, 0.5);
}

TEST_F(TrainerTest, OpenerEpochHookSeesEveryEpoch) {
  struct CountingOpener final : RecordFileOpener {
    explicit CountingOpener(storage::StorageEnginePtr engine)
        : inner(std::move(engine)) {}
    Result<tfrecord::RandomAccessSourcePtr> Open(
        const std::string& path) override {
      return inner.Open(path);
    }
    void OnEpochStart(int epoch) override { epochs_seen.push_back(epoch); }
    [[nodiscard]] std::string Name() const override { return "counting"; }
    EngineOpener inner;
    std::vector<int> epochs_seen;
  };

  auto opener = std::make_unique<CountingOpener>(engine_);
  auto* raw = opener.get();
  Trainer trainer(files_, std::move(opener), FastConfig(3));
  ASSERT_OK(trainer.Train());
  EXPECT_EQ((std::vector<int>{1, 2, 3}), raw->epochs_seen);
}

/// Records every checkpoint the trainer pushes through the sink.
class RecordingSink final : public core::CheckpointSink {
 public:
  Status Save(const std::string& name,
              std::span<const std::byte> data) override {
    names.push_back(name);
    payloads.emplace_back(data.begin(), data.end());
    return next_save;
  }
  Result<std::vector<std::byte>> Restore(const std::string&) override {
    return NotFoundError("recording sink");
  }
  Status Flush() override { return Status::Ok(); }

  std::vector<std::string> names;
  std::vector<std::vector<std::byte>> payloads;
  Status next_save = Status::Ok();
};

TEST_F(TrainerTest, CheckpointCadenceMatchesStepMath) {
  RecordingSink sink;
  auto config = FastConfig(2);
  config.checkpoint_sink = &sink;
  config.checkpoint_every_steps = 2;
  config.checkpoint_bytes = 4096;
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_), config);
  auto result = trainer.Train();
  ASSERT_OK(result);

  // 4 steps/epoch at every-2 cadence = checkpoints at steps 2 and 4.
  EXPECT_EQ((std::vector<std::string>{"model-e1-s2", "model-e1-s4",
                                      "model-e2-s2", "model-e2-s4"}),
            sink.names);
  for (const auto& epoch : result.value().epochs) {
    EXPECT_EQ(2u, epoch.checkpoints_written);
    EXPECT_GE(epoch.checkpoint_seconds, 0.0);
    EXPECT_GE(epoch.read_stall_seconds, 0.0);
    // The stall split partitions wall time: nothing double-counted.
    EXPECT_LE(epoch.compute_seconds + epoch.checkpoint_seconds +
                  epoch.read_stall_seconds,
              epoch.wall_seconds + 1e-6);
  }
  for (const auto& payload : sink.payloads) {
    EXPECT_EQ(4096u, payload.size());
  }
}

TEST_F(TrainerTest, CheckpointPayloadsDeterministicAcrossSinks) {
  // Two trainers with different sinks must push byte-identical streams —
  // the property the checkpoint bench relies on to compare arms fairly.
  RecordingSink a;
  RecordingSink b;
  for (RecordingSink* sink : {&a, &b}) {
    auto config = FastConfig(1);
    config.checkpoint_sink = sink;
    config.checkpoint_every_steps = 2;
    config.checkpoint_bytes = 1024;
    Trainer trainer(files_, std::make_unique<EngineOpener>(engine_), config);
    ASSERT_OK(trainer.Train());
  }
  ASSERT_EQ(a.names, b.names);
  EXPECT_EQ(a.payloads, b.payloads);
  // Distinct checkpoints carry distinct payloads (the generator is keyed).
  ASSERT_EQ(2u, a.payloads.size());
  EXPECT_NE(a.payloads[0], a.payloads[1]);
}

TEST_F(TrainerTest, CheckpointAfterPartialFinalBatch) {
  RecordingSink sink;
  auto config = FastConfig(1);
  config.batch_size = 5;  // 32 samples -> 7 steps, last one partial
  config.checkpoint_sink = &sink;
  config.checkpoint_every_steps = 7;
  config.checkpoint_bytes = 512;
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_), config);
  auto result = trainer.Train();
  ASSERT_OK(result);
  EXPECT_EQ((std::vector<std::string>{"model-e1-s7"}), sink.names);
  EXPECT_EQ(1u, result.value().epochs[0].checkpoints_written);
}

TEST_F(TrainerTest, SinkFailureFailsTraining) {
  RecordingSink sink;
  sink.next_save = UnavailableError("checkpoint tier down");
  auto config = FastConfig(1);
  config.checkpoint_sink = &sink;
  config.checkpoint_every_steps = 1;
  Trainer trainer(files_, std::make_unique<EngineOpener>(engine_), config);
  EXPECT_STATUS_CODE(StatusCode::kUnavailable, trainer.Train());
}

TEST_F(TrainerTest, MissingFileFailsTraining) {
  auto files = files_;
  files.push_back("tiny/nonexistent.tfrecord");
  Trainer trainer(files, std::make_unique<EngineOpener>(engine_),
                  FastConfig(1));
  EXPECT_STATUS_CODE(StatusCode::kNotFound, trainer.Train());
}

}  // namespace
}  // namespace monarch::dlsim
